//! Randomized checks of the paper's two commutation theorems (experiments E3
//! and E4 of DESIGN.md):
//!
//! * slide 13 — querying a fuzzy tree then taking possible-worlds semantics
//!   equals taking the semantics first and querying every world;
//! * slide 14 — the same diagram for probabilistic update transactions.
//!
//! Instances, queries and updates are drawn from the seeded generators of
//! `pxml-gen`, so failures are reproducible.

use pxml::gen::{
    derived_query, random_fuzzy_tree, random_update, FuzzyGenConfig, QueryGenConfig,
    UpdateGenConfig,
};
use pxml::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Small instances keep the exhaustive possible-worlds side tractable while
/// still exercising conditions on several events.
fn small_instance(seed: u64) -> FuzzyTree {
    let mut rng = StdRng::seed_from_u64(seed);
    let config = FuzzyGenConfig {
        condition_probability: 0.45,
        max_literals: 2,
        ..FuzzyGenConfig::sized(18, 5)
    };
    random_fuzzy_tree(&mut rng, &config)
}

#[test]
fn e3_query_commutes_on_random_instances() {
    let query_config = QueryGenConfig {
        pattern_nodes: 3,
        descendant_probability: 0.4,
        value_probability: 0.3,
        join_probability: 0.2,
        wildcard_probability: 0.15,
    };
    for seed in 0..25u64 {
        let fuzzy = small_instance(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xabcd);
        let query = derived_query(&mut rng, fuzzy.tree(), &query_config);

        let via_fuzzy = fuzzy.query(&query).as_possible_worlds(fuzzy.events());
        let via_worlds = fuzzy.to_possible_worlds().unwrap().query(&query);
        assert!(
            via_fuzzy.equivalent(&via_worlds, 1e-9),
            "query commutation failed (seed {seed}, query {query})"
        );
    }
}

#[test]
fn e3_query_commutes_for_non_matching_queries() {
    for seed in 0..5u64 {
        let fuzzy = small_instance(seed);
        let query = Pattern::parse("no_such_label { nothing }").unwrap();
        let via_fuzzy = fuzzy.query(&query).as_possible_worlds(fuzzy.events());
        let via_worlds = fuzzy.to_possible_worlds().unwrap().query(&query);
        assert!(via_fuzzy.is_empty());
        assert!(via_worlds.is_empty());
    }
}

#[test]
fn e4_update_commutes_on_random_instances() {
    let update_config = UpdateGenConfig::default();
    for seed in 0..25u64 {
        let fuzzy = small_instance(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
        let update = random_update(&mut rng, fuzzy.tree(), &update_config);

        let worlds_then_update = fuzzy.to_possible_worlds().unwrap().update(&update);
        let mut updated = fuzzy.clone();
        updated
            .tree()
            .validate()
            .expect("generated instance is valid");
        update.apply_to_fuzzy(&mut updated).unwrap();
        let update_then_worlds = updated.to_possible_worlds().unwrap();

        assert!(
            worlds_then_update.equivalent(&update_then_worlds, 1e-9),
            "update commutation failed (seed {seed}, query {}, confidence {})",
            update.pattern(),
            update.confidence()
        );
        assert!(updated.validate().is_ok());
    }
}

#[test]
fn e4_update_with_confidence_one_and_zero_behave_as_expected() {
    for seed in 30..35u64 {
        let fuzzy = small_instance(seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let update = random_update(&mut rng, fuzzy.tree(), &UpdateGenConfig::default());

        // Confidence 1: the update is certain; the diagram still commutes.
        let certain = update.with_confidence(1.0).unwrap();
        let mut updated = fuzzy.clone();
        certain.apply_to_fuzzy(&mut updated).unwrap();
        assert!(fuzzy
            .to_possible_worlds()
            .unwrap()
            .update(&certain)
            .equivalent(&updated.to_possible_worlds().unwrap(), 1e-9));

        // Confidence 0: the update never applies; semantics are unchanged.
        let vacuous = update.with_confidence(0.0).unwrap();
        let mut untouched = fuzzy.clone();
        vacuous.apply_to_fuzzy(&mut untouched).unwrap();
        assert!(fuzzy
            .to_possible_worlds()
            .unwrap()
            .equivalent(&untouched.to_possible_worlds().unwrap(), 1e-9));
    }
}

#[test]
fn e4_sequences_of_updates_commute() {
    // Applying two transactions in sequence must also commute with the
    // possible-worlds semantics (the diagram composes).
    for seed in 40..48u64 {
        let fuzzy = small_instance(seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let first = random_update(&mut rng, fuzzy.tree(), &UpdateGenConfig::default());
        let mut updated = fuzzy.clone();
        first.apply_to_fuzzy(&mut updated).unwrap();
        // The second update is derived from the *updated* document.
        let second = random_update(&mut rng, updated.tree(), &UpdateGenConfig::default());

        let via_worlds = fuzzy
            .to_possible_worlds()
            .unwrap()
            .update(&first)
            .update(&second);
        second.apply_to_fuzzy(&mut updated).unwrap();
        assert!(
            via_worlds.equivalent(&updated.to_possible_worlds().unwrap(), 1e-9),
            "sequence commutation failed (seed {seed})"
        );
    }
}

#[test]
fn simplification_preserves_semantics_after_update_histories() {
    // E8 correctness side: simplify(update*(F)) ≡ update*(F).
    for seed in 50..60u64 {
        let mut fuzzy = small_instance(seed);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..3 {
            let update = random_update(&mut rng, fuzzy.tree(), &UpdateGenConfig::default());
            update.apply_to_fuzzy(&mut fuzzy).unwrap();
        }
        let before = fuzzy.clone();
        let report = Simplifier::new().run(&mut fuzzy).unwrap();
        assert!(
            before.semantically_equivalent(&fuzzy, 1e-9).unwrap(),
            "simplification changed semantics (seed {seed}, report {report:?})"
        );
        assert!(fuzzy.node_count() <= before.node_count());
        assert!(fuzzy.event_count() <= before.event_count());
    }
}
