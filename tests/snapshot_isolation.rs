//! Snapshot-isolation properties for the MVCC warehouse engine.
//!
//! A writer streams randomly generated update batches into one document
//! while readers concurrently pin snapshots. Every state a reader observes
//! must be one of the *published* states — the initial document or the
//! result of applying a prefix of the batch sequence — never a half-applied
//! batch, and the snapshot sequence numbers a reader sees must be monotone.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use proptest::prelude::*;
use pxml::prelude::*;

const PEOPLE: &[&str] = &["alice", "bob", "carol"];

fn directory() -> Tree {
    parse_data_tree(
        "<directory>\
           <person><name>alice</name></person>\
           <person><name>bob</name></person>\
           <person><name>carol</name></person>\
         </directory>",
    )
    .unwrap()
}

fn plain_config() -> SessionConfig {
    SessionConfig {
        simplify: SimplifyPolicy::Never,
        compaction: CompactionPolicy::Never,
        ..SessionConfig::default()
    }
}

/// One generated update: insert a phone under a person, or (conditionally)
/// delete a person's phones.
#[derive(Debug, Clone)]
struct Op {
    person: usize,
    confidence: u8,
    delete: bool,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0usize..PEOPLE.len(), 50u8..=100, 0u8..2).prop_map(|(person, confidence, kind)| Op {
        person,
        confidence,
        delete: kind == 1,
    })
}

fn build_update(op: &Op) -> UpdateTransaction {
    let name = PEOPLE[op.person];
    let confidence = op.confidence as f64 / 100.0;
    if op.delete {
        let pattern = Pattern::parse(&format!("person {{ name[=\"{name}\"], phone }}")).unwrap();
        let phone = pattern.node_ids().nth(2).unwrap();
        Update::matching(pattern)
            .delete_at(phone)
            .with_confidence(confidence)
            .build()
            .unwrap()
    } else {
        let pattern = Pattern::parse(&format!("person {{ name[=\"{name}\"] }}")).unwrap();
        let target = pattern.root();
        Update::matching(pattern)
            .insert_at(target, parse_data_tree("<phone>+33-1</phone>").unwrap())
            .with_confidence(confidence)
            .build()
            .unwrap()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Interleaved queries and commits observe only published snapshots.
    #[test]
    fn readers_observe_only_published_states(
        batches in proptest::collection::vec(
            proptest::collection::vec(op_strategy(), 1..3),
            1..6,
        )
    ) {
        let backend: Arc<dyn StorageBackend> = Arc::new(MemBackend::new());
        let session = Session::open_with_backend(backend, plain_config()).unwrap();
        let doc = session.create("people", directory()).unwrap();
        let initial = doc.pin().unwrap();

        let batches: Vec<Vec<UpdateTransaction>> = batches
            .iter()
            .map(|ops| ops.iter().map(build_update).collect())
            .collect();

        // The legal states: the initial document and every prefix of the
        // batch sequence, replayed sequentially — exactly what the commit
        // pipeline publishes, one snapshot per batch.
        let mut state = initial.fuzzy().clone();
        let mut legal = HashSet::new();
        legal.insert(state.fuzzy_canonical_string(state.root()));
        for batch in &batches {
            apply_batch(&mut state, batch, SimplifyPolicy::Never).unwrap();
            legal.insert(state.fuzzy_canonical_string(state.root()));
        }

        let done = Arc::new(AtomicBool::new(false));
        let observed = std::thread::scope(|scope| {
            let readers: Vec<_> = (0..2)
                .map(|_| {
                    let doc = doc.clone();
                    let done = done.clone();
                    scope.spawn(move || {
                        let mut seen = Vec::new();
                        let mut last_seq = 0;
                        loop {
                            let stop = done.load(Ordering::Acquire);
                            let snapshot = doc.pin().unwrap();
                            assert!(
                                snapshot.seq() >= last_seq,
                                "snapshot sequence went backwards"
                            );
                            last_seq = snapshot.seq();
                            let fuzzy = snapshot.fuzzy();
                            seen.push(fuzzy.fuzzy_canonical_string(fuzzy.root()));
                            if stop {
                                break;
                            }
                            std::thread::yield_now();
                        }
                        seen
                    })
                })
                .collect();
            for batch in &batches {
                session.engine().commit_batch("people", batch, None).unwrap();
            }
            done.store(true, Ordering::Release);
            readers
                .into_iter()
                .flat_map(|reader| reader.join().unwrap())
                .collect::<Vec<String>>()
        });

        for canonical in &observed {
            prop_assert!(
                legal.contains(canonical),
                "a reader observed a state no commit ever published"
            );
        }
        // The final published snapshot is the full replay.
        let last = doc.pin().unwrap();
        prop_assert_eq!(
            last.fuzzy().fuzzy_canonical_string(last.fuzzy().root()),
            state.fuzzy_canonical_string(state.root())
        );
        prop_assert_eq!(last.seq(), batches.len() as u64);
    }
}
