//! The concurrency and crash-recovery battery for the sharded warehouse
//! engine: barrier-started writer fleets whose final state must equal a
//! per-document sequential replay, and kill-point scenarios with several
//! documents mid-commit.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

use pxml::gen::scenarios::{people_directory, PeopleScenarioConfig};
use pxml::prelude::*;
use pxml::store::serialize_batch;

static COUNTER: AtomicU64 = AtomicU64::new(0);

fn scratch(label: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "pxml-concurrency-{}-{}-{}",
        std::process::id(),
        label,
        COUNTER.fetch_add(1, Ordering::SeqCst)
    ))
}

/// The people-directory names for `people_directory(people: 4)`.
const PEOPLE: &[&str] = &["alice-0", "bob-0", "carol-0", "dan-0"];

fn directory() -> pxml::tree::Tree {
    people_directory(&PeopleScenarioConfig {
        people: PEOPLE.len(),
        ..PeopleScenarioConfig::default()
    })
}

/// An insertion of a phone with a traceable value under a known person.
fn tagged_phone(person: usize, tag: &str, confidence: f64) -> Update {
    let pattern = Pattern::parse(&format!(
        "person {{ name[=\"{}\"] }}",
        PEOPLE[person % PEOPLE.len()]
    ))
    .unwrap();
    let target = pattern.root();
    let mut phone = pxml::tree::Tree::new("phone");
    phone.add_text(phone.root(), tag);
    Update::matching(pattern)
        .insert_at(target, phone)
        .with_confidence(confidence)
}

/// The replay-free session configuration used throughout: what the threads
/// committed is exactly what the journals hold and what recovery rebuilds.
fn plain_config() -> SessionConfig {
    SessionConfig {
        simplify: SimplifyPolicy::Never,
        compaction: CompactionPolicy::Never,
        ..SessionConfig::default()
    }
}

/// Every value carried by phone inserts in a parsed journal batch list.
fn journal_phone_tags(batches: &[Vec<UpdateTransaction>]) -> Vec<String> {
    batches
        .iter()
        .flatten()
        .flat_map(|update| update.operations())
        .filter_map(|op| match op {
            UpdateOperation::Insert { subtree, .. } => subtree
                .node_value(subtree.root())
                .map(|value| value.to_string()),
            UpdateOperation::Delete { .. } => None,
        })
        .collect()
}

/// N barrier-started writer threads spray commits over M shared documents;
/// afterwards every document must equal the sequential replay of its own
/// journal (which is the store's recovery path), and the engine counters
/// must account for every update.
#[test]
fn concurrent_writers_equal_sequential_replay_per_document() {
    let dir = scratch("writers-vs-replay");
    let session = Session::open(&dir, plain_config()).unwrap();
    let docs = 3;
    let threads = 6;
    let commits_per_thread = 4;
    let documents: Vec<Document> = (0..docs)
        .map(|i| session.create(&format!("doc-{i}"), directory()).unwrap())
        .collect();

    let barrier = Arc::new(Barrier::new(threads));
    std::thread::scope(|scope| {
        for t in 0..threads {
            let documents = documents.clone();
            let barrier = barrier.clone();
            scope.spawn(move || {
                barrier.wait();
                for k in 0..commits_per_thread {
                    // Each thread walks the documents starting at its own
                    // offset, so every document sees interleaved writers.
                    let doc = &documents[(t + k) % docs];
                    doc.begin()
                        .stage(tagged_phone(t, &format!("t{t}-k{k}"), 0.7))
                        .commit()
                        .unwrap();
                }
            });
        }
    });

    assert_eq!(
        session.stats().updates_applied,
        threads * commits_per_thread
    );
    // A second store handle over the same directory sees the journals the
    // commits wrote; its recovery (checkpoint + in-order journal replay) is
    // the sequential-replay reference.
    let store = DocumentStore::open(&dir).unwrap();
    let mut journaled_total = 0;
    for (i, doc) in documents.iter().enumerate() {
        let name = format!("doc-{i}");
        let replayed = store.recover_document(&name).unwrap();
        let live = doc.snapshot().unwrap();
        assert!(
            live.semantically_equivalent(&replayed, 1e-9).unwrap(),
            "document {name} diverged from its journal replay"
        );
        journaled_total += store.read_batches(&name).unwrap().len();
    }
    assert_eq!(journaled_total, threads * commits_per_thread);
    std::fs::remove_dir_all(dir).unwrap();
}

/// Kill-point with two documents mid-commit: `committed`'s batch passed its
/// commit point (its segment record was fully written) while `staged`'s
/// append died mid-record, leaving a torn tail whose length prefix promises
/// more bytes than the file holds. Recovery replays the first, discards the
/// second, and the two journals stay fully separate.
#[test]
fn crash_with_two_in_flight_documents_recovers_independently() {
    let dir = scratch("two-doc-kill-point");
    {
        let session = Session::open(&dir, plain_config()).unwrap();
        let committed = session.create("committed", directory()).unwrap();
        session.create("staged", directory()).unwrap();
        committed
            .begin()
            .stage(tagged_phone(0, "doc-committed-0", 0.8))
            .stage(tagged_phone(1, "doc-committed-1", 0.6))
            .commit()
            .unwrap();
        // `staged`'s append died mid-record: fabricate the torn tail the way
        // the segment journal would have left it (full header, then only
        // half of the payload the length prefix promises).
        let orphan = tagged_phone(2, "doc-staged-0", 0.9).build().unwrap();
        let payload = serialize_batch(std::slice::from_ref(&orphan));
        let mut torn = Vec::new();
        torn.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        torn.extend_from_slice(&1u32.to_le_bytes());
        torn.extend_from_slice(&payload.as_bytes()[..payload.len() / 2]);
        std::fs::write(dir.join("staged.journal.0.0.seg"), torn).unwrap();
        // The session drops here: the crash.
    }

    let session = Session::open(&dir, plain_config()).unwrap();
    let phones = Pattern::parse("person { phone }").unwrap();
    let committed = session.document("committed").unwrap();
    assert_eq!(
        committed.query(&phones).unwrap().len(),
        2,
        "the committed batch must replay in full"
    );
    let staged = session.document("staged").unwrap();
    assert!(
        staged.query(&phones).unwrap().is_empty(),
        "the torn-tail batch must be discarded"
    );

    // Per-document journals never interleave: `committed`'s journal holds
    // exactly its own two updates, `staged`'s is empty (the torn record was
    // truncated away).
    let store = DocumentStore::open(&dir).unwrap();
    let batches = store.read_batches("committed").unwrap();
    assert_eq!(batches.len(), 1);
    assert_eq!(
        journal_phone_tags(&batches),
        vec!["doc-committed-0", "doc-committed-1"]
    );
    assert!(store.read_batches("staged").unwrap().is_empty());
    assert_eq!(
        std::fs::metadata(dir.join("staged.journal.0.0.seg"))
            .unwrap()
            .len(),
        0,
        "the torn tail must be truncated away"
    );
    std::fs::remove_dir_all(dir).unwrap();
}

/// Concurrent commits to two documents followed by a crash: each document
/// recovers exactly its own batches, and neither journal contains a single
/// entry belonging to the other document.
#[test]
fn concurrent_commits_keep_journals_separate_across_a_crash() {
    let dir = scratch("journal-isolation");
    let commits = 3;
    {
        let session = Session::open(&dir, plain_config()).unwrap();
        let documents: Vec<Document> = (0..2)
            .map(|i| session.create(&format!("doc-{i}"), directory()).unwrap())
            .collect();
        let barrier = Arc::new(Barrier::new(2));
        std::thread::scope(|scope| {
            for (i, doc) in documents.iter().enumerate() {
                let barrier = barrier.clone();
                scope.spawn(move || {
                    barrier.wait();
                    for k in 0..commits {
                        doc.begin()
                            .stage(tagged_phone(k, &format!("doc-{i}-k{k}"), 0.7))
                            .commit()
                            .unwrap();
                    }
                });
            }
        });
        // Crash: drop without checkpointing.
    }

    let session = Session::open(&dir, plain_config()).unwrap();
    let store = DocumentStore::open(&dir).unwrap();
    let phones = Pattern::parse("person { phone }").unwrap();
    for i in 0..2 {
        let name = format!("doc-{i}");
        let doc = session.document(&name).unwrap();
        assert_eq!(doc.query(&phones).unwrap().len(), commits);

        let batches = store.read_batches(&name).unwrap();
        assert_eq!(batches.len(), commits, "one journal batch per commit");
        let tags = journal_phone_tags(&batches);
        assert_eq!(tags.len(), commits);
        assert!(
            tags.iter().all(|tag| tag.starts_with(&format!("doc-{i}-"))),
            "journal of {name} holds a foreign entry: {tags:?}"
        );
    }
    std::fs::remove_dir_all(dir).unwrap();
}

/// The MVCC battery: readers pin snapshots while a writer streams commits.
/// Every query must complete against *some* published snapshot — phone
/// counts observed by a reader are monotone non-decreasing (snapshots are
/// published in order and never mutated), and a snapshot pinned before the
/// stream keeps its state to the end.
#[test]
fn readers_pin_snapshots_while_writer_streams_commits() {
    let dir = scratch("reader-pins-snapshot");
    let session = Session::open(&dir, plain_config()).unwrap();
    let doc = session.create("people", directory()).unwrap();
    doc.begin()
        .stage(tagged_phone(0, "pre-stream", 0.9))
        .commit()
        .unwrap();
    let pinned = doc.pin().unwrap();
    let pinned_phones = pinned.fuzzy().tree().find_elements("phone").len();

    let commits = 24;
    let readers = 3;
    let phones = Pattern::parse("person { phone }").unwrap();
    let barrier = Arc::new(Barrier::new(readers + 1));
    std::thread::scope(|scope| {
        for _ in 0..readers {
            let doc = doc.clone();
            let barrier = barrier.clone();
            let phones = phones.clone();
            scope.spawn(move || {
                barrier.wait();
                let mut last_seen = 0;
                let mut last_seq = 0;
                loop {
                    let snapshot = doc.pin().unwrap();
                    assert!(
                        snapshot.seq() >= last_seq,
                        "snapshots must be published in order"
                    );
                    last_seq = snapshot.seq();
                    let seen = doc.query(&phones).unwrap().len();
                    assert!(
                        seen >= last_seen,
                        "a reader observed a rollback: {seen} after {last_seen}"
                    );
                    last_seen = seen;
                    if seen > commits {
                        break;
                    }
                    std::thread::yield_now();
                }
            });
        }
        let writer_doc = doc.clone();
        let writer_barrier = barrier.clone();
        scope.spawn(move || {
            writer_barrier.wait();
            for k in 0..commits {
                writer_doc
                    .begin()
                    .stage(tagged_phone(k, &format!("stream-{k}"), 0.8))
                    .commit()
                    .unwrap();
            }
        });
    });

    // The pre-stream pin is untouched by the 24 commits that followed.
    assert_eq!(
        pinned.fuzzy().tree().find_elements("phone").len(),
        pinned_phones
    );
    assert!(doc.pin().unwrap().seq() > pinned.seq());
    assert_eq!(doc.query(&phones).unwrap().len(), commits + 1);
    std::fs::remove_dir_all(dir).unwrap();
}

/// Mixed traffic from many threads — queries, commits and stats polling over
/// disjoint and shared documents — finishes with a consistent ledger: every
/// thread's commits are counted, every document validates, and a reopened
/// session agrees with the live one.
#[test]
fn mixed_traffic_stress_stays_consistent() {
    let dir = scratch("mixed-stress");
    let session = Session::open(&dir, plain_config()).unwrap();
    let docs = 4;
    let threads = 8;
    let rounds = 6;
    let documents: Vec<Document> = (0..docs)
        .map(|i| session.create(&format!("doc-{i}"), directory()).unwrap())
        .collect();
    let barrier = Arc::new(Barrier::new(threads));
    let phones = Pattern::parse("person { phone }").unwrap();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let documents = documents.clone();
            let session = session.clone();
            let barrier = barrier.clone();
            let phones = phones.clone();
            scope.spawn(move || {
                barrier.wait();
                for k in 0..rounds {
                    let doc = &documents[(t + k) % docs];
                    if t % 2 == 0 {
                        doc.begin()
                            .stage(tagged_phone(t + k, &format!("t{t}-k{k}"), 0.6))
                            .commit()
                            .unwrap();
                    } else {
                        let _ = doc.query(&phones).unwrap();
                        let _ = session.stats();
                    }
                }
            });
        }
    });
    let committed = (threads / 2) * rounds;
    let stats = session.stats();
    assert_eq!(stats.updates_applied, committed);
    assert_eq!(stats.queries_evaluated, (threads / 2) * rounds);
    let mut total_phones = 0;
    for doc in &documents {
        let snapshot = doc.snapshot().unwrap();
        assert!(snapshot.validate().is_ok());
        total_phones += doc.query(&phones).unwrap().len();
    }
    assert_eq!(total_phones, committed);

    drop(documents);
    drop(session);
    let reopened = Session::open(&dir, plain_config()).unwrap();
    let mut recovered_phones = 0;
    for i in 0..docs {
        recovered_phones += reopened
            .document(&format!("doc-{i}"))
            .unwrap()
            .query(&phones)
            .unwrap()
            .len();
    }
    assert_eq!(recovered_phones, committed);
    std::fs::remove_dir_all(dir).unwrap();
}
