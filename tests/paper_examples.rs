//! Exact reproductions of the worked examples of the paper (experiments E1,
//! E2 and E6 of DESIGN.md).

use pxml::prelude::*;

/// The slide-9 possible-worlds example: four worlds over `A` with children
/// among `{B, C, D}` and probabilities 0.06 / 0.14 / 0.24 / 0.56.
fn slide9_worlds() -> PossibleWorlds {
    PossibleWorlds::from_worlds(vec![
        (parse_data_tree("<A><C/></A>").unwrap(), 0.06),
        (parse_data_tree("<A><C/><D/></A>").unwrap(), 0.14),
        (parse_data_tree("<A><B/><C/></A>").unwrap(), 0.24),
        (parse_data_tree("<A><B/><C/><D/></A>").unwrap(), 0.56),
    ])
    .unwrap()
}

/// The slide-12 fuzzy tree: `A(B[w1 ∧ ¬w2], C, D[w2])`, `P(w1)=0.8`,
/// `P(w2)=0.7`.
fn slide12_fuzzy() -> FuzzyTree {
    let mut fuzzy = FuzzyTree::new("A");
    let w1 = fuzzy.add_event("w1", 0.8).unwrap();
    let w2 = fuzzy.add_event("w2", 0.7).unwrap();
    let root = fuzzy.root();
    let b = fuzzy.add_element(root, "B");
    fuzzy
        .set_condition(
            b,
            Condition::from_literals([Literal::pos(w1), Literal::neg(w2)]),
        )
        .unwrap();
    fuzzy.add_element(root, "C");
    let d = fuzzy.add_element(root, "D");
    fuzzy
        .set_condition(d, Condition::from_literal(Literal::pos(w2)))
        .unwrap();
    fuzzy
}

// ---------------------------------------------------------------------------
// E1 — slide 9.
// ---------------------------------------------------------------------------

#[test]
fn e1_slide9_probabilities_form_a_distribution() {
    let worlds = slide9_worlds();
    assert_eq!(worlds.len(), 4);
    assert!((worlds.total_probability() - 1.0).abs() < 1e-12);
}

#[test]
fn e1_slide9_marginals_are_consistent_with_independent_b_and_d() {
    let worlds = slide9_worlds();
    // In the example, P(B) = 0.8 and P(D) = 0.7 and the two are independent.
    let p_b = worlds.probability_that(|t| !t.find_elements("B").is_empty());
    let p_d = worlds.probability_that(|t| !t.find_elements("D").is_empty());
    let p_bd = worlds
        .probability_that(|t| !t.find_elements("B").is_empty() && !t.find_elements("D").is_empty());
    assert!((p_b - 0.8).abs() < 1e-12);
    assert!((p_d - 0.7).abs() < 1e-12);
    assert!((p_bd - p_b * p_d).abs() < 1e-12);
}

#[test]
fn e1_normalization_merges_isomorphic_worlds_and_preserves_mass() {
    let mut duplicated = PossibleWorlds::new();
    for (tree, p) in slide9_worlds().iter() {
        duplicated.push(tree.clone(), p / 2.0);
        duplicated.push(tree.clone(), p / 2.0);
    }
    let normalized = duplicated.normalized();
    assert_eq!(normalized.len(), 4);
    assert!(normalized.equivalent(&slide9_worlds(), 1e-12));
}

// ---------------------------------------------------------------------------
// E2 — slide 12.
// ---------------------------------------------------------------------------

#[test]
fn e2_slide12_expansion_produces_exactly_the_three_worlds() {
    let fuzzy = slide12_fuzzy();
    let worlds = fuzzy.to_possible_worlds().unwrap();
    assert_eq!(worlds.len(), 3);
    let expected = [
        ("<A><C/></A>", 0.06),
        ("<A><C/><D/></A>", 0.70),
        ("<A><B/><C/></A>", 0.24),
    ];
    for (xml, probability) in expected {
        let tree = parse_data_tree(xml).unwrap();
        assert!(
            (worlds.probability_of_tree(&tree) - probability).abs() < 1e-12,
            "world {xml} must have probability {probability}"
        );
    }
}

#[test]
fn e2_expressiveness_round_trip_from_possible_worlds() {
    // The other direction of the expressiveness theorem: encode slide 9's
    // possible worlds as a fuzzy tree and expand it back.
    let worlds = slide9_worlds();
    let encoded = encode_possible_worlds(&worlds).unwrap();
    let expanded = encoded.to_possible_worlds().unwrap();
    assert!(expanded.equivalent(&worlds, 1e-9));
}

#[test]
fn e2_queries_on_slide12_have_the_expected_probabilities() {
    let fuzzy = slide12_fuzzy();
    let cases = [
        ("A { B }", 0.24),
        ("A { D }", 0.70),
        ("A { C }", 1.0),
        ("A { B, D }", 0.0), // B and D are mutually exclusive
    ];
    for (text, expected) in cases {
        let query = Pattern::parse(text).unwrap();
        let probability = fuzzy.selection_probability(&query);
        assert!(
            (probability - expected).abs() < 1e-12,
            "query {text}: expected {expected}, got {probability}"
        );
    }
}

// ---------------------------------------------------------------------------
// E6 — slide 15: conditional replacement.
// ---------------------------------------------------------------------------

/// Builds the slide-15 input document `A(B[w1], C[w2])`.
fn slide15_input() -> (FuzzyTree, EventId, EventId) {
    let mut fuzzy = FuzzyTree::new("A");
    let w1 = fuzzy.add_event("w1", 0.8).unwrap();
    let w2 = fuzzy.add_event("w2", 0.7).unwrap();
    let root = fuzzy.root();
    let b = fuzzy.add_element(root, "B");
    fuzzy
        .set_condition(b, Condition::from_literal(Literal::pos(w1)))
        .unwrap();
    let c = fuzzy.add_element(root, "C");
    fuzzy
        .set_condition(c, Condition::from_literal(Literal::pos(w2)))
        .unwrap();
    (fuzzy, w1, w2)
}

/// "Replacement of C by D if B is present, with confidence 0.9."
fn slide15_transaction() -> UpdateTransaction {
    let pattern = Pattern::parse("/A { B, C }").unwrap();
    let ids: Vec<_> = pattern.node_ids().collect();
    UpdateTransaction::new(pattern, 0.9)
        .unwrap()
        .with_insert(ids[0], parse_data_tree("<D/>").unwrap())
        .with_delete(ids[2])
}

#[test]
fn e6_conditional_replacement_produces_the_slide15_fuzzy_tree() {
    let (mut fuzzy, w1, w2) = slide15_input();
    let stats = slide15_transaction().apply_to_fuzzy(&mut fuzzy).unwrap();
    let w3 = stats
        .confidence_event
        .expect("a 0.9-confidence update adds an event");
    assert!((fuzzy.events().probability(w3) - 0.9).abs() < 1e-12);

    // B[w1] is untouched.
    let b = fuzzy.tree().find_elements("B")[0];
    assert_eq!(
        fuzzy.condition(b),
        Condition::from_literal(Literal::pos(w1))
    );

    // C is split into C[¬w1, w2] and C[w1, w2, ¬w3].
    let mut c_conditions: Vec<Condition> = fuzzy
        .tree()
        .find_elements("C")
        .into_iter()
        .map(|c| fuzzy.condition(c))
        .collect();
    c_conditions.sort();
    let mut expected = vec![
        Condition::from_literals([Literal::neg(w1), Literal::pos(w2)]),
        Condition::from_literals([Literal::pos(w1), Literal::pos(w2), Literal::neg(w3)]),
    ];
    expected.sort();
    assert_eq!(c_conditions, expected);

    // D[w1, w2, w3] is inserted.
    let d = fuzzy.tree().find_elements("D")[0];
    assert_eq!(
        fuzzy.condition(d),
        Condition::from_literals([Literal::pos(w1), Literal::pos(w2), Literal::pos(w3)])
    );
}

#[test]
fn e6_replacement_semantics_match_the_possible_worlds_definition() {
    let (fuzzy, _, _) = slide15_input();
    let transaction = slide15_transaction();
    let via_worlds = fuzzy.to_possible_worlds().unwrap().update(&transaction);
    let mut updated = fuzzy.clone();
    transaction.apply_to_fuzzy(&mut updated).unwrap();
    assert!(via_worlds.equivalent(&updated.to_possible_worlds().unwrap(), 1e-9));
}

#[test]
fn e6_replacement_probabilities_are_the_expected_marginals() {
    let (mut fuzzy, _, _) = slide15_input();
    slide15_transaction().apply_to_fuzzy(&mut fuzzy).unwrap();
    // D is present iff B present (0.8) ∧ C present (0.7) ∧ update applied (0.9).
    let d_query = Pattern::parse("A { D }").unwrap();
    assert!((fuzzy.selection_probability(&d_query) - 0.8 * 0.7 * 0.9).abs() < 1e-12);
    // C survives iff it existed and the deletion did not fire:
    // P(w2) − P(w1 ∧ w2 ∧ w3) = 0.7 − 0.504.
    let c_query = Pattern::parse("A { C }").unwrap();
    assert!((fuzzy.selection_probability(&c_query) - (0.7 - 0.504)).abs() < 1e-12);
}
