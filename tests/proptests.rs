//! Property-based tests over the core data structures and invariants.
//!
//! Strategies generate small random documents, conditions and formulas, and
//! the properties assert the algebraic facts the rest of the system relies
//! on: unordered isomorphism is insensitive to sibling order, probabilities
//! computed by Shannon expansion agree with exhaustive enumeration, both
//! matcher strategies agree, XML and PrXML round-trips preserve semantics,
//! and simplification never changes the possible-worlds semantics.

use proptest::prelude::*;
use pxml::prelude::*;
use pxml::store::{parse_fuzzy_document, serialize_fuzzy_document};

// ---------------------------------------------------------------------------
// Strategies.
// ---------------------------------------------------------------------------

/// A recursive tree blueprint: label index + children.
#[derive(Debug, Clone)]
struct Spec {
    label: u8,
    value: Option<u8>,
    children: Vec<Spec>,
}

fn spec_strategy() -> impl Strategy<Value = Spec> {
    let leaf = (0u8..6, proptest::option::of(0u8..4)).prop_map(|(label, value)| Spec {
        label,
        value,
        children: Vec::new(),
    });
    leaf.prop_recursive(3, 24, 4, |inner| {
        (0u8..6, proptest::collection::vec(inner, 0..4)).prop_map(|(label, children)| Spec {
            label,
            value: None,
            children,
        })
    })
}

fn build(spec: &Spec) -> Tree {
    let mut tree = Tree::new(format!("l{}", spec.label));
    let root = tree.root();
    build_children(&mut tree, root, spec, false);
    tree
}

fn build_reversed(spec: &Spec) -> Tree {
    let mut tree = Tree::new(format!("l{}", spec.label));
    let root = tree.root();
    build_children(&mut tree, root, spec, true);
    tree
}

fn build_children(tree: &mut Tree, node: NodeId, spec: &Spec, reversed: bool) {
    let mut children: Vec<&Spec> = spec.children.iter().collect();
    if reversed {
        children.reverse();
    }
    for child in children {
        let id = tree.add_element(node, format!("l{}", child.label));
        if let Some(value) = child.value {
            if child.children.is_empty() {
                tree.add_text(id, format!("v{value}"));
            }
        }
        build_children(tree, id, child, reversed);
    }
}

/// A small fuzzy tree: a spec-built tree plus random conditions over up to 4
/// events.
fn fuzzy_strategy() -> impl Strategy<Value = FuzzyTree> {
    (
        spec_strategy(),
        proptest::collection::vec((0usize..4, 0u8..2, 1u32..100), 0..6),
    )
        .prop_map(|(spec, annotations)| {
            let tree = build(&spec);
            let mut fuzzy = FuzzyTree::from_tree(tree);
            let events: Vec<EventId> = (0..4)
                .map(|i| {
                    fuzzy
                        .add_event(format!("w{i}"), 0.2 + 0.15 * i as f64)
                        .unwrap()
                })
                .collect();
            let nodes = fuzzy.tree().nodes();
            for (event_index, sign, node_choice) in annotations {
                let node = nodes[(node_choice as usize) % nodes.len()];
                if node == fuzzy.root() {
                    continue;
                }
                let literal = if sign == 0 {
                    Literal::pos(events[event_index])
                } else {
                    Literal::neg(events[event_index])
                };
                let condition = fuzzy.condition(node).and_literal(literal);
                if condition.is_consistent() {
                    fuzzy.set_condition(node, condition).unwrap();
                }
            }
            fuzzy
        })
}

// ---------------------------------------------------------------------------
// Properties.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Unordered isomorphism is insensitive to the order in which siblings
    /// are inserted.
    #[test]
    fn isomorphism_ignores_sibling_order(spec in spec_strategy()) {
        let forward = build(&spec);
        let backward = build_reversed(&spec);
        prop_assert!(forward.isomorphic(&backward));
        prop_assert_eq!(forward.node_count(), backward.node_count());
    }

    /// XML serialization round-trips data trees up to isomorphism.
    #[test]
    fn xml_round_trip_preserves_isomorphism(spec in spec_strategy()) {
        let tree = build(&spec);
        let xml = write_data_tree(&tree, true);
        let reparsed = parse_data_tree(&xml).unwrap();
        prop_assert!(tree.isomorphic(&reparsed));
    }

    /// Structural invariants hold on every generated tree.
    #[test]
    fn generated_trees_validate(spec in spec_strategy()) {
        let tree = build(&spec);
        prop_assert!(tree.validate().is_ok());
        prop_assert!(tree.check_data_model().is_ok());
    }

    /// The naive and indexed matchers return exactly the same match sets.
    #[test]
    fn matcher_strategies_agree(spec in spec_strategy(), anchored in any::<bool>()) {
        let tree = build(&spec);
        let mut pattern = Pattern::new(Some("l1"));
        pattern.add_child(pattern.root(), Axis::Descendant, Some("l2"));
        pattern.set_anchored(anchored);
        let naive = pattern.find_matches_with(&tree, MatchStrategy::Naive);
        let indexed = pattern.find_matches_with(&tree, MatchStrategy::Indexed);
        let naive_set: std::collections::BTreeSet<Vec<NodeId>> =
            naive.iter().map(|m| m.images().to_vec()).collect();
        let indexed_set: std::collections::BTreeSet<Vec<NodeId>> =
            indexed.iter().map(|m| m.images().to_vec()).collect();
        prop_assert_eq!(naive_set, indexed_set);
    }

    /// The probability of a fuzzy tree's worlds always sums to 1, and every
    /// node probability equals the probability mass of the worlds containing
    /// at least as many copies of its label.
    #[test]
    fn fuzzy_expansion_is_a_distribution(fuzzy in fuzzy_strategy()) {
        let worlds = fuzzy.to_possible_worlds().unwrap();
        let total = worlds.total_probability();
        prop_assert!((total - 1.0).abs() < 1e-9, "total probability {total}");
    }

    /// The probability of the condition `existence(node)` computed locally
    /// (product of literal probabilities) equals the probability mass of the
    /// worlds in which the node's subtree pattern occurs at least as often.
    #[test]
    fn selection_probability_matches_worlds(fuzzy in fuzzy_strategy()) {
        // Use the most common label as the query.
        let names = fuzzy.tree().element_names();
        let label = names.first().cloned().unwrap_or_else(|| "l0".to_string());
        let query = Pattern::element(&label);
        let via_fuzzy = fuzzy.selection_probability(&query);
        let via_worlds = fuzzy
            .to_possible_worlds()
            .unwrap()
            .probability_that(|t| !t.find_elements(&label).is_empty());
        prop_assert!((via_fuzzy - via_worlds).abs() < 1e-9);
    }

    /// The PrXML storage format round-trips fuzzy trees semantically.
    #[test]
    fn prxml_round_trip_preserves_semantics(fuzzy in fuzzy_strategy()) {
        let text = serialize_fuzzy_document(&fuzzy, true);
        let reparsed = parse_fuzzy_document(&text).unwrap();
        prop_assert!(fuzzy.semantically_equivalent(&reparsed, 1e-9).unwrap());
    }

    /// Simplification never changes the possible-worlds semantics and never
    /// grows the document.
    #[test]
    fn simplification_is_semantics_preserving(fuzzy in fuzzy_strategy()) {
        let mut simplified = fuzzy.clone();
        Simplifier::new().run(&mut simplified).unwrap();
        prop_assert!(fuzzy.semantically_equivalent(&simplified, 1e-9).unwrap());
        prop_assert!(simplified.node_count() <= fuzzy.node_count());
        prop_assert!(simplified.condition_literal_count() <= fuzzy.condition_literal_count());
        prop_assert!(simplified.validate().is_ok());
    }

    /// Conjunction probability equals the product of literal probabilities,
    /// and the Formula engine agrees with exhaustive enumeration.
    #[test]
    fn formula_probability_matches_enumeration(
        literal_specs in proptest::collection::vec((0usize..4, any::<bool>()), 1..5),
        or_specs in proptest::collection::vec((0usize..4, any::<bool>()), 1..5),
    ) {
        let mut events = EventTable::new();
        let ids: Vec<EventId> = (0..4)
            .map(|i| events.add_event(format!("e{i}"), 0.1 + 0.2 * i as f64).unwrap())
            .collect();
        let to_literal = |&(index, positive): &(usize, bool)| {
            if positive { Literal::pos(ids[index]) } else { Literal::neg(ids[index]) }
        };
        let a = Condition::from_literals(literal_specs.iter().map(to_literal));
        let b = Condition::from_literals(or_specs.iter().map(to_literal));
        let formula = Formula::any_of_conditions(&[a.clone(), b.clone()]);
        let by_shannon = formula.probability(&events);
        let by_enumeration: f64 = pxml::event::enumerate_valuations(&events)
            .unwrap()
            .into_iter()
            .filter(|v| a.satisfied_by(v) || b.satisfied_by(v))
            .map(|v| v.probability(&events))
            .sum();
        prop_assert!((by_shannon - by_enumeration).abs() < 1e-9);
    }

    /// Encoding a possible-worlds set as a fuzzy tree and expanding it back
    /// is the identity (up to normalisation).
    #[test]
    fn encode_expand_round_trip(fuzzy in fuzzy_strategy()) {
        let worlds = fuzzy.to_possible_worlds().unwrap();
        let encoded = encode_possible_worlds(&worlds).unwrap();
        let expanded = encoded.to_possible_worlds().unwrap();
        prop_assert!(expanded.equivalent(&worlds, 1e-9));
    }
}
