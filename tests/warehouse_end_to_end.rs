//! End-to-end test of the probabilistic XML warehouse through the session
//! API: imprecise modules stage probabilistic updates into committed
//! transactions, users query with TPWJ patterns, the store persists
//! everything and recovers after a "crash" (re-open without checkpointing).

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use pxml::gen::scenarios::{people_directory, PeopleScenarioConfig};
use pxml::prelude::*;
use pxml::warehouse::{run_modules, DataCleaningModule, ExtractionModule, SourceModule};

static COUNTER: AtomicU64 = AtomicU64::new(0);

fn scratch(label: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "pxml-e2e-{}-{}-{}",
        std::process::id(),
        label,
        COUNTER.fetch_add(1, Ordering::SeqCst)
    ))
}

fn scenario_config(people: usize) -> PeopleScenarioConfig {
    PeopleScenarioConfig {
        people,
        ..PeopleScenarioConfig::default()
    }
}

#[test]
fn warehouse_pipeline_queries_reflect_module_confidences() {
    let dir = scratch("pipeline");
    let session = Session::open(&dir, SessionConfig::default()).unwrap();
    let people = 10;
    let document = session
        .create("people", people_directory(&scenario_config(people)))
        .unwrap();

    // Three modules of different quality feed the warehouse.
    let mut modules: Vec<Box<dyn SourceModule>> = vec![
        Box::new(ExtractionModule::new("ie-web", 101, people, 25, 0.95)),
        Box::new(ExtractionModule::new("nlp-mail", 102, people, 25, 0.6)),
        Box::new(DataCleaningModule::new("cleaning", 103, people, 15)),
    ];
    let pushed = run_modules(&document, &mut modules).unwrap();
    let total_updates: usize = pushed.iter().map(|(_, count)| count).sum();
    assert!(total_updates > 20, "modules must actually push updates");
    assert_eq!(session.stats().updates_applied, total_updates);

    // Every extracted fact is uncertain: probabilities are in (0, 1].
    let snapshot = document.snapshot().unwrap();
    assert!(snapshot.validate().is_ok());
    for query_text in ["person { phone }", "person { email }", "person { city }"] {
        let query = Pattern::parse(query_text).unwrap();
        let result = document.query(&query).unwrap();
        for m in &result.matches {
            assert!(m.probability > 0.0 && m.probability <= 1.0, "{query_text}");
        }
    }

    // Certain data (the names loaded at creation time) stays certain.
    let names = document
        .query(&Pattern::parse("person { name }").unwrap())
        .unwrap();
    assert_eq!(names.len(), people);
    for m in &names.matches {
        assert!((m.probability - 1.0).abs() < 1e-12);
    }
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn warehouse_state_survives_crash_and_restart() {
    let dir = scratch("crash");
    let people = 6;
    let expected_phone_probability;
    {
        // No checkpointing: everything after creation lives in the journal.
        let session = Session::open(
            &dir,
            SessionConfig {
                compaction: CompactionPolicy::Never,
                simplify: SimplifyPolicy::Never,
                ..SessionConfig::default()
            },
        )
        .unwrap();
        let document = session
            .create("people", people_directory(&scenario_config(people)))
            .unwrap();
        let pattern = Pattern::parse("person { name[=\"alice-0\"] }").unwrap();
        let target = pattern.root();
        document
            .begin()
            .stage(
                Update::matching(pattern)
                    .insert_at(
                        target,
                        parse_data_tree("<phone>+33-1-1111-2222</phone>").unwrap(),
                    )
                    .with_confidence(0.8),
            )
            .commit()
            .unwrap();
        let query = Pattern::parse("person { phone }").unwrap();
        let result = document.query(&query).unwrap();
        assert_eq!(result.len(), 1);
        expected_phone_probability = result.matches[0].probability;
        // The session is dropped here without any checkpoint: the on-disk
        // state is the initial document plus the journal.
    }

    let recovered = Session::open(&dir, SessionConfig::default()).unwrap();
    let document = recovered.document("people").unwrap();
    let query = Pattern::parse("person { phone }").unwrap();
    let result = document.query(&query).unwrap();
    assert_eq!(result.len(), 1);
    assert!((result.matches[0].probability - expected_phone_probability).abs() < 1e-12);
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn recovered_state_is_semantically_identical_to_the_in_memory_one() {
    let dir = scratch("equivalence");
    let people = 5;
    let config = scenario_config(people);
    let session = Session::open(
        &dir,
        SessionConfig {
            compaction: CompactionPolicy::Never,
            simplify: SimplifyPolicy::Never,
            ..SessionConfig::default()
        },
    )
    .unwrap();
    let document = session.create("people", people_directory(&config)).unwrap();
    let mut modules: Vec<Box<dyn SourceModule>> = vec![
        Box::new(ExtractionModule::new("ie", 7, people, 10, 0.8)),
        Box::new(DataCleaningModule::new("clean", 8, people, 6)),
    ];
    run_modules(&document, &mut modules).unwrap();
    let live = document.snapshot().unwrap();

    // Re-open from disk (checkpoint + journal replay) and compare. The
    // reopened session must replay with the same policy the live one used,
    // or the recovered document would be the (equivalent but smaller)
    // simplified form.
    let reopened = Session::open(
        &dir,
        SessionConfig {
            compaction: CompactionPolicy::Never,
            simplify: SimplifyPolicy::Never,
            ..SessionConfig::default()
        },
    )
    .unwrap();
    let recovered_doc = reopened.document("people").unwrap();
    let recovered = recovered_doc.snapshot().unwrap();
    assert_eq!(live.node_count(), recovered.node_count());
    assert_eq!(live.event_count(), recovered.event_count());
    assert_eq!(
        live.condition_literal_count(),
        recovered.condition_literal_count()
    );
    // Spot-check a query rather than full expansion (the document can carry
    // dozens of events after a module run).
    for text in ["person { phone }", "person { email }", "person { city }"] {
        let query = Pattern::parse(text).unwrap();
        let a = document.query(&query).unwrap();
        let b = recovered_doc.query(&query).unwrap();
        assert_eq!(a.len(), b.len(), "{text}");
        let mut pa: Vec<f64> = a.matches.iter().map(|m| m.probability).collect();
        let mut pb: Vec<f64> = b.matches.iter().map(|m| m.probability).collect();
        pa.sort_by(f64::total_cmp);
        pb.sort_by(f64::total_cmp);
        for (x, y) in pa.iter().zip(pb.iter()) {
            assert!((x - y).abs() < 1e-9, "{text}");
        }
    }
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn simplification_keeps_warehouse_queries_stable() {
    let dir = scratch("simplify-stable");
    let people = 5;
    let session = Session::open(
        &dir,
        SessionConfig {
            simplify: SimplifyPolicy::Never,
            compaction: CompactionPolicy::Never,
            ..SessionConfig::default()
        },
    )
    .unwrap();
    let document = session
        .create("people", people_directory(&scenario_config(people)))
        .unwrap();
    let mut modules: Vec<Box<dyn SourceModule>> = vec![
        Box::new(ExtractionModule::new("ie", 31, people, 12, 0.7)),
        Box::new(DataCleaningModule::new("clean", 32, people, 8)),
    ];
    run_modules(&document, &mut modules).unwrap();

    // Simplification may merge duplicated phone copies (so the raw number of
    // matches can drop), but the probability that the document contains a
    // phone at all must be unchanged.
    let query = Pattern::parse("person { phone }").unwrap();
    let before_doc = document.snapshot().unwrap();
    let selection_before = before_doc.selection_probability(&query);

    document.simplify().unwrap();

    let after_doc = document.snapshot().unwrap();
    let selection_after = after_doc.selection_probability(&query);
    assert!((selection_before - selection_after).abs() < 1e-9);
    assert!(after_doc.condition_literal_count() <= before_doc.condition_literal_count());
    assert!(after_doc.event_count() <= before_doc.event_count());
    std::fs::remove_dir_all(dir).unwrap();
}

/// The batch path: several updates staged into one `Txn` are equivalent to
/// committing them one at a time, and arrive in the journal as one atomic
/// entry that recovery replays together.
#[test]
fn staged_batches_commit_atomically_and_recover() {
    let dir_batched = scratch("batched");
    let dir_single = scratch("single");
    let facts: Vec<Update> = ["alice-0", "bob-1", "carol-2"]
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let pattern = Pattern::parse(&format!("person {{ name[=\"{name}\"] }}")).unwrap();
            let person = pattern.root();
            Update::matching(pattern)
                .insert_at(
                    person,
                    parse_data_tree(&format!("<phone>+33-{i}</phone>")).unwrap(),
                )
                .with_confidence(0.6 + 0.1 * i as f64)
        })
        .collect();

    let config = SessionConfig {
        compaction: CompactionPolicy::Never,
        simplify: SimplifyPolicy::Never,
        ..SessionConfig::default()
    };
    {
        let session = Session::open(&dir_batched, config).unwrap();
        let doc = session
            .create("people", people_directory(&scenario_config(4)))
            .unwrap();
        let mut txn = doc.begin();
        for fact in &facts {
            txn = txn.stage(fact.clone());
        }
        assert_eq!(txn.staged_len(), 3);
        txn.commit().unwrap();
    }
    {
        let session = Session::open(&dir_single, config).unwrap();
        let doc = session
            .create("people", people_directory(&scenario_config(4)))
            .unwrap();
        for fact in &facts {
            doc.begin().stage(fact.clone()).commit().unwrap();
        }
    }

    let batched = Session::open(&dir_batched, config).unwrap();
    let single = Session::open(&dir_single, config).unwrap();
    let a = batched.document("people").unwrap().snapshot().unwrap();
    let b = single.document("people").unwrap().snapshot().unwrap();
    assert!(a.semantically_equivalent(&b, 1e-9).unwrap());
    std::fs::remove_dir_all(dir_batched).unwrap();
    std::fs::remove_dir_all(dir_single).unwrap();
}
