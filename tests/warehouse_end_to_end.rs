//! End-to-end test of the probabilistic XML warehouse (experiment E7 of
//! DESIGN.md): imprecise modules push probabilistic updates, users query with
//! TPWJ patterns, the store persists everything and recovers after a
//! "crash" (re-open without checkpointing).

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use pxml::gen::scenarios::{people_directory, PeopleScenarioConfig};
use pxml::prelude::*;
use pxml::warehouse::{run_modules, DataCleaningModule, ExtractionModule, SourceModule};

static COUNTER: AtomicU64 = AtomicU64::new(0);

fn scratch(label: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "pxml-e2e-{}-{}-{}",
        std::process::id(),
        label,
        COUNTER.fetch_add(1, Ordering::SeqCst)
    ))
}

fn scenario_config(people: usize) -> PeopleScenarioConfig {
    PeopleScenarioConfig {
        people,
        ..PeopleScenarioConfig::default()
    }
}

#[test]
fn warehouse_pipeline_queries_reflect_module_confidences() {
    let dir = scratch("pipeline");
    let warehouse = Warehouse::open(&dir, WarehouseConfig::default()).unwrap();
    let people = 10;
    warehouse
        .create_document("people", people_directory(&scenario_config(people)))
        .unwrap();

    // Three modules of different quality feed the warehouse.
    let mut modules: Vec<Box<dyn SourceModule>> = vec![
        Box::new(ExtractionModule::new("ie-web", 101, people, 25, 0.95)),
        Box::new(ExtractionModule::new("nlp-mail", 102, people, 25, 0.6)),
        Box::new(DataCleaningModule::new("cleaning", 103, people, 15)),
    ];
    let pushed = run_modules(&warehouse, "people", &mut modules).unwrap();
    let total_updates: usize = pushed.iter().map(|(_, count)| count).sum();
    assert!(total_updates > 20, "modules must actually push updates");
    assert_eq!(warehouse.stats().updates_applied, total_updates);

    // Every extracted fact is uncertain: probabilities are in (0, 1].
    let snapshot = warehouse.document("people").unwrap();
    assert!(snapshot.validate().is_ok());
    for query_text in ["person { phone }", "person { email }", "person { city }"] {
        let query = Pattern::parse(query_text).unwrap();
        let result = warehouse.query("people", &query).unwrap();
        for m in &result.matches {
            assert!(m.probability > 0.0 && m.probability <= 1.0, "{query_text}");
        }
    }

    // Certain data (the names loaded at creation time) stays certain.
    let names = warehouse
        .query("people", &Pattern::parse("person { name }").unwrap())
        .unwrap();
    assert_eq!(names.len(), people);
    for m in &names.matches {
        assert!((m.probability - 1.0).abs() < 1e-12);
    }
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn warehouse_state_survives_crash_and_restart() {
    let dir = scratch("crash");
    let people = 6;
    let expected_phone_probability;
    {
        // No checkpointing: everything after creation lives in the journal.
        let warehouse = Warehouse::open(
            &dir,
            WarehouseConfig {
                checkpoint_every: None,
                auto_simplify_above_literals: None,
            },
        )
        .unwrap();
        warehouse
            .create_document("people", people_directory(&scenario_config(people)))
            .unwrap();
        let pattern = Pattern::parse("person { name[=\"alice-0\"] }").unwrap();
        let target = pattern.root();
        let update = UpdateTransaction::new(pattern, 0.8).unwrap().with_insert(
            target,
            parse_data_tree("<phone>+33-1-1111-2222</phone>").unwrap(),
        );
        warehouse.update("people", &update).unwrap();
        let query = Pattern::parse("person { phone }").unwrap();
        let result = warehouse.query("people", &query).unwrap();
        assert_eq!(result.len(), 1);
        expected_phone_probability = result.matches[0].probability;
        // The warehouse is dropped here without any checkpoint: the on-disk
        // state is the initial document plus the journal.
    }

    let recovered = Warehouse::open(&dir, WarehouseConfig::default()).unwrap();
    let query = Pattern::parse("person { phone }").unwrap();
    let result = recovered.query("people", &query).unwrap();
    assert_eq!(result.len(), 1);
    assert!((result.matches[0].probability - expected_phone_probability).abs() < 1e-12);
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn recovered_state_is_semantically_identical_to_the_in_memory_one() {
    let dir = scratch("equivalence");
    let people = 5;
    let config = scenario_config(people);
    let warehouse = Warehouse::open(
        &dir,
        WarehouseConfig {
            checkpoint_every: None,
            auto_simplify_above_literals: None,
        },
    )
    .unwrap();
    warehouse
        .create_document("people", people_directory(&config))
        .unwrap();
    let mut modules: Vec<Box<dyn SourceModule>> = vec![
        Box::new(ExtractionModule::new("ie", 7, people, 10, 0.8)),
        Box::new(DataCleaningModule::new("clean", 8, people, 6)),
    ];
    run_modules(&warehouse, "people", &mut modules).unwrap();
    let live = warehouse.document("people").unwrap();

    // Re-open from disk (checkpoint + journal replay) and compare.
    let reopened = Warehouse::open(&dir, WarehouseConfig::default()).unwrap();
    let recovered = reopened.document("people").unwrap();
    assert_eq!(live.node_count(), recovered.node_count());
    assert_eq!(live.event_count(), recovered.event_count());
    assert_eq!(
        live.condition_literal_count(),
        recovered.condition_literal_count()
    );
    // Spot-check a query rather than full expansion (the document can carry
    // dozens of events after a module run).
    for text in ["person { phone }", "person { email }", "person { city }"] {
        let query = Pattern::parse(text).unwrap();
        let a = warehouse.query("people", &query).unwrap();
        let b = reopened.query("people", &query).unwrap();
        assert_eq!(a.len(), b.len(), "{text}");
        let mut pa: Vec<f64> = a.matches.iter().map(|m| m.probability).collect();
        let mut pb: Vec<f64> = b.matches.iter().map(|m| m.probability).collect();
        pa.sort_by(f64::total_cmp);
        pb.sort_by(f64::total_cmp);
        for (x, y) in pa.iter().zip(pb.iter()) {
            assert!((x - y).abs() < 1e-9, "{text}");
        }
    }
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn simplification_keeps_warehouse_queries_stable() {
    let dir = scratch("simplify-stable");
    let people = 5;
    let warehouse = Warehouse::open(
        &dir,
        WarehouseConfig {
            auto_simplify_above_literals: None,
            checkpoint_every: None,
        },
    )
    .unwrap();
    warehouse
        .create_document("people", people_directory(&scenario_config(people)))
        .unwrap();
    let mut modules: Vec<Box<dyn SourceModule>> = vec![
        Box::new(ExtractionModule::new("ie", 31, people, 12, 0.7)),
        Box::new(DataCleaningModule::new("clean", 32, people, 8)),
    ];
    run_modules(&warehouse, "people", &mut modules).unwrap();

    // Simplification may merge duplicated phone copies (so the raw number of
    // matches can drop), but the probability that the document contains a
    // phone at all must be unchanged.
    let query = Pattern::parse("person { phone }").unwrap();
    let before_doc = warehouse.document("people").unwrap();
    let selection_before = before_doc.selection_probability(&query);

    warehouse.simplify("people").unwrap();

    let after_doc = warehouse.document("people").unwrap();
    let selection_after = after_doc.selection_probability(&query);
    assert!((selection_before - selection_after).abs() < 1e-9);
    assert!(after_doc.condition_literal_count() <= before_doc.condition_literal_count());
    assert!(after_doc.event_count() <= before_doc.event_count());
    std::fs::remove_dir_all(dir).unwrap();
}
