//! Cross-cutting integration tests exercised through the `pxml` facade:
//! query-syntax round trips, PrXML persistence through the document store,
//! and end-to-end flows that touch several crates at once.

use pxml::prelude::*;
use pxml::store::{parse_update, serialize_update};

#[test]
fn query_syntax_round_trips_for_representative_patterns() {
    let cases = [
        "A",
        "*",
        "/A { B, C }",
        "book { author, title }",
        "person { name[=\"alice\"], //phone }",
        "A { B[$x], C { D[$x] } }",
        "* { //leaf[=\"v\"], other }",
    ];
    for text in cases {
        let parsed = Pattern::parse(text).unwrap();
        let rendered = parsed.to_string();
        let reparsed = Pattern::parse(&rendered).unwrap();
        assert_eq!(
            rendered,
            reparsed.to_string(),
            "rendering of {text} must be a fixpoint"
        );
        assert_eq!(parsed.len(), reparsed.len());
        assert_eq!(parsed.is_anchored(), reparsed.is_anchored());
        assert_eq!(parsed.join_count(), reparsed.join_count());
    }
}

#[test]
fn update_transactions_round_trip_through_their_textual_form() {
    let pattern = Pattern::parse("person { name[=\"bob\"] }").unwrap();
    let target = pattern.root();
    let original = UpdateTransaction::new(pattern, 0.65)
        .unwrap()
        .with_insert(target, parse_data_tree("<city>paris</city>").unwrap())
        .with_delete(target);
    let text = serialize_update(&original, true);
    let reparsed = parse_update(&text).unwrap();

    // Same observable behaviour on a document.
    let document =
        parse_data_tree("<directory><person><name>bob</name><old/></person></directory>").unwrap();
    let mut a = FuzzyTree::from_tree(document.clone());
    let mut b = FuzzyTree::from_tree(document);
    original.apply_to_fuzzy(&mut a).unwrap();
    reparsed.apply_to_fuzzy(&mut b).unwrap();
    assert!(a.semantically_equivalent(&b, 1e-9).unwrap());
}

#[test]
fn store_persists_query_results_across_process_boundaries() {
    let dir = std::env::temp_dir().join(format!("pxml-facade-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = DocumentStore::open(&dir).unwrap();

    // Build an uncertain document, save it, reload it, and check that a
    // query sees the same probabilities.
    let mut doc = FuzzyTree::new("library");
    let scanned = doc.add_event("scan-ok", 0.85).unwrap();
    let book = doc.add_element(doc.root(), "book");
    let title = doc.add_element(book, "title");
    doc.add_text(title, "On Computable Numbers");
    let year = doc.add_element(book, "year");
    let year_text = doc.add_text(year, "1936");
    doc.set_condition(year, Condition::from_literal(Literal::pos(scanned)))
        .unwrap();
    doc.set_condition(year_text, Condition::always()).unwrap();

    store.save_document("library", &doc).unwrap();
    let reloaded = store.load_document("library").unwrap();
    let query = Pattern::parse("book { title, year }").unwrap();
    let before = doc.query(&query);
    let after = reloaded.query(&query);
    assert_eq!(before.len(), after.len());
    assert!((before.matches[0].probability - 0.85).abs() < 1e-12);
    assert!((after.matches[0].probability - 0.85).abs() < 1e-12);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn selection_probability_is_monotone_under_evidence() {
    // Adding an independent second uncertain copy of a fact can only increase
    // the probability that the fact is present.
    let mut doc = FuzzyTree::new("person");
    let first = doc.add_event("first-source", 0.5).unwrap();
    let phone_a = doc.add_element(doc.root(), "phone");
    doc.set_condition(phone_a, Condition::from_literal(Literal::pos(first)))
        .unwrap();
    let query = Pattern::parse("person { phone }").unwrap();
    let single = doc.selection_probability(&query);

    let second = doc.add_event("second-source", 0.5).unwrap();
    let phone_b = doc.add_element(doc.root(), "phone");
    doc.set_condition(phone_b, Condition::from_literal(Literal::pos(second)))
        .unwrap();
    let both = doc.selection_probability(&query);
    assert!(both > single);
    assert!((both - 0.75).abs() < 1e-12);
}

#[test]
fn updates_compose_with_queries_through_the_facade() {
    // Ingest → update → query → expand: every layer of the stack in one flow.
    let mut doc = FuzzyTree::from_tree(
        parse_data_tree("<catalog><item><sku>x-1</sku></item></catalog>").unwrap(),
    );
    let pattern = Pattern::parse("item { sku[=\"x-1\"] }").unwrap();
    let target = pattern.root();
    let update = UpdateTransaction::new(pattern, 0.75)
        .unwrap()
        .with_insert(target, parse_data_tree("<price>42</price>").unwrap());
    update.apply_to_fuzzy(&mut doc).unwrap();

    let query = Pattern::parse("item { price }").unwrap();
    assert!((doc.selection_probability(&query) - 0.75).abs() < 1e-12);

    let worlds = doc.to_possible_worlds().unwrap();
    assert_eq!(worlds.len(), 2);
    let priced = worlds.probability_that(|t| !t.find_elements("price").is_empty());
    assert!((priced - 0.75).abs() < 1e-12);
}
