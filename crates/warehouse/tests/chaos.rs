//! The chaos battery: random fault plans (scheduled and rate-based fsync
//! failures, append failures, torn writes) against a live warehouse under a
//! mixed query/commit load, with a writer that heals quarantine through
//! `reopen_document` and retries. The property is the repo's durability
//! contract (README "Failure model & recovery"): a cold, fault-free restart
//! replays **exactly** the acknowledged commits — every acked commit
//! survives, no failed commit leaks — and the store stays writable.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use proptest::prelude::*;
use pxml_core::UpdateTransaction;
use pxml_query::Pattern;
use pxml_store::{
    FaultBackend, FaultKind, FaultOp, FaultPlan, FsBackend, FsOptions, StorageBackend,
};
use pxml_tree::parse_data_tree;
use pxml_warehouse::{CompactionPolicy, SessionConfig, Warehouse};

static COUNTER: AtomicU64 = AtomicU64::new(0);

fn scratch() -> PathBuf {
    std::env::temp_dir().join(format!(
        "pxml-warehouse-chaos-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::SeqCst)
    ))
}

const DIRECTORY_XML: &str = "<directory><person><name>alice</name></person></directory>";

/// One tagged insertion; the tag round-trips through the journal so replay
/// can be compared element-by-element against the acked list.
fn tagged_batch(tag: u64) -> Vec<UpdateTransaction> {
    let pattern = Pattern::parse("person { name[=\"alice\"] }").unwrap();
    let root = pattern.root();
    vec![UpdateTransaction::new(pattern, 0.8).unwrap().with_insert(
        root,
        parse_data_tree(&format!("<email>c{tag}@chaos</email>")).unwrap(),
    )]
}

/// The tags a cold, fault-free reopen of the store replays, in order.
fn journal_tags(backend: &dyn StorageBackend, doc: &str) -> Vec<u64> {
    backend
        .read_journal(doc)
        .unwrap()
        .iter()
        .map(|update| match &update.operations()[0] {
            pxml_core::UpdateOperation::Insert { subtree, .. } => subtree
                .node_value(subtree.root())
                .unwrap_or_default()
                .strip_prefix('c')
                .and_then(|rest| rest.split('@').next())
                .and_then(|tag| tag.parse().ok())
                .expect("chaos journal records carry c<tag>@chaos emails"),
            _ => unreachable!("chaos updates are inserts"),
        })
        .collect()
}

/// Blueprint of a random fault plan: a seeded rate for fsync and append
/// failures plus up to four scheduled faults (fsync error, append error,
/// or torn write) at small 1-based indices, so most runs hit at least one.
fn plan_strategy() -> impl Strategy<Value = FaultPlan> {
    (
        any::<u64>(),
        0u32..25,
        0u32..15,
        proptest::collection::vec((0u8..3, 1usize..12), 0..4),
    )
        .prop_map(|(seed, fsync_pct, append_pct, scheduled)| {
            let mut plan = FaultPlan::seeded(seed)
                .fail_rate(FaultOp::Fsync, fsync_pct as f64 / 100.0)
                .fail_rate(FaultOp::Append, append_pct as f64 / 100.0);
            for (kind, nth) in scheduled {
                plan = match kind {
                    0 => plan.fail_nth(FaultOp::Fsync, nth),
                    1 => plan.fail_nth(FaultOp::Append, nth),
                    _ => plan.fail_nth_with(FaultOp::Append, nth, FaultKind::TornWrite),
                };
            }
            plan
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever the fault plan does — rolled-back sync appends, torn tails,
    /// commits that exhaust their retries and stay unacked — the cold
    /// restart replays exactly the acked sequence, and one more commit on
    /// the healed store lands cleanly after it.
    #[test]
    fn cold_restart_replays_exactly_the_acked_commits(plan in plan_strategy()) {
        let dir = scratch();
        let plan = Arc::new(plan);
        let inner = FsBackend::with_options(
            &dir,
            FsOptions {
                fault: Some(plan.clone()),
                ..FsOptions::default()
            },
        )
        .unwrap();
        let store: Arc<dyn StorageBackend> =
            Arc::new(FaultBackend::new(Arc::new(inner), plan.clone()));
        let warehouse = Warehouse::with_backend(
            store,
            SessionConfig {
                compaction: CompactionPolicy::Never,
                ..SessionConfig::default()
            },
        )
        .unwrap();
        warehouse
            .create_document("doc", parse_data_tree(DIRECTORY_XML).unwrap())
            .unwrap();

        let pattern = Pattern::parse("person { email }").unwrap();
        let mut acked: Vec<u64> = Vec::new();
        for op in 0..30u64 {
            if op % 3 == 2 {
                let batch = tagged_batch(op);
                // Bounded heal-and-retry: a commit that keeps failing is
                // simply never acked — the property does not require
                // progress, only that the ledger matches the acks.
                for _ in 0..6 {
                    match warehouse.commit_batch("doc", &batch, None) {
                        Ok(_) => {
                            acked.push(op);
                            break;
                        }
                        Err(_) => {
                            if warehouse.is_quarantined("doc") {
                                let _ = warehouse.reopen_document("doc");
                            }
                        }
                    }
                }
            } else {
                // Reads serve the last published snapshot unconditionally,
                // quarantined or not.
                prop_assert!(warehouse.query("doc", &pattern).is_ok());
            }
        }
        drop(warehouse);

        // Cold restart, no faults: the scan truncates any torn tail and the
        // replay is exactly the acked prefix.
        let reopened = FsBackend::open(&dir).unwrap();
        prop_assert_eq!(journal_tags(&reopened, "doc"), acked.clone());
        let recovered = reopened.recover_document("doc").unwrap();
        prop_assert_eq!(
            recovered.tree().find_elements("email").len(),
            acked.len()
        );

        // The store the chaos left behind is still a working store.
        reopened.append_batch("doc", &tagged_batch(1_000)).unwrap();
        acked.push(1_000);
        prop_assert_eq!(journal_tags(&reopened, "doc"), acked);

        drop(reopened);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
