//! # pxml-warehouse
//!
//! The probabilistic XML warehouse of the paper's architecture (slide 3):
//! imprecise modules push **update transactions with confidences** into a
//! shared store of probabilistic XML documents; users run **tree-pattern
//! queries** against it and get answers with probabilities.
//!
//! * [`session`] — the transactional document-session API and the documented
//!   default path: [`Session`] opens the storage-backed engine, [`Document`]
//!   handles name its documents, and [`Document::begin`] stages fluent
//!   probabilistic updates into a [`Txn`] committed atomically (apply →
//!   journal → swap, rollback on error, crash recovery by replay);
//! * [`warehouse`] — the sharded, per-document-locked engine behind the
//!   sessions: commits to distinct documents run in parallel, queries take
//!   only their own document's read lock (see the module docs for the full
//!   concurrency model);
//! * [`modules`] — simulated imprecise source modules (information
//!   extraction, NLP, data cleaning) standing in for the pipelines the paper
//!   plugs into the warehouse.
//!
//! To run the warehouse as a long-lived multi-tenant *service* instead of
//! embedding it, see the `pxml-server` crate and the README's "Serving"
//! section (wire format, tenant model, admission control, runbook): it
//! fronts one [`Warehouse`] per tenant over a length-prefixed TCP
//! protocol, and [`Warehouse::group_barrier`] is the drain hook its
//! eviction and graceful shutdown paths use.
//!
//! ```no_run
//! use pxml_query::Pattern;
//! use pxml_tree::parse_data_tree;
//! use pxml_warehouse::{Session, SessionConfig};
//!
//! let session = Session::open("/tmp/pxml-wh", SessionConfig::default()).unwrap();
//! let people = session
//!     .create("people", parse_data_tree("<directory/>").unwrap())
//!     .unwrap();
//! let answers = people
//!     .query(&Pattern::parse("person { name }").unwrap())
//!     .unwrap();
//! assert!(answers.is_empty());
//! ```

pub mod modules;
pub mod session;
pub mod warehouse;

pub use modules::{
    run_modules, run_modules_parallel, DataCleaningModule, ExtractionModule, SourceModule,
};
pub use pxml_store::CommitPolicy;
pub use session::{CompactionPolicy, Document, Session, SessionConfig, Txn};
pub use warehouse::{
    AsyncCommit, DocSnapshot, MergedQuery, Warehouse, WarehouseError, WarehouseStats,
};
