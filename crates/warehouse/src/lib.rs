//! # pxml-warehouse
//!
//! The probabilistic XML warehouse of the paper's architecture (slide 3):
//! imprecise modules push **update transactions with confidences** into a
//! shared store of probabilistic XML documents; users run **tree-pattern
//! queries** against it and get answers with probabilities.
//!
//! * [`warehouse::Warehouse`] — the warehouse itself: named documents kept as
//!   fuzzy trees, a query interface, an update interface, a configurable
//!   auto-simplification/checkpoint policy, durable storage and crash
//!   recovery through [`pxml_store::DocumentStore`];
//! * [`modules`] — simulated imprecise source modules (information
//!   extraction, NLP, data cleaning) standing in for the pipelines the paper
//!   plugs into the warehouse.
//!
//! ```no_run
//! use pxml_query::Pattern;
//! use pxml_tree::parse_data_tree;
//! use pxml_warehouse::{Warehouse, WarehouseConfig};
//!
//! let warehouse = Warehouse::open("/tmp/pxml-wh", WarehouseConfig::default()).unwrap();
//! warehouse
//!     .create_document("people", parse_data_tree("<directory/>").unwrap())
//!     .unwrap();
//! let answers = warehouse
//!     .query("people", &Pattern::parse("person { name }").unwrap())
//!     .unwrap();
//! assert!(answers.is_empty());
//! ```

pub mod modules;
pub mod warehouse;

pub use modules::{run_modules, DataCleaningModule, ExtractionModule, SourceModule};
pub use warehouse::{Warehouse, WarehouseConfig, WarehouseError, WarehouseStats};
