//! The transactional document-session API: [`Session`], [`Document`] handles
//! and staged-update [`Txn`]s.
//!
//! The paper's architecture (slide 3) is an *engine*: imprecise modules open
//! the warehouse, stage probabilistic updates, and commit; users query. This
//! module is that shape. A [`Session`] owns the storage-backed engine;
//! [`Document`] is a cheap, cloneable handle to one named document;
//! [`Document::begin`] opens a [`Txn`] that accepts any number of fluently
//! built updates and commits them atomically — applied through the
//! policy-aware pipeline (inline simplification by default), journaled as one
//! durable batch, rolled back together on error, and replayed by crash
//! recovery on reopen.
//!
//! ```no_run
//! use pxml_core::Update;
//! use pxml_query::Pattern;
//! use pxml_tree::parse_data_tree;
//! use pxml_warehouse::{Session, SessionConfig};
//!
//! let session = Session::open("/tmp/pxml-wh", SessionConfig::default()).unwrap();
//! let people = session
//!     .create("people", parse_data_tree("<directory><person><name>alice</name></person></directory>").unwrap())
//!     .unwrap();
//!
//! // Stage two probabilistic updates and commit them as one transaction.
//! let pattern = Pattern::parse("person { name[=\"alice\"] }").unwrap();
//! let person = pattern.root();
//! let receipt = people
//!     .begin()
//!     .stage(
//!         Update::matching(pattern.clone())
//!             .insert_at(person, parse_data_tree("<phone>+33-1</phone>").unwrap())
//!             .with_confidence(0.8),
//!     )
//!     .stage(
//!         Update::matching(pattern)
//!             .insert_at(person, parse_data_tree("<email>a@example.org</email>").unwrap())
//!             .with_confidence(0.6),
//!     )
//!     .commit()
//!     .unwrap();
//! assert_eq!(receipt.len(), 2);
//!
//! let answers = people
//!     .query(&Pattern::parse("person { phone }").unwrap())
//!     .unwrap();
//! assert_eq!(answers.len(), 1);
//! ```

use std::path::Path;
use std::sync::Arc;

use pxml_core::{
    BatchStats, FuzzyQueryResult, FuzzyTree, SimplifyPolicy, SimplifyReport, Update,
    UpdateTransaction,
};
use pxml_query::Pattern;
use pxml_store::{CommitPolicy, StorageBackend};
use pxml_tree::Tree;

use crate::warehouse::{AsyncCommit, DocSnapshot, Warehouse, WarehouseError, WarehouseStats};

/// When the commit pipeline folds a document's journal into a fresh
/// checkpoint (a **compaction**: the checkpoint write and the journal
/// truncation are one crash-safe step of the storage backend).
///
/// Compaction trades a periodic O(document) checkpoint write for bounded
/// journal replay at recovery; between compactions every commit stays
/// O(batch) in the segment journal. The policy is evaluated *after* the
/// batch is durable, so a compaction failure never loses the commit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompactionPolicy {
    /// Never compact; the journal grows until an explicit
    /// [`Document::checkpoint`].
    Never,
    /// Compact once the journal holds this many committed batches.
    EveryNBatches(usize),
    /// Compact once the journal's serialized size reaches this many bytes.
    SizeThreshold(u64),
}

impl CompactionPolicy {
    /// Whether a journal with these meters is due for compaction.
    pub fn is_due(&self, batches: usize, bytes: u64) -> bool {
        match self {
            CompactionPolicy::Never => false,
            CompactionPolicy::EveryNBatches(n) => *n > 0 && batches >= *n,
            CompactionPolicy::SizeThreshold(limit) => bytes >= *limit,
        }
    }
}

/// Maintenance policy of a [`Session`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionConfig {
    /// When the apply pipeline simplifies committed documents; defaults to
    /// [`SimplifyPolicy::Inline`] so deletion-induced duplication is won back
    /// where it is created.
    pub simplify: SimplifyPolicy,
    /// When the commit pipeline folds the journal into a fresh checkpoint;
    /// defaults to [`CompactionPolicy::EveryNBatches`]`(64)`.
    pub compaction: CompactionPolicy,
    /// How the storage backend turns acknowledged commits into durable
    /// ones: per-commit fsyncs ([`CommitPolicy::Sync`], the default) or
    /// cross-document group commit ([`CommitPolicy::Grouped`]). Honoured by
    /// [`Session::open`]'s file-system backend; sessions opened over an
    /// explicit backend keep that backend's own configuration.
    pub commit: CommitPolicy,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            simplify: SimplifyPolicy::Inline,
            compaction: CompactionPolicy::EveryNBatches(64),
            commit: CommitPolicy::Sync,
        }
    }
}

/// A handle to an open, storage-backed probabilistic XML warehouse.
///
/// Cloning is cheap (the engine is shared); a session and all its
/// [`Document`] handles can be used from several threads at once.
#[derive(Clone)]
pub struct Session {
    engine: Arc<Warehouse>,
}

impl Session {
    /// Opens (creating it if needed) a session backed by the given directory
    /// through the default [`pxml_store::FsBackend`], recovering every stored
    /// document (checkpoint + journal replay).
    pub fn open(path: impl AsRef<Path>, config: SessionConfig) -> Result<Self, WarehouseError> {
        Ok(Session {
            engine: Arc::new(Warehouse::with_config(path, config)?),
        })
    }

    /// Opens a session over an explicit storage backend — e.g. a
    /// [`pxml_store::MemBackend`] for tests, or a custom implementation of
    /// [`StorageBackend`].
    pub fn open_with_backend(
        backend: Arc<dyn StorageBackend>,
        config: SessionConfig,
    ) -> Result<Self, WarehouseError> {
        Ok(Session {
            engine: Arc::new(Warehouse::with_backend(backend, config)?),
        })
    }

    /// The directory backing the session, when its storage backend has one
    /// (`None` for in-memory backends).
    pub fn storage_root(&self) -> Option<&Path> {
        self.engine.storage_root()
    }

    /// The names of the loaded documents (sorted).
    pub fn document_names(&self) -> Vec<String> {
        self.engine.document_names()
    }

    /// Creates a new document from a certain data tree and returns its
    /// handle.
    pub fn create(&self, name: &str, tree: Tree) -> Result<Document, WarehouseError> {
        self.engine.create_document(name, tree)?;
        self.document(name)
    }

    /// Creates a new document from an existing fuzzy tree and returns its
    /// handle.
    pub fn create_fuzzy(&self, name: &str, fuzzy: FuzzyTree) -> Result<Document, WarehouseError> {
        self.engine.create_fuzzy_document(name, fuzzy)?;
        self.document(name)
    }

    /// A handle to an existing document.
    pub fn document(&self, name: &str) -> Result<Document, WarehouseError> {
        if !self.engine.contains(name) {
            return Err(WarehouseError::UnknownDocument(name.to_string()));
        }
        Ok(Document {
            engine: self.engine.clone(),
            name: name.to_string(),
        })
    }

    /// Removes a document from the session and from storage. Outstanding
    /// handles to it start reporting `UnknownDocument`.
    pub fn drop_document(&self, name: &str) -> Result<(), WarehouseError> {
        self.engine.drop_document(name)
    }

    /// Running counters since the session was opened.
    pub fn stats(&self) -> WarehouseStats {
        self.engine.stats()
    }

    /// Drains the storage backend's group-commit pipeline: every
    /// [`Txn::commit_async`] whose handle was issued before this call is
    /// durable when it returns (see
    /// [`Warehouse::group_barrier`]). Call before dropping a long-lived
    /// session whose commits may still sit in an open fsync window.
    pub fn group_barrier(&self) {
        self.engine.group_barrier();
    }

    /// The shared engine behind the session (escape hatch for tooling that
    /// needs engine-level access, e.g. committing a prebuilt batch directly).
    pub fn engine(&self) -> &Warehouse {
        &self.engine
    }
}

/// A cheap, cloneable handle to one named document of a [`Session`].
#[derive(Clone)]
pub struct Document {
    engine: Arc<Warehouse>,
    name: String,
}

impl Document {
    /// The document's name in the session.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Begins a staged transaction against this document. Nothing happens
    /// until [`Txn::commit`].
    pub fn begin(&self) -> Txn<'_> {
        Txn {
            document: self,
            staged: Vec::new(),
            policy: None,
            error: None,
        }
    }

    /// Evaluates a TPWJ query against the document (slide 3's query
    /// interface: "query → results + confidence").
    pub fn query(&self, pattern: &Pattern) -> Result<FuzzyQueryResult, WarehouseError> {
        self.engine.query(&self.name, pattern)
    }

    /// A snapshot of the document's current fuzzy tree.
    ///
    /// This clones the tree out of the published snapshot; prefer
    /// [`Document::pin`] when a shared, immutable view is enough.
    pub fn snapshot(&self) -> Result<FuzzyTree, WarehouseError> {
        self.engine.document(&self.name)
    }

    /// Pins the document's current published snapshot in O(1).
    ///
    /// The returned [`DocSnapshot`] is an `Arc` over immutable state: it
    /// never blocks writers, never changes under the caller, and stays
    /// readable even after the document is dropped from the warehouse.
    pub fn pin(&self) -> Result<DocSnapshot, WarehouseError> {
        self.engine.snapshot(&self.name)
    }

    /// Runs the simplifier on the document and persists the result as a
    /// fresh checkpoint.
    pub fn simplify(&self) -> Result<SimplifyReport, WarehouseError> {
        self.engine.simplify(&self.name)
    }

    /// Writes the document's current in-memory state as a checkpoint and
    /// truncates its journal.
    pub fn checkpoint(&self) -> Result<(), WarehouseError> {
        self.engine.checkpoint(&self.name)
    }

    /// Number of journaled updates awaiting a compaction — an observability
    /// hook for monitoring journal growth against the session's
    /// [`CompactionPolicy`]. O(1) from the backend's journal meters.
    pub fn journal_length(&self) -> Result<usize, WarehouseError> {
        self.engine.journal_length(&self.name)
    }

    /// Serialized size of the journal in bytes, the
    /// [`CompactionPolicy::SizeThreshold`] meter — O(1) from the backend's
    /// journal meters, like [`Document::journal_length`].
    pub fn journal_size_bytes(&self) -> Result<u64, WarehouseError> {
        self.engine.journal_size_bytes(&self.name)
    }
}

/// A staged update batch against one [`Document`].
///
/// Updates are staged fluently ([`Txn::stage`] accepts both the
/// [`Update`] builder and prebuilt [`UpdateTransaction`]s) and applied only
/// at [`Txn::commit`], atomically: the whole batch is applied through the
/// policy-aware pipeline to a working copy, journaled as one durable entry
/// (the backend's durable journal append is the commit point), and swapped
/// in. An error before
/// the commit point — including a staging error — changes nothing at all;
/// see [`Warehouse::commit_batch`](crate::Warehouse::commit_batch) for the
/// post-commit maintenance caveat.
#[must_use = "a Txn does nothing until commit() is called"]
pub struct Txn<'a> {
    document: &'a Document,
    staged: Vec<UpdateTransaction>,
    policy: Option<SimplifyPolicy>,
    error: Option<WarehouseError>,
}

impl Txn<'_> {
    /// Stages one probabilistic update. Build errors (e.g. an out-of-range
    /// confidence) are remembered and reported by [`Txn::commit`], keeping
    /// the chain fluent.
    pub fn stage(mut self, update: impl Into<Update>) -> Self {
        match update.into().build() {
            Ok(transaction) => self.staged.push(transaction),
            Err(err) => {
                self.error.get_or_insert(WarehouseError::Core(err));
            }
        }
        self
    }

    /// Overrides the session's [`SimplifyPolicy`] for this transaction only.
    pub fn with_policy(mut self, policy: SimplifyPolicy) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Number of updates staged so far.
    pub fn staged_len(&self) -> usize {
        self.staged.len()
    }

    /// `true` when nothing has been staged.
    pub fn is_empty(&self) -> bool {
        self.staged.is_empty()
    }

    /// Commits the staged batch atomically; returns the per-update
    /// statistics. A transaction with a staging error commits nothing and
    /// returns that error.
    pub fn commit(self) -> Result<BatchStats, WarehouseError> {
        if let Some(err) = self.error {
            return Err(err);
        }
        self.document
            .engine
            .commit_batch(&self.document.name, &self.staged, self.policy)
    }

    /// Commits the staged batch through the asynchronous write pipeline:
    /// the call returns an [`AsyncCommit`] as soon as the batch is applied
    /// and enqueued into the backend's commit window, and the handle
    /// resolves ([`AsyncCommit::wait`], or polled via
    /// [`AsyncCommit::is_durable`]) at the window's fsync. Under a
    /// [`CommitPolicy::Sync`] backend the handle comes back already
    /// resolved. See
    /// [`Warehouse::commit_batch_async`](crate::Warehouse::commit_batch_async)
    /// for the durability contract.
    pub fn commit_async(self) -> Result<AsyncCommit, WarehouseError> {
        if let Some(err) = self.error {
            return Err(err);
        }
        self.document
            .engine
            .commit_batch_async(&self.document.name, &self.staged, self.policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pxml_tree::parse_data_tree;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    static COUNTER: AtomicU64 = AtomicU64::new(0);

    fn scratch(label: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "pxml-session-test-{}-{}-{}",
            std::process::id(),
            label,
            COUNTER.fetch_add(1, Ordering::SeqCst)
        ))
    }

    fn directory() -> Tree {
        parse_data_tree(
            "<directory>\
               <person><name>alice</name></person>\
               <person><name>bob</name></person>\
             </directory>",
        )
        .unwrap()
    }

    fn add_fact(name: &str, field: &str, value: &str, confidence: f64) -> Update {
        let pattern = Pattern::parse(&format!("person {{ name[=\"{name}\"] }}")).unwrap();
        let person = pattern.root();
        let mut subtree = Tree::new(field);
        subtree.add_text(subtree.root(), value);
        Update::matching(pattern)
            .insert_at(person, subtree)
            .with_confidence(confidence)
    }

    #[test]
    fn session_create_stage_commit_query() {
        let dir = scratch("cycle");
        let session = Session::open(&dir, SessionConfig::default()).unwrap();
        let people = session.create("people", directory()).unwrap();
        assert_eq!(session.document_names(), vec!["people"]);

        let receipt = people
            .begin()
            .stage(add_fact("alice", "phone", "+33-1", 0.8))
            .stage(add_fact("bob", "phone", "+33-2", 0.6))
            .commit()
            .unwrap();
        assert_eq!(receipt.len(), 2);
        assert_eq!(receipt.applied_matches(), 2);

        let phones = Pattern::parse("person { phone }").unwrap();
        let result = people.query(&phones).unwrap();
        assert_eq!(result.len(), 2);
        assert_eq!(session.stats().updates_applied, 2);
        std::fs::remove_dir_all(dir).unwrap();
    }

    /// `Document::pin` hands out the published snapshot without copying it,
    /// and the pin stays frozen while later commits publish successors.
    #[test]
    fn pinned_snapshot_survives_later_commits() {
        let dir = scratch("pin");
        let session = Session::open(&dir, SessionConfig::default()).unwrap();
        let people = session.create("people", directory()).unwrap();
        let pinned = people.pin().unwrap();

        people
            .begin()
            .stage(add_fact("alice", "phone", "+33-1", 0.8))
            .commit()
            .unwrap();

        assert!(pinned.fuzzy().tree().find_elements("phone").is_empty());
        let current = people.pin().unwrap();
        assert!(current.seq() > pinned.seq());
        assert_eq!(current.fuzzy().tree().find_elements("phone").len(), 1);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn batch_commit_is_one_journal_entry_and_recovers() {
        let dir = scratch("durability");
        {
            let session = Session::open(
                &dir,
                SessionConfig {
                    compaction: CompactionPolicy::Never,
                    ..SessionConfig::default()
                },
            )
            .unwrap();
            let people = session.create("people", directory()).unwrap();
            people
                .begin()
                .stage(add_fact("alice", "phone", "+33-1", 0.8))
                .stage(add_fact("alice", "email", "a@example.org", 0.7))
                .commit()
                .unwrap();
            // Dropped without a checkpoint: state only lives in the journal.
        }
        let reopened = Session::open(&dir, SessionConfig::default()).unwrap();
        let people = reopened.document("people").unwrap();
        assert_eq!(
            people
                .query(&Pattern::parse("person { phone }").unwrap())
                .unwrap()
                .len(),
            1
        );
        assert_eq!(
            people
                .query(&Pattern::parse("person { email }").unwrap())
                .unwrap()
                .len(),
            1
        );
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn staging_error_aborts_the_whole_txn() {
        let dir = scratch("staging-error");
        let session = Session::open(&dir, SessionConfig::default()).unwrap();
        let people = session.create("people", directory()).unwrap();
        let before = people.snapshot().unwrap();
        let err = people
            .begin()
            .stage(add_fact("alice", "phone", "+33-1", 0.8))
            .stage(add_fact("bob", "phone", "+33-2", 1.5)) // invalid confidence
            .commit()
            .unwrap_err();
        assert!(matches!(err, WarehouseError::Core(_)));
        // Nothing was applied or journaled.
        let after = people.snapshot().unwrap();
        assert!(before.semantically_equivalent(&after, 1e-9).unwrap());
        assert_eq!(session.stats().updates_applied, 0);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn journal_failure_rolls_back_the_in_memory_document() {
        let dir = scratch("journal-failure");
        let session = Session::open(&dir, SessionConfig::default()).unwrap();
        let people = session.create("people", directory()).unwrap();
        let before = people.snapshot().unwrap();
        // Sabotage durability: remove the storage directory so the journal
        // append cannot happen.
        std::fs::remove_dir_all(&dir).unwrap();
        let err = people
            .begin()
            .stage(add_fact("alice", "phone", "+33-1", 0.8))
            .commit()
            .unwrap_err();
        assert!(matches!(err, WarehouseError::Store(_)));
        // The in-memory document was rolled back.
        let after = people.snapshot().unwrap();
        assert!(after.semantically_equivalent(&before, 1e-9).unwrap());
        assert_eq!(session.stats().updates_applied, 0);
    }

    #[test]
    fn empty_txn_commits_nothing() {
        let dir = scratch("empty");
        let session = Session::open(&dir, SessionConfig::default()).unwrap();
        let people = session.create("people", directory()).unwrap();
        let txn = people.begin();
        assert!(txn.is_empty());
        let receipt = txn.commit().unwrap();
        assert!(receipt.is_empty());
        assert_eq!(session.stats().updates_applied, 0);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn inline_policy_simplifies_deletion_output_at_commit() {
        let dir = scratch("inline-simplify");
        let session = Session::open(&dir, SessionConfig::default()).unwrap();
        let people = session.create("people", directory()).unwrap();
        people
            .begin()
            .stage(add_fact("alice", "phone", "+33-1", 0.8))
            .commit()
            .unwrap();
        // Retract the phone: deletion duplicates, the inline policy cleans.
        let pattern = Pattern::parse("person { name[=\"alice\"], phone }").unwrap();
        let phone = pattern.node_ids().nth(2).unwrap();
        let receipt = people
            .begin()
            .stage(
                Update::matching(pattern)
                    .delete_at(phone)
                    .with_confidence(0.5),
            )
            .commit()
            .unwrap();
        assert_eq!(receipt.simplify_runs(), 1);
        assert!(people.snapshot().unwrap().validate().is_ok());
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn txn_policy_override_beats_the_session_policy() {
        let dir = scratch("policy-override");
        let session = Session::open(
            &dir,
            SessionConfig {
                simplify: SimplifyPolicy::Never,
                ..SessionConfig::default()
            },
        )
        .unwrap();
        let people = session.create("people", directory()).unwrap();
        let receipt = people
            .begin()
            .stage(add_fact("alice", "phone", "+33-1", 0.8))
            .with_policy(SimplifyPolicy::Inline)
            .commit()
            .unwrap();
        assert_eq!(receipt.simplify_runs(), 1);
        let receipt = people
            .begin()
            .stage(add_fact("bob", "phone", "+33-2", 0.8))
            .commit()
            .unwrap();
        assert_eq!(receipt.simplify_runs(), 0);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn document_handles_are_shareable_across_threads() {
        let dir = scratch("threads");
        let session = Session::open(&dir, SessionConfig::default()).unwrap();
        let people = session.create("people", directory()).unwrap();
        let mut handles = Vec::new();
        for i in 0..4 {
            let doc = people.clone();
            handles.push(std::thread::spawn(move || {
                let who = if i % 2 == 0 { "alice" } else { "bob" };
                doc.begin()
                    .stage(add_fact(who, "phone", "+33-9", 0.7))
                    .commit()
                    .unwrap();
                doc.query(&Pattern::parse("person { phone }").unwrap())
                    .unwrap()
                    .len()
            }));
        }
        for handle in handles {
            assert!(handle.join().unwrap() >= 1);
        }
        assert_eq!(session.stats().updates_applied, 4);
        std::fs::remove_dir_all(dir).unwrap();
    }

    /// A session over the in-memory backend runs the full pipeline — create,
    /// staged commit, query, journal meters — and a second session over the
    /// *same* backend recovers the documents from checkpoint + journal
    /// replay, exactly like a file-system reopen.
    #[test]
    fn mem_backend_session_round_trips_and_recovers() {
        let backend: Arc<dyn pxml_store::StorageBackend> = Arc::new(pxml_store::MemBackend::new());
        let config = SessionConfig {
            compaction: CompactionPolicy::Never,
            ..SessionConfig::default()
        };
        let session = Session::open_with_backend(backend.clone(), config).unwrap();
        assert!(session.storage_root().is_none());
        let people = session.create("people", directory()).unwrap();
        people
            .begin()
            .stage(add_fact("alice", "phone", "+33-1", 0.8))
            .commit()
            .unwrap();
        assert_eq!(people.journal_length().unwrap(), 1);

        let recovered = Session::open_with_backend(backend, config).unwrap();
        let phones = Pattern::parse("person { phone }").unwrap();
        assert_eq!(
            recovered
                .document("people")
                .unwrap()
                .query(&phones)
                .unwrap()
                .len(),
            1
        );
    }

    /// The size-threshold compaction policy folds the journal once its
    /// serialized size crosses the limit, on any backend.
    #[test]
    fn size_threshold_compaction_folds_the_journal() {
        let backend: Arc<dyn pxml_store::StorageBackend> = Arc::new(pxml_store::MemBackend::new());
        let session = Session::open_with_backend(
            backend,
            SessionConfig {
                simplify: SimplifyPolicy::Never,
                compaction: CompactionPolicy::SizeThreshold(1),
                ..SessionConfig::default()
            },
        )
        .unwrap();
        let people = session.create("people", directory()).unwrap();
        people
            .begin()
            .stage(add_fact("alice", "phone", "+33-1", 0.8))
            .commit()
            .unwrap();
        // Any non-empty journal crosses a 1-byte threshold: compacted.
        assert_eq!(people.journal_length().unwrap(), 0);
        assert_eq!(session.stats().checkpoints, 1);
        let phones = Pattern::parse("person { phone }").unwrap();
        assert_eq!(people.query(&phones).unwrap().len(), 1);
    }

    #[test]
    fn unknown_documents_are_rejected() {
        let dir = scratch("unknown");
        let session = Session::open(&dir, SessionConfig::default()).unwrap();
        assert!(matches!(
            session.document("ghost"),
            Err(WarehouseError::UnknownDocument(_))
        ));
        let people = session.create("people", directory()).unwrap();
        session.drop_document("people").unwrap();
        // The outstanding handle now reports the document as gone.
        assert!(matches!(
            people.query(&Pattern::parse("person").unwrap()),
            Err(WarehouseError::UnknownDocument(_))
        ));
        std::fs::remove_dir_all(dir).unwrap();
    }
}
