//! Simulated imprecise source modules.
//!
//! The paper's warehouse is fed by modules whose output is inherently
//! imprecise — information extraction, natural-language processing, data
//! cleaning, schema matching (slide 2). Those pipelines are not available, so
//! this module simulates them: each [`SourceModule`] produces a stream of
//! probabilistic update transactions with confidences drawn from its own
//! quality profile. The warehouse code path exercised is identical to the one
//! a real extractor would use: *update transaction + confidence in, fuzzy
//! tree mutation out*.

use pxml_core::UpdateTransaction;
use pxml_gen::scenarios::{extraction_update, ExtractionKind, PeopleScenarioConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::session::Document;
use crate::warehouse::WarehouseError;

/// A source of probabilistic updates feeding the warehouse.
pub trait SourceModule {
    /// Human-readable module name (shown in statistics).
    fn name(&self) -> &str;
    /// Produces the next update transaction, if the module has more to say.
    fn next_update(&mut self) -> Option<UpdateTransaction>;
}

/// A simulated information-extraction / NLP module: it emits insertions of
/// phone numbers, e-mail addresses and cities for the people of the scenario
/// directory, with confidences reflecting the module's quality.
pub struct ExtractionModule {
    name: String,
    rng: StdRng,
    config: PeopleScenarioConfig,
    remaining: usize,
}

impl ExtractionModule {
    /// Creates a module emitting `updates` transactions, seeded for
    /// reproducibility. `quality` in `[0, 1]` shifts the confidence range
    /// (a 0.9-quality extractor is right far more often than a 0.5 one).
    pub fn new(
        name: impl Into<String>,
        seed: u64,
        people: usize,
        updates: usize,
        quality: f64,
    ) -> Self {
        let quality = quality.clamp(0.05, 1.0);
        ExtractionModule {
            name: name.into(),
            rng: StdRng::seed_from_u64(seed),
            config: PeopleScenarioConfig {
                people,
                min_confidence: (0.4 * quality).max(0.05),
                max_confidence: quality.max(0.1),
            },
            remaining: updates,
        }
    }
}

impl SourceModule for ExtractionModule {
    fn name(&self) -> &str {
        &self.name
    }

    fn next_update(&mut self) -> Option<UpdateTransaction> {
        while self.remaining > 0 {
            self.remaining -= 1;
            let (update, kind) = extraction_update(&mut self.rng, &self.config);
            // Extraction modules only insert; retractions belong to the
            // data-cleaning module.
            if kind != ExtractionKind::RetractPhones {
                return Some(update);
            }
        }
        None
    }
}

/// A simulated data-cleaning module: it emits retractions (deletions) of
/// previously extracted phone numbers.
pub struct DataCleaningModule {
    name: String,
    rng: StdRng,
    config: PeopleScenarioConfig,
    remaining: usize,
}

impl DataCleaningModule {
    /// Creates a cleaning module emitting `updates` retraction transactions.
    pub fn new(name: impl Into<String>, seed: u64, people: usize, updates: usize) -> Self {
        DataCleaningModule {
            name: name.into(),
            rng: StdRng::seed_from_u64(seed),
            config: PeopleScenarioConfig {
                people,
                min_confidence: 0.6,
                max_confidence: 0.95,
            },
            remaining: updates,
        }
    }
}

impl SourceModule for DataCleaningModule {
    fn name(&self) -> &str {
        &self.name
    }

    fn next_update(&mut self) -> Option<UpdateTransaction> {
        while self.remaining > 0 {
            self.remaining -= 1;
            let (update, kind) = extraction_update(&mut self.rng, &self.config);
            if kind == ExtractionKind::RetractPhones {
                return Some(update);
            }
        }
        None
    }
}

/// Drains a set of modules round-robin into a warehouse document: each round
/// stages one update per module into a single transaction and commits it
/// atomically. Returns the number of updates pushed per module (by module
/// name, in the given order).
pub fn run_modules(
    document: &Document,
    modules: &mut [Box<dyn SourceModule>],
) -> Result<Vec<(String, usize)>, WarehouseError> {
    let mut pushed = vec![0usize; modules.len()];
    loop {
        let mut txn = document.begin();
        let mut staged_by: Vec<usize> = Vec::new();
        for (index, module) in modules.iter_mut().enumerate() {
            if let Some(update) = module.next_update() {
                txn = txn.stage(update);
                staged_by.push(index);
            }
        }
        if staged_by.is_empty() {
            break;
        }
        txn.commit()?;
        for index in staged_by {
            pushed[index] += 1;
        }
    }
    Ok(modules
        .iter()
        .zip(pushed)
        .map(|(module, count)| (module.name().to_string(), count))
        .collect())
}

/// Runs each module on its own thread, feeding its own warehouse document:
/// module `i` drains into `documents[i % documents.len()]`, one committed
/// transaction per update. Because the engine locks per document, modules
/// writing to distinct documents genuinely run in parallel — no module ever
/// waits behind another module's commit (the paper's multi-module warehouse,
/// slide 3). Returns the number of updates pushed per module, in the given
/// module order; handing it modules without any documents to drain into is
/// an [`WarehouseError::EmptyDocumentSet`] error, never a silent no-op.
pub fn run_modules_parallel(
    documents: &[Document],
    mut modules: Vec<Box<dyn SourceModule + Send>>,
) -> Result<Vec<(String, usize)>, WarehouseError> {
    if modules.is_empty() {
        return Ok(Vec::new());
    }
    if documents.is_empty() {
        return Err(WarehouseError::EmptyDocumentSet);
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = modules
            .drain(..)
            .enumerate()
            .map(|(index, mut module)| {
                let document = documents[index % documents.len()].clone();
                scope.spawn(move || -> Result<(String, usize), WarehouseError> {
                    let mut pushed = 0usize;
                    while let Some(update) = module.next_update() {
                        document.begin().stage(update).commit()?;
                        pushed += 1;
                    }
                    Ok((module.name().to_string(), pushed))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("module thread panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{Session, SessionConfig};
    use pxml_gen::scenarios::people_directory;
    use pxml_query::Pattern;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    static COUNTER: AtomicU64 = AtomicU64::new(0);

    fn scratch(label: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "pxml-modules-test-{}-{}-{}",
            std::process::id(),
            label,
            COUNTER.fetch_add(1, Ordering::SeqCst)
        ))
    }

    #[test]
    fn extraction_module_emits_the_requested_number_of_insertions() {
        let mut module = ExtractionModule::new("ie", 1, 10, 20, 0.9);
        let mut count = 0;
        while let Some(update) = module.next_update() {
            assert!(!update.operations().is_empty());
            assert!(update.confidence() <= 0.9 + 1e-12);
            count += 1;
        }
        assert!(count > 0);
        assert!(count <= 20);
        assert_eq!(module.name(), "ie");
    }

    #[test]
    fn cleaning_module_only_retracts() {
        let mut module = DataCleaningModule::new("clean", 2, 10, 40);
        while let Some(update) = module.next_update() {
            assert!(update
                .operations()
                .iter()
                .all(|op| matches!(op, pxml_core::UpdateOperation::Delete { .. })));
        }
    }

    #[test]
    fn modules_feed_the_warehouse_end_to_end() {
        let dir = scratch("end-to-end");
        let session = Session::open(&dir, SessionConfig::default()).unwrap();
        let people = 8;
        let document = session
            .create(
                "people",
                people_directory(&PeopleScenarioConfig {
                    people,
                    ..PeopleScenarioConfig::default()
                }),
            )
            .unwrap();
        let mut modules: Vec<Box<dyn SourceModule>> = vec![
            Box::new(ExtractionModule::new("ie-web", 10, people, 15, 0.9)),
            Box::new(ExtractionModule::new("nlp", 11, people, 15, 0.6)),
            Box::new(DataCleaningModule::new("cleaner", 12, people, 10)),
        ];
        let pushed = run_modules(&document, &mut modules).unwrap();
        assert_eq!(pushed.len(), 3);
        let total: usize = pushed.iter().map(|(_, count)| count).sum();
        assert!(total > 0);
        assert_eq!(session.stats().updates_applied, total);

        // The document is still a valid fuzzy tree and queries answer with
        // probabilities strictly between 0 and 1 for extracted facts.
        let snapshot = document.snapshot().unwrap();
        assert!(snapshot.validate().is_ok());
        let phones = Pattern::parse("person { phone }").unwrap();
        let result = document.query(&phones).unwrap();
        for m in &result.matches {
            assert!(m.probability > 0.0 && m.probability <= 1.0);
        }
        std::fs::remove_dir_all(dir).unwrap();
    }

    /// A module that refuses to produce its next update until its partner
    /// module (on the other thread) has arrived at the same round: a
    /// send-then-receive rendezvous per update. Two such modules make
    /// progress only if their threads run concurrently — a sequential runner
    /// trips the receive timeout.
    struct RendezvousModule {
        name: String,
        to_partner: std::sync::mpsc::Sender<usize>,
        from_partner: std::sync::mpsc::Receiver<usize>,
        round: usize,
        rounds: usize,
    }

    impl SourceModule for RendezvousModule {
        fn name(&self) -> &str {
            &self.name
        }

        fn next_update(&mut self) -> Option<UpdateTransaction> {
            if self.round == self.rounds {
                return None;
            }
            self.to_partner.send(self.round).unwrap();
            let partner_round = self
                .from_partner
                .recv_timeout(std::time::Duration::from_secs(30))
                .expect(
                    "partner module never reached this round: modules are not running in parallel",
                );
            assert_eq!(partner_round, self.round);
            self.round += 1;
            let pattern = pxml_query::Pattern::parse("person { name[=\"alice-0\"] }").unwrap();
            let target = pattern.root();
            let mut phone = pxml_tree::Tree::new("phone");
            phone.add_text(phone.root(), format!("+33-{}", self.round));
            Some(
                pxml_core::Update::matching(pattern)
                    .insert_at(target, phone)
                    .with_confidence(0.8)
                    .build()
                    .unwrap(),
            )
        }
    }

    /// Module threads demonstrably run in parallel: each module's updates
    /// rendezvous with the other module's, round by round, across two
    /// documents — impossible unless both module threads are live at once.
    #[test]
    fn parallel_modules_run_concurrently_on_distinct_documents() {
        let dir = scratch("parallel-modules");
        let session = Session::open(&dir, SessionConfig::default()).unwrap();
        let config = PeopleScenarioConfig {
            people: 1,
            ..PeopleScenarioConfig::default()
        };
        let doc_a = session.create("a", people_directory(&config)).unwrap();
        let doc_b = session.create("b", people_directory(&config)).unwrap();

        let (a_to_b, b_from_a) = std::sync::mpsc::channel();
        let (b_to_a, a_from_b) = std::sync::mpsc::channel();
        let rounds = 3;
        let modules: Vec<Box<dyn SourceModule + Send>> = vec![
            Box::new(RendezvousModule {
                name: "left".into(),
                to_partner: a_to_b,
                from_partner: a_from_b,
                round: 0,
                rounds,
            }),
            Box::new(RendezvousModule {
                name: "right".into(),
                to_partner: b_to_a,
                from_partner: b_from_a,
                round: 0,
                rounds,
            }),
        ];
        let pushed = run_modules_parallel(&[doc_a.clone(), doc_b.clone()], modules).unwrap();
        assert_eq!(
            pushed,
            vec![("left".to_string(), rounds), ("right".to_string(), rounds)]
        );
        let phones = Pattern::parse("person { phone }").unwrap();
        assert_eq!(doc_a.query(&phones).unwrap().len(), rounds);
        assert_eq!(doc_b.query(&phones).unwrap().len(), rounds);
        assert_eq!(session.stats().updates_applied, 2 * rounds);
        std::fs::remove_dir_all(dir).unwrap();
    }

    /// No documents + live modules is a hard error (the modules' updates
    /// must never be silently discarded); no modules is a clean no-op.
    #[test]
    fn parallel_runner_rejects_an_empty_document_set() {
        let dir = scratch("empty-documents");
        let session = Session::open(&dir, SessionConfig::default()).unwrap();
        let modules: Vec<Box<dyn SourceModule + Send>> =
            vec![Box::new(ExtractionModule::new("ie", 1, 4, 5, 0.9))];
        assert!(matches!(
            run_modules_parallel(&[], modules),
            Err(WarehouseError::EmptyDocumentSet)
        ));
        assert_eq!(run_modules_parallel(&[], Vec::new()).unwrap(), Vec::new());
        assert_eq!(session.stats().updates_applied, 0);
        std::fs::remove_dir_all(dir).unwrap();
    }

    /// The parallel runner distributes modules round-robin when there are
    /// more modules than documents, and the per-document results match the
    /// modules' own counts.
    #[test]
    fn parallel_modules_share_documents_round_robin() {
        let dir = scratch("parallel-round-robin");
        let session = Session::open(&dir, SessionConfig::default()).unwrap();
        let people = 6;
        let config = PeopleScenarioConfig {
            people,
            ..PeopleScenarioConfig::default()
        };
        let doc_a = session.create("a", people_directory(&config)).unwrap();
        let doc_b = session.create("b", people_directory(&config)).unwrap();
        let modules: Vec<Box<dyn SourceModule + Send>> = vec![
            Box::new(ExtractionModule::new("ie-1", 20, people, 8, 0.9)),
            Box::new(ExtractionModule::new("ie-2", 21, people, 8, 0.7)),
            Box::new(DataCleaningModule::new("clean", 22, people, 6)),
        ];
        let pushed = run_modules_parallel(&[doc_a, doc_b], modules).unwrap();
        assert_eq!(pushed.len(), 3);
        let total: usize = pushed.iter().map(|(_, count)| count).sum();
        assert!(total > 0);
        assert_eq!(session.stats().updates_applied, total);
        for name in ["a", "b"] {
            assert!(session
                .document(name)
                .unwrap()
                .snapshot()
                .unwrap()
                .validate()
                .is_ok());
        }
        std::fs::remove_dir_all(dir).unwrap();
    }
}
