//! The probabilistic XML warehouse engine.
//!
//! [`Warehouse`] is the synchronised engine behind the session API
//! ([`crate::session::Session`] / [`crate::session::Document`] /
//! [`crate::session::Txn`]): named fuzzy-tree documents, a query interface,
//! an atomic batch-commit pipeline and durable storage. User code should
//! reach it through a [`crate::session::Session`]; the one-shot entry points
//! kept here ([`Warehouse::open`], [`Warehouse::update`]) are deprecated
//! shims over the same engine.

use std::collections::HashMap;
use std::fmt;
use std::path::Path;

use parking_lot::{Mutex, RwLock};
use pxml_core::{
    BatchStats, CoreError, FuzzyQueryResult, FuzzyTree, Simplifier, SimplifyPolicy, SimplifyReport,
    UpdateStats, UpdateTransaction,
};
use pxml_query::Pattern;
use pxml_store::{DocumentStore, StoreError};
use pxml_tree::Tree;

use crate::session::SessionConfig;

/// Errors raised by the warehouse.
#[derive(Debug)]
pub enum WarehouseError {
    /// Propagated storage error.
    Store(StoreError),
    /// Propagated model error.
    Core(CoreError),
    /// The requested document is not loaded in the warehouse.
    UnknownDocument(String),
    /// A document with this name already exists.
    DuplicateDocument(String),
}

impl fmt::Display for WarehouseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WarehouseError::Store(err) => write!(f, "{err}"),
            WarehouseError::Core(err) => write!(f, "{err}"),
            WarehouseError::UnknownDocument(name) => {
                write!(f, "document `{name}` is not part of the warehouse")
            }
            WarehouseError::DuplicateDocument(name) => {
                write!(f, "document `{name}` already exists in the warehouse")
            }
        }
    }
}

impl std::error::Error for WarehouseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WarehouseError::Store(err) => Some(err),
            WarehouseError::Core(err) => Some(err),
            _ => None,
        }
    }
}

impl From<StoreError> for WarehouseError {
    fn from(err: StoreError) -> Self {
        WarehouseError::Store(err)
    }
}

impl From<CoreError> for WarehouseError {
    fn from(err: CoreError) -> Self {
        WarehouseError::Core(err)
    }
}

/// Maintenance policy of the pre-session warehouse API.
#[deprecated(
    since = "0.2.0",
    note = "use `pxml_warehouse::SessionConfig` (simplification is a `SimplifyPolicy` there)"
)]
#[derive(Debug, Clone)]
pub struct WarehouseConfig {
    /// Run the simplifier automatically after an update once the document's
    /// condition-literal count exceeds this threshold (`None` disables it).
    pub auto_simplify_above_literals: Option<usize>,
    /// Fold the journal into a fresh checkpoint after this many journaled
    /// updates (`None` keeps the journal growing until an explicit
    /// [`Warehouse::checkpoint`]).
    pub checkpoint_every: Option<usize>,
}

#[allow(deprecated)]
impl Default for WarehouseConfig {
    fn default() -> Self {
        WarehouseConfig {
            auto_simplify_above_literals: Some(512),
            checkpoint_every: Some(64),
        }
    }
}

#[allow(deprecated)]
impl From<WarehouseConfig> for SessionConfig {
    fn from(config: WarehouseConfig) -> Self {
        SessionConfig {
            simplify: match config.auto_simplify_above_literals {
                Some(limit) => SimplifyPolicy::Threshold(limit),
                None => SimplifyPolicy::Never,
            },
            checkpoint_every: config.checkpoint_every,
        }
    }
}

/// Running counters exposed by [`Warehouse::stats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WarehouseStats {
    /// Update transactions accepted.
    pub updates_applied: usize,
    /// Queries evaluated.
    pub queries_evaluated: usize,
    /// Automatic or explicit simplification runs.
    pub simplifications: usize,
    /// Checkpoints written.
    pub checkpoints: usize,
}

/// The probabilistic XML warehouse engine: named fuzzy-tree documents with a
/// query interface, an atomic batch-commit pipeline and durable storage.
///
/// All methods take `&self`; the warehouse is internally synchronised
/// (per-warehouse read/write lock on the document map) so it can be shared
/// behind an `Arc` by several module threads — the session API does exactly
/// that.
pub struct Warehouse {
    store: DocumentStore,
    config: SessionConfig,
    documents: RwLock<HashMap<String, FuzzyTree>>,
    stats: Mutex<WarehouseStats>,
}

impl Warehouse {
    /// Opens the engine backed by the given directory, recovering every
    /// stored document (checkpoint + journal replay). Recovery honours the
    /// session's [`SimplifyPolicy`]: replay alone would resurrect the
    /// deletion-induced fragmentation that inline simplification removed
    /// before the crash, so a policy that would have simplified gets one
    /// pass over each replayed document.
    pub fn with_config(
        path: impl AsRef<Path>,
        config: SessionConfig,
    ) -> Result<Self, WarehouseError> {
        let store = DocumentStore::open(path)?;
        let mut documents = HashMap::new();
        for name in store.list_documents()? {
            let mut fuzzy = store.recover_document(&name)?;
            if !store.read_batches(&name)?.is_empty() && config.simplify.should_run(&fuzzy) {
                Simplifier::new().run(&mut fuzzy)?;
            }
            documents.insert(name, fuzzy);
        }
        Ok(Warehouse {
            store,
            config,
            documents: RwLock::new(documents),
            stats: Mutex::new(WarehouseStats::default()),
        })
    }

    /// Opens a warehouse backed by the given directory.
    #[deprecated(
        since = "0.2.0",
        note = "open a `pxml_warehouse::Session` instead (`Session::open`)"
    )]
    #[allow(deprecated)]
    pub fn open(path: impl AsRef<Path>, config: WarehouseConfig) -> Result<Self, WarehouseError> {
        Warehouse::with_config(path, config.into())
    }

    /// The session configuration the engine runs under.
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// The storage directory backing the warehouse.
    pub fn storage_root(&self) -> &Path {
        self.store.root()
    }

    /// The names of the loaded documents (sorted).
    pub fn document_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.documents.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Creates a new document from a certain data tree.
    pub fn create_document(&self, name: &str, tree: Tree) -> Result<(), WarehouseError> {
        self.create_fuzzy_document(name, FuzzyTree::from_tree(tree))
    }

    /// Creates a new document from an existing fuzzy tree.
    pub fn create_fuzzy_document(
        &self,
        name: &str,
        fuzzy: FuzzyTree,
    ) -> Result<(), WarehouseError> {
        let mut documents = self.documents.write();
        if documents.contains_key(name) {
            return Err(WarehouseError::DuplicateDocument(name.to_string()));
        }
        self.store.save_document(name, &fuzzy)?;
        documents.insert(name.to_string(), fuzzy);
        Ok(())
    }

    /// Removes a document from the warehouse and from storage.
    pub fn drop_document(&self, name: &str) -> Result<(), WarehouseError> {
        let mut documents = self.documents.write();
        if documents.remove(name).is_none() {
            return Err(WarehouseError::UnknownDocument(name.to_string()));
        }
        self.store.remove_document(name)?;
        Ok(())
    }

    /// A snapshot of a document's current fuzzy tree.
    pub fn document(&self, name: &str) -> Result<FuzzyTree, WarehouseError> {
        self.documents
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| WarehouseError::UnknownDocument(name.to_string()))
    }

    /// Evaluates a TPWJ query against a document (slide 3's query interface:
    /// "query → results + confidence").
    pub fn query(&self, name: &str, pattern: &Pattern) -> Result<FuzzyQueryResult, WarehouseError> {
        let documents = self.documents.read();
        let fuzzy = documents
            .get(name)
            .ok_or_else(|| WarehouseError::UnknownDocument(name.to_string()))?;
        let result = fuzzy.query(pattern);
        drop(documents);
        self.stats.lock().queries_evaluated += 1;
        Ok(result)
    }

    /// Commits a staged transaction batch to a document atomically: the
    /// batch is applied to a working copy through the policy-aware pipeline
    /// (`policy` overrides the session policy when given), journaled as one
    /// durable entry (the journal rename is the commit point), and only then
    /// swapped in — an error *before* the commit point leaves the in-memory
    /// document and the journal exactly as they were. Configured maintenance
    /// (checkpoint folding) runs after the commit; a maintenance error is
    /// reported, but the commit itself is already durable and recoverable at
    /// that point.
    ///
    /// This is the engine path behind [`crate::session::Txn::commit`].
    pub fn commit_batch(
        &self,
        name: &str,
        batch: &[UpdateTransaction],
        policy: Option<SimplifyPolicy>,
    ) -> Result<BatchStats, WarehouseError> {
        let policy = policy.unwrap_or(self.config.simplify);
        let mut documents = self.documents.write();
        let fuzzy = documents
            .get_mut(name)
            .ok_or_else(|| WarehouseError::UnknownDocument(name.to_string()))?;
        if batch.is_empty() {
            return Ok(BatchStats::default());
        }
        // Apply to a working copy first (rollback = dropping the copy), make
        // the batch durable, then swap the new state in.
        let mut working = fuzzy.clone();
        let mut batch_stats = BatchStats::default();
        for update in batch {
            batch_stats
                .updates
                .push(update.apply_to_fuzzy_with(&mut working, policy)?);
        }
        self.store.append_batch(name, batch)?;
        *fuzzy = working;

        // The commit happened: record it before any maintenance can fail.
        {
            let mut stats = self.stats.lock();
            stats.updates_applied += batch.len();
            stats.simplifications += batch_stats.simplify_runs();
        }
        let mut checkpointed = false;
        if let Some(every) = self.config.checkpoint_every {
            if self.store.journal_length(name)? >= every {
                self.store.checkpoint(name, fuzzy)?;
                checkpointed = true;
            }
        }
        drop(documents);

        if checkpointed {
            self.stats.lock().checkpoints += 1;
        }
        Ok(batch_stats)
    }

    /// Applies a single probabilistic update transaction to a document.
    #[deprecated(
        since = "0.2.0",
        note = "stage the update through `Document::begin()` and commit the `Txn` instead"
    )]
    pub fn update(
        &self,
        name: &str,
        transaction: &UpdateTransaction,
    ) -> Result<UpdateStats, WarehouseError> {
        let stats = self.commit_batch(name, std::slice::from_ref(transaction), None)?;
        Ok(stats.updates.into_iter().next().unwrap_or_default())
    }

    /// Runs the simplifier on a document and persists the result as a fresh
    /// checkpoint.
    pub fn simplify(&self, name: &str) -> Result<SimplifyReport, WarehouseError> {
        let mut documents = self.documents.write();
        let fuzzy = documents
            .get_mut(name)
            .ok_or_else(|| WarehouseError::UnknownDocument(name.to_string()))?;
        let report = Simplifier::new().run(fuzzy)?;
        self.store.checkpoint(name, fuzzy)?;
        drop(documents);
        let mut stats = self.stats.lock();
        stats.simplifications += 1;
        stats.checkpoints += 1;
        Ok(report)
    }

    /// Writes the current in-memory state of a document as a checkpoint and
    /// truncates its journal.
    pub fn checkpoint(&self, name: &str) -> Result<(), WarehouseError> {
        let documents = self.documents.read();
        let fuzzy = documents
            .get(name)
            .ok_or_else(|| WarehouseError::UnknownDocument(name.to_string()))?;
        self.store.checkpoint(name, fuzzy)?;
        drop(documents);
        self.stats.lock().checkpoints += 1;
        Ok(())
    }

    /// Running counters since the warehouse was opened.
    pub fn stats(&self) -> WarehouseStats {
        self.stats.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    // These tests deliberately exercise the deprecated pre-session shims so
    // the one-release compatibility window stays covered.
    #![allow(deprecated)]

    use super::*;
    use pxml_query::PNodeId;
    use pxml_tree::parse_data_tree;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    static COUNTER: AtomicU64 = AtomicU64::new(0);

    fn scratch(label: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "pxml-warehouse-test-{}-{}-{}",
            std::process::id(),
            label,
            COUNTER.fetch_add(1, Ordering::SeqCst)
        ))
    }

    fn directory() -> Tree {
        parse_data_tree(
            "<directory>\
               <person><name>alice</name></person>\
               <person><name>bob</name></person>\
             </directory>",
        )
        .unwrap()
    }

    fn add_phone(name: &str, confidence: f64) -> UpdateTransaction {
        let pattern = Pattern::parse(&format!("person {{ name[=\"{name}\"] }}")).unwrap();
        let target = pattern.root();
        UpdateTransaction::new(pattern, confidence)
            .unwrap()
            .with_insert(target, parse_data_tree("<phone>+33-1</phone>").unwrap())
    }

    #[test]
    fn create_query_update_cycle() {
        let dir = scratch("cycle");
        let warehouse = Warehouse::open(&dir, WarehouseConfig::default()).unwrap();
        warehouse.create_document("people", directory()).unwrap();
        assert_eq!(warehouse.document_names(), vec!["people"]);

        // Initially no phone.
        let phones = Pattern::parse("person { phone }").unwrap();
        assert!(warehouse.query("people", &phones).unwrap().is_empty());

        // An extraction module reports a phone number for alice with
        // confidence 0.8.
        let stats = warehouse
            .update("people", &add_phone("alice", 0.8))
            .unwrap();
        assert_eq!(stats.applied_matches, 1);

        let result = warehouse.query("people", &phones).unwrap();
        assert_eq!(result.len(), 1);
        assert!((result.matches[0].probability - 0.8).abs() < 1e-12);

        let totals = warehouse.stats();
        assert_eq!(totals.updates_applied, 1);
        assert_eq!(totals.queries_evaluated, 2);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn unknown_and_duplicate_documents_are_rejected() {
        let dir = scratch("errors");
        let warehouse = Warehouse::open(&dir, WarehouseConfig::default()).unwrap();
        warehouse.create_document("people", directory()).unwrap();
        assert!(matches!(
            warehouse.create_document("people", directory()),
            Err(WarehouseError::DuplicateDocument(_))
        ));
        let query = Pattern::parse("person").unwrap();
        assert!(matches!(
            warehouse.query("ghost", &query),
            Err(WarehouseError::UnknownDocument(_))
        ));
        assert!(matches!(
            warehouse.update("ghost", &add_phone("alice", 0.5)),
            Err(WarehouseError::UnknownDocument(_))
        ));
        assert!(matches!(
            warehouse.drop_document("ghost"),
            Err(WarehouseError::UnknownDocument(_))
        ));
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn updates_survive_a_restart_via_journal_replay() {
        let dir = scratch("restart");
        {
            let warehouse = Warehouse::open(
                &dir,
                WarehouseConfig {
                    checkpoint_every: None,
                    ..WarehouseConfig::default()
                },
            )
            .unwrap();
            warehouse.create_document("people", directory()).unwrap();
            warehouse
                .update("people", &add_phone("alice", 0.8))
                .unwrap();
            warehouse.update("people", &add_phone("bob", 0.6)).unwrap();
        }
        // Re-open: the checkpoint has no phones, the journal has both.
        let reopened = Warehouse::open(&dir, WarehouseConfig::default()).unwrap();
        let phones = Pattern::parse("person { phone }").unwrap();
        let result = reopened.query("people", &phones).unwrap();
        assert_eq!(result.len(), 2);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn checkpoint_policy_truncates_journal() {
        let dir = scratch("checkpoint-policy");
        let warehouse = Warehouse::open(
            &dir,
            WarehouseConfig {
                checkpoint_every: Some(2),
                auto_simplify_above_literals: None,
            },
        )
        .unwrap();
        warehouse.create_document("people", directory()).unwrap();
        warehouse
            .update("people", &add_phone("alice", 0.8))
            .unwrap();
        warehouse.update("people", &add_phone("bob", 0.9)).unwrap();
        // After the second update the journal is folded into the checkpoint.
        assert_eq!(warehouse.stats().checkpoints, 1);
        let reopened = Warehouse::open(&dir, WarehouseConfig::default()).unwrap();
        let phones = Pattern::parse("person { phone }").unwrap();
        assert_eq!(reopened.query("people", &phones).unwrap().len(), 2);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn explicit_simplify_checkpoints_and_preserves_semantics() {
        let dir = scratch("simplify");
        let warehouse = Warehouse::open(
            &dir,
            WarehouseConfig {
                auto_simplify_above_literals: None,
                checkpoint_every: None,
            },
        )
        .unwrap();
        warehouse.create_document("people", directory()).unwrap();
        // A conditional deletion that duplicates nodes.
        let pattern = Pattern::parse("person { name[=\"alice\"], phone }").unwrap();
        let ids: Vec<PNodeId> = pattern.node_ids().collect();
        warehouse
            .update("people", &add_phone("alice", 0.8))
            .unwrap();
        let retract = UpdateTransaction::new(pattern, 0.5)
            .unwrap()
            .with_delete(ids[2]);
        warehouse.update("people", &retract).unwrap();

        let before = warehouse.document("people").unwrap();
        warehouse.simplify("people").unwrap();
        let after = warehouse.document("people").unwrap();
        assert!(before.semantically_equivalent(&after, 1e-9).unwrap());
        assert!(after.condition_literal_count() <= before.condition_literal_count());
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn drop_document_removes_it_everywhere() {
        let dir = scratch("drop");
        let warehouse = Warehouse::open(&dir, WarehouseConfig::default()).unwrap();
        warehouse.create_document("people", directory()).unwrap();
        warehouse.drop_document("people").unwrap();
        assert!(warehouse.document_names().is_empty());
        let reopened = Warehouse::open(&dir, WarehouseConfig::default()).unwrap();
        assert!(reopened.document_names().is_empty());
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn warehouse_is_shareable_across_threads() {
        let dir = scratch("threads");
        let warehouse =
            std::sync::Arc::new(Warehouse::open(&dir, WarehouseConfig::default()).unwrap());
        warehouse.create_document("people", directory()).unwrap();
        let mut handles = Vec::new();
        for i in 0..4 {
            let shared = warehouse.clone();
            handles.push(std::thread::spawn(move || {
                let who = if i % 2 == 0 { "alice" } else { "bob" };
                shared.update("people", &add_phone(who, 0.7)).unwrap();
                let query = Pattern::parse("person { phone }").unwrap();
                shared.query("people", &query).unwrap().len()
            }));
        }
        for handle in handles {
            assert!(handle.join().unwrap() >= 1);
        }
        assert_eq!(warehouse.stats().updates_applied, 4);
        std::fs::remove_dir_all(dir).unwrap();
    }
}
