//! The probabilistic XML warehouse engine.
//!
//! [`Warehouse`] is the sharded, per-document-locked engine behind the
//! session API ([`crate::session::Session`] / [`crate::session::Document`] /
//! [`crate::session::Txn`]): named fuzzy-tree documents, a query interface,
//! an atomic batch-commit pipeline and durable storage. User code should
//! reach it through a [`crate::session::Session`].
//!
//! # Concurrency model: MVCC snapshots
//!
//! The document registry is split into a fixed number of shards, each an
//! independently locked map from document name to an `Arc`-shared document
//! slot. A slot holds the document's state as an **immutable, `Arc`-shared
//! snapshot** plus a commit mutex that serializes writers:
//!
//! ```text
//! Warehouse
//! ├── shards[hash(name) % N]: RwLock<HashMap<String, Arc<DocSlot>>>
//! │        │  (held only to look up / insert / remove a slot)
//! │        └── slot: Arc<DocSlot>
//! │             ├── commit: Mutex<()>        (one writer pipeline at a time)
//! │             └── state: RwLock<DocState>  (published Arc<snapshot> +
//! │                                           tombstone; held O(1) only)
//! ├── stats: atomic counters (never block anything)
//! └── store: Arc<dyn StorageBackend> (per-document serialization per the
//!            trait contract; FsBackend by default)
//! ```
//!
//! **Readers never block writers and writers never block readers.** A query
//! pins the current snapshot — an `Arc` clone under the state lock, O(1) —
//! and then runs entirely lock-free against immutable data. A commit takes
//! the commit mutex (serializing only against other writers of the *same*
//! document), clones the pinned snapshot's fuzzy tree — a copy-on-write
//! clone that shares every arena chunk with the snapshot — applies the
//! batch (path-copying only the chunks it touches), journals it (the
//! durable commit point), and publishes the result by swapping the `Arc`
//! under a briefly-held state write lock. The state lock is therefore only
//! ever held for pointer reads and swaps; a slow query can no longer stall
//! a commit, and a streaming writer cannot stall readers (experiment E15
//! measures exactly this).
//!
//! Lock ordering rules (every method obeys them, so the engine cannot
//! deadlock):
//!
//! 1. a shard lock is never held while acquiring any document lock —
//!    resolving a name clones the slot's `Arc` under the shard lock and
//!    drops the shard lock first;
//! 2. within one document, the commit mutex is acquired before the state
//!    lock, never the reverse;
//! 3. no document lock is ever held while acquiring a shard lock, and no
//!    method ever holds two documents' locks at once.
//!
//! Memory reclamation is reference-counted: a published snapshot stays
//! alive exactly as long as some reader still pins it (or it is current);
//! when the last `Arc` drops, the chunks that were *not* shared with newer
//! snapshots are freed with it. Dead arena slots left behind by deletions
//! are reclaimed by folding a compaction into the commit pipeline once the
//! slot count outgrows the live count (see [`Warehouse::commit_batch`]).
//!
//! Removal is tombstone-based: [`Warehouse::drop_document`] waits out
//! in-flight work on the document (its commit mutex), marks the entry
//! dropped under the state lock and deletes the files, and only then
//! unlinks the name from its shard. Every path re-checks the tombstone when
//! pinning a snapshot, so a caller that resolved the slot before the drop —
//! or that races a same-name re-create — reports `UnknownDocument` instead
//! of leaking work into the wrong document.
//!
//! Failure handling is quarantine-based: a commit whose durable append
//! fails never publishes (MVCC rollback is dropping the working copy), and
//! the document is marked quarantined — every later *write* is refused with
//! a typed error carrying the original cause, while readers keep serving
//! the last durable snapshot. [`Warehouse::reopen_document`] lifts the
//! quarantine: it drops the in-memory state, has the backend re-establish
//! the on-disk truth (truncating unsynced tails, clearing a poisoned group
//! committer) and republishes the checkpoint + journal replay. See README
//! § "Failure model & recovery".
//!
//! These rules are not just prose: every lock here carries a
//! `parking_lot::LockClass` (`Shard`, `DocEntry`, …) and the whole test
//! battery can run under a lockdep-style order witness with
//! `cargo test --features lock-witness`, which panics on the first
//! acquisition that violates the declared class order or closes a cycle in
//! the global acquisition-order graph. `cargo run -p pxml-check --bin lint`
//! additionally enforces the construction-site rules (no `std::sync` locks
//! outside the shims, a class annotation at every lock construction). See
//! README § "Concurrency correctness".

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::{LockClass, Mutex, RwLock};
use pxml_core::{
    BatchStats, CoreError, FuzzyQueryResult, FuzzyTree, Simplifier, SimplifyPolicy, SimplifyReport,
    UpdateTransaction,
};
use pxml_query::Pattern;
use pxml_store::{CommitTicket, FsBackend, FsOptions, StorageBackend, StoreError};
use pxml_tree::Tree;

use crate::session::SessionConfig;

/// Errors raised by the warehouse.
#[derive(Debug)]
pub enum WarehouseError {
    /// Propagated storage error.
    Store(StoreError),
    /// Propagated model error.
    Core(CoreError),
    /// The requested document is not loaded in the warehouse.
    UnknownDocument(String),
    /// A document with this name already exists.
    DuplicateDocument(String),
    /// A module runner was handed modules but no documents to drain into.
    EmptyDocumentSet,
    /// The document is quarantined after a failed commit: writes are refused
    /// until [`Warehouse::reopen_document`] re-establishes the on-disk truth.
    /// Readers are unaffected — they keep serving the last durable snapshot.
    Quarantined {
        /// The quarantined document.
        document: String,
        /// The failure that quarantined it (the first one; later refusals
        /// carry the same original cause).
        reason: String,
    },
}

impl fmt::Display for WarehouseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WarehouseError::Store(err) => write!(f, "{err}"),
            WarehouseError::Core(err) => write!(f, "{err}"),
            WarehouseError::UnknownDocument(name) => {
                write!(f, "document `{name}` is not part of the warehouse")
            }
            WarehouseError::DuplicateDocument(name) => {
                write!(f, "document `{name}` already exists in the warehouse")
            }
            WarehouseError::EmptyDocumentSet => {
                write!(
                    f,
                    "no warehouse documents were provided to drain the modules into"
                )
            }
            WarehouseError::Quarantined { document, reason } => {
                write!(
                    f,
                    "document `{document}` is quarantined after a failed commit \
                     (reopen it to recover): {reason}"
                )
            }
        }
    }
}

impl std::error::Error for WarehouseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WarehouseError::Store(err) => Some(err),
            WarehouseError::Core(err) => Some(err),
            _ => None,
        }
    }
}

impl From<StoreError> for WarehouseError {
    fn from(err: StoreError) -> Self {
        WarehouseError::Store(err)
    }
}

impl From<CoreError> for WarehouseError {
    fn from(err: CoreError) -> Self {
        WarehouseError::Core(err)
    }
}

/// Running counters exposed by [`Warehouse::stats`].
///
/// The engine counters (updates, queries, simplifications, checkpoints) are
/// lock-free atomics; the durability counters (fsyncs, grouped commits and
/// windows) come from the storage backend's equally lock-free
/// [`durability_stats`](pxml_store::StorageBackend::durability_stats)
/// snapshot, and stay zero on backends without instrumentation (e.g.
/// `MemBackend`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WarehouseStats {
    /// Update transactions accepted.
    pub updates_applied: usize,
    /// Queries evaluated.
    pub queries_evaluated: usize,
    /// Automatic or explicit simplification runs.
    pub simplifications: usize,
    /// Checkpoints written.
    pub checkpoints: usize,
    /// Fsync barrier rounds the storage backend issued to its device. A
    /// grouped window covering many documents counts **one** round — this is
    /// the quantity group commit divides (E14 asserts it drops below the
    /// commit count).
    pub fsyncs: usize,
    /// Commits acknowledged through a group-commit window.
    pub grouped_commits: usize,
    /// Group-commit windows flushed.
    pub grouped_windows: usize,
}

impl WarehouseStats {
    /// Mean commits per flushed group-commit window — the coalescing factor
    /// achieved (0.0 before any window has flushed).
    pub fn mean_window_occupancy(&self) -> f64 {
        if self.grouped_windows == 0 {
            0.0
        } else {
            self.grouped_commits as f64 / self.grouped_windows as f64
        }
    }
}

/// The engine-internal counters behind [`WarehouseStats`]: plain atomics, so
/// recording an update or reading a snapshot never takes any lock and can
/// never block (or be blocked by) a commit.
#[derive(Default)]
struct StatsCounters {
    updates_applied: AtomicUsize,
    queries_evaluated: AtomicUsize,
    simplifications: AtomicUsize,
    checkpoints: AtomicUsize,
}

impl StatsCounters {
    fn snapshot(&self) -> WarehouseStats {
        WarehouseStats {
            updates_applied: self.updates_applied.load(Ordering::Relaxed),
            queries_evaluated: self.queries_evaluated.load(Ordering::Relaxed),
            simplifications: self.simplifications.load(Ordering::Relaxed),
            checkpoints: self.checkpoints.load(Ordering::Relaxed),
            ..WarehouseStats::default()
        }
    }
}

/// An immutable, `Arc`-shared snapshot of one document's state, pinned in
/// O(1) by [`Warehouse::snapshot`]. Everything behind the handle — tree,
/// conditions, event table — is frozen: queries against it run lock-free,
/// and commits that land after the pin publish *new* snapshots without
/// touching this one. Cloning the handle is a reference-count bump.
///
/// The snapshot's memory is reclaimed when the last handle drops; arena
/// chunks shared with newer snapshots survive with them (structural
/// sharing), so holding an old snapshot costs only the chunks that have
/// since been rewritten.
#[derive(Debug, Clone)]
pub struct DocSnapshot {
    inner: Arc<SnapshotInner>,
}

#[derive(Debug)]
struct SnapshotInner {
    fuzzy: FuzzyTree,
    seq: u64,
}

impl DocSnapshot {
    fn first(fuzzy: FuzzyTree) -> Self {
        DocSnapshot {
            inner: Arc::new(SnapshotInner { fuzzy, seq: 0 }),
        }
    }

    /// The snapshot `fuzzy` as the successor of `self`.
    fn successor(&self, fuzzy: FuzzyTree) -> Self {
        DocSnapshot {
            inner: Arc::new(SnapshotInner {
                fuzzy,
                seq: self.inner.seq + 1,
            }),
        }
    }

    /// The frozen fuzzy tree.
    pub fn fuzzy(&self) -> &FuzzyTree {
        &self.inner.fuzzy
    }

    /// The document's commit sequence number at the time of the pin: 0 at
    /// creation/recovery, +1 per published commit (or simplify). Strictly
    /// monotonic per document, so two pins can be ordered.
    pub fn seq(&self) -> u64 {
        self.inner.seq
    }
}

/// The published, swappable part of a document slot.
struct DocState {
    snapshot: DocSnapshot,
    /// Tombstone set by [`Warehouse::drop_document`] under the state lock.
    /// A caller that resolved this slot *before* the drop re-checks it when
    /// pinning: without the check, a commit racing a drop + a same-name
    /// re-create would apply its batch to this orphaned entry while
    /// journaling it against the unrelated new document.
    dropped: bool,
    /// Set when a commit's durable append failed: the in-memory snapshot and
    /// the journal may disagree, so every *write* path refuses with
    /// [`WarehouseError::Quarantined`] until [`Warehouse::reopen_document`]
    /// replays the journal and clears this. Readers ignore it — the published
    /// snapshot is still the last durable state (the blocking commit path
    /// never publishes a batch whose append failed).
    quarantined: Option<String>,
}

/// One document's engine-resident state.
struct DocSlot {
    /// Serializes writers: held across the whole apply → journal → swap →
    /// maintenance pipeline of [`Warehouse::commit_batch`] (and by
    /// `simplify`/`checkpoint`/`drop_document`, which must not interleave
    /// with a commit). Readers never touch it.
    commit: Mutex<()>,
    /// The published snapshot + tombstone. Only ever held long enough to
    /// clone or swap the snapshot `Arc` — O(1), never across an apply,
    /// a query, or storage I/O.
    state: RwLock<DocState>,
}

impl DocSlot {
    fn live(fuzzy: FuzzyTree) -> Slot {
        Arc::new(DocSlot {
            commit: Mutex::with_class(LockClass::DocCommit, ()),
            state: RwLock::with_class(
                LockClass::DocEntry,
                DocState {
                    snapshot: DocSnapshot::first(fuzzy),
                    dropped: false,
                    quarantined: None,
                },
            ),
        })
    }
}

/// A shared handle to one document's locks + published state.
type Slot = Arc<DocSlot>;

/// Dead-slot slack tolerated before a commit folds an arena compaction into
/// its pipeline: compaction runs once `slot_count > 2 × node_count + SLACK`,
/// so churn-heavy documents stay within a constant factor of their live
/// size while small documents never pay for rebuilds.
const SLOT_SLACK: usize = 64;

/// One shard of the document registry.
struct Shard {
    slots: RwLock<HashMap<String, Slot>>,
}

impl Default for Shard {
    fn default() -> Self {
        Shard {
            slots: RwLock::with_class(LockClass::Shard, HashMap::new()),
        }
    }
}

/// Number of registry shards. Sixteen keeps the birthday-collision rate of
/// *registry* operations (create/drop/lookup) low for the document counts
/// the warehouse targets; note that post-lookup work never holds a shard
/// lock, so shard collisions only cost contention on the name lookup itself.
const SHARD_COUNT: usize = 16;

/// The probabilistic XML warehouse engine: named fuzzy-tree documents with a
/// query interface, an atomic batch-commit pipeline and durable storage.
///
/// All methods take `&self`; the warehouse is internally synchronised with a
/// sharded registry of per-document locks (see the module docs for the lock
/// ordering rules) so it can be shared behind an `Arc` by many module
/// threads — the session API does exactly that. A `&self` method touching
/// one document synchronises only with other users of *that* document, never
/// with traffic on the rest of the warehouse.
pub struct Warehouse {
    store: Arc<dyn StorageBackend>,
    config: SessionConfig,
    shards: Vec<Shard>,
    stats: StatsCounters,
}

impl Warehouse {
    /// Opens the engine backed by the given directory through the default
    /// [`FsBackend`], recovering every stored document (checkpoint + journal
    /// replay). The backend inherits the session's
    /// [`CommitPolicy`](pxml_store::CommitPolicy) (`config.commit`), so
    /// `Grouped` sessions get cross-document fsync coalescing out of the box.
    pub fn with_config(
        path: impl AsRef<Path>,
        config: SessionConfig,
    ) -> Result<Self, WarehouseError> {
        let backend = FsBackend::with_options(
            path,
            FsOptions {
                commit: config.commit,
                ..FsOptions::default()
            },
        )?;
        Self::with_backend(Arc::new(backend), config)
    }

    /// Opens the engine over an explicit storage backend, recovering every
    /// stored document (checkpoint + journal replay). Recovery honours the
    /// session's [`SimplifyPolicy`]: replay alone would resurrect the
    /// deletion-induced fragmentation that inline simplification removed
    /// before the crash, so a policy that would have simplified gets one
    /// pass over each replayed document.
    pub fn with_backend(
        store: Arc<dyn StorageBackend>,
        config: SessionConfig,
    ) -> Result<Self, WarehouseError> {
        let shards: Vec<Shard> = (0..SHARD_COUNT).map(|_| Shard::default()).collect();
        let warehouse = Warehouse {
            store,
            config,
            shards,
            stats: StatsCounters::default(),
        };
        for name in warehouse.store.list_documents()? {
            let mut fuzzy = warehouse.store.recover_document(&name)?;
            if warehouse.store.journal_batches(&name)? > 0 && config.simplify.should_run(&fuzzy) {
                Simplifier::new().run(&mut fuzzy)?;
            }
            warehouse
                .shard(&name)
                .slots
                .write()
                .insert(name, DocSlot::live(fuzzy));
        }
        Ok(warehouse)
    }

    /// The shard a document name maps to.
    fn shard(&self, name: &str) -> &Shard {
        let mut hasher = DefaultHasher::new();
        name.hash(&mut hasher);
        &self.shards[hasher.finish() as usize % self.shards.len()]
    }

    /// Resolves a name to its document slot. The shard lock is held only
    /// long enough to clone the `Arc`; the caller locks the slot afterwards,
    /// so lookups never block behind another document's commit.
    fn slot(&self, name: &str) -> Result<Slot, WarehouseError> {
        self.shard(name)
            .slots
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| WarehouseError::UnknownDocument(name.to_string()))
    }

    /// The session configuration the engine runs under.
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// The directory backing the warehouse, when its storage backend has one
    /// (`None` for in-memory backends).
    pub fn storage_root(&self) -> Option<&Path> {
        self.store.root_dir()
    }

    /// The storage backend behind the engine.
    pub fn backend(&self) -> &Arc<dyn StorageBackend> {
        &self.store
    }

    /// The names of the loaded documents (sorted). Shard locks are taken one
    /// at a time, so the listing is a point-in-time view per shard, not a
    /// global snapshot.
    pub fn document_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .shards
            .iter()
            .flat_map(|shard| shard.slots.read().keys().cloned().collect::<Vec<_>>())
            .collect();
        names.sort();
        names
    }

    /// Whether a document with this name is loaded.
    pub fn contains(&self, name: &str) -> bool {
        self.shard(name).slots.read().contains_key(name)
    }

    /// Creates a new document from a certain data tree.
    pub fn create_document(&self, name: &str, tree: Tree) -> Result<(), WarehouseError> {
        self.create_fuzzy_document(name, FuzzyTree::from_tree(tree))
    }

    /// Creates a new document from an existing fuzzy tree.
    ///
    /// The shard's write lock is held across the (fast, atomic) initial save
    /// so a duplicate-name race cannot create the same document twice; this
    /// briefly delays *registry lookups* of same-shard names but never an
    /// in-flight commit, which operates on its already-resolved slot.
    pub fn create_fuzzy_document(
        &self,
        name: &str,
        fuzzy: FuzzyTree,
    ) -> Result<(), WarehouseError> {
        let mut slots = self.shard(name).slots.write();
        if slots.contains_key(name) {
            return Err(WarehouseError::DuplicateDocument(name.to_string()));
        }
        self.store.save_document(name, &fuzzy)?;
        slots.insert(name.to_string(), DocSlot::live(fuzzy));
        Ok(())
    }

    /// Removes a document from the warehouse and from storage.
    ///
    /// Ordering matters: the document's commit mutex is taken *first*
    /// (waiting out any in-flight commit pipeline), the entry is tombstoned
    /// under the state lock and its files deleted, and only then — after the
    /// locks are released — is the name unlinked from its shard. Until the
    /// unlink, a concurrent `create` of the same name reports
    /// `DuplicateDocument`, so no new document can interleave with the
    /// deletion; afterwards, any caller still holding the old slot sees the
    /// tombstone and reports `UnknownDocument` instead of touching the
    /// store. Readers that pinned a snapshot before the drop keep their
    /// (now-orphaned) snapshot — dropping a document never tears state out
    /// from under a running query.
    pub fn drop_document(&self, name: &str) -> Result<(), WarehouseError> {
        let slot = self.slot(name)?;
        {
            let _commit = slot.commit.lock();
            let mut state = slot.state.write();
            if state.dropped {
                // A concurrent drop won the race for the same slot.
                return Err(WarehouseError::UnknownDocument(name.to_string()));
            }
            self.store.remove_document(name)?;
            state.dropped = true;
        }
        // The tombstone guarantees this mapping still points at `slot`: a
        // same-name create cannot have replaced it while the name was mapped.
        self.shard(name).slots.write().remove(name);
        Ok(())
    }

    /// Pins the slot's current snapshot — an `Arc` bump under the briefly
    /// held state read lock. Returns `UnknownDocument` if the entry was
    /// tombstoned by a concurrent [`Warehouse::drop_document`] after this
    /// caller resolved the slot.
    fn pin(slot: &DocSlot, name: &str) -> Result<DocSnapshot, WarehouseError> {
        let state = slot.state.read();
        if state.dropped {
            return Err(WarehouseError::UnknownDocument(name.to_string()));
        }
        Ok(state.snapshot.clone())
    }

    /// Write-path gate: a quarantined document refuses every mutation with
    /// the typed error until a reopen clears it. Read paths never call this —
    /// readers keep serving the last durable snapshot through the quarantine.
    fn check_quarantine(slot: &DocSlot, name: &str) -> Result<(), WarehouseError> {
        if let Some(reason) = &slot.state.read().quarantined {
            return Err(WarehouseError::Quarantined {
                document: name.to_string(),
                reason: reason.clone(),
            });
        }
        Ok(())
    }

    /// Quarantines a document after a failed durable append. First failure
    /// wins: a refusal caused by an existing quarantine never overwrites the
    /// original reason.
    fn quarantine(slot: &DocSlot, reason: String) {
        let mut state = slot.state.write();
        if state.quarantined.is_none() {
            state.quarantined = Some(reason);
        }
    }

    /// Pins the current snapshot of a document: O(1), and the returned
    /// handle stays valid (and immutable) no matter what commits, drops or
    /// re-creates happen afterwards.
    pub fn snapshot(&self, name: &str) -> Result<DocSnapshot, WarehouseError> {
        let slot = self.slot(name)?;
        Self::pin(&slot, name)
    }

    /// A copy of a document's current fuzzy tree. This pins the current
    /// snapshot and clones it *outside* any lock — the clone is
    /// copy-on-write (shared arena chunks), so the cost is O(chunks)
    /// pointer bumps, not a deep copy. Prefer [`Warehouse::snapshot`] when
    /// read-only access is enough.
    pub fn document(&self, name: &str) -> Result<FuzzyTree, WarehouseError> {
        let snapshot = self.snapshot(name)?;
        Ok(snapshot.fuzzy().clone())
    }

    /// Evaluates a TPWJ query against a document (slide 3's query interface:
    /// "query → results + confidence"). Pins the current snapshot in O(1)
    /// and evaluates **lock-free** against it: queries never block — and are
    /// never blocked by — commits, not even commits to the same document.
    pub fn query(&self, name: &str, pattern: &Pattern) -> Result<FuzzyQueryResult, WarehouseError> {
        let snapshot = self.snapshot(name)?;
        let result = snapshot.fuzzy().query(pattern);
        self.stats.queries_evaluated.fetch_add(1, Ordering::Relaxed);
        Ok(result)
    }

    /// Evaluates a TPWJ query and merges the matches into distinct answer
    /// trees with exact probabilities, all against **one** pinned snapshot:
    /// the match set, the event table the conditions refer to, and the
    /// selection probability are guaranteed mutually consistent even while
    /// commits stream into the same document. Returns the snapshot's commit
    /// sequence number, the selection probability (probability that at
    /// least one match exists) and the merged `(answer tree, probability)`
    /// pairs. This is the evaluation path behind the server's `query`
    /// frame.
    pub fn query_merged(
        &self,
        name: &str,
        pattern: &Pattern,
    ) -> Result<MergedQuery, WarehouseError> {
        let snapshot = self.snapshot(name)?;
        let result = snapshot.fuzzy().query(pattern);
        let events = snapshot.fuzzy().events();
        let selection = result.selection_probability(events);
        let answers = result.merged_answers(events);
        self.stats.queries_evaluated.fetch_add(1, Ordering::Relaxed);
        Ok(MergedQuery {
            seq: snapshot.seq(),
            selection,
            answers,
        })
    }

    /// Commits a staged transaction batch to a document atomically: the
    /// batch is applied to a copy-on-write clone of the current snapshot
    /// through the policy-aware pipeline (`policy` overrides the session
    /// policy when given), journaled as one durable entry (the fsync'd
    /// journal-record append is the commit point), and only then published
    /// as the document's new snapshot by an O(1) pointer swap — an error
    /// *before* the commit point leaves the published snapshot and the
    /// journal exactly as they were. Configured maintenance (checkpoint
    /// folding) runs after the commit; a maintenance error is reported, but
    /// the commit itself is already durable and recoverable at that point.
    ///
    /// Locking: the document's commit mutex is held start to finish, so
    /// writers to the same document serialize (no lost updates); the state
    /// lock is held only for the O(1) base pin and the final swap. Commits
    /// to other documents run in parallel, and queries — even against *this*
    /// document — are never blocked: they keep reading the pre-commit
    /// snapshot until the swap publishes the new one.
    ///
    /// The apply path-copies only the arena chunks the batch touches
    /// (structural sharing with the base snapshot), so the copy work is
    /// O(changed path), not O(document). When deletions have left the arena
    /// with more than `2 × live + SLOT_SLACK` slots, a compaction is folded
    /// in before the swap, reclaiming the dead slots.
    ///
    /// This is the engine path behind [`crate::session::Txn::commit`].
    pub fn commit_batch(
        &self,
        name: &str,
        batch: &[UpdateTransaction],
        policy: Option<SimplifyPolicy>,
    ) -> Result<BatchStats, WarehouseError> {
        let policy = policy.unwrap_or(self.config.simplify);
        let slot = self.slot(name)?;
        let _commit = slot.commit.lock();
        let base = Self::pin(&slot, name)?;
        Self::check_quarantine(&slot, name)?;
        if batch.is_empty() {
            return Ok(BatchStats::default());
        }
        // Apply to a working copy first (rollback = dropping the copy), make
        // the batch durable, then publish the new snapshot. The grouped
        // append lets the backend share this batch's fsync with concurrent
        // commits to other documents; on `Sync` backends it is the plain
        // append.
        let mut working = base.fuzzy().clone();
        let mut batch_stats = BatchStats::default();
        for update in batch {
            batch_stats
                .updates
                .push(update.apply_to_fuzzy_with(&mut working, policy)?);
        }
        if let Err(error) = self.store.append_batch_grouped(name, batch) {
            // The durable commit point failed. MVCC rollback is dropping the
            // working copy — the published snapshot never moved — but the
            // journal (and, under group commit, the whole pipeline) can no
            // longer be trusted: quarantine the document so writes stop until
            // a reopen re-establishes the on-disk truth. Readers keep serving
            // the snapshot we just declined to replace.
            Self::quarantine(&slot, error.to_string());
            return Err(error.into());
        }
        let published = Self::publish(&slot, &base, working);

        // The commit happened: record it before any maintenance can fail.
        self.stats
            .updates_applied
            .fetch_add(batch.len(), Ordering::Relaxed);
        self.stats
            .simplifications
            .fetch_add(batch_stats.simplify_runs(), Ordering::Relaxed);
        // Compaction rides the commit pipeline: the journal meters are O(1)
        // backend metadata, so an undue policy costs two counter reads. The
        // commit mutex is still held, so the save + truncate cannot
        // interleave with another commit's journal append.
        let due = self.config.compaction.is_due(
            self.store.journal_batches(name)?,
            self.store.journal_size_bytes(name)?,
        );
        if due {
            self.store.checkpoint(name, published.fuzzy())?;
            self.stats.checkpoints.fetch_add(1, Ordering::Relaxed);
        }
        Ok(batch_stats)
    }

    /// Publishes `working` as the document's next snapshot (reclaiming dead
    /// arena slots first when they outnumber the live ones) and returns the
    /// published handle. Caller must hold the slot's commit mutex.
    fn publish(slot: &DocSlot, base: &DocSnapshot, mut working: FuzzyTree) -> DocSnapshot {
        if working.tree().slot_count() > 2 * working.tree().node_count() + SLOT_SLACK {
            working.compact_slots();
        }
        let next = base.successor(working);
        slot.state.write().snapshot = next.clone();
        next
    }

    /// Commits a staged batch through the **asynchronous write pipeline**:
    /// identical to [`Warehouse::commit_batch`] up to the journal hand-off,
    /// but instead of blocking for the durability fsync it *enqueues* the
    /// batch into the backend's commit window and returns an [`AsyncCommit`]
    /// that resolves at the window's fsync. The in-memory document is
    /// swapped before returning — the enqueue is the logical commit point —
    /// so later reads in this process see the batch immediately.
    ///
    /// The durability contract is deliberately weaker than the blocking
    /// path's, in exactly one way: a window fsync failure *after* this call
    /// returns cannot roll the in-memory state back. The error surfaces at
    /// [`AsyncCommit::wait`], and a restart recovers to the journal without
    /// the batch — the same outcome as crashing before a synchronous commit
    /// returned. Callers must not acknowledge the commit to *their* clients
    /// until `wait` returns `Ok`.
    ///
    /// Post-commit maintenance (compaction) is skipped on this path: the
    /// journal meters only settle at the fsync, and a compaction here would
    /// force the window to flush early, defeating the coalescing. The next
    /// blocking commit (or an explicit [`Warehouse::checkpoint`]) picks the
    /// fold up.
    pub fn commit_batch_async(
        &self,
        name: &str,
        batch: &[UpdateTransaction],
        policy: Option<SimplifyPolicy>,
    ) -> Result<AsyncCommit, WarehouseError> {
        let policy = policy.unwrap_or(self.config.simplify);
        let slot = self.slot(name)?;
        let commit = slot.commit.lock();
        let base = Self::pin(&slot, name)?;
        Self::check_quarantine(&slot, name)?;
        if batch.is_empty() {
            return Ok(AsyncCommit {
                stats: BatchStats::default(),
                ticket: CommitTicket::resolved(Ok(())),
                guard: None,
            });
        }
        let mut working = base.fuzzy().clone();
        let mut batch_stats = BatchStats::default();
        for update in batch {
            batch_stats
                .updates
                .push(update.apply_to_fuzzy_with(&mut working, policy)?);
        }
        let ticket = self.store.append_batch_enqueue(name, batch);
        // A ticket that comes back already failed — a sync-degraded backend's
        // append erred, or a poisoned committer refused the enqueue — must
        // not publish: surface the failure and quarantine exactly like the
        // blocking path.
        let ticket = if ticket.is_durable() {
            if let Err(error) = ticket.wait() {
                Self::quarantine(&slot, error.to_string());
                return Err(error.into());
            }
            CommitTicket::resolved(Ok(()))
        } else {
            ticket
        };
        Self::publish(&slot, &base, working);
        drop(commit);
        self.stats
            .updates_applied
            .fetch_add(batch.len(), Ordering::Relaxed);
        self.stats
            .simplifications
            .fetch_add(batch_stats.simplify_runs(), Ordering::Relaxed);
        Ok(AsyncCommit {
            stats: batch_stats,
            ticket,
            guard: Some(slot),
        })
    }

    /// Number of journaled updates a document has accumulated since its last
    /// compaction — O(1) from the backend's journal meters.
    pub fn journal_length(&self, name: &str) -> Result<usize, WarehouseError> {
        let slot = self.slot(name)?;
        Self::pin(&slot, name)?;
        Ok(self.store.journal_length(name)?)
    }

    /// Serialized size of a document's journal in bytes — O(1) from the
    /// backend's journal meters, the `CompactionPolicy::SizeThreshold`
    /// meter.
    pub fn journal_size_bytes(&self, name: &str) -> Result<u64, WarehouseError> {
        let slot = self.slot(name)?;
        Self::pin(&slot, name)?;
        Ok(self.store.journal_size_bytes(name)?)
    }

    /// Runs the simplifier on a document and persists the result as a fresh
    /// checkpoint. The simplifier works on a copy-on-write clone under the
    /// commit mutex (it is a writer); readers keep querying the
    /// pre-simplification snapshot until the result is published.
    pub fn simplify(&self, name: &str) -> Result<SimplifyReport, WarehouseError> {
        let slot = self.slot(name)?;
        let commit = slot.commit.lock();
        let base = Self::pin(&slot, name)?;
        Self::check_quarantine(&slot, name)?;
        let mut working = base.fuzzy().clone();
        let report = Simplifier::new().run(&mut working)?;
        self.store.checkpoint(name, &working)?;
        Self::publish(&slot, &base, working);
        drop(commit);
        self.stats.simplifications.fetch_add(1, Ordering::Relaxed);
        self.stats.checkpoints.fetch_add(1, Ordering::Relaxed);
        Ok(report)
    }

    /// Writes the current in-memory state of a document as a checkpoint and
    /// truncates its journal.
    pub fn checkpoint(&self, name: &str) -> Result<(), WarehouseError> {
        let slot = self.slot(name)?;
        {
            // The commit mutex — not the state lock — excludes concurrent
            // commits, whose journal appends must not interleave with the
            // save + truncate. Readers are unaffected.
            let _commit = slot.commit.lock();
            let snapshot = Self::pin(&slot, name)?;
            Self::check_quarantine(&slot, name)?;
            self.store.checkpoint(name, snapshot.fuzzy())?;
        }
        self.stats.checkpoints.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Lifts a document out of quarantine: takes the commit mutex (waiting
    /// out any in-flight writer), drops the in-memory state, re-establishes
    /// the on-disk truth through the backend's
    /// [`reopen_document`](StorageBackend::reopen_document) — which truncates
    /// any unsynced or torn journal tail and clears a poisoned commit
    /// pipeline — and publishes the recovered tree (checkpoint + surviving
    /// journal replayed) as the document's next snapshot with the quarantine
    /// cleared. No acknowledged commit is lost: everything the journal holds
    /// is replayed, and the failing append was rolled back before it ever
    /// resolved.
    ///
    /// Readers that pinned a pre-reopen snapshot keep it unchanged; the
    /// published sequence number still advances, so pins stay ordered. Safe
    /// on a healthy document too, where it simply re-publishes the durable
    /// state.
    pub fn reopen_document(&self, name: &str) -> Result<(), WarehouseError> {
        let slot = self.slot(name)?;
        let _commit = slot.commit.lock();
        Self::pin(&slot, name)?;
        let recovered = self.store.reopen_document(name)?;
        let mut state = slot.state.write();
        if state.dropped {
            return Err(WarehouseError::UnknownDocument(name.to_string()));
        }
        let next = state.snapshot.successor(recovered);
        state.snapshot = next;
        state.quarantined = None;
        Ok(())
    }

    /// Whether a document is currently quarantined (false for unknown names).
    pub fn is_quarantined(&self, name: &str) -> bool {
        self.slot(name)
            .map(|slot| slot.state.read().quarantined.is_some())
            .unwrap_or(false)
    }

    /// The quarantined documents and the failure that quarantined each,
    /// sorted by name. Reads only the in-memory slots — never storage — so
    /// the server's `stats` frame can afford it on every request. Shard locks
    /// are taken one at a time and dropped before the per-document state
    /// reads (lock rule 1), so the listing is a per-shard point-in-time view.
    pub fn quarantined_documents(&self) -> Vec<(String, String)> {
        let mut quarantined = Vec::new();
        for shard in &self.shards {
            let slots: Vec<(String, Slot)> = shard
                .slots
                .read()
                .iter()
                .map(|(name, slot)| (name.clone(), slot.clone()))
                .collect();
            for (name, slot) in slots {
                if let Some(reason) = slot.state.read().quarantined.clone() {
                    quarantined.push((name, reason));
                }
            }
        }
        quarantined.sort();
        quarantined
    }

    /// Running counters since the warehouse was opened. Reads atomics only —
    /// never blocks, and never delays a commit. The durability counters are
    /// folded in from the storage backend's lock-free snapshot.
    pub fn stats(&self) -> WarehouseStats {
        let mut stats = self.stats.snapshot();
        let durability = self.store.durability_stats();
        stats.fsyncs = durability.fsyncs;
        stats.grouped_commits = durability.grouped_commits;
        stats.grouped_windows = durability.grouped_windows;
        stats
    }

    /// Drains the storage backend's group-commit pipeline (see
    /// [`StorageBackend::group_barrier`]): every async commit whose handle
    /// was issued before this call is durable when it returns. Long-running
    /// embedders call this before dropping the warehouse — the `pxml-server`
    /// tenant LRU runs it on eviction and graceful shutdown so pipelined
    /// commits are never abandoned mid-window. A no-op on `Sync`-policy and
    /// in-memory backends.
    pub fn group_barrier(&self) {
        self.store.group_barrier();
    }

    /// Test hook: runs `body` while holding `name`'s commit mutex — a writer
    /// frozen mid-pipeline — proving what the mutex does (serialize writers,
    /// gate drops) and does not (block readers) cover.
    #[cfg(test)]
    pub(crate) fn with_document_commit_locked<R>(
        &self,
        name: &str,
        body: impl FnOnce() -> R,
    ) -> Result<R, WarehouseError> {
        let slot = self.slot(name)?;
        let _commit = slot.commit.lock();
        Ok(body())
    }
}

/// The result of [`Warehouse::query_merged`]: a query answer whose pieces
/// are mutually consistent because they were all read from one pinned
/// snapshot.
#[derive(Debug, Clone)]
pub struct MergedQuery {
    /// Commit sequence number of the snapshot the query ran against.
    pub seq: u64,
    /// Probability that at least one match exists in a random world.
    pub selection: f64,
    /// Distinct merged answer trees with their exact probabilities.
    pub answers: Vec<(Tree, f64)>,
}

/// The in-flight handle of an asynchronous commit
/// ([`Warehouse::commit_batch_async`] / [`crate::Txn::commit_async`]): the
/// batch is applied in memory and enqueued in the backend's commit window;
/// durability arrives at the window's fsync.
///
/// Dropping the handle without waiting still flushes the batch (the
/// underlying ticket blocks for its window on drop), but discards the
/// outcome — wait on it before acknowledging the commit to anyone.
#[must_use = "an async commit is durable only once its handle resolves"]
pub struct AsyncCommit {
    stats: BatchStats,
    ticket: CommitTicket,
    /// The document slot to quarantine if the window fsync later fails: an
    /// async commit publishes *before* durability, so a deferred failure
    /// leaves the in-memory state ahead of the journal — exactly what
    /// quarantine + reopen exist to repair. `None` only for empty batches.
    guard: Option<Slot>,
}

impl fmt::Debug for AsyncCommit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AsyncCommit")
            .field("durable", &self.ticket.is_durable())
            .finish_non_exhaustive()
    }
}

impl AsyncCommit {
    /// The per-update statistics of the (already applied) batch.
    pub fn stats(&self) -> &BatchStats {
        &self.stats
    }

    /// `true` once the batch's durability outcome is known — a non-blocking
    /// poll; [`AsyncCommit::wait`] returns the outcome itself.
    pub fn is_durable(&self) -> bool {
        self.ticket.is_durable()
    }

    /// Blocks until the batch's window has fsync'd and returns the batch
    /// statistics — the point at which the commit may be acknowledged.
    ///
    /// On a window-fsync failure the batch was already published in memory
    /// but rolled back on disk, so this quarantines the document before
    /// returning the error: subsequent writes are refused until
    /// [`Warehouse::reopen_document`] discards the phantom in-memory state
    /// and replays the journal.
    pub fn wait(self) -> Result<BatchStats, WarehouseError> {
        let AsyncCommit {
            stats,
            ticket,
            guard,
        } = self;
        match ticket.wait() {
            Ok(()) => Ok(stats),
            Err(error) => {
                if let Some(slot) = &guard {
                    Warehouse::quarantine(slot, error.to_string());
                }
                Err(error.into())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::CompactionPolicy;
    use pxml_core::Update;
    use pxml_query::PNodeId;
    use pxml_tree::parse_data_tree;
    use std::path::PathBuf;
    use std::sync::atomic::AtomicU64;
    use std::sync::mpsc;
    use std::sync::Barrier;
    use std::time::Duration;

    static COUNTER: AtomicU64 = AtomicU64::new(0);

    /// A fresh sync-policy warehouse has flushed no grouped window; the
    /// stats fold-in must surface `0.0` occupancy (not `0/0 = NaN`) so the
    /// server's `stats` frame is well-formed on brand-new tenants.
    #[test]
    fn fresh_stats_occupancy_is_zero_not_nan() {
        let stats = WarehouseStats::default();
        assert_eq!(stats.mean_window_occupancy(), 0.0);
        let sync_only = WarehouseStats {
            updates_applied: 5,
            fsyncs: 5,
            ..WarehouseStats::default()
        };
        assert!(sync_only.mean_window_occupancy().is_finite());
        assert_eq!(sync_only.mean_window_occupancy(), 0.0);
    }

    fn scratch(label: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "pxml-warehouse-test-{}-{}-{}",
            std::process::id(),
            label,
            COUNTER.fetch_add(1, Ordering::SeqCst)
        ))
    }

    fn directory() -> Tree {
        parse_data_tree(
            "<directory>\
               <person><name>alice</name></person>\
               <person><name>bob</name></person>\
             </directory>",
        )
        .unwrap()
    }

    fn add_phone(name: &str, confidence: f64) -> UpdateTransaction {
        let pattern = Pattern::parse(&format!("person {{ name[=\"{name}\"] }}")).unwrap();
        let target = pattern.root();
        Update::matching(pattern)
            .insert_at(target, parse_data_tree("<phone>+33-1</phone>").unwrap())
            .with_confidence(confidence)
            .build()
            .unwrap()
    }

    fn commit_one(
        warehouse: &Warehouse,
        name: &str,
        update: &UpdateTransaction,
    ) -> Result<BatchStats, WarehouseError> {
        warehouse.commit_batch(name, std::slice::from_ref(update), None)
    }

    /// The engine defaults used by most tests: no background simplification
    /// or compaction, so assertions see exactly what they committed.
    fn plain_config() -> SessionConfig {
        SessionConfig {
            simplify: SimplifyPolicy::Never,
            compaction: CompactionPolicy::Never,
            ..SessionConfig::default()
        }
    }

    #[test]
    fn create_query_update_cycle() {
        let dir = scratch("cycle");
        let warehouse = Warehouse::with_config(&dir, plain_config()).unwrap();
        warehouse.create_document("people", directory()).unwrap();
        assert_eq!(warehouse.document_names(), vec!["people"]);

        // Initially no phone.
        let phones = Pattern::parse("person { phone }").unwrap();
        assert!(warehouse.query("people", &phones).unwrap().is_empty());

        // An extraction module reports a phone number for alice with
        // confidence 0.8.
        let stats = commit_one(&warehouse, "people", &add_phone("alice", 0.8)).unwrap();
        assert_eq!(stats.applied_matches(), 1);

        let result = warehouse.query("people", &phones).unwrap();
        assert_eq!(result.len(), 1);
        assert!((result.matches[0].probability - 0.8).abs() < 1e-12);

        let totals = warehouse.stats();
        assert_eq!(totals.updates_applied, 1);
        assert_eq!(totals.queries_evaluated, 2);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn unknown_and_duplicate_documents_are_rejected() {
        let dir = scratch("errors");
        let warehouse = Warehouse::with_config(&dir, plain_config()).unwrap();
        warehouse.create_document("people", directory()).unwrap();
        assert!(matches!(
            warehouse.create_document("people", directory()),
            Err(WarehouseError::DuplicateDocument(_))
        ));
        let query = Pattern::parse("person").unwrap();
        assert!(matches!(
            warehouse.query("ghost", &query),
            Err(WarehouseError::UnknownDocument(_))
        ));
        assert!(matches!(
            commit_one(&warehouse, "ghost", &add_phone("alice", 0.5)),
            Err(WarehouseError::UnknownDocument(_))
        ));
        assert!(matches!(
            warehouse.drop_document("ghost"),
            Err(WarehouseError::UnknownDocument(_))
        ));
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn updates_survive_a_restart_via_journal_replay() {
        let dir = scratch("restart");
        {
            let warehouse = Warehouse::with_config(&dir, plain_config()).unwrap();
            warehouse.create_document("people", directory()).unwrap();
            commit_one(&warehouse, "people", &add_phone("alice", 0.8)).unwrap();
            commit_one(&warehouse, "people", &add_phone("bob", 0.6)).unwrap();
        }
        // Re-open: the checkpoint has no phones, the journal has both.
        let reopened = Warehouse::with_config(&dir, plain_config()).unwrap();
        let phones = Pattern::parse("person { phone }").unwrap();
        let result = reopened.query("people", &phones).unwrap();
        assert_eq!(result.len(), 2);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn compaction_policy_folds_the_journal() {
        let dir = scratch("compaction-policy");
        let warehouse = Warehouse::with_config(
            &dir,
            SessionConfig {
                simplify: SimplifyPolicy::Never,
                compaction: CompactionPolicy::EveryNBatches(2),
                ..SessionConfig::default()
            },
        )
        .unwrap();
        warehouse.create_document("people", directory()).unwrap();
        commit_one(&warehouse, "people", &add_phone("alice", 0.8)).unwrap();
        assert_eq!(warehouse.journal_length("people").unwrap(), 1);
        commit_one(&warehouse, "people", &add_phone("bob", 0.9)).unwrap();
        // After the second batch the journal is folded into the checkpoint.
        assert_eq!(warehouse.stats().checkpoints, 1);
        assert_eq!(warehouse.journal_length("people").unwrap(), 0);
        let reopened = Warehouse::with_config(&dir, plain_config()).unwrap();
        let phones = Pattern::parse("person { phone }").unwrap();
        assert_eq!(reopened.query("people", &phones).unwrap().len(), 2);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn explicit_simplify_checkpoints_and_preserves_semantics() {
        let dir = scratch("simplify");
        let warehouse = Warehouse::with_config(&dir, plain_config()).unwrap();
        warehouse.create_document("people", directory()).unwrap();
        // A conditional deletion that duplicates nodes.
        let pattern = Pattern::parse("person { name[=\"alice\"], phone }").unwrap();
        let ids: Vec<PNodeId> = pattern.node_ids().collect();
        commit_one(&warehouse, "people", &add_phone("alice", 0.8)).unwrap();
        let retract = UpdateTransaction::new(pattern, 0.5)
            .unwrap()
            .with_delete(ids[2]);
        commit_one(&warehouse, "people", &retract).unwrap();

        let before = warehouse.document("people").unwrap();
        warehouse.simplify("people").unwrap();
        let after = warehouse.document("people").unwrap();
        assert!(before.semantically_equivalent(&after, 1e-9).unwrap());
        assert!(after.condition_literal_count() <= before.condition_literal_count());
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn drop_document_removes_it_everywhere() {
        let dir = scratch("drop");
        let warehouse = Warehouse::with_config(&dir, plain_config()).unwrap();
        warehouse.create_document("people", directory()).unwrap();
        warehouse.drop_document("people").unwrap();
        assert!(warehouse.document_names().is_empty());
        assert!(!warehouse.contains("people"));
        let reopened = Warehouse::with_config(&dir, plain_config()).unwrap();
        assert!(reopened.document_names().is_empty());
        std::fs::remove_dir_all(dir).unwrap();
    }

    /// Documents hash across shards, and the registry behaves identically
    /// however many documents share a shard.
    #[test]
    fn many_documents_spread_over_the_shards() {
        let dir = scratch("many-docs");
        let warehouse = Warehouse::with_config(&dir, plain_config()).unwrap();
        let count = 3 * SHARD_COUNT;
        for i in 0..count {
            warehouse
                .create_document(&format!("doc-{i}"), directory())
                .unwrap();
        }
        assert_eq!(warehouse.document_names().len(), count);
        // Every populated shard resolves its own documents.
        for i in 0..count {
            let name = format!("doc-{i}");
            assert!(warehouse.contains(&name));
            commit_one(&warehouse, &name, &add_phone("alice", 0.7)).unwrap();
        }
        assert_eq!(warehouse.stats().updates_applied, count);
        // At least two distinct shards are in use (3×SHARD_COUNT names into
        // SHARD_COUNT buckets cannot all collide unless hashing is broken).
        let used = warehouse
            .shards
            .iter()
            .filter(|shard| !shard.slots.read().is_empty())
            .count();
        assert!(used > 1, "all {count} documents hashed into one shard");
        std::fs::remove_dir_all(dir).unwrap();
    }

    /// The core claims of the MVCC engine, tested deterministically: while
    /// one document's commit mutex is held (a writer frozen mid-pipeline),
    /// (1) queries and commits against *another* document complete, (2)
    /// queries against the busy document itself complete too — readers pin
    /// the published snapshot and never touch the commit mutex — and (3) a
    /// second *writer* of the busy document does wait.
    #[test]
    fn readers_and_other_documents_stay_available_while_one_commits() {
        let dir = scratch("independent-locks");
        let warehouse = std::sync::Arc::new(Warehouse::with_config(&dir, plain_config()).unwrap());
        warehouse.create_document("busy", directory()).unwrap();
        warehouse.create_document("idle", directory()).unwrap();

        let (done_tx, done_rx) = mpsc::channel();
        let (blocked_tx, blocked_rx) = mpsc::channel();
        warehouse
            .with_document_commit_locked("busy", || {
                // A thread works the *other* document while `busy` commits.
                let shared = warehouse.clone();
                let worker = std::thread::spawn(move || {
                    let phones = Pattern::parse("person { phone }").unwrap();
                    assert!(shared.query("idle", &phones).unwrap().is_empty());
                    commit_one(&shared, "idle", &add_phone("alice", 0.9)).unwrap();
                    assert_eq!(shared.query("idle", &phones).unwrap().len(), 1);
                    done_tx.send(()).unwrap();
                });
                done_rx
                    .recv_timeout(Duration::from_secs(30))
                    .expect("work on `idle` must not wait for `busy`'s commit");
                worker.join().unwrap();

                // A reader of `busy` itself completes immediately — from
                // its own thread, like real readers (the shard map ranks
                // above the commit mutex, so the holder must not re-enter
                // it): it reads the published snapshot, not the writer's
                // working copy.
                let shared = warehouse.clone();
                let (read_tx, read_rx) = mpsc::channel();
                let reader = std::thread::spawn(move || {
                    let phones = Pattern::parse("person { phone }").unwrap();
                    read_tx
                        .send(shared.query("busy", &phones).unwrap().len())
                        .unwrap();
                });
                let busy_matches = read_rx
                    .recv_timeout(Duration::from_secs(30))
                    .expect("a query against the committing document must not block");
                reader.join().unwrap();
                assert_eq!(busy_matches, 0);

                // A second writer of `busy` does wait for the pipeline.
                let shared = warehouse.clone();
                let writer = std::thread::spawn(move || {
                    commit_one(&shared, "busy", &add_phone("bob", 0.7)).unwrap();
                    blocked_tx.send(()).unwrap();
                });
                assert!(
                    blocked_rx.recv_timeout(Duration::from_millis(100)).is_err(),
                    "a second commit to the same document must serialize"
                );
                writer
            })
            .unwrap()
            .join()
            .unwrap();
        // Once the pipeline finishes the blocked writer completes and its
        // commit is visible.
        blocked_rx.recv_timeout(Duration::from_secs(30)).unwrap();
        let phones = Pattern::parse("person { phone }").unwrap();
        assert_eq!(warehouse.query("busy", &phones).unwrap().len(), 1);
        std::fs::remove_dir_all(dir).unwrap();
    }

    /// Barrier-started commits from many threads to disjoint documents all
    /// land, and each document ends up exactly as its own journal says.
    #[test]
    fn concurrent_commits_to_distinct_documents_all_land() {
        let dir = scratch("parallel-commits");
        let warehouse = std::sync::Arc::new(Warehouse::with_config(&dir, plain_config()).unwrap());
        let docs = 4;
        for i in 0..docs {
            warehouse
                .create_document(&format!("doc-{i}"), directory())
                .unwrap();
        }
        let per_doc = 5;
        let barrier = std::sync::Arc::new(Barrier::new(docs));
        std::thread::scope(|scope| {
            for i in 0..docs {
                let warehouse = warehouse.clone();
                let barrier = barrier.clone();
                scope.spawn(move || {
                    let name = format!("doc-{i}");
                    barrier.wait();
                    for k in 0..per_doc {
                        let who = if k % 2 == 0 { "alice" } else { "bob" };
                        commit_one(&warehouse, &name, &add_phone(who, 0.6)).unwrap();
                    }
                });
            }
        });
        assert_eq!(warehouse.stats().updates_applied, docs * per_doc);
        let phones = Pattern::parse("person { phone }").unwrap();
        for i in 0..docs {
            assert_eq!(
                warehouse.query(&format!("doc-{i}"), &phones).unwrap().len(),
                per_doc
            );
        }
        std::fs::remove_dir_all(dir).unwrap();
    }

    /// `stats()` is atomic-read only: a reader thread hammering it while
    /// writers commit always sees monotonically non-decreasing counters and
    /// never deadlocks or blocks a commit.
    #[test]
    fn stats_reads_never_block_and_stay_monotonic_during_commits() {
        let dir = scratch("stats-hammer");
        let warehouse = std::sync::Arc::new(Warehouse::with_config(&dir, plain_config()).unwrap());
        warehouse.create_document("a", directory()).unwrap();
        warehouse.create_document("b", directory()).unwrap();
        let writers = 2;
        let per_writer = 10;
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|scope| {
            let reader = {
                let warehouse = warehouse.clone();
                let stop = stop.clone();
                scope.spawn(move || {
                    let mut last = 0usize;
                    let mut reads = 0usize;
                    while !stop.load(Ordering::Relaxed) {
                        let now = warehouse.stats().updates_applied;
                        assert!(now >= last, "updates_applied went backwards");
                        last = now;
                        reads += 1;
                    }
                    reads
                })
            };
            let mut handles = Vec::new();
            for w in 0..writers {
                let warehouse = warehouse.clone();
                handles.push(scope.spawn(move || {
                    let name = if w == 0 { "a" } else { "b" };
                    for _ in 0..per_writer {
                        commit_one(&warehouse, name, &add_phone("alice", 0.7)).unwrap();
                    }
                }));
            }
            for handle in handles {
                handle.join().unwrap();
            }
            stop.store(true, Ordering::Relaxed);
            let reads = reader.join().unwrap();
            assert!(reads > 0, "the stats reader must actually have run");
        });
        assert_eq!(warehouse.stats().updates_applied, writers * per_writer);
        std::fs::remove_dir_all(dir).unwrap();
    }

    /// Dropping and re-creating a name must never let work routed through a
    /// *stale* slot leak into the new document: the drop tombstones the old
    /// entry under its write lock, so any engine path that resolved the slot
    /// before the drop reports `UnknownDocument` instead of touching the
    /// store, and the re-created document's journal stays its own.
    #[test]
    fn drop_and_recreate_tombstones_the_stale_slot() {
        let dir = scratch("drop-recreate");
        let warehouse = Warehouse::with_config(&dir, plain_config()).unwrap();
        warehouse.create_document("people", directory()).unwrap();
        commit_one(&warehouse, "people", &add_phone("alice", 0.8)).unwrap();

        // The race window: a slot resolved before the drop.
        let stale = warehouse.slot("people").unwrap();
        warehouse.drop_document("people").unwrap();
        assert!(
            stale.state.read().dropped,
            "drop must tombstone the old entry"
        );
        warehouse.create_document("people", directory()).unwrap();

        // Fresh-name traffic works and starts from the clean re-created state.
        let phones = Pattern::parse("person { phone }").unwrap();
        assert!(warehouse.query("people", &phones).unwrap().is_empty());
        commit_one(&warehouse, "people", &add_phone("bob", 0.6)).unwrap();
        assert_eq!(warehouse.query("people", &phones).unwrap().len(), 1);
        // The new document's journal holds exactly its own single batch.
        let store = pxml_store::DocumentStore::open(&dir).unwrap();
        assert_eq!(store.read_batches("people").unwrap().len(), 1);
        std::fs::remove_dir_all(dir).unwrap();
    }

    /// A drop issued while another thread holds the document's commit mutex
    /// (a commit in flight) waits for that work; once it completes, every
    /// path — including callers still holding the old slot — reports
    /// `UnknownDocument`.
    #[test]
    fn drop_waits_for_in_flight_work_then_invalidates_the_slot() {
        let dir = scratch("drop-waits");
        let warehouse = std::sync::Arc::new(Warehouse::with_config(&dir, plain_config()).unwrap());
        warehouse.create_document("people", directory()).unwrap();
        let (dropped_tx, dropped_rx) = mpsc::channel();
        let dropper = warehouse
            .with_document_commit_locked("people", || {
                let shared = warehouse.clone();
                let dropper = std::thread::spawn(move || {
                    shared.drop_document("people").unwrap();
                    dropped_tx.send(()).unwrap();
                });
                assert!(
                    dropped_rx.recv_timeout(Duration::from_millis(100)).is_err(),
                    "drop must wait for the in-flight document lock"
                );
                dropper
            })
            .unwrap();
        dropper.join().unwrap();
        dropped_rx.recv_timeout(Duration::from_secs(30)).unwrap();
        assert!(matches!(
            warehouse.query("people", &Pattern::parse("person").unwrap()),
            Err(WarehouseError::UnknownDocument(_))
        ));
        assert!(!warehouse.contains("people"));
        std::fs::remove_dir_all(dir).unwrap();
    }

    /// A `Grouped` session config reaches the backend: commits land, the
    /// durability counters flow back through `stats()`, and grouped mode
    /// issues fewer fsync rounds than there were commits once several
    /// writers share windows.
    #[test]
    fn grouped_commit_policy_threads_through_to_stats() {
        let dir = scratch("grouped-policy");
        let config = SessionConfig {
            commit: pxml_store::CommitPolicy::Grouped {
                window_max_batches: 4,
                window_max_wait: Duration::from_millis(5),
            },
            ..plain_config()
        };
        let warehouse = std::sync::Arc::new(Warehouse::with_config(&dir, config).unwrap());
        let docs = 4;
        for i in 0..docs {
            warehouse
                .create_document(&format!("doc-{i}"), directory())
                .unwrap();
        }
        let per_doc = 3;
        let barrier = std::sync::Arc::new(Barrier::new(docs));
        std::thread::scope(|scope| {
            for i in 0..docs {
                let warehouse = warehouse.clone();
                let barrier = barrier.clone();
                scope.spawn(move || {
                    let name = format!("doc-{i}");
                    barrier.wait();
                    for _ in 0..per_doc {
                        commit_one(&warehouse, &name, &add_phone("alice", 0.7)).unwrap();
                    }
                });
            }
        });
        let stats = warehouse.stats();
        let commits = docs * per_doc;
        assert_eq!(stats.updates_applied, commits);
        assert_eq!(stats.grouped_commits, commits);
        assert!(stats.grouped_windows >= 1);
        assert!(
            stats.fsyncs < commits + docs, // + docs: one round per initial save
            "grouped windows must coalesce fsyncs: {} rounds for {commits} commits",
            stats.fsyncs
        );
        assert!(stats.mean_window_occupancy() >= 1.0);
        // Everything recovers: the journals hold exactly the commits.
        let reopened = Warehouse::with_config(&dir, plain_config()).unwrap();
        let phones = Pattern::parse("person { phone }").unwrap();
        for i in 0..docs {
            assert_eq!(
                reopened.query(&format!("doc-{i}"), &phones).unwrap().len(),
                per_doc
            );
        }
        std::fs::remove_dir_all(dir).unwrap();
    }

    /// The async pipeline: `commit_batch_async` returns with the in-memory
    /// state already swapped, and `wait` resolves at the fsync with the
    /// batch durable in the journal.
    #[test]
    fn async_commit_swaps_immediately_and_resolves_durable() {
        let dir = scratch("async-commit");
        let config = SessionConfig {
            commit: pxml_store::CommitPolicy::Grouped {
                window_max_batches: 8,
                window_max_wait: Duration::from_millis(5),
            },
            ..plain_config()
        };
        let warehouse = Warehouse::with_config(&dir, config).unwrap();
        warehouse.create_document("people", directory()).unwrap();
        let phones = Pattern::parse("person { phone }").unwrap();
        let handle = warehouse
            .commit_batch_async("people", &[add_phone("alice", 0.8)], None)
            .unwrap();
        // The enqueue is the logical commit point: reads see the batch now.
        assert_eq!(warehouse.query("people", &phones).unwrap().len(), 1);
        let stats = handle.wait().unwrap();
        assert_eq!(stats.applied_matches(), 1);
        assert_eq!(warehouse.stats().updates_applied, 1);
        // Durable: a reopen replays it.
        drop(warehouse);
        let reopened = Warehouse::with_config(&dir, plain_config()).unwrap();
        assert_eq!(reopened.query("people", &phones).unwrap().len(), 1);
        std::fs::remove_dir_all(dir).unwrap();
    }

    /// `commit_batch_async` on a `Sync` backend degrades cleanly: the handle
    /// comes back already resolved.
    #[test]
    fn async_commit_on_sync_backend_is_preresolved() {
        let dir = scratch("async-sync");
        let warehouse = Warehouse::with_config(&dir, plain_config()).unwrap();
        warehouse.create_document("people", directory()).unwrap();
        let handle = warehouse
            .commit_batch_async("people", &[add_phone("bob", 0.6)], None)
            .unwrap();
        assert!(handle.is_durable());
        handle.wait().unwrap();
        assert_eq!(warehouse.journal_length("people").unwrap(), 1);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn journal_size_bytes_tracks_commits() {
        let dir = scratch("journal-size");
        let warehouse = Warehouse::with_config(&dir, plain_config()).unwrap();
        warehouse.create_document("people", directory()).unwrap();
        assert_eq!(warehouse.journal_size_bytes("people").unwrap(), 0);
        commit_one(&warehouse, "people", &add_phone("alice", 0.8)).unwrap();
        assert!(warehouse.journal_size_bytes("people").unwrap() > 0);
        assert!(matches!(
            warehouse.journal_size_bytes("ghost"),
            Err(WarehouseError::UnknownDocument(_))
        ));
        std::fs::remove_dir_all(dir).unwrap();
    }

    /// A snapshot taken while a commit is in flight reflects exactly the
    /// pre-commit state, and a snapshot pinned before the commit keeps that
    /// state forever — publishing swaps a pointer, it never mutates what
    /// readers already hold.
    #[test]
    fn snapshot_mid_commit_reflects_pre_commit_state() {
        let dir = scratch("mid-commit-snapshot");
        let warehouse = std::sync::Arc::new(Warehouse::with_config(&dir, plain_config()).unwrap());
        warehouse.create_document("people", directory()).unwrap();
        commit_one(&warehouse, "people", &add_phone("alice", 0.8)).unwrap();
        let phones = Pattern::parse("person { phone }").unwrap();
        let pinned = warehouse.snapshot("people").unwrap();

        let (committed_tx, committed_rx) = mpsc::channel();
        warehouse
            .with_document_commit_locked("people", || {
                let shared = warehouse.clone();
                let writer = std::thread::spawn(move || {
                    commit_one(&shared, "people", &add_phone("bob", 0.6)).unwrap();
                    committed_tx.send(()).unwrap();
                });
                assert!(
                    committed_rx
                        .recv_timeout(Duration::from_millis(100))
                        .is_err(),
                    "the spawned commit must be parked on the commit mutex"
                );
                // Snapshots taken *now* — mid-commit, from a reader thread
                // (the shard map ranks above the commit mutex in the lock
                // order, so the mutex holder itself must not re-enter it) —
                // see the pre-commit state, without blocking.
                let shared = warehouse.clone();
                let reader_pattern = phones.clone();
                let (read_tx, read_rx) = mpsc::channel();
                let reader = std::thread::spawn(move || {
                    let mid = shared.snapshot("people").unwrap();
                    let matches = shared.query("people", &reader_pattern).unwrap().len();
                    let observed = shared.document("people").unwrap();
                    let canonical = observed.fuzzy_canonical_string(observed.root());
                    read_tx.send((mid.seq(), matches, canonical)).unwrap();
                });
                let (mid_seq, matches, canonical) = read_rx
                    .recv_timeout(Duration::from_secs(30))
                    .expect("mid-commit readers must not block on the commit mutex");
                reader.join().unwrap();
                assert_eq!(mid_seq, pinned.seq());
                assert_eq!(matches, 1);
                assert_eq!(
                    canonical,
                    pinned.fuzzy().fuzzy_canonical_string(pinned.fuzzy().root())
                );
                writer
            })
            .unwrap()
            .join()
            .unwrap();
        committed_rx.recv_timeout(Duration::from_secs(30)).unwrap();

        // The commit landed, but the pinned snapshot is frozen in time.
        let current = warehouse.snapshot("people").unwrap();
        assert!(current.seq() > pinned.seq());
        assert_eq!(warehouse.query("people", &phones).unwrap().len(), 2);
        assert_eq!(pinned.fuzzy().tree().find_elements("phone").len(), 1);
        std::fs::remove_dir_all(dir).unwrap();
    }

    /// The whole point of the chunked arena: a commit path-copies only the
    /// chunks its batch touches. Ten single-insert commits against a large
    /// document must copy a handful of chunks each, nowhere near the full
    /// chunk count a clone-the-world pipeline would pay per commit.
    #[test]
    fn commits_copy_only_the_touched_chunks() {
        let dir = scratch("cow-chunks");
        let warehouse = Warehouse::with_config(&dir, plain_config()).unwrap();
        let mut xml = String::from("<directory>");
        for i in 0..300 {
            xml.push_str(&format!("<person><name>p{i:03}</name></person>"));
        }
        xml.push_str("</directory>");
        warehouse
            .create_document("people", parse_data_tree(&xml).unwrap())
            .unwrap();

        let before = warehouse.snapshot("people").unwrap();
        let chunks = before.fuzzy().tree().slot_count().div_ceil(64);
        assert!(chunks >= 10, "document must span many chunks");
        let copies_before = before.fuzzy().tree().chunk_copies();

        let commits = 10;
        for i in 0..commits {
            let update = add_phone(&format!("p{i:03}"), 0.9);
            commit_one(&warehouse, "people", &update).unwrap();
        }

        let after = warehouse.snapshot("people").unwrap();
        let copied = after.fuzzy().tree().chunk_copies() - copies_before;
        // Each commit touches the tail chunk (append) and the chunk holding
        // the matched person; leave slack for condition bookkeeping.
        assert!(
            copied <= commits * 4,
            "expected O(touched chunks) copies, got {copied} across {commits} commits \
             of a {chunks}-chunk document"
        );
        std::fs::remove_dir_all(dir).unwrap();
    }

    /// Regression for the arena slot leak: `remove_subtree` only marks slots
    /// dead and insertion always appends, so a long insert/delete churn used
    /// to grow the arena without bound. The commit pipeline now compacts the
    /// arena when dead slots dominate, keeping the slot count within a
    /// constant factor of the live node count.
    #[test]
    fn arena_slots_reclaimed_after_churn() {
        let dir = scratch("slot-churn");
        let warehouse = Warehouse::with_config(&dir, plain_config()).unwrap();
        warehouse.create_document("people", directory()).unwrap();

        let delete_phone = {
            let pattern = Pattern::parse("person { name[=\"alice\"], phone }").unwrap();
            let phone = pattern.node_ids().nth(2).unwrap();
            Update::matching(pattern).delete_at(phone).build().unwrap()
        };
        for _ in 0..200 {
            commit_one(&warehouse, "people", &add_phone("alice", 1.0)).unwrap();
            // Certain deletion: the subtree is removed outright, leaving a
            // dead slot behind.
            commit_one(&warehouse, "people", &delete_phone).unwrap();
        }
        commit_one(&warehouse, "people", &add_phone("alice", 1.0)).unwrap();

        let snapshot = warehouse.snapshot("people").unwrap();
        let tree = snapshot.fuzzy().tree();
        assert!(
            tree.slot_count() <= 2 * tree.node_count() + SLOT_SLACK,
            "arena leaked: {} slots for {} live nodes",
            tree.slot_count(),
            tree.node_count()
        );
        // The churn didn't corrupt anything: exactly the final phone is live.
        let phones = Pattern::parse("person { phone }").unwrap();
        assert_eq!(warehouse.query("people", &phones).unwrap().len(), 1);
        std::fs::remove_dir_all(dir).unwrap();
    }

    /// The quarantine battery, blocking path: an injected fsync failure on a
    /// commit (1) surfaces the storage error and publishes nothing, (2)
    /// leaves readers on the last durable snapshot, (3) refuses every
    /// subsequent write with the typed quarantine error, and (4) is fully
    /// repaired by `reopen_document` — write availability back, zero
    /// acknowledged commits lost, zero phantom commits.
    #[test]
    fn failed_commit_quarantines_writes_but_readers_survive() {
        let dir = scratch("quarantine-sync");
        // `save_document` syncs outside the fault-counted fsync rounds, so
        // round #2 is the second commit's append.
        let plan = std::sync::Arc::new(
            pxml_store::FaultPlan::new().fail_nth(pxml_store::FaultOp::Fsync, 2),
        );
        let backend = FsBackend::with_options(
            &dir,
            FsOptions {
                fault: Some(plan),
                ..FsOptions::default()
            },
        )
        .unwrap();
        let warehouse =
            Warehouse::with_backend(std::sync::Arc::new(backend), plain_config()).unwrap();
        warehouse.create_document("people", directory()).unwrap();
        commit_one(&warehouse, "people", &add_phone("alice", 0.8)).unwrap();
        let phones = Pattern::parse("person { phone }").unwrap();

        let err = commit_one(&warehouse, "people", &add_phone("bob", 0.6)).unwrap_err();
        assert!(matches!(err, WarehouseError::Store(_)), "got {err}");
        // Readers: still the last durable snapshot, not the failed batch.
        assert_eq!(warehouse.query("people", &phones).unwrap().len(), 1);
        assert!(warehouse.is_quarantined("people"));
        let listed = warehouse.quarantined_documents();
        assert_eq!(listed.len(), 1);
        assert_eq!(listed[0].0, "people");
        // Writers: every mutation path reports the typed error.
        assert!(matches!(
            commit_one(&warehouse, "people", &add_phone("bob", 0.6)),
            Err(WarehouseError::Quarantined { .. })
        ));
        assert!(matches!(
            warehouse.commit_batch_async("people", &[add_phone("bob", 0.6)], None),
            Err(WarehouseError::Quarantined { .. })
        ));
        assert!(matches!(
            warehouse.simplify("people"),
            Err(WarehouseError::Quarantined { .. })
        ));
        assert!(matches!(
            warehouse.checkpoint("people"),
            Err(WarehouseError::Quarantined { .. })
        ));

        // Reopen: quarantine lifted, no data lost, writes land again.
        warehouse.reopen_document("people").unwrap();
        assert!(!warehouse.is_quarantined("people"));
        assert!(warehouse.quarantined_documents().is_empty());
        assert_eq!(warehouse.query("people", &phones).unwrap().len(), 1);
        commit_one(&warehouse, "people", &add_phone("bob", 0.6)).unwrap();
        assert_eq!(warehouse.query("people", &phones).unwrap().len(), 2);
        // And the repair is durable: a cold restart replays exactly the
        // acknowledged commits.
        drop(warehouse);
        let reopened = Warehouse::with_config(&dir, plain_config()).unwrap();
        assert_eq!(reopened.query("people", &phones).unwrap().len(), 2);
        std::fs::remove_dir_all(dir).unwrap();
    }

    /// The quarantine battery, async path: the enqueue published the batch
    /// in memory before the window fsync failed, so the deferred error at
    /// `wait` quarantines the document, and `reopen_document` discards the
    /// phantom in-memory state — the journal never acknowledged the batch.
    #[test]
    fn async_window_failure_quarantines_at_wait_and_reopen_discards_phantom() {
        let dir = scratch("quarantine-async");
        let plan = std::sync::Arc::new(
            pxml_store::FaultPlan::new().fail_nth(pxml_store::FaultOp::Fsync, 1),
        );
        let backend = FsBackend::with_options(
            &dir,
            FsOptions {
                commit: pxml_store::CommitPolicy::Grouped {
                    window_max_batches: 4,
                    window_max_wait: Duration::from_millis(5),
                },
                fault: Some(plan),
                ..FsOptions::default()
            },
        )
        .unwrap();
        let warehouse =
            Warehouse::with_backend(std::sync::Arc::new(backend), plain_config()).unwrap();
        warehouse.create_document("people", directory()).unwrap();
        let phones = Pattern::parse("person { phone }").unwrap();
        let pinned = warehouse.snapshot("people").unwrap();

        let handle = warehouse
            .commit_batch_async("people", &[add_phone("alice", 0.8)], None)
            .unwrap();
        // The enqueue is the logical commit point: in-memory reads see it.
        assert_eq!(warehouse.query("people", &phones).unwrap().len(), 1);
        // The window fsync fails: the deferred error surfaces at wait and
        // quarantines the document.
        let err = handle.wait().unwrap_err();
        assert!(matches!(err, WarehouseError::Store(_)), "got {err}");
        assert!(warehouse.is_quarantined("people"));
        assert!(matches!(
            commit_one(&warehouse, "people", &add_phone("bob", 0.6)),
            Err(WarehouseError::Quarantined { .. })
        ));

        // Reopen: the phantom batch is gone (it was never durable), the
        // sequence still advances past every earlier pin, and writes land.
        warehouse.reopen_document("people").unwrap();
        assert!(!warehouse.is_quarantined("people"));
        assert_eq!(warehouse.query("people", &phones).unwrap().len(), 0);
        assert!(warehouse.snapshot("people").unwrap().seq() > pinned.seq());
        commit_one(&warehouse, "people", &add_phone("bob", 0.6)).unwrap();
        assert_eq!(warehouse.query("people", &phones).unwrap().len(), 1);
        drop(warehouse);
        let reopened = Warehouse::with_config(&dir, plain_config()).unwrap();
        assert_eq!(reopened.query("people", &phones).unwrap().len(), 1);
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn warehouse_is_shareable_across_threads() {
        let dir = scratch("threads");
        let warehouse = std::sync::Arc::new(Warehouse::with_config(&dir, plain_config()).unwrap());
        warehouse.create_document("people", directory()).unwrap();
        let mut handles = Vec::new();
        for i in 0..4 {
            let shared = warehouse.clone();
            handles.push(std::thread::spawn(move || {
                let who = if i % 2 == 0 { "alice" } else { "bob" };
                commit_one(&shared, "people", &add_phone(who, 0.7)).unwrap();
                let query = Pattern::parse("person { phone }").unwrap();
                shared.query("people", &query).unwrap().len()
            }));
        }
        for handle in handles {
            assert!(handle.join().unwrap() >= 1);
        }
        assert_eq!(warehouse.stats().updates_applied, 4);
        std::fs::remove_dir_all(dir).unwrap();
    }
}
