//! Property-based checks of the possible-worlds expansion: for any small
//! fuzzy tree, `to_possible_worlds()` is a probability distribution (total
//! mass 1) and never produces more worlds than there are valuations of the
//! event table (2^|events|).

use proptest::prelude::*;
use pxml_core::FuzzyTree;
use pxml_event::{EventId, Literal};

/// Blueprint of a small random fuzzy tree:
///
/// * `nodes` — each entry adds an element whose parent is chosen (modulo)
///   among the nodes created so far and whose label is drawn from a small
///   alphabet, so trees of any shape up to 9 nodes appear;
/// * `probabilities` — per-event probabilities, strictly inside (0, 1);
/// * `annotations` — `(event, sign, node)` triples conjoined onto node
///   conditions when the result stays consistent.
fn fuzzy_strategy() -> impl Strategy<Value = FuzzyTree> {
    (
        proptest::collection::vec((0usize..8, 0u8..4), 0..8),
        proptest::collection::vec(1u32..100, 0..5),
        proptest::collection::vec((0usize..4, any::<bool>(), 1usize..9), 0..8),
    )
        .prop_map(|(nodes, probabilities, annotations)| {
            let mut fuzzy = FuzzyTree::new("root");
            let mut created = vec![fuzzy.root()];
            for (parent_choice, label) in nodes {
                let parent = created[parent_choice % created.len()];
                created.push(fuzzy.add_element(parent, format!("l{label}")));
            }
            let events: Vec<EventId> = probabilities
                .iter()
                .map(|p| fuzzy.fresh_event(*p as f64 / 100.0).unwrap())
                .collect();
            if events.is_empty() {
                return fuzzy;
            }
            for (event_choice, positive, node_choice) in annotations {
                let node = created[node_choice % created.len()];
                if node == fuzzy.root() {
                    continue;
                }
                let event = events[event_choice % events.len()];
                let literal = if positive {
                    Literal::pos(event)
                } else {
                    Literal::neg(event)
                };
                let condition = fuzzy.condition(node).and_literal(literal);
                if condition.is_consistent() {
                    fuzzy.set_condition(node, condition).unwrap();
                }
            }
            fuzzy
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `to_possible_worlds()` always yields a probability distribution.
    #[test]
    fn expansion_total_probability_is_one(fuzzy in fuzzy_strategy()) {
        let worlds = fuzzy.to_possible_worlds().unwrap();
        let total = worlds.total_probability();
        prop_assert!(
            (total - 1.0).abs() < 1e-9,
            "total probability {total} for {} events, {} nodes",
            fuzzy.event_count(),
            fuzzy.node_count()
        );
    }

    /// Distinct worlds are induced by valuations of the event table, so there
    /// can never be more than 2^|events| of them.
    #[test]
    fn expansion_world_count_is_bounded_by_valuations(fuzzy in fuzzy_strategy()) {
        let worlds = fuzzy.to_possible_worlds().unwrap();
        let bound = 1usize << fuzzy.event_count().min(63);
        prop_assert!(
            worlds.len() <= bound,
            "{} worlds from {} events (bound {bound})",
            worlds.len(),
            fuzzy.event_count()
        );
        // And each world's probability is itself a probability.
        for &(_, probability) in worlds.iter() {
            prop_assert!((0.0..=1.0 + 1e-12).contains(&probability));
        }
    }
}
