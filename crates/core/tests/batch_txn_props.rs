//! Property-based checks of the staged-batch semantics: committing a batch
//! of two probabilistic updates is equivalent to applying them sequentially,
//! on the fuzzy tree and on the possible-worlds model (the commutation
//! diagram of slide 14, lifted to batches), and the inline simplification
//! policy never changes the semantics of a commit.

use proptest::prelude::*;
use pxml_core::{apply_batch, FuzzyTree, SimplifyPolicy, Update, UpdateTransaction};
use pxml_event::{EventId, Literal};
use pxml_query::Pattern;
use pxml_tree::parse_data_tree;

/// Blueprint of a small random fuzzy tree (same shape as
/// `worlds_props::fuzzy_strategy`): nodes pick their parent among the nodes
/// created so far, labels come from a 4-letter alphabet, and consistent
/// event literals are conjoined onto node conditions.
fn fuzzy_strategy() -> impl Strategy<Value = FuzzyTree> {
    (
        proptest::collection::vec((0usize..8, 0u8..4), 0..8),
        proptest::collection::vec(1u32..100, 0..4),
        proptest::collection::vec((0usize..4, any::<bool>(), 1usize..9), 0..6),
    )
        .prop_map(|(nodes, probabilities, annotations)| {
            let mut fuzzy = FuzzyTree::new("root");
            let mut created = vec![fuzzy.root()];
            for (parent_choice, label) in nodes {
                let parent = created[parent_choice % created.len()];
                created.push(fuzzy.add_element(parent, format!("l{label}")));
            }
            let events: Vec<EventId> = probabilities
                .iter()
                .map(|p| fuzzy.fresh_event(*p as f64 / 100.0).unwrap())
                .collect();
            if events.is_empty() {
                return fuzzy;
            }
            for (event_choice, positive, node_choice) in annotations {
                let node = created[node_choice % created.len()];
                if node == fuzzy.root() {
                    continue;
                }
                let event = events[event_choice % events.len()];
                let literal = if positive {
                    Literal::pos(event)
                } else {
                    Literal::neg(event)
                };
                let condition = fuzzy.condition(node).and_literal(literal);
                if condition.is_consistent() {
                    fuzzy.set_condition(node, condition).unwrap();
                }
            }
            fuzzy
        })
}

/// A small random probabilistic update: insert below the matched root /
/// delete the matched child / both, anchored at a `root { lX }` pattern.
fn update_strategy() -> impl Strategy<Value = UpdateTransaction> {
    (0u8..4, 0u8..3, 50u32..=100).prop_map(|(label, kind, confidence)| {
        let pattern = Pattern::parse(&format!("root {{ l{label} }}")).unwrap();
        let ids: Vec<_> = pattern.node_ids().collect();
        let mut update = Update::matching(pattern).with_confidence(confidence as f64 / 100.0);
        if kind != 1 {
            update = update.insert_at(ids[0], parse_data_tree("<fresh/>").unwrap());
        }
        if kind != 0 {
            update = update.delete_at(ids[1]);
        }
        update.build().unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A staged batch of two updates equals applying them one at a time on
    /// the fuzzy tree.
    #[test]
    fn batch_of_two_equals_sequential_application(
        fuzzy in fuzzy_strategy(),
        u1 in update_strategy(),
        u2 in update_strategy(),
    ) {
        let mut batched = fuzzy.clone();
        apply_batch(&mut batched, &[u1.clone(), u2.clone()], SimplifyPolicy::Never).unwrap();

        let mut sequential = fuzzy;
        u1.apply_to_fuzzy(&mut sequential).unwrap();
        u2.apply_to_fuzzy(&mut sequential).unwrap();

        prop_assert!(batched.semantically_equivalent(&sequential, 1e-9).unwrap());
    }

    /// The commutation diagram, lifted to batches: committing the batch and
    /// then expanding equals expanding first and updating every world with
    /// each staged update in order.
    #[test]
    fn batch_commutes_with_the_possible_worlds_model(
        fuzzy in fuzzy_strategy(),
        u1 in update_strategy(),
        u2 in update_strategy(),
    ) {
        let via_worlds = fuzzy.to_possible_worlds().unwrap().update(&u1).update(&u2);

        let mut committed = fuzzy;
        apply_batch(&mut committed, &[u1, u2], SimplifyPolicy::Never).unwrap();
        let via_batch = committed.to_possible_worlds().unwrap();

        prop_assert!(via_batch.equivalent(&via_worlds, 1e-9));
    }

    /// The inline simplification policy shrinks the representation, never
    /// the semantics.
    #[test]
    fn inline_policy_preserves_batch_semantics(
        fuzzy in fuzzy_strategy(),
        u1 in update_strategy(),
        u2 in update_strategy(),
    ) {
        let mut plain = fuzzy.clone();
        apply_batch(&mut plain, &[u1.clone(), u2.clone()], SimplifyPolicy::Never).unwrap();

        let mut inlined = fuzzy;
        let stats = apply_batch(&mut inlined, &[u1, u2], SimplifyPolicy::Inline).unwrap();

        prop_assert_eq!(stats.simplify_runs(), 2);
        prop_assert!(inlined.node_count() <= plain.node_count());
        prop_assert!(inlined.validate().is_ok());
        prop_assert!(inlined.semantically_equivalent(&plain, 1e-9).unwrap());
    }
}
