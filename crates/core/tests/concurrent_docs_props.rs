//! Property-based checks that *interleaved* batches on distinct documents
//! commute with the possible-worlds semantics: however a scheduler
//! interleaves the commit order of two documents' batch queues, each
//! document ends in the state the worlds model prescribes for its own queue
//! alone. Documents carry disjoint event tables, so their joint distribution
//! is the product of the per-document ones — per-document equivalence *is*
//! the joint claim. This is the semantic ground the warehouse's per-document
//! locking stands on: commits to different documents need no ordering
//! between them.

use proptest::prelude::*;
use pxml_core::{apply_batch, FuzzyTree, SimplifyPolicy, Update, UpdateTransaction};
use pxml_event::{EventId, Literal};
use pxml_query::Pattern;
use pxml_tree::parse_data_tree;

/// Blueprint of a small random fuzzy tree (same shape as the strategy in
/// `batch_txn_props`): nodes pick their parent among the nodes created so
/// far, labels come from a 4-letter alphabet, and consistent event literals
/// are conjoined onto node conditions.
fn fuzzy_strategy() -> impl Strategy<Value = FuzzyTree> {
    (
        proptest::collection::vec((0usize..8, 0u8..4), 0..6),
        proptest::collection::vec(1u32..100, 0..3),
        proptest::collection::vec((0usize..3, any::<bool>(), 1usize..7), 0..4),
    )
        .prop_map(|(nodes, probabilities, annotations)| {
            let mut fuzzy = FuzzyTree::new("root");
            let mut created = vec![fuzzy.root()];
            for (parent_choice, label) in nodes {
                let parent = created[parent_choice % created.len()];
                created.push(fuzzy.add_element(parent, format!("l{label}")));
            }
            let events: Vec<EventId> = probabilities
                .iter()
                .map(|p| fuzzy.fresh_event(*p as f64 / 100.0).unwrap())
                .collect();
            if events.is_empty() {
                return fuzzy;
            }
            for (event_choice, positive, node_choice) in annotations {
                let node = created[node_choice % created.len()];
                if node == fuzzy.root() {
                    continue;
                }
                let event = events[event_choice % events.len()];
                let literal = if positive {
                    Literal::pos(event)
                } else {
                    Literal::neg(event)
                };
                let condition = fuzzy.condition(node).and_literal(literal);
                if condition.is_consistent() {
                    fuzzy.set_condition(node, condition).unwrap();
                }
            }
            fuzzy
        })
}

/// A small random probabilistic update: insert below the matched root /
/// delete the matched child / both, anchored at a `root { lX }` pattern.
fn update_strategy() -> impl Strategy<Value = UpdateTransaction> {
    (0u8..4, 0u8..3, 50u32..=100).prop_map(|(label, kind, confidence)| {
        let pattern = Pattern::parse(&format!("root {{ l{label} }}")).unwrap();
        let ids: Vec<_> = pattern.node_ids().collect();
        let mut update = Update::matching(pattern).with_confidence(confidence as f64 / 100.0);
        if kind != 1 {
            update = update.insert_at(ids[0], parse_data_tree("<fresh/>").unwrap());
        }
        if kind != 0 {
            update = update.delete_at(ids[1]);
        }
        update.build().unwrap()
    })
}

/// A queue of batches for one document.
fn batch_queue_strategy() -> impl Strategy<Value = Vec<Vec<UpdateTransaction>>> {
    proptest::collection::vec(proptest::collection::vec(update_strategy(), 1..3), 1..3)
}

/// Applies the two documents' batch queues in the interleaved order the
/// boolean schedule dictates (`true` = document A commits its next batch,
/// `false` = document B; exhausted queues fall through to the other, and
/// leftovers drain in order at the end — per-document order is always
/// preserved, as the engine's per-document lock guarantees).
fn apply_interleaved(
    doc_a: &mut FuzzyTree,
    doc_b: &mut FuzzyTree,
    queue_a: &[Vec<UpdateTransaction>],
    queue_b: &[Vec<UpdateTransaction>],
    schedule: &[bool],
) {
    let (mut next_a, mut next_b) = (0, 0);
    let commit_a = |next_a: &mut usize, doc_a: &mut FuzzyTree| {
        apply_batch(doc_a, &queue_a[*next_a], SimplifyPolicy::Never).unwrap();
        *next_a += 1;
    };
    let commit_b = |next_b: &mut usize, doc_b: &mut FuzzyTree| {
        apply_batch(doc_b, &queue_b[*next_b], SimplifyPolicy::Never).unwrap();
        *next_b += 1;
    };
    for &pick_a in schedule {
        match (pick_a, next_a < queue_a.len(), next_b < queue_b.len()) {
            (true, true, _) | (false, true, false) => commit_a(&mut next_a, doc_a),
            (false, _, true) | (true, false, true) => commit_b(&mut next_b, doc_b),
            _ => break,
        }
    }
    while next_a < queue_a.len() {
        commit_a(&mut next_a, doc_a);
    }
    while next_b < queue_b.len() {
        commit_b(&mut next_b, doc_b);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Whatever the global interleaving, each document's final possible
    /// worlds equal its own queue applied through the worlds model (expand
    /// first, update every world per staged update, in queue order).
    #[test]
    fn interleaved_batches_on_distinct_documents_commute_with_worlds(
        fuzzy_a in fuzzy_strategy(),
        fuzzy_b in fuzzy_strategy(),
        queue_a in batch_queue_strategy(),
        queue_b in batch_queue_strategy(),
        schedule in proptest::collection::vec(any::<bool>(), 6),
    ) {
        let mut doc_a = fuzzy_a.clone();
        let mut doc_b = fuzzy_b.clone();
        apply_interleaved(&mut doc_a, &mut doc_b, &queue_a, &queue_b, &schedule);

        let mut expected_a = fuzzy_a.to_possible_worlds().unwrap();
        for update in queue_a.iter().flatten() {
            expected_a = expected_a.update(update);
        }
        let mut expected_b = fuzzy_b.to_possible_worlds().unwrap();
        for update in queue_b.iter().flatten() {
            expected_b = expected_b.update(update);
        }

        prop_assert!(doc_a.to_possible_worlds().unwrap().equivalent(&expected_a, 1e-9));
        prop_assert!(doc_b.to_possible_worlds().unwrap().equivalent(&expected_b, 1e-9));
    }

    /// Two different interleavings of the same queues agree with each other
    /// document by document (schedule-independence, stated directly).
    #[test]
    fn any_two_interleavings_agree(
        fuzzy_a in fuzzy_strategy(),
        fuzzy_b in fuzzy_strategy(),
        queue_a in batch_queue_strategy(),
        queue_b in batch_queue_strategy(),
        schedule_x in proptest::collection::vec(any::<bool>(), 6),
        schedule_y in proptest::collection::vec(any::<bool>(), 6),
    ) {
        let mut ax = fuzzy_a.clone();
        let mut bx = fuzzy_b.clone();
        apply_interleaved(&mut ax, &mut bx, &queue_a, &queue_b, &schedule_x);
        let mut ay = fuzzy_a;
        let mut by = fuzzy_b;
        apply_interleaved(&mut ay, &mut by, &queue_a, &queue_b, &schedule_y);

        prop_assert!(ax.semantically_equivalent(&ay, 1e-9).unwrap());
        prop_assert!(bx.semantically_equivalent(&by, 1e-9).unwrap());
    }
}
