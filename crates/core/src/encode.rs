//! Expressiveness: encoding a possible-worlds set as a fuzzy tree.
//!
//! Slide 12 states that *the fuzzy tree model is as expressive as the
//! possible-worlds model*. One direction is [`crate::fuzzy::FuzzyTree::to_possible_worlds`];
//! this module provides the other: given any finite set of worlds sharing a
//! root label, build a fuzzy tree whose possible-worlds semantics is exactly
//! that set.
//!
//! The construction introduces `n − 1` *selector* events `s₁ … s_{n−1}` for
//! `n` worlds and attaches world `i`'s children under the common root with
//! the mutually exclusive condition `¬s₁ ∧ … ∧ ¬s_{i−1} ∧ sᵢ` (the last world
//! uses `¬s₁ ∧ … ∧ ¬s_{n−1}`). The selector probabilities are chosen so that
//! each world keeps its probability ("stick-breaking"):
//! `P(sᵢ) = pᵢ / (1 − p₁ − … − p_{i−1})`.

use pxml_event::{Condition, Literal};

use crate::error::CoreError;
use crate::fuzzy::FuzzyTree;
use crate::worlds::PossibleWorlds;

/// Encodes a (non-empty) possible-worlds set as a fuzzy tree with the same
/// semantics. The input is normalised and rescaled to a probability
/// distribution first; all worlds must share the same root label.
pub fn encode_possible_worlds(worlds: &PossibleWorlds) -> Result<FuzzyTree, CoreError> {
    let worlds = worlds.rescaled()?;
    let mut iter = worlds.iter();
    let (first_tree, _) = iter.next().ok_or(CoreError::EmptyWorldSet)?;
    let root_label = first_tree.label(first_tree.root()).clone();
    for (tree, _) in worlds.iter() {
        if tree.label(tree.root()) != &root_label {
            return Err(CoreError::HeterogeneousRoots);
        }
    }

    let mut fuzzy = FuzzyTree::new(root_label);
    let world_list: Vec<_> = worlds.iter().cloned().collect();
    let count = world_list.len();

    // Selector events with stick-breaking probabilities.
    let mut selectors = Vec::new();
    let mut remaining = 1.0_f64;
    for (index, (_, probability)) in world_list.iter().enumerate() {
        if index + 1 == count {
            break; // the last world is selected when no selector fires
        }
        let conditional = if remaining <= f64::EPSILON {
            0.0
        } else {
            (probability / remaining).clamp(0.0, 1.0)
        };
        let event = fuzzy.add_event(format!("s{}", index + 1), conditional)?;
        selectors.push(event);
        remaining -= probability;
    }

    // Attach each world's children under the shared root, conditioned on the
    // world's selector condition.
    for (index, (tree, _)) in world_list.iter().enumerate() {
        let mut literals: Vec<Literal> = selectors
            .iter()
            .take(index)
            .map(|&event| Literal::neg(event))
            .collect();
        if index < selectors.len() {
            literals.push(Literal::pos(selectors[index]));
        }
        let condition = Condition::from_literals(literals);
        for &child in tree.children(tree.root()) {
            fuzzy.graft_subtree(fuzzy.root(), tree, child, condition.clone());
        }
        // A world consisting of the bare root contributes no children; its
        // probability is still accounted for by the selector construction.
    }
    Ok(fuzzy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pxml_tree::parse_data_tree;

    fn slide9() -> PossibleWorlds {
        PossibleWorlds::from_worlds(vec![
            (parse_data_tree("<A><C/></A>").unwrap(), 0.06),
            (parse_data_tree("<A><C/><D/></A>").unwrap(), 0.14),
            (parse_data_tree("<A><B/><C/></A>").unwrap(), 0.24),
            (parse_data_tree("<A><B/><C/><D/></A>").unwrap(), 0.56),
        ])
        .unwrap()
    }

    #[test]
    fn encoding_round_trips_slide9() {
        let worlds = slide9();
        let fuzzy = encode_possible_worlds(&worlds).unwrap();
        assert!(fuzzy.validate().is_ok());
        assert_eq!(fuzzy.event_count(), 3);
        let expanded = fuzzy.to_possible_worlds().unwrap();
        assert!(expanded.equivalent(&worlds, 1e-9));
    }

    #[test]
    fn encoding_a_single_world_needs_no_event() {
        let tree = parse_data_tree("<r><a>1</a><b/></r>").unwrap();
        let worlds = PossibleWorlds::certain(tree.clone());
        let fuzzy = encode_possible_worlds(&worlds).unwrap();
        assert_eq!(fuzzy.event_count(), 0);
        assert!(fuzzy.tree().isomorphic(&tree));
    }

    #[test]
    fn encoding_rescales_unnormalised_input() {
        let mut worlds = PossibleWorlds::new();
        worlds.push(parse_data_tree("<r><a/></r>").unwrap(), 2.0);
        worlds.push(parse_data_tree("<r><b/></r>").unwrap(), 6.0);
        let fuzzy = encode_possible_worlds(&worlds).unwrap();
        let expanded = fuzzy.to_possible_worlds().unwrap();
        let a = parse_data_tree("<r><a/></r>").unwrap();
        assert!((expanded.probability_of_tree(&a) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn encoding_merges_isomorphic_worlds_first() {
        let mut worlds = PossibleWorlds::new();
        worlds.push(parse_data_tree("<r><a/><b/></r>").unwrap(), 0.3);
        worlds.push(parse_data_tree("<r><b/><a/></r>").unwrap(), 0.3);
        worlds.push(parse_data_tree("<r/>").unwrap(), 0.4);
        let fuzzy = encode_possible_worlds(&worlds).unwrap();
        // Two distinct worlds → a single selector event.
        assert_eq!(fuzzy.event_count(), 1);
        let expanded = fuzzy.to_possible_worlds().unwrap();
        assert!(
            (expanded.probability_of_tree(&parse_data_tree("<r><a/><b/></r>").unwrap()) - 0.6)
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn worlds_with_bare_root_are_supported() {
        let mut worlds = PossibleWorlds::new();
        worlds.push(parse_data_tree("<r/>").unwrap(), 0.5);
        worlds.push(parse_data_tree("<r><x/></r>").unwrap(), 0.5);
        let fuzzy = encode_possible_worlds(&worlds).unwrap();
        let expanded = fuzzy.to_possible_worlds().unwrap();
        assert!(expanded.equivalent(&worlds, 1e-9));
    }

    #[test]
    fn heterogeneous_roots_are_rejected() {
        let mut worlds = PossibleWorlds::new();
        worlds.push(parse_data_tree("<a/>").unwrap(), 0.5);
        worlds.push(parse_data_tree("<b/>").unwrap(), 0.5);
        assert!(matches!(
            encode_possible_worlds(&worlds),
            Err(CoreError::HeterogeneousRoots)
        ));
    }

    #[test]
    fn empty_world_set_is_rejected() {
        assert!(matches!(
            encode_possible_worlds(&PossibleWorlds::new()),
            Err(CoreError::EmptyWorldSet)
        ));
    }

    #[test]
    fn queries_agree_after_encoding() {
        use pxml_query::Pattern;
        let worlds = slide9();
        let fuzzy = encode_possible_worlds(&worlds).unwrap();
        let query = Pattern::parse("A { B, D }").unwrap();
        let direct = worlds.query(&query);
        let via_fuzzy = fuzzy.query(&query).as_possible_worlds(fuzzy.events());
        assert!(direct.equivalent(&via_fuzzy, 1e-9));
    }
}
