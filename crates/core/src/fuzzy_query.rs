//! Querying fuzzy trees (slide 13).
//!
//! A TPWJ query is evaluated on the *underlying* data tree; every match is
//! returned together with:
//!
//! * its minimal-subtree answer, and
//! * its **match condition** — the conjunction of the existence conditions of
//!   all mapped nodes (and of the text children supplying the values used by
//!   value tests and joins) — whose probability is the probability that the
//!   match exists in a random world.
//!
//! When several matches yield unordered-isomorphic answers, the probability
//! of that *answer* is the probability of the **disjunction** of their match
//! conditions, computed exactly on a reduced ordered BDD (one weighted
//! model-counting walk, linear in diagram size — see [`pxml_event::Bdd`]);
//! this is what makes the commutation theorem of slide 13 hold:
//! `query(worlds(F)) = worlds(query(F))`.

use std::collections::hash_map::Entry;
use std::collections::HashMap;

use pxml_event::{Bdd, BddRef, Condition, EventTable, Literal};
use pxml_query::{Matching, Pattern};
use pxml_tree::{CanonicalForm, NodeId, Tree};

use crate::fuzzy::FuzzyTree;
use crate::worlds::PossibleWorlds;

/// A query match on a fuzzy tree, with its answer and probability.
#[derive(Debug, Clone)]
pub struct ProbabilisticMatch {
    /// The match (images of all pattern nodes in the underlying tree).
    pub matching: Matching,
    /// The minimal subtree containing the mapped nodes.
    pub answer: Tree,
    /// The condition under which this match exists.
    pub condition: Condition,
    /// `P(condition)` — the probability that the match exists.
    pub probability: f64,
}

/// The result of evaluating a query over a fuzzy tree.
#[derive(Debug, Clone, Default)]
pub struct FuzzyQueryResult {
    /// One entry per consistent match.
    pub matches: Vec<ProbabilisticMatch>,
}

impl FuzzyQueryResult {
    /// Number of matches.
    pub fn len(&self) -> usize {
        self.matches.len()
    }

    /// `true` when the query cannot match in any world.
    pub fn is_empty(&self) -> bool {
        self.matches.is_empty()
    }

    /// Groups unordered-isomorphic answers and computes, for each group, the
    /// probability that *at least one* of its matches exists (the disjunction
    /// of the match conditions, evaluated exactly).
    ///
    /// Groups are indexed by a hash map keyed on the answers' canonical form
    /// (O(matches) instead of the former O(matches²) linear scan), each
    /// group's disjunction BDD is built incrementally as its matches stream
    /// by (no condition is cloned), and the final probabilities share one
    /// model-counting cache across groups.
    pub fn merged_answers(&self, events: &EventTable) -> Vec<(Tree, f64)> {
        let mut bdd = Bdd::new();
        let mut groups: Vec<(Tree, BddRef)> = Vec::new();
        let mut index: HashMap<CanonicalForm, usize> = HashMap::with_capacity(self.matches.len());
        for m in &self.matches {
            let form = CanonicalForm::of_tree(&m.answer);
            let node = bdd.condition(&m.condition);
            match index.entry(form) {
                Entry::Occupied(slot) => {
                    let group = &mut groups[*slot.get()];
                    group.1 = bdd.or(group.1, node);
                }
                Entry::Vacant(slot) => {
                    slot.insert(groups.len());
                    groups.push((m.answer.clone(), node));
                }
            }
        }
        let nodes: Vec<BddRef> = groups.iter().map(|(_, node)| *node).collect();
        let probabilities = bdd.probabilities(&nodes, events);
        groups
            .into_iter()
            .zip(probabilities)
            .map(|((tree, _), probability)| (tree, probability))
            .collect()
    }

    /// The merged answers as a [`PossibleWorlds`] value (one "world" per
    /// distinct answer, weighted by its probability) — the representation the
    /// commutation theorem compares against the possible-worlds-side query.
    pub fn as_possible_worlds(&self, events: &EventTable) -> PossibleWorlds {
        self.merged_answers(events)
            .into_iter()
            .collect::<PossibleWorlds>()
            .normalized()
    }

    /// The probability that the query matches at all (the document is
    /// *selected* by the query) — the disjunction of every match condition,
    /// built incrementally on a BDD straight from the borrowed conditions.
    pub fn selection_probability(&self, events: &EventTable) -> f64 {
        let mut bdd = Bdd::new();
        let any = bdd.any_of(self.matches.iter().map(|m| &m.condition));
        bdd.probability(any, events)
    }
}

/// Computes the condition under which a given match exists: the existence
/// conditions of every mapped node, plus the conditions of the text children
/// whose values are used by value tests or joins.
pub(crate) fn match_condition(
    fuzzy: &FuzzyTree,
    pattern: &Pattern,
    matching: &Matching,
) -> Condition {
    // Accumulate every contributing literal first and sort/dedup once:
    // conjoining per-node `Condition`s in a loop re-sorts and re-allocates
    // at every step.
    let mut literals: Vec<Literal> = Vec::new();
    for node in matching.mapped_nodes() {
        fuzzy.extend_existence_literals(node, &mut literals);
    }
    for pattern_node in pattern.node_ids() {
        let spec = pattern.node(pattern_node);
        if spec.value.is_none() && spec.join.is_none() {
            continue;
        }
        let image = matching.image(pattern_node);
        if let Some(text_child) = value_text_child(fuzzy.tree(), image) {
            literals.extend_from_slice(fuzzy.condition_literals(text_child));
        }
    }
    Condition::from_literals(literals)
}

/// The text child providing [`Tree::node_value`] for an element node, if any.
fn value_text_child(tree: &Tree, node: NodeId) -> Option<NodeId> {
    if tree.is_text(node) {
        return None;
    }
    let children = tree.children(node);
    if children.len() == 1 && tree.is_text(children[0]) {
        Some(children[0])
    } else {
        None
    }
}

impl FuzzyTree {
    /// Evaluates a TPWJ query over this fuzzy tree (slide 13): matches are
    /// found on the underlying tree and weighted by the probability of their
    /// match condition. Matches whose condition is inconsistent (they exist
    /// in no world) are dropped.
    pub fn query(&self, pattern: &Pattern) -> FuzzyQueryResult {
        let answers = pattern.evaluate(self.tree());
        let mut matches = Vec::with_capacity(answers.matches.len());
        for answer in answers.matches {
            let condition = match_condition(self, pattern, &answer.matching);
            if !condition.is_consistent() {
                continue;
            }
            let probability = condition.probability(self.events());
            matches.push(ProbabilisticMatch {
                matching: answer.matching,
                answer: answer.answer,
                condition,
                probability,
            });
        }
        FuzzyQueryResult { matches }
    }

    /// Convenience: the probability that `pattern` matches this document.
    pub fn selection_probability(&self, pattern: &Pattern) -> f64 {
        self.query(pattern).selection_probability(self.events())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fuzzy::slide12_example;
    use pxml_event::Literal;
    use pxml_tree::parse_data_tree;

    #[test]
    fn querying_a_certain_node_gives_probability_one() {
        let fuzzy = slide12_example();
        let query = Pattern::parse("A { C }").unwrap();
        let result = fuzzy.query(&query);
        assert_eq!(result.len(), 1);
        assert!((result.matches[0].probability - 1.0).abs() < 1e-12);
    }

    #[test]
    fn match_probability_is_condition_probability() {
        let fuzzy = slide12_example();
        let query = Pattern::parse("A { B }").unwrap();
        let result = fuzzy.query(&query);
        assert_eq!(result.len(), 1);
        // P(w1 ∧ ¬w2) = 0.24.
        assert!((result.matches[0].probability - 0.24).abs() < 1e-12);
        let query_d = Pattern::parse("A { D }").unwrap();
        let result_d = fuzzy.query(&query_d);
        assert!((result_d.matches[0].probability - 0.7).abs() < 1e-12);
    }

    #[test]
    fn match_condition_includes_ancestors() {
        let mut fuzzy = FuzzyTree::new("r");
        let w = fuzzy.add_event("w", 0.5).unwrap();
        let v = fuzzy.add_event("v", 0.4).unwrap();
        let a = fuzzy.add_element(fuzzy.root(), "a");
        fuzzy
            .set_condition(a, Condition::from_literal(Literal::pos(w)))
            .unwrap();
        let b = fuzzy.add_element(a, "b");
        fuzzy
            .set_condition(b, Condition::from_literal(Literal::pos(v)))
            .unwrap();
        let query = Pattern::parse("b").unwrap();
        let result = fuzzy.query(&query);
        assert_eq!(result.len(), 1);
        assert_eq!(result.matches[0].condition.len(), 2);
        assert!((result.matches[0].probability - 0.2).abs() < 1e-12);
    }

    #[test]
    fn inconsistent_matches_are_dropped() {
        let mut fuzzy = FuzzyTree::new("r");
        let w = fuzzy.add_event("w", 0.5).unwrap();
        let a = fuzzy.add_element(fuzzy.root(), "a");
        fuzzy
            .set_condition(a, Condition::from_literal(Literal::pos(w)))
            .unwrap();
        let b = fuzzy.add_element(a, "b");
        fuzzy
            .set_condition(b, Condition::from_literal(Literal::neg(w)))
            .unwrap();
        // b exists only when w and ¬w: never.
        let query = Pattern::parse("b").unwrap();
        assert!(fuzzy.query(&query).is_empty());
    }

    #[test]
    fn value_tests_account_for_text_child_conditions() {
        let mut fuzzy = FuzzyTree::new("r");
        let w = fuzzy.add_event("w", 0.3).unwrap();
        let name = fuzzy.add_element(fuzzy.root(), "name");
        let text = fuzzy.add_text(name, "Alan");
        fuzzy
            .set_condition(text, Condition::from_literal(Literal::pos(w)))
            .unwrap();
        let query = Pattern::parse("name[=\"Alan\"]").unwrap();
        let result = fuzzy.query(&query);
        assert_eq!(result.len(), 1);
        // The value is only present when the text node is.
        assert!((result.matches[0].probability - 0.3).abs() < 1e-12);
    }

    #[test]
    fn join_queries_combine_conditions_of_both_sides() {
        let mut fuzzy = FuzzyTree::new("r");
        let w = fuzzy.add_event("w", 0.5).unwrap();
        let v = fuzzy.add_event("v", 0.2).unwrap();
        let a = fuzzy.add_element(fuzzy.root(), "a");
        fuzzy
            .set_condition(a, Condition::from_literal(Literal::pos(w)))
            .unwrap();
        fuzzy.add_text(a, "k");
        let b = fuzzy.add_element(fuzzy.root(), "b");
        fuzzy
            .set_condition(b, Condition::from_literal(Literal::pos(v)))
            .unwrap();
        fuzzy.add_text(b, "k");
        let query = Pattern::parse("r { a[$x], b[$x] }").unwrap();
        let result = fuzzy.query(&query);
        assert_eq!(result.len(), 1);
        assert!((result.matches[0].probability - 0.1).abs() < 1e-12);
    }

    #[test]
    fn merged_answers_use_disjunction_not_sum() {
        // Two uncertain copies of the same answer: probabilities must combine
        // as P(c1 ∨ c2), not c1 + c2.
        let mut fuzzy = FuzzyTree::new("r");
        let w = fuzzy.add_event("w", 0.6).unwrap();
        let v = fuzzy.add_event("v", 0.5).unwrap();
        let a1 = fuzzy.add_element(fuzzy.root(), "a");
        fuzzy
            .set_condition(a1, Condition::from_literal(Literal::pos(w)))
            .unwrap();
        let a2 = fuzzy.add_element(fuzzy.root(), "a");
        fuzzy
            .set_condition(a2, Condition::from_literal(Literal::pos(v)))
            .unwrap();
        let query = Pattern::parse("r { a }").unwrap();
        let result = fuzzy.query(&query);
        assert_eq!(result.len(), 2);
        let merged = result.merged_answers(fuzzy.events());
        assert_eq!(merged.len(), 1);
        // P(w ∨ v) = 0.6 + 0.5 − 0.3 = 0.8.
        assert!((merged[0].1 - 0.8).abs() < 1e-12);
        assert!((result.selection_probability(fuzzy.events()) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn query_commutes_with_possible_worlds_semantics_on_slide12() {
        let fuzzy = slide12_example();
        for text in [
            "A { B }",
            "A { C }",
            "A { D }",
            "A { B, D }",
            "* { B }",
            "A { Z }",
        ] {
            let query = Pattern::parse(text).unwrap();
            let via_fuzzy = fuzzy.query(&query).as_possible_worlds(fuzzy.events());
            let via_worlds = fuzzy.to_possible_worlds().unwrap().query(&query);
            assert!(
                via_fuzzy.equivalent(&via_worlds, 1e-9),
                "commutation failed for {text}"
            );
        }
    }

    #[test]
    fn answer_is_minimal_subtree_of_underlying_tree() {
        let tree = parse_data_tree("<A><B><X>1</X></B><C/></A>").unwrap();
        let fuzzy = FuzzyTree::from_tree(tree);
        let query = Pattern::parse("A { //X, C }").unwrap();
        let result = fuzzy.query(&query);
        assert_eq!(result.len(), 1);
        let answer = &result.matches[0].answer;
        // A, B, X, C but not the text node "1".
        assert_eq!(answer.node_count(), 4);
    }
}
