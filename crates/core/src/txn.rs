//! Staged update batches: the fluent [`Update`] builder and the atomic
//! [`apply_batch`] pipeline behind the warehouse's `Document::begin()` /
//! `Txn::commit()` API.
//!
//! The paper's update interface (slide 3) hands the warehouse *(update
//! transaction, confidence)* pairs. Building such a pair out of the bare
//! [`UpdateOperation`] enum is noisy and error-prone (target bookkeeping,
//! eager confidence validation in the middle of expression chains), so the
//! engine-facing construction path is a deferred-validation builder:
//!
//! ```
//! use pxml_core::Update;
//! use pxml_query::Pattern;
//! use pxml_tree::parse_data_tree;
//!
//! let pattern = Pattern::parse("person { name }").unwrap();
//! let person = pattern.root();
//! let update = Update::matching(pattern)
//!     .insert_at(person, parse_data_tree("<phone>+33-1</phone>").unwrap())
//!     .with_confidence(0.8)
//!     .build()
//!     .unwrap();
//! assert!((update.confidence() - 0.8).abs() < 1e-12);
//! ```
//!
//! [`apply_batch`] applies a sequence of transactions through the policy-aware
//! pipeline with all-or-nothing semantics on the in-memory document: when any
//! transaction fails, the document is left exactly as it was.

use pxml_query::{PNodeId, Pattern};
use pxml_tree::Tree;

use crate::error::CoreError;
use crate::fuzzy::FuzzyTree;
use crate::simplify::SimplifyPolicy;
use crate::update::{UpdateOperation, UpdateStats, UpdateTransaction};

/// A fluent, deferred-validation builder for probabilistic update
/// transactions.
///
/// Unlike [`UpdateTransaction::new`], nothing is validated while the chain is
/// being built; [`Update::build`] (or the `TryFrom` conversion) performs the
/// confidence check once at the end.
#[derive(Debug, Clone)]
pub struct Update {
    pattern: Pattern,
    operations: Vec<UpdateOperation>,
    confidence: f64,
}

impl Update {
    /// Starts an update anchored at the matches of `pattern`, with
    /// confidence 1 until [`Update::with_confidence`] says otherwise.
    pub fn matching(pattern: Pattern) -> Self {
        Update {
            pattern,
            operations: Vec::new(),
            confidence: 1.0,
        }
    }

    /// Inserts a copy of `subtree` as a new child of the node `target` is
    /// mapped to, at every match.
    pub fn insert_at(mut self, target: PNodeId, subtree: Tree) -> Self {
        self.operations
            .push(UpdateOperation::Insert { target, subtree });
        self
    }

    /// Deletes the subtree rooted at the node `target` is mapped to, at every
    /// match.
    pub fn delete_at(mut self, target: PNodeId) -> Self {
        self.operations.push(UpdateOperation::Delete { target });
        self
    }

    /// Sets the confidence of the whole transaction. Validated when the
    /// update is built, not here, so chains stay fluent.
    pub fn with_confidence(mut self, confidence: f64) -> Self {
        self.confidence = confidence;
        self
    }

    /// Finishes the builder, validating the confidence.
    pub fn build(self) -> Result<UpdateTransaction, CoreError> {
        let mut transaction = UpdateTransaction::new(self.pattern, self.confidence)?;
        for operation in self.operations {
            transaction.push_operation(operation);
        }
        Ok(transaction)
    }
}

impl TryFrom<Update> for UpdateTransaction {
    type Error = CoreError;

    fn try_from(update: Update) -> Result<Self, Self::Error> {
        update.build()
    }
}

impl From<UpdateTransaction> for Update {
    fn from(transaction: UpdateTransaction) -> Self {
        Update {
            pattern: transaction.pattern().clone(),
            operations: transaction.operations().to_vec(),
            confidence: transaction.confidence(),
        }
    }
}

/// The per-update statistics of one [`apply_batch`] run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BatchStats {
    /// One entry per staged transaction, in application order.
    pub updates: Vec<UpdateStats>,
}

impl BatchStats {
    /// Number of staged transactions applied.
    pub fn len(&self) -> usize {
        self.updates.len()
    }

    /// `true` when the batch was empty.
    pub fn is_empty(&self) -> bool {
        self.updates.is_empty()
    }

    /// Matches applied across the batch.
    pub fn applied_matches(&self) -> usize {
        self.updates.iter().map(|u| u.applied_matches).sum()
    }

    /// Nodes added by insertions across the batch.
    pub fn inserted_nodes(&self) -> usize {
        self.updates.iter().map(|u| u.inserted_nodes).sum()
    }

    /// Nodes added by deletion-induced duplication across the batch.
    pub fn duplicated_nodes(&self) -> usize {
        self.updates.iter().map(|u| u.duplicated_nodes).sum()
    }

    /// Nodes removed across the batch.
    pub fn removed_nodes(&self) -> usize {
        self.updates.iter().map(|u| u.removed_nodes).sum()
    }

    /// How many inline simplification passes the policy triggered.
    pub fn simplify_runs(&self) -> usize {
        self.updates.iter().filter(|u| u.simplify.is_some()).count()
    }
}

/// Applies a batch of update transactions to a fuzzy tree through the
/// policy-aware pipeline, atomically with respect to the in-memory document:
/// either every transaction applies (in order) or, on the first error, the
/// document is left untouched.
pub fn apply_batch(
    fuzzy: &mut FuzzyTree,
    updates: &[UpdateTransaction],
    policy: SimplifyPolicy,
) -> Result<BatchStats, CoreError> {
    let mut working = fuzzy.clone();
    let mut stats = BatchStats::default();
    for update in updates {
        stats
            .updates
            .push(update.apply_to_fuzzy_with(&mut working, policy)?);
    }
    *fuzzy = working;
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fuzzy::slide12_example;
    use pxml_tree::parse_data_tree;

    fn insert_e() -> Update {
        let pattern = Pattern::parse("A { D }").unwrap();
        let target = pattern.root();
        Update::matching(pattern)
            .insert_at(target, parse_data_tree("<E/>").unwrap())
            .with_confidence(0.6)
    }

    fn delete_b() -> Update {
        let pattern = Pattern::parse("A { B }").unwrap();
        let b = pattern.node_ids().nth(1).unwrap();
        Update::matching(pattern).delete_at(b).with_confidence(0.5)
    }

    #[test]
    fn builder_is_fluent_and_validates_lazily() {
        let update = insert_e().build().unwrap();
        assert_eq!(update.operations().len(), 1);
        assert!((update.confidence() - 0.6).abs() < 1e-12);
        // An invalid confidence only surfaces at build time.
        let bad = insert_e().with_confidence(1.5);
        assert!(matches!(bad.build(), Err(CoreError::InvalidConfidence(_))));
        let via_try: Result<UpdateTransaction, _> = insert_e().try_into();
        assert!(via_try.is_ok());
    }

    #[test]
    fn builder_round_trips_through_transaction() {
        let transaction = insert_e().build().unwrap();
        let rebuilt = Update::from(transaction.clone()).build().unwrap();
        assert_eq!(
            rebuilt.pattern().to_string(),
            transaction.pattern().to_string()
        );
        assert_eq!(rebuilt.operations(), transaction.operations());
        assert!((rebuilt.confidence() - transaction.confidence()).abs() < 1e-15);
    }

    #[test]
    fn batch_equals_sequential_application() {
        let updates = vec![insert_e().build().unwrap(), delete_b().build().unwrap()];
        let mut batched = slide12_example();
        let stats = apply_batch(&mut batched, &updates, SimplifyPolicy::Never).unwrap();
        assert_eq!(stats.len(), 2);

        let mut sequential = slide12_example();
        for update in &updates {
            update.apply_to_fuzzy(&mut sequential).unwrap();
        }
        assert!(batched.semantically_equivalent(&sequential, 1e-9).unwrap());
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let mut fuzzy = slide12_example();
        let before = fuzzy.clone();
        let stats = apply_batch(&mut fuzzy, &[], SimplifyPolicy::Inline).unwrap();
        assert!(stats.is_empty());
        assert!(fuzzy.semantically_equivalent(&before, 1e-9).unwrap());
    }

    #[test]
    fn inline_policy_simplifies_every_update() {
        let updates = vec![delete_b().build().unwrap()];
        let mut fuzzy = slide12_example();
        let stats = apply_batch(&mut fuzzy, &updates, SimplifyPolicy::Inline).unwrap();
        assert_eq!(stats.simplify_runs(), 1);
        assert!(stats.updates[0].simplify.is_some());
        assert!(fuzzy.validate().is_ok());
    }

    #[test]
    fn threshold_policy_only_fires_above_the_limit() {
        let updates = vec![delete_b().build().unwrap()];
        let mut fuzzy = slide12_example();
        let stats = apply_batch(&mut fuzzy, &updates, SimplifyPolicy::Threshold(10_000)).unwrap();
        assert_eq!(stats.simplify_runs(), 0);
        let mut fuzzy = slide12_example();
        let stats = apply_batch(&mut fuzzy, &updates, SimplifyPolicy::Threshold(0)).unwrap();
        assert_eq!(stats.simplify_runs(), 1);
    }
}
