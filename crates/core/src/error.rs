//! Errors of the probabilistic XML core.

use std::fmt;

use pxml_event::EventError;
use pxml_tree::TreeError;

/// Errors raised by the possible-worlds and fuzzy-tree models.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Propagated event/condition error (probability bounds, unknown events,
    /// exhaustive enumeration caps, parsing).
    Event(EventError),
    /// Propagated tree manipulation error.
    Tree(TreeError),
    /// The root of a fuzzy tree must be certain (empty condition).
    RootConditionNotAllowed,
    /// The given node does not belong to the fuzzy tree.
    InvalidNode(u32),
    /// A confidence value outside `[0, 1]` was supplied for an update.
    InvalidConfidence(f64),
    /// An update transaction attempted to delete the document root.
    CannotDeleteRoot,
    /// Possible-worlds sets can only be encoded into a fuzzy tree when all
    /// worlds share the same root label.
    HeterogeneousRoots,
    /// An empty possible-worlds set cannot be encoded or normalised.
    EmptyWorldSet,
    /// World probabilities must be positive.
    InvalidWorldProbability(f64),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Event(err) => write!(f, "{err}"),
            CoreError::Tree(err) => write!(f, "{err}"),
            CoreError::RootConditionNotAllowed => {
                write!(
                    f,
                    "the root of a fuzzy tree must carry the empty (certain) condition"
                )
            }
            CoreError::InvalidNode(id) => write!(f, "node id {id} is not part of the fuzzy tree"),
            CoreError::InvalidConfidence(c) => {
                write!(f, "invalid update confidence {c}: must lie in [0, 1]")
            }
            CoreError::CannotDeleteRoot => {
                write!(f, "an update transaction cannot delete the document root")
            }
            CoreError::HeterogeneousRoots => write!(
                f,
                "cannot encode a possible-worlds set whose worlds have different root labels"
            ),
            CoreError::EmptyWorldSet => write!(f, "the possible-worlds set is empty"),
            CoreError::InvalidWorldProbability(p) => {
                write!(
                    f,
                    "invalid world probability {p}: must be positive and finite"
                )
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Event(err) => Some(err),
            CoreError::Tree(err) => Some(err),
            _ => None,
        }
    }
}

impl From<EventError> for CoreError {
    fn from(err: EventError) -> Self {
        CoreError::Event(err)
    }
}

impl From<TreeError> for CoreError {
    fn from(err: TreeError) -> Self {
        CoreError::Tree(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let event: CoreError = EventError::InvalidProbability(3.0).into();
        assert!(event.to_string().contains("3"));
        let tree: CoreError = TreeError::CannotRemoveRoot.into();
        assert!(tree.to_string().contains("root"));
        assert!(CoreError::RootConditionNotAllowed
            .to_string()
            .contains("fuzzy"));
        assert!(CoreError::InvalidConfidence(-1.0)
            .to_string()
            .contains("-1"));
        assert!(CoreError::CannotDeleteRoot.to_string().contains("delete"));
        assert!(CoreError::HeterogeneousRoots
            .to_string()
            .contains("root labels"));
        assert!(CoreError::EmptyWorldSet.to_string().contains("empty"));
        assert!(CoreError::InvalidNode(9).to_string().contains('9'));
        assert!(CoreError::InvalidWorldProbability(0.0)
            .to_string()
            .contains('0'));
    }

    #[test]
    fn error_sources() {
        use std::error::Error;
        let err: CoreError = EventError::UnknownEvent("w".into()).into();
        assert!(err.source().is_some());
        assert!(CoreError::CannotDeleteRoot.source().is_none());
    }
}
