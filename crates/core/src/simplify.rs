//! Fuzzy-data simplification (slide 19, "Perspectives").
//!
//! Updates — deletions in particular — make fuzzy trees grow: nodes get
//! duplicated, conditions accumulate literals, events pile up in the table.
//! The [`Simplifier`] shrinks a fuzzy tree **without changing its
//! possible-worlds semantics**:
//!
//! 1. *prune impossible nodes* — nodes whose existence condition is
//!    inconsistent exist in no world;
//! 2. *strip implied literals* — a literal already guaranteed by an
//!    ancestor's condition is redundant on a descendant;
//! 3. *apply deterministic events* — events with probability exactly 0 or 1
//!    are certain, so their literals can be resolved away;
//! 4. *merge mergeable siblings* — two sibling subtrees that are identical
//!    except that their root conditions differ in the sign of a single
//!    literal are the two halves of a Shannon expansion and can be collapsed
//!    back into one (the inverse of deletion-induced duplication);
//! 5. *garbage-collect events* — events no longer mentioned anywhere are
//!    dropped from the table.
//!
//! Every pass preserves semantics; `EXPERIMENTS.md` (experiment E8) measures
//! how much of the growth caused by update histories the simplifier wins
//! back.

use std::collections::HashMap;

use pxml_event::{Bdd, Condition, EventId, EventTable, Literal};
use pxml_tree::NodeId;

use crate::error::CoreError;
use crate::fuzzy::FuzzyTree;

/// When the apply pipeline (see
/// [`UpdateTransaction::apply_to_fuzzy_with`](crate::UpdateTransaction::apply_to_fuzzy_with)
/// and [`apply_batch`](crate::apply_batch)) runs the simplifier.
///
/// Deletion-induced duplication is created *inside* update application, so a
/// simplification pass bolted on after the fact repeatedly pays for growth
/// that an inline pass would have stopped at the source; the policy makes the
/// trade-off explicit and pluggable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimplifyPolicy {
    /// Never simplify; callers run the [`Simplifier`] themselves.
    Never,
    /// Simplify after every update application.
    #[default]
    Inline,
    /// Simplify after an update application only when the document carries
    /// more than this many condition literals.
    Threshold(usize),
}

impl SimplifyPolicy {
    /// Whether the pipeline should run a simplification pass on `fuzzy` now.
    pub fn should_run(&self, fuzzy: &FuzzyTree) -> bool {
        match self {
            SimplifyPolicy::Never => false,
            SimplifyPolicy::Inline => true,
            SimplifyPolicy::Threshold(limit) => fuzzy.condition_literal_count() > *limit,
        }
    }
}

/// What a simplification run changed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimplifyReport {
    /// Nodes removed because they exist in no world.
    pub removed_impossible_nodes: usize,
    /// Literals removed because an ancestor already guarantees them.
    pub stripped_literals: usize,
    /// Literals resolved because their event has probability 0 or 1.
    pub resolved_deterministic_literals: usize,
    /// Nodes removed by merging Shannon-complementary siblings.
    pub merged_nodes: usize,
    /// Events dropped from the table.
    pub removed_events: usize,
    /// Number of passes until fixpoint.
    pub passes: usize,
}

impl SimplifyReport {
    /// `true` when the run changed nothing.
    pub fn is_noop(&self) -> bool {
        self.removed_impossible_nodes == 0
            && self.stripped_literals == 0
            && self.resolved_deterministic_literals == 0
            && self.merged_nodes == 0
            && self.removed_events == 0
    }

    fn absorb(&mut self, other: &SimplifyReport) {
        self.removed_impossible_nodes += other.removed_impossible_nodes;
        self.stripped_literals += other.stripped_literals;
        self.resolved_deterministic_literals += other.resolved_deterministic_literals;
        self.merged_nodes += other.merged_nodes;
        self.removed_events += other.removed_events;
    }
}

/// Configurable simplification driver.
#[derive(Debug, Clone)]
pub struct Simplifier {
    /// Upper bound on fixpoint iterations (a safety net; 2–3 passes normally
    /// suffice).
    pub max_passes: usize,
    /// Whether to merge Shannon-complementary siblings.
    pub merge_siblings: bool,
    /// Whether to drop unused events from the table.
    pub collect_events: bool,
}

impl Default for Simplifier {
    fn default() -> Self {
        Simplifier {
            max_passes: 8,
            merge_siblings: true,
            collect_events: true,
        }
    }
}

impl Simplifier {
    /// A simplifier with default settings.
    pub fn new() -> Self {
        Simplifier::default()
    }

    /// Runs simplification passes until nothing changes (or `max_passes` is
    /// reached) and reports the cumulative effect.
    pub fn run(&self, fuzzy: &mut FuzzyTree) -> Result<SimplifyReport, CoreError> {
        let mut total = SimplifyReport::default();
        for pass in 0..self.max_passes {
            let mut report = SimplifyReport {
                removed_impossible_nodes: prune_impossible_nodes(fuzzy)?,
                resolved_deterministic_literals: resolve_deterministic_events(fuzzy)?,
                stripped_literals: strip_implied_literals(fuzzy)?,
                ..SimplifyReport::default()
            };
            if self.merge_siblings {
                report.merged_nodes = merge_complementary_siblings(fuzzy)?;
            }
            if self.collect_events {
                report.removed_events = garbage_collect_events(fuzzy);
            }
            let changed = !report.is_noop();
            total.absorb(&report);
            total.passes = pass + 1;
            if !changed {
                break;
            }
        }
        Ok(total)
    }
}

/// Removes every node whose existence condition is (syntactically)
/// inconsistent; returns the number of nodes removed.
///
/// One top-down walk accumulating the ancestor context suffices: a node
/// inconsistent with its context is doomed together with its whole subtree,
/// so the walk marks the top-most doomed nodes and never descends into them.
pub fn prune_impossible_nodes(fuzzy: &mut FuzzyTree) -> Result<usize, CoreError> {
    let root = fuzzy.root();
    let mut doomed: Vec<NodeId> = Vec::new();
    let mut stack: Vec<(NodeId, Condition)> = vec![(root, Condition::always())];
    while let Some((node, context)) = stack.pop() {
        for &child in fuzzy.tree().children(node) {
            let combined = context.and(&fuzzy.condition(child));
            if combined.is_consistent() {
                stack.push((child, combined));
            } else {
                doomed.push(child);
            }
        }
    }
    let mut removed = 0;
    for node in doomed {
        removed += fuzzy.tree().subtree_size(node);
        fuzzy.remove_subtree(node)?;
    }
    Ok(removed)
}

/// Removes, from every node's condition, the literals already guaranteed by
/// its ancestors; returns the number of literals removed.
///
/// One top-down walk carries the accumulated ancestor context, extending it
/// by each node's (already reduced) own condition on the way down — the
/// context is never re-conjoined from the root per node, which would make
/// the pass O(depth) slower on deep documents.
pub fn strip_implied_literals(fuzzy: &mut FuzzyTree) -> Result<usize, CoreError> {
    let mut stripped = 0;
    let mut stack: Vec<(NodeId, Condition)> = vec![(fuzzy.root(), Condition::always())];
    while let Some((node, context)) = stack.pop() {
        for child in fuzzy.tree().children(node).to_vec() {
            let own = fuzzy.condition(child);
            let reduced = if own.is_empty() {
                own
            } else {
                let reduced = own.without_implied_by(&context);
                if reduced.len() < own.len() {
                    stripped += own.len() - reduced.len();
                    fuzzy.set_condition(child, reduced.clone())?;
                }
                reduced
            };
            if !fuzzy.tree().children(child).is_empty() {
                stack.push((child, context.and(&reduced)));
            }
        }
    }
    Ok(stripped)
}

/// Resolves literals over events whose probability is exactly 0 or 1:
/// certainly-true literals are dropped, certainly-false literals make the
/// node impossible (it is removed). Returns the number of literals resolved.
pub fn resolve_deterministic_events(fuzzy: &mut FuzzyTree) -> Result<usize, CoreError> {
    let deterministic: HashMap<EventId, bool> =
        fuzzy.events().deterministic_events().into_iter().collect();
    if deterministic.is_empty() {
        return Ok(0);
    }
    let mut resolved = 0;
    let mut doomed: Vec<NodeId> = Vec::new();
    for node in fuzzy.tree().nodes() {
        let condition = fuzzy.condition(node);
        if condition.is_empty() {
            continue;
        }
        let mut keep: Vec<Literal> = Vec::new();
        let mut impossible = false;
        for &literal in condition.literals() {
            match deterministic.get(&literal.event) {
                None => keep.push(literal),
                Some(&value) => {
                    resolved += 1;
                    if literal.positive != value {
                        impossible = true;
                    }
                }
            }
        }
        if impossible {
            doomed.push(node);
        } else if keep.len() < condition.len() {
            fuzzy.set_condition(node, Condition::from_literals(keep))?;
        }
    }
    for node in doomed {
        if fuzzy.tree().contains(node) && node != fuzzy.root() {
            fuzzy.remove_subtree(node)?;
        }
    }
    Ok(resolved)
}

/// Upper bound on the number of distinct events a same-body sibling group may
/// mention for the exact re-cover (see [`merge_complementary_siblings`]) to
/// run.
///
/// The cover is read off a BDD's path structure, so the cost is bounded by
/// diagram size and the number of emitted terms — not by `2^events` — and
/// the bound is only a guard against pathological groups. It was 8 when the
/// re-cover enumerated the `2^events` valuations directly; the BDD engine
/// lifted it to 24 (experiment E13 measures re-covers at widths the old
/// enumeration could not touch).
pub const GROUP_RECOVER_MAX_EVENTS: usize = 24;

/// Width up to which the greedy maximal-subcube cover (which enumerates all
/// `2^events` valuations) is also computed and compared against the BDD path
/// cover — the greedy cover can use fewer, larger cubes on small groups, and
/// taking the better of the two guarantees the lifted re-cover never does
/// worse than the old capped one.
const GREEDY_RECOVER_MAX_EVENTS: usize = 8;

/// Merges sibling subtrees with identical bodies whose root conditions are
/// redundant, in two tiers. Returns the net number of nodes removed.
///
/// 1. *Pairwise Shannon merges*: two siblings whose conditions differ in the
///    sign of exactly one literal (`X ∧ w` and `X ∧ ¬w`) collapse to `X` —
///    the direct inverse of one deletion-duplication step.
/// 2. *Group re-cover*: deletion chains fragment a node's survivor condition
///    into many pairwise-disjoint conjunctive pieces that are **not**
///    pairwise mergeable even when the union has a much smaller disjoint
///    cover (the shape every multi-match deletion produces, experiment E8).
///    For a group of same-body siblings with pairwise-disjoint conditions
///    over at most [`GROUP_RECOVER_MAX_EVENTS`] events, the union of the
///    conditions is recomputed exactly over the event valuations and
///    re-covered greedily by maximal subcubes; when that cover is strictly
///    smaller, the group is rebuilt from it.
pub fn merge_complementary_siblings(fuzzy: &mut FuzzyTree) -> Result<usize, CoreError> {
    let mut merged_nodes = 0;
    // Bottom-up (children before parents, i.e. reversed preorder): a merge
    // deep in the tree can make its ancestors' bodies equal, and this order
    // resolves such cascades in a single sweep instead of a global rescan
    // per merge.
    let mut order = fuzzy.tree().nodes();
    order.reverse();
    for parent in order {
        if !fuzzy.tree().contains(parent) {
            continue;
        }
        merged_nodes += merge_children_of(fuzzy, parent)?;
    }
    merged_nodes += recover_sibling_groups(fuzzy)?;
    Ok(merged_nodes)
}

/// Pairwise Shannon merging restricted to the children of one parent, run to
/// a local fixpoint.
///
/// Body keys are computed **once per call**, not once per fixpoint
/// iteration: a merge removes one sibling and rewrites the kept sibling's
/// own root condition, which its body key excludes, so the surviving keys
/// stay valid for the whole local fixpoint — re-deriving them each round
/// was the dominant cost of this pass (each key is an O(subtree) canonical
/// form).
fn merge_children_of(fuzzy: &mut FuzzyTree, parent: NodeId) -> Result<usize, CoreError> {
    let mut merged_nodes = 0;
    let children = fuzzy.tree().children(parent).to_vec();
    if children.len() < 2 {
        return Ok(merged_nodes);
    }
    let mut keyed: Vec<(String, NodeId)> = children
        .iter()
        .map(|&child| (body_key(fuzzy, child), child))
        .collect();
    keyed.sort();
    loop {
        if keyed.len() < 2 {
            return Ok(merged_nodes);
        }
        let mut found = None;
        'search: for i in 0..keyed.len() {
            for j in (i + 1)..keyed.len() {
                if keyed[i].0 != keyed[j].0 {
                    break;
                }
                let a = keyed[i].1;
                let b = keyed[j].1;
                if let Some(merged) = complementary_merge(&fuzzy.condition(a), &fuzzy.condition(b))
                {
                    found = Some((j, a, b, merged));
                    break 'search;
                }
            }
        }
        let Some((drop_index, keep, drop, merged_condition)) = found else {
            return Ok(merged_nodes);
        };
        merged_nodes += fuzzy.tree().subtree_size(drop);
        fuzzy.remove_subtree(drop)?;
        fuzzy.set_condition(keep, merged_condition)?;
        keyed.remove(drop_index);
    }
}

/// Tier-2 merging: re-covers qualifying same-body sibling groups (see
/// [`merge_complementary_siblings`]). Returns the net number of nodes
/// removed.
fn recover_sibling_groups(fuzzy: &mut FuzzyTree) -> Result<usize, CoreError> {
    let mut merged_nodes = 0;
    for parent in fuzzy.tree().nodes() {
        if !fuzzy.tree().contains(parent) {
            // Removed by an earlier group rebuild in this same pass.
            continue;
        }
        let children = fuzzy.tree().children(parent).to_vec();
        if children.len() < 2 {
            continue;
        }
        let mut groups: HashMap<String, Vec<NodeId>> = HashMap::new();
        for &child in &children {
            groups
                .entry(body_key(fuzzy, child))
                .or_default()
                .push(child);
        }
        for group in groups.into_values() {
            if group.len() < 2 {
                continue;
            }
            let conditions: Vec<Condition> = group.iter().map(|&n| fuzzy.condition(n)).collect();
            let Some(cover) = disjoint_group_cover(&conditions) else {
                continue;
            };
            // Rebuild the group from the smaller cover: keep one
            // representative subtree, duplicate it once per extra term.
            let representative = group[0];
            let body_size = fuzzy.tree().subtree_size(representative);
            for term in cover.iter().skip(1) {
                fuzzy.duplicate_subtree(parent, representative, term.clone());
            }
            fuzzy.set_condition(representative, cover[0].clone())?;
            for &node in group.iter().skip(1) {
                fuzzy.remove_subtree(node)?;
            }
            merged_nodes += (group.len() - cover.len()) * body_size;
        }
    }
    Ok(merged_nodes)
}

/// For pairwise-disjoint conjunctive `conditions` over at most
/// [`GROUP_RECOVER_MAX_EVENTS`] events, computes a disjoint conjunctive
/// cover of their union with strictly fewer terms, or `None` when the group
/// does not qualify or cannot shrink.
///
/// The cover is read off the path structure of the union's BDD
/// ([`Bdd::disjoint_cover`]) — bounded by diagram size, not `2^events`. For
/// groups up to [`GREEDY_RECOVER_MAX_EVENTS`] events the old greedy
/// maximal-subcube cover is computed as well and the better of the two is
/// returned (fewer terms, then fewer literals), so the lifted re-cover is
/// never worse than the capped one it replaces.
fn disjoint_group_cover(conditions: &[Condition]) -> Option<Vec<Condition>> {
    let mut events: Vec<EventId> = conditions.iter().flat_map(|c| c.events()).collect();
    events.sort_unstable();
    events.dedup();
    let width = events.len();
    if width == 0 || width > GROUP_RECOVER_MAX_EVENTS {
        return None;
    }
    // Soundness requires the siblings to exist in disjoint world sets (else
    // merging would change the number of simultaneous copies): every pair
    // must contain a complementary literal.
    for (i, a) in conditions.iter().enumerate() {
        if !a.is_consistent() {
            return None;
        }
        for b in conditions.iter().skip(i + 1) {
            if !a.literals().iter().any(|lit| b.contains(lit.negated())) {
                return None;
            }
        }
    }
    // The path cover's size depends on the variable order; try the plain
    // event-id order and the guard-first heuristic order, plus (on small
    // widths) the old exhaustive greedy subcube cover, and keep the best.
    let mut candidates: Vec<Vec<Condition>> = Vec::new();
    for order in [Vec::new(), guard_first_order(conditions, &events)] {
        let mut bdd = Bdd::with_order(order);
        let union = bdd.any_of(conditions.iter());
        if let Some(cover) = bdd.disjoint_cover(union, conditions.len() - 1) {
            candidates.push(cover);
        }
    }
    if width <= GREEDY_RECOVER_MAX_EVENTS {
        if let Some(cover) = greedy_subcube_cover(conditions, &events) {
            candidates.push(cover);
        }
    }
    let cost = |cover: &[Condition]| (cover.len(), cover.iter().map(Condition::len).sum::<usize>());
    candidates.into_iter().min_by_key(|cover| cost(cover))
}

/// A variable order that collapses deletion-shaped fragmentations: events
/// appearing with one uniform sign across the whole group (the deletion
/// confidence shows up only negated in survivors, the target's own event
/// only positively) act as guards that split the union cleanly, so they go
/// on top — most frequent first; mixed-sign "ladder" events follow.
fn guard_first_order(conditions: &[Condition], events: &[EventId]) -> Vec<EventId> {
    let mut keyed: Vec<(bool, usize, EventId)> = events
        .iter()
        .map(|&event| {
            let mut positive = 0usize;
            let mut negative = 0usize;
            for condition in conditions {
                if condition.contains(Literal::pos(event)) {
                    positive += 1;
                }
                if condition.contains(Literal::neg(event)) {
                    negative += 1;
                }
            }
            let mixed = positive > 0 && negative > 0;
            (mixed, positive + negative, event)
        })
        .collect();
    // Uniform-sign guards first (mixed = false sorts first), most frequent
    // first within each class, event id as the final tie-break.
    keyed.sort_unstable_by_key(|&(mixed, count, event)| (mixed, usize::MAX - count, event));
    keyed.into_iter().map(|(_, _, event)| event).collect()
}

/// The pre-BDD re-cover: a greedy cover of the union by maximal subcubes,
/// computed over the exact set of `2^events` valuations — exponential in the
/// group width, which is why it only runs up to
/// [`GREEDY_RECOVER_MAX_EVENTS`] events. Returns a cover with strictly fewer
/// terms than `conditions`, or `None`.
fn greedy_subcube_cover(conditions: &[Condition], events: &[EventId]) -> Option<Vec<Condition>> {
    let width = events.len();
    // The union of the conditions, as a set of valuations over `events`.
    let space = 1usize << width;
    let index_of = |event: EventId| events.iter().position(|&e| e == event).expect("own event");
    let mut remaining = vec![false; space];
    let mut left = 0usize;
    for (valuation, slot) in remaining.iter_mut().enumerate() {
        let satisfied = conditions.iter().any(|c| {
            c.literals()
                .iter()
                .all(|lit| ((valuation >> index_of(lit.event)) & 1 == 1) == lit.positive)
        });
        if satisfied {
            *slot = true;
            left += 1;
        }
    }
    // Greedy cover by maximal subcubes: a term is (care mask, values on the
    // cared bits); its points are the valuations agreeing on the cared bits.
    // Scanning care masks by increasing popcount finds a largest term first.
    let mut care_masks: Vec<usize> = (0..space).collect();
    care_masks.sort_by_key(|mask| mask.count_ones());
    let mut terms: Vec<Condition> = Vec::new();
    while left > 0 {
        if terms.len() + 1 >= conditions.len() {
            // No strict improvement possible any more.
            return None;
        }
        let mut found = None;
        'search: for &care in &care_masks {
            let mut value = care;
            // Enumerate the subsets of `care` as candidate fixed values.
            loop {
                let contained = remaining
                    .iter()
                    .enumerate()
                    .all(|(v, &in_set)| in_set || (v & care) != value);
                let nonempty = remaining
                    .iter()
                    .enumerate()
                    .any(|(v, &in_set)| in_set && (v & care) == value);
                if contained && nonempty {
                    found = Some((care, value));
                    break 'search;
                }
                if value == 0 {
                    break;
                }
                value = (value - 1) & care;
            }
        }
        let (care, value) = found.expect("remaining is non-empty, so a singleton term exists");
        for (v, slot) in remaining.iter_mut().enumerate() {
            if *slot && (v & care) == value {
                *slot = false;
                left -= 1;
            }
        }
        terms.push(Condition::from_literals((0..width).filter_map(|bit| {
            if (care >> bit) & 1 == 1 {
                Some(Literal {
                    event: events[bit],
                    positive: (value >> bit) & 1 == 1,
                })
            } else {
                None
            }
        })));
    }
    Some(terms)
}

/// The canonical form of a node ignoring its own root condition (label +
/// children's full fuzzy canonical forms).
fn body_key(fuzzy: &FuzzyTree, node: NodeId) -> String {
    let mut child_forms: Vec<String> = fuzzy
        .tree()
        .children(node)
        .iter()
        .map(|&child| fuzzy.fuzzy_canonical_string(child))
        .collect();
    child_forms.sort();
    format!("{:?}({})", fuzzy.tree().label(node), child_forms.join(","))
}

/// If `a` and `b` differ in the sign of exactly one literal (and are
/// otherwise equal), returns the common condition without that literal.
fn complementary_merge(a: &Condition, b: &Condition) -> Option<Condition> {
    if a.len() != b.len() || a.is_empty() {
        return None;
    }
    let only_in_a: Vec<Literal> = a
        .literals()
        .iter()
        .copied()
        .filter(|lit| !b.contains(*lit))
        .collect();
    let only_in_b: Vec<Literal> = b
        .literals()
        .iter()
        .copied()
        .filter(|lit| !a.contains(*lit))
        .collect();
    if only_in_a.len() == 1 && only_in_b.len() == 1 && only_in_a[0] == only_in_b[0].negated() {
        let common: Vec<Literal> = a
            .literals()
            .iter()
            .copied()
            .filter(|lit| *lit != only_in_a[0])
            .collect();
        Some(Condition::from_literals(common))
    } else {
        None
    }
}

/// Rebuilds the event table keeping only the events mentioned by at least one
/// condition, remapping conditions accordingly; returns the number of events
/// dropped.
pub fn garbage_collect_events(fuzzy: &mut FuzzyTree) -> usize {
    let mentioned = fuzzy.mentioned_events();
    let dropped = fuzzy.events().len() - mentioned.len();
    if dropped == 0 {
        return 0;
    }
    let mut new_table = EventTable::new();
    let mut remap: HashMap<EventId, EventId> = HashMap::new();
    for &old in &mentioned {
        let name = fuzzy.events().name(old).to_string();
        let probability = fuzzy.events().probability(old);
        let new = new_table
            .add_event(name, probability)
            .expect("names and probabilities come from a valid table");
        remap.insert(old, new);
    }
    let mut remapped = crate::fuzzy::ConditionMap::new();
    for (node, condition) in fuzzy.conditions.iter() {
        let literals = condition.literals().iter().map(|lit| Literal {
            event: remap[&lit.event],
            positive: lit.positive,
        });
        remapped.insert(node, Condition::from_literals(literals));
    }
    fuzzy.conditions = remapped;
    fuzzy.events = new_table;
    dropped
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fuzzy::slide12_example;
    use crate::update::UpdateTransaction;
    use pxml_query::Pattern;
    use pxml_tree::parse_data_tree;

    fn assert_semantics_preserved(before: &FuzzyTree, after: &FuzzyTree) {
        assert!(
            before.semantically_equivalent(after, 1e-9).unwrap(),
            "simplification must preserve the possible-worlds semantics"
        );
    }

    #[test]
    fn simplifying_a_clean_document_is_a_noop() {
        let mut fuzzy = slide12_example();
        let before = fuzzy.clone();
        let report = Simplifier::new().run(&mut fuzzy).unwrap();
        assert!(report.is_noop());
        assert_eq!(report.passes, 1);
        assert_semantics_preserved(&before, &fuzzy);
    }

    #[test]
    fn impossible_nodes_are_pruned() {
        let mut fuzzy = FuzzyTree::new("r");
        let w = fuzzy.add_event("w", 0.5).unwrap();
        let a = fuzzy.add_element(fuzzy.root(), "a");
        fuzzy
            .set_condition(
                a,
                Condition::from_literals([Literal::pos(w), Literal::neg(w)]),
            )
            .unwrap();
        fuzzy.add_element(a, "b");
        let before = fuzzy.clone();
        let report = Simplifier::new().run(&mut fuzzy).unwrap();
        assert_eq!(report.removed_impossible_nodes, 2);
        assert_eq!(fuzzy.node_count(), 1);
        assert_semantics_preserved(&before, &fuzzy);
    }

    #[test]
    fn nodes_conflicting_with_ancestors_are_pruned() {
        let mut fuzzy = FuzzyTree::new("r");
        let w = fuzzy.add_event("w", 0.5).unwrap();
        let a = fuzzy.add_element(fuzzy.root(), "a");
        fuzzy
            .set_condition(a, Condition::from_literal(Literal::pos(w)))
            .unwrap();
        let b = fuzzy.add_element(a, "b");
        fuzzy
            .set_condition(b, Condition::from_literal(Literal::neg(w)))
            .unwrap();
        let before = fuzzy.clone();
        let report = Simplifier::new().run(&mut fuzzy).unwrap();
        assert_eq!(report.removed_impossible_nodes, 1);
        assert_semantics_preserved(&before, &fuzzy);
    }

    #[test]
    fn implied_literals_are_stripped() {
        let mut fuzzy = FuzzyTree::new("r");
        let w = fuzzy.add_event("w", 0.5).unwrap();
        let v = fuzzy.add_event("v", 0.5).unwrap();
        let a = fuzzy.add_element(fuzzy.root(), "a");
        fuzzy
            .set_condition(a, Condition::from_literal(Literal::pos(w)))
            .unwrap();
        let b = fuzzy.add_element(a, "b");
        fuzzy
            .set_condition(
                b,
                Condition::from_literals([Literal::pos(w), Literal::pos(v)]),
            )
            .unwrap();
        let before = fuzzy.clone();
        let report = Simplifier::new().run(&mut fuzzy).unwrap();
        assert_eq!(report.stripped_literals, 1);
        assert_eq!(fuzzy.condition(b), Condition::from_literal(Literal::pos(v)));
        assert_semantics_preserved(&before, &fuzzy);
    }

    #[test]
    fn deterministic_events_are_resolved() {
        let mut fuzzy = FuzzyTree::new("r");
        let sure = fuzzy.add_event("sure", 1.0).unwrap();
        let never = fuzzy.add_event("never", 0.0).unwrap();
        let maybe = fuzzy.add_event("maybe", 0.5).unwrap();
        let a = fuzzy.add_element(fuzzy.root(), "a");
        fuzzy
            .set_condition(
                a,
                Condition::from_literals([Literal::pos(sure), Literal::pos(maybe)]),
            )
            .unwrap();
        let b = fuzzy.add_element(fuzzy.root(), "b");
        fuzzy
            .set_condition(b, Condition::from_literal(Literal::pos(never)))
            .unwrap();
        let before = fuzzy.clone();
        let report = Simplifier::new().run(&mut fuzzy).unwrap();
        assert!(report.resolved_deterministic_literals >= 2);
        // `a` keeps only the uncertain literal, `b` disappears. (Event ids
        // may have been remapped by garbage collection, so look it up again.)
        let maybe = fuzzy.events().lookup("maybe").unwrap();
        assert_eq!(
            fuzzy.condition(a),
            Condition::from_literal(Literal::pos(maybe))
        );
        assert!(fuzzy.tree().find_elements("b").is_empty());
        // Unused events are garbage collected.
        assert_eq!(fuzzy.event_count(), 1);
        assert_semantics_preserved(&before, &fuzzy);
    }

    #[test]
    fn complementary_siblings_are_merged() {
        let mut fuzzy = FuzzyTree::new("r");
        let w = fuzzy.add_event("w", 0.5).unwrap();
        let v = fuzzy.add_event("v", 0.4).unwrap();
        // Two copies of a(x) differing only in the sign of w.
        let a1 = fuzzy.add_element(fuzzy.root(), "a");
        fuzzy
            .set_condition(
                a1,
                Condition::from_literals([Literal::pos(v), Literal::pos(w)]),
            )
            .unwrap();
        fuzzy.add_element(a1, "x");
        let a2 = fuzzy.add_element(fuzzy.root(), "a");
        fuzzy
            .set_condition(
                a2,
                Condition::from_literals([Literal::pos(v), Literal::neg(w)]),
            )
            .unwrap();
        fuzzy.add_element(a2, "x");
        let before = fuzzy.clone();
        let report = Simplifier::new().run(&mut fuzzy).unwrap();
        assert_eq!(report.merged_nodes, 2);
        assert_eq!(fuzzy.tree().find_elements("a").len(), 1);
        let a = fuzzy.tree().find_elements("a")[0];
        // `w` was garbage collected, so re-resolve `v` by name.
        let v = fuzzy.events().lookup("v").unwrap();
        assert_eq!(fuzzy.condition(a), Condition::from_literal(Literal::pos(v)));
        assert_semantics_preserved(&before, &fuzzy);
    }

    #[test]
    fn siblings_with_different_bodies_are_not_merged() {
        let mut fuzzy = FuzzyTree::new("r");
        let w = fuzzy.add_event("w", 0.5).unwrap();
        let a1 = fuzzy.add_element(fuzzy.root(), "a");
        fuzzy
            .set_condition(a1, Condition::from_literal(Literal::pos(w)))
            .unwrap();
        fuzzy.add_element(a1, "x");
        let a2 = fuzzy.add_element(fuzzy.root(), "a");
        fuzzy
            .set_condition(a2, Condition::from_literal(Literal::neg(w)))
            .unwrap();
        fuzzy.add_element(a2, "y"); // different child
        let report = Simplifier::new().run(&mut fuzzy).unwrap();
        assert_eq!(report.merged_nodes, 0);
        assert_eq!(fuzzy.tree().find_elements("a").len(), 2);
    }

    #[test]
    fn simplification_undoes_vacuous_conditional_deletion() {
        // Deleting C with confidence 1 when B[w] is present duplicates C; the
        // simplifier must keep the result small and semantics intact.
        let mut fuzzy = FuzzyTree::new("A");
        let w = fuzzy.add_event("w", 0.5).unwrap();
        let root = fuzzy.root();
        let b = fuzzy.add_element(root, "B");
        fuzzy
            .set_condition(b, Condition::from_literal(Literal::pos(w)))
            .unwrap();
        fuzzy.add_element(root, "C");
        let pattern = Pattern::parse("/A { B, C }").unwrap();
        let ids: Vec<_> = pattern.node_ids().collect();
        let tx = UpdateTransaction::new(pattern, 0.8)
            .unwrap()
            .with_delete(ids[2]);
        tx.apply_to_fuzzy(&mut fuzzy).unwrap();
        let before = fuzzy.clone();
        let report = Simplifier::new().run(&mut fuzzy).unwrap();
        assert_semantics_preserved(&before, &fuzzy);
        assert!(fuzzy.node_count() <= before.node_count());
        assert!(report.passes >= 1);
    }

    /// Regression for experiment E8: realistic data-cleaning output.
    ///
    /// A person carries two uncertain phones (`w1`, `w2`) and an uncertain
    /// email (`v`); a cleaning module retracts the email when the person has
    /// *a* phone (confidence 0.9). The two matches share the confidence
    /// event, so the deletion fragments the email's survivor condition into
    /// three pairwise-disjoint pieces — none of which differ in a single
    /// literal, so pairwise Shannon merging never fires on them. The group
    /// re-cover must collapse them back to the two-piece optimum.
    #[test]
    fn group_recover_merges_multi_match_deletion_output() {
        let mut fuzzy = FuzzyTree::new("person");
        let w1 = fuzzy.add_event("w1", 0.7).unwrap();
        let w2 = fuzzy.add_event("w2", 0.6).unwrap();
        let v = fuzzy.add_event("v", 0.8).unwrap();
        let root = fuzzy.root();
        for (label, event) in [("phone", w1), ("phone", w2), ("email", v)] {
            let node = fuzzy.add_element(root, label);
            fuzzy
                .set_condition(node, Condition::from_literal(Literal::pos(event)))
                .unwrap();
        }
        let pattern = Pattern::parse("person { phone, email }").unwrap();
        let email = pattern.node_ids().nth(2).unwrap();
        UpdateTransaction::new(pattern, 0.9)
            .unwrap()
            .with_delete(email)
            .apply_to_fuzzy(&mut fuzzy)
            .unwrap();
        assert_eq!(
            fuzzy.tree().find_elements("email").len(),
            3,
            "the shared-confidence multi-match deletion fragments the email"
        );
        let before = fuzzy.clone();
        let report = Simplifier::new().run(&mut fuzzy).unwrap();
        assert!(report.merged_nodes > 0, "the group re-cover must fire");
        assert_eq!(fuzzy.tree().find_elements("email").len(), 2);
        assert_semantics_preserved(&before, &fuzzy);
        assert!(fuzzy.validate().is_ok());
    }

    /// E8-shape regression for the BDD-lifted re-cover: on every group the
    /// old capped greedy subcube cover could shrink, the lifted cover must
    /// shrink at least as much (it takes the better of the two), and the
    /// cover must carry exactly the union's probability mass.
    #[test]
    fn lifted_cover_is_never_worse_than_the_capped_greedy_one() {
        for phones in 1..=5 {
            let mut fuzzy = FuzzyTree::new("person");
            let root = fuzzy.root();
            for i in 0..phones {
                let w = fuzzy
                    .add_event(format!("w{i}"), 0.6 + 0.05 * i as f64)
                    .unwrap();
                let phone = fuzzy.add_element(root, "phone");
                fuzzy
                    .set_condition(phone, Condition::from_literal(Literal::pos(w)))
                    .unwrap();
            }
            let v = fuzzy.add_event("v", 0.8).unwrap();
            let email = fuzzy.add_element(root, "email");
            fuzzy
                .set_condition(email, Condition::from_literal(Literal::pos(v)))
                .unwrap();
            let pattern = Pattern::parse("person { phone, email }").unwrap();
            let target = pattern.node_ids().nth(2).unwrap();
            UpdateTransaction::new(pattern, 0.9)
                .unwrap()
                .with_delete(target)
                .apply_to_fuzzy(&mut fuzzy)
                .unwrap();
            let conditions: Vec<Condition> = fuzzy
                .tree()
                .find_elements("email")
                .into_iter()
                .map(|n| fuzzy.condition(n))
                .collect();
            assert!(conditions.len() >= 2, "the deletion must fragment");
            let mut events: Vec<EventId> = conditions.iter().flat_map(|c| c.events()).collect();
            events.sort_unstable();
            events.dedup();
            let greedy = greedy_subcube_cover(&conditions, &events);
            let lifted = disjoint_group_cover(&conditions);
            if let Some(greedy) = greedy {
                let lifted = lifted.expect("the greedy cover shrank, so the lifted one must");
                assert!(
                    lifted.len() <= greedy.len(),
                    "lifted cover has {} terms, greedy {}",
                    lifted.len(),
                    greedy.len()
                );
            }
            if let Some(lifted) = disjoint_group_cover(&conditions) {
                // Exactness: disjoint terms sum to the union's probability.
                let union: f64 =
                    pxml_event::Formula::any_of(conditions.iter()).probability(fuzzy.events());
                let mass: f64 = lifted
                    .iter()
                    .map(|term| term.probability(fuzzy.events()))
                    .sum();
                assert!((mass - union).abs() < 1e-9);
            }
        }
    }

    /// The lifted re-cover fires on groups wider than the old 8-event cap:
    /// ten uncertain phones plus the shared deletion confidence put the
    /// fragmented email group at 12 distinct events, which the valuation
    /// enumeration never touched — the BDD path cover collapses the 11
    /// fragments to the 2-piece optimum.
    #[test]
    fn group_recover_fires_past_the_old_eight_event_cap() {
        let mut fuzzy = FuzzyTree::new("person");
        let root = fuzzy.root();
        for i in 0..10 {
            let w = fuzzy.add_event(format!("w{i}"), 0.7).unwrap();
            let phone = fuzzy.add_element(root, "phone");
            fuzzy
                .set_condition(phone, Condition::from_literal(Literal::pos(w)))
                .unwrap();
        }
        let v = fuzzy.add_event("v", 0.8).unwrap();
        let email = fuzzy.add_element(root, "email");
        fuzzy
            .set_condition(email, Condition::from_literal(Literal::pos(v)))
            .unwrap();
        let pattern = Pattern::parse("person { phone, email }").unwrap();
        let target = pattern.node_ids().nth(2).unwrap();
        UpdateTransaction::new(pattern, 0.9)
            .unwrap()
            .with_delete(target)
            .apply_to_fuzzy(&mut fuzzy)
            .unwrap();
        assert_eq!(fuzzy.tree().find_elements("email").len(), 11);
        let before = fuzzy.clone();
        let report = Simplifier::new().run(&mut fuzzy).unwrap();
        assert!(report.merged_nodes > 0, "the wide re-cover must fire");
        assert!(fuzzy.tree().find_elements("email").len() <= 2);
        assert_semantics_preserved(&before, &fuzzy);
        assert!(fuzzy.validate().is_ok());
    }

    #[test]
    fn group_recover_leaves_overlapping_siblings_alone() {
        // Two same-body phones from independent extractions co-exist in some
        // worlds: their conditions are not disjoint, so merging them would
        // change the number of simultaneous copies and must not happen.
        let mut fuzzy = FuzzyTree::new("person");
        let w1 = fuzzy.add_event("w1", 0.7).unwrap();
        let w2 = fuzzy.add_event("w2", 0.6).unwrap();
        for event in [w1, w2] {
            let phone = fuzzy.add_element(fuzzy.root(), "phone");
            fuzzy
                .set_condition(phone, Condition::from_literal(Literal::pos(event)))
                .unwrap();
        }
        let before = fuzzy.clone();
        let report = Simplifier::new().run(&mut fuzzy).unwrap();
        assert_eq!(report.merged_nodes, 0);
        assert_eq!(fuzzy.tree().find_elements("phone").len(), 2);
        assert_semantics_preserved(&before, &fuzzy);
    }

    #[test]
    fn garbage_collection_drops_unused_events() {
        let mut fuzzy = slide12_example();
        fuzzy.add_event("orphan1", 0.4).unwrap();
        fuzzy.add_event("orphan2", 0.9).unwrap();
        let removed = garbage_collect_events(&mut fuzzy);
        assert_eq!(removed, 2);
        assert_eq!(fuzzy.event_count(), 2);
        assert!(fuzzy.validate().is_ok());
        // Conditions still refer to valid events with unchanged probabilities.
        let worlds = fuzzy.to_possible_worlds().unwrap();
        let abc = parse_data_tree("<A><B/><C/></A>").unwrap();
        assert!((worlds.probability_of_tree(&abc) - 0.24).abs() < 1e-12);
    }

    #[test]
    fn simplification_after_update_history_preserves_semantics() {
        // A short random-ish update history followed by simplification.
        let mut fuzzy = slide12_example();
        let insert_pattern = Pattern::parse("A { D }").unwrap();
        let ins_target = insert_pattern.root();
        UpdateTransaction::new(insert_pattern, 0.6)
            .unwrap()
            .with_insert(ins_target, parse_data_tree("<E>x</E>").unwrap())
            .apply_to_fuzzy(&mut fuzzy)
            .unwrap();
        let delete_pattern = Pattern::parse("/A { B, C }").unwrap();
        let ids: Vec<_> = delete_pattern.node_ids().collect();
        UpdateTransaction::new(delete_pattern, 0.7)
            .unwrap()
            .with_delete(ids[2])
            .apply_to_fuzzy(&mut fuzzy)
            .unwrap();
        let before = fuzzy.clone();
        let report = Simplifier::new().run(&mut fuzzy).unwrap();
        assert_semantics_preserved(&before, &fuzzy);
        assert!(fuzzy.validate().is_ok());
        assert!(report.passes <= 8);
    }
}
