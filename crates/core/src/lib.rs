//! # pxml-core
//!
//! The probabilistic XML models of *Querying and Updating Probabilistic
//! Information in XML* (Abiteboul & Senellart, EDBT 2006): the
//! **possible-worlds model** (the semantic foundation) and the **fuzzy-tree
//! model** (the compact representation actually stored and updated), together
//! with query and probabilistic-update semantics on both and the translations
//! between them.
//!
//! The crate is organised around the paper's sections:
//!
//! | Paper | Module |
//! |---|---|
//! | Possible-worlds model, normalisation, query/update semantic foundation (slides 9–10) | [`worlds`] |
//! | Fuzzy trees and their possible-worlds semantics (slide 12) | [`fuzzy`] |
//! | Queries on fuzzy trees and the query commutation theorem (slide 13) | [`fuzzy_query`] |
//! | Probabilistic update transactions on both models, conditional replacement, deletion-induced duplication (slides 14–15) | [`update`] |
//! | Expressiveness: encoding any possible-worlds set as a fuzzy tree (slide 12 theorem) | [`encode`] |
//! | Fuzzy-data simplification (slide 19 perspective) | [`simplify`] |
//!
//! ## The slide-12 example
//!
//! ```
//! use pxml_core::FuzzyTree;
//! use pxml_event::{Condition, Literal};
//!
//! let mut fuzzy = FuzzyTree::new("A");
//! let w1 = fuzzy.add_event("w1", 0.8).unwrap();
//! let w2 = fuzzy.add_event("w2", 0.7).unwrap();
//! let root = fuzzy.root();
//! let b = fuzzy.add_element(root, "B");
//! fuzzy.set_condition(b, Condition::from_literals([Literal::pos(w1), Literal::neg(w2)])).unwrap();
//! fuzzy.add_element(root, "C");
//! let d = fuzzy.add_element(root, "D");
//! fuzzy.set_condition(d, Condition::from_literal(Literal::pos(w2))).unwrap();
//!
//! let worlds = fuzzy.to_possible_worlds().unwrap();
//! assert_eq!(worlds.len(), 3);                       // {A,C}, {A,C,D}, {A,B,C}
//! assert!((worlds.total_probability() - 1.0).abs() < 1e-12);
//! ```

pub mod encode;
pub mod error;
pub mod fuzzy;
pub mod fuzzy_query;
pub mod simplify;
pub mod txn;
pub mod update;
pub mod worlds;

pub use encode::encode_possible_worlds;
pub use error::CoreError;
pub use fuzzy::FuzzyTree;
pub use fuzzy_query::{FuzzyQueryResult, ProbabilisticMatch};
pub use simplify::{Simplifier, SimplifyPolicy, SimplifyReport};
pub use txn::{apply_batch, BatchStats, Update};
pub use update::{UpdateOperation, UpdateStats, UpdateTransaction};
pub use worlds::PossibleWorlds;
