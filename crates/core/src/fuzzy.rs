//! The fuzzy-tree model: a data tree whose nodes carry event conditions.
//!
//! A fuzzy tree (slide 12) is a data tree where every node is annotated with
//! a *condition* — a conjunction of probabilistic events or negations of
//! probabilistic events — plus a table assigning a probability to each event.
//! The **possible-worlds semantics** of a fuzzy tree is obtained by
//! enumerating the valuations of the events: in the world of a valuation, a
//! node is present iff its condition *and the conditions of all its
//! ancestors* hold (a node disappears together with its whole subtree).
//!
//! The model is as expressive as the possible-worlds model (see
//! [`crate::encode`]) while staying polynomial-size in typical documents:
//! instead of materialising up to `2^n` worlds, uncertainty is recorded
//! locally on the affected nodes.

use std::collections::HashMap;

use pxml_event::{
    enumerate_valuations_over, Condition, EventError, EventId, EventTable, Literal, Valuation,
};
use pxml_tree::{ChunkedVec, Label, NodeId, Tree};

use crate::error::CoreError;
use crate::worlds::PossibleWorlds;

/// Per-node conditions, stored positionally (indexed by `NodeId::index`) in a
/// copy-on-write chunked vector so that cloning a [`FuzzyTree`] shares the
/// condition storage with the original and a mutation batch copies only the
/// chunks holding the touched nodes — the same structural sharing as the
/// arena of [`Tree`] itself.
#[derive(Debug, Clone, Default)]
pub(crate) struct ConditionMap {
    slots: ChunkedVec<Option<Condition>>,
}

impl ConditionMap {
    pub(crate) fn new() -> Self {
        ConditionMap::default()
    }

    pub(crate) fn get(&self, node: NodeId) -> Option<&Condition> {
        self.slots.get(node.index()).and_then(|slot| slot.as_ref())
    }

    pub(crate) fn insert(&mut self, node: NodeId, condition: Condition) {
        let index = node.index();
        while self.slots.len() <= index {
            self.slots.push(None);
        }
        *self.slots.get_mut(index).expect("slot just grown") = Some(condition);
    }

    pub(crate) fn remove(&mut self, node: NodeId) {
        // Skip the write (and the chunk un-sharing it would force) when the
        // slot is already empty or out of range.
        if self.get(node).is_some() {
            *self.slots.get_mut(node.index()).expect("slot in range") = None;
        }
    }

    pub(crate) fn iter(&self) -> impl Iterator<Item = (NodeId, &Condition)> {
        self.slots.iter().enumerate().filter_map(|(index, slot)| {
            slot.as_ref()
                .map(|condition| (NodeId::from_index(index), condition))
        })
    }

    pub(crate) fn values(&self) -> impl Iterator<Item = &Condition> {
        self.slots.iter().filter_map(|slot| slot.as_ref())
    }
}

/// A data tree with per-node event conditions and an event table.
#[derive(Debug, Clone)]
pub struct FuzzyTree {
    pub(crate) tree: Tree,
    pub(crate) conditions: ConditionMap,
    pub(crate) events: EventTable,
}

impl FuzzyTree {
    /// Creates a fuzzy tree with a single (certain) root node.
    pub fn new(root_label: impl Into<Label>) -> Self {
        FuzzyTree {
            tree: Tree::new(root_label),
            conditions: ConditionMap::new(),
            events: EventTable::new(),
        }
    }

    /// Wraps an ordinary data tree: every node is certain.
    pub fn from_tree(tree: Tree) -> Self {
        FuzzyTree {
            tree,
            conditions: ConditionMap::new(),
            events: EventTable::new(),
        }
    }

    /// The underlying data tree (conditions stripped).
    pub fn tree(&self) -> &Tree {
        &self.tree
    }

    /// The event table.
    pub fn events(&self) -> &EventTable {
        &self.events
    }

    /// The root node.
    pub fn root(&self) -> NodeId {
        self.tree.root()
    }

    /// The number of nodes of the underlying tree.
    pub fn node_count(&self) -> usize {
        self.tree.node_count()
    }

    /// The number of events in the table.
    pub fn event_count(&self) -> usize {
        self.events.len()
    }

    /// The total number of literals across all node conditions — a measure of
    /// how much uncertainty bookkeeping the document carries (used by the
    /// simplification experiments).
    pub fn condition_literal_count(&self) -> usize {
        self.tree
            .nodes()
            .into_iter()
            .map(|n| self.condition(n).len())
            .sum()
    }

    /// Adds a named probabilistic event.
    pub fn add_event(
        &mut self,
        name: impl Into<String>,
        probability: f64,
    ) -> Result<EventId, EventError> {
        self.events.add_event(name, probability)
    }

    /// Adds a fresh, automatically named event (used by updates to record the
    /// transaction confidence).
    pub fn fresh_event(&mut self, probability: f64) -> Result<EventId, EventError> {
        self.events.fresh_event(probability)
    }

    /// Adds a certain child element.
    pub fn add_element(&mut self, parent: NodeId, name: impl Into<String>) -> NodeId {
        self.tree.add_element(parent, name)
    }

    /// Adds a certain child text node.
    pub fn add_text(&mut self, parent: NodeId, value: impl Into<String>) -> NodeId {
        self.tree.add_text(parent, value)
    }

    /// Adds a child element carrying a condition.
    pub fn add_conditional_element(
        &mut self,
        parent: NodeId,
        name: impl Into<String>,
        condition: Condition,
    ) -> NodeId {
        let node = self.tree.add_element(parent, name);
        if !condition.is_empty() {
            self.conditions.insert(node, condition);
        }
        node
    }

    /// Deep-copies a plain subtree below `parent`; the copied root gets
    /// `condition`, the copied descendants are certain (relative to it).
    pub fn graft_subtree(
        &mut self,
        parent: NodeId,
        source: &Tree,
        source_root: NodeId,
        condition: Condition,
    ) -> NodeId {
        let new_root = self.tree.copy_subtree_from(parent, source, source_root);
        if !condition.is_empty() {
            self.conditions.insert(new_root, condition);
        }
        new_root
    }

    /// Deep-copies the fuzzy subtree rooted at `source` (of this same tree)
    /// below `parent`, preserving the conditions carried by the descendants;
    /// the copied root gets `root_condition` instead of the original one.
    ///
    /// The copy walks the subtree in preorder (every node's parent is mapped
    /// before its children), so the cost is proportional to the subtree —
    /// deletion-induced duplication calls this in a loop and must not pay for
    /// the whole document on every copy.
    pub fn duplicate_subtree(
        &mut self,
        parent: NodeId,
        source: NodeId,
        root_condition: Condition,
    ) -> NodeId {
        let order = self.tree.descendants_or_self(source);
        let mut mapping: HashMap<NodeId, NodeId> = HashMap::with_capacity(order.len());
        for node in order {
            let label = self.tree.label(node).clone();
            let copy = if node == source {
                let new_root = self.tree.add_child(parent, label);
                if !root_condition.is_empty() {
                    self.conditions.insert(new_root, root_condition.clone());
                }
                new_root
            } else {
                let source_parent = self.tree.parent(node).expect("descendant has a parent");
                let copy = self.tree.add_child(mapping[&source_parent], label);
                if let Some(condition) = self.conditions.get(node).cloned() {
                    self.conditions.insert(copy, condition);
                }
                copy
            };
            mapping.insert(node, copy);
        }
        mapping[&source]
    }

    /// Removes a subtree (and the conditions of its nodes).
    pub fn remove_subtree(&mut self, node: NodeId) -> Result<(), CoreError> {
        let removed: Vec<NodeId> = self.tree.descendants_or_self(node);
        self.tree.remove_subtree(node)?;
        for n in removed {
            self.conditions.remove(n);
        }
        Ok(())
    }

    /// Rebuilds the arena with only live nodes, reclaiming slots left behind
    /// by [`FuzzyTree::remove_subtree`], and remaps the node conditions onto
    /// the new ids. Returns the number of dead slots reclaimed.
    ///
    /// Node ids from before the compaction are invalidated. The warehouse
    /// folds this into the commit pipeline (each commit publishes a fresh
    /// snapshot anyway), so churn-heavy documents stay within a constant
    /// factor of their live size.
    pub fn compact_slots(&mut self) -> usize {
        let reclaimed = self.tree.slot_count() - self.tree.node_count();
        if reclaimed == 0 {
            return 0;
        }
        let (tree, mapping) = self.tree.compact();
        let mut conditions = ConditionMap::new();
        for (node, condition) in self.conditions.iter() {
            if let Some(&renamed) = mapping.get(&node) {
                conditions.insert(renamed, condition.clone());
            }
        }
        self.tree = tree;
        self.conditions = conditions;
        reclaimed
    }

    /// The condition attached to a node (the empty condition when none).
    pub fn condition(&self, node: NodeId) -> Condition {
        self.conditions.get(node).cloned().unwrap_or_default()
    }

    /// Attaches a condition to a node. The root must stay certain.
    pub fn set_condition(&mut self, node: NodeId, condition: Condition) -> Result<(), CoreError> {
        if !self.tree.contains(node) {
            return Err(CoreError::InvalidNode(node.index() as u32));
        }
        if node == self.tree.root() && !condition.is_empty() {
            return Err(CoreError::RootConditionNotAllowed);
        }
        if condition.is_empty() {
            self.conditions.remove(node);
        } else {
            self.conditions.insert(node, condition);
        }
        Ok(())
    }

    /// The *existence condition* of a node: the conjunction of its own
    /// condition and the conditions of all its ancestors (a node only exists
    /// in worlds where its whole ancestor chain exists).
    pub fn existence_condition(&self, node: NodeId) -> Condition {
        let mut literals = Vec::new();
        self.extend_existence_literals(node, &mut literals);
        Condition::from_literals(literals)
    }

    /// The literals of a node's own condition, borrowed (empty for nodes
    /// without a condition). Lets callers accumulate literals across nodes
    /// and sort/dedup once, instead of conjoining [`Condition`]s in a loop
    /// (each [`Condition::and`] re-sorts and re-allocates).
    pub fn condition_literals(&self, node: NodeId) -> &[Literal] {
        self.conditions
            .get(node)
            .map(|condition| condition.literals())
            .unwrap_or(&[])
    }

    /// Appends the literals of every condition on the root→`node` path to
    /// `out` (unsorted, possibly with duplicates — callers build one
    /// [`Condition`] from the accumulated batch).
    pub fn extend_existence_literals(&self, node: NodeId, out: &mut Vec<Literal>) {
        for n in self.tree.ancestors_or_self(node) {
            out.extend_from_slice(self.condition_literals(n));
        }
    }

    /// The probability that a node is present in a random world.
    pub fn node_probability(&self, node: NodeId) -> f64 {
        self.existence_condition(node).probability(&self.events)
    }

    /// The events actually mentioned by at least one node condition.
    pub fn mentioned_events(&self) -> Vec<EventId> {
        let mut mentioned: Vec<EventId> =
            self.conditions.values().flat_map(|c| c.events()).collect();
        mentioned.sort_unstable();
        mentioned.dedup();
        mentioned
    }

    /// The world (plain data tree) obtained under a given valuation of the
    /// events: nodes whose condition fails are removed together with their
    /// subtrees.
    pub fn world_under(&self, valuation: &Valuation) -> Tree {
        let mut world = Tree::new(self.tree.label(self.tree.root()).clone());
        let mut stack: Vec<(NodeId, NodeId)> = vec![(self.tree.root(), world.root())];
        while let Some((src, dst)) = stack.pop() {
            for &child in self.tree.children(src) {
                if self.condition(child).satisfied_by(valuation) {
                    let copy = world.add_child(dst, self.tree.label(child).clone());
                    stack.push((child, copy));
                }
            }
        }
        world
    }

    /// The possible-worlds semantics of the fuzzy tree: enumerate the
    /// valuations of the mentioned events, build each world, weight it by the
    /// valuation probability and merge isomorphic worlds.
    ///
    /// The enumeration is exponential in the number of *mentioned* events and
    /// is capped (see [`pxml_event::valuation::MAX_ENUMERATED_EVENTS`]); this
    /// cost is exactly what the fuzzy-tree representation avoids paying
    /// during normal operation (experiment E3).
    pub fn to_possible_worlds(&self) -> Result<PossibleWorlds, CoreError> {
        let mentioned = self.mentioned_events();
        let valuations = enumerate_valuations_over(&self.events, &mentioned)?;
        let mut worlds = PossibleWorlds::new();
        for valuation in valuations {
            let weight: f64 = mentioned
                .iter()
                .map(|&event| {
                    let p = self.events.probability(event);
                    if valuation.get(event) {
                        p
                    } else {
                        1.0 - p
                    }
                })
                .product();
            if weight <= 0.0 {
                continue;
            }
            worlds.push(self.world_under(&valuation), weight);
        }
        Ok(worlds.normalized())
    }

    /// A canonical string for the fuzzy subtree rooted at `node`, taking both
    /// labels and conditions into account; isomorphic fuzzy subtrees (same
    /// shape, same conditions) have the same canonical string.
    pub fn fuzzy_canonical_string(&self, node: NodeId) -> String {
        let mut out = String::new();
        self.write_canonical(node, &mut out);
        out
    }

    fn write_canonical(&self, node: NodeId, out: &mut String) {
        let label = self.tree.label(node);
        match label {
            Label::Element(name) => {
                out.push('e');
                out.push('|');
                out.push_str(name);
            }
            Label::Text(value) => {
                out.push('t');
                out.push('|');
                out.push_str(value);
            }
        }
        out.push('[');
        out.push_str(&self.condition(node).to_string());
        out.push(']');
        let children = self.tree.children(node);
        if children.is_empty() {
            return;
        }
        let mut forms: Vec<String> = children
            .iter()
            .map(|&child| self.fuzzy_canonical_string(child))
            .collect();
        forms.sort_unstable();
        out.push('(');
        for (i, form) in forms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(form);
        }
        out.push(')');
    }

    /// Semantic equality of two fuzzy trees: their possible-worlds expansions
    /// coincide (up to `epsilon` on probabilities).
    pub fn semantically_equivalent(
        &self,
        other: &FuzzyTree,
        epsilon: f64,
    ) -> Result<bool, CoreError> {
        Ok(self
            .to_possible_worlds()?
            .equivalent(&other.to_possible_worlds()?, epsilon))
    }

    /// Structural sanity checks: conditions reference live nodes and known
    /// events, and the root is certain.
    pub fn validate(&self) -> Result<(), CoreError> {
        self.tree.validate()?;
        if !self.condition(self.tree.root()).is_empty() {
            return Err(CoreError::RootConditionNotAllowed);
        }
        for (node, condition) in self.conditions.iter() {
            if !self.tree.contains(node) {
                return Err(CoreError::InvalidNode(node.index() as u32));
            }
            for literal in condition.literals() {
                if !self.events.contains(literal.event) {
                    return Err(CoreError::Event(EventError::UnknownEventId(
                        literal.event.index() as u32,
                    )));
                }
            }
        }
        Ok(())
    }
}

/// Builds the slide-12 example fuzzy tree: `A(B[w1 ¬w2], C, D[w2])` with
/// `P(w1)=0.8`, `P(w2)=0.7`. Exposed because several experiments and examples
/// start from it.
pub fn slide12_example() -> FuzzyTree {
    use pxml_event::Literal;
    let mut fuzzy = FuzzyTree::new("A");
    let w1 = fuzzy.add_event("w1", 0.8).expect("fresh table");
    let w2 = fuzzy.add_event("w2", 0.7).expect("fresh table");
    let root = fuzzy.root();
    let b = fuzzy.add_element(root, "B");
    fuzzy
        .set_condition(
            b,
            Condition::from_literals([Literal::pos(w1), Literal::neg(w2)]),
        )
        .expect("b is not the root");
    fuzzy.add_element(root, "C");
    let d = fuzzy.add_element(root, "D");
    fuzzy
        .set_condition(d, Condition::from_literal(Literal::pos(w2)))
        .expect("d is not the root");
    fuzzy
}

#[cfg(test)]
mod tests {
    use super::*;
    use pxml_event::Literal;
    use pxml_tree::parse_data_tree;

    #[test]
    fn slide12_expansion_matches_the_paper() {
        let fuzzy = slide12_example();
        assert!(fuzzy.validate().is_ok());
        let worlds = fuzzy.to_possible_worlds().unwrap();
        assert_eq!(worlds.len(), 3);
        let ac = parse_data_tree("<A><C/></A>").unwrap();
        let acd = parse_data_tree("<A><C/><D/></A>").unwrap();
        let abc = parse_data_tree("<A><B/><C/></A>").unwrap();
        assert!((worlds.probability_of_tree(&ac) - 0.06).abs() < 1e-12);
        assert!((worlds.probability_of_tree(&acd) - 0.70).abs() < 1e-12);
        assert!((worlds.probability_of_tree(&abc) - 0.24).abs() < 1e-12);
        assert!((worlds.total_probability() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn certain_tree_has_one_world() {
        let tree = parse_data_tree("<a><b>x</b><c/></a>").unwrap();
        let fuzzy = FuzzyTree::from_tree(tree.clone());
        let worlds = fuzzy.to_possible_worlds().unwrap();
        assert_eq!(worlds.len(), 1);
        assert!((worlds.probability_of_tree(&tree) - 1.0).abs() < 1e-12);
        assert_eq!(fuzzy.event_count(), 0);
        assert_eq!(fuzzy.condition_literal_count(), 0);
    }

    #[test]
    fn descendants_disappear_with_their_ancestor() {
        let mut fuzzy = FuzzyTree::new("r");
        let w = fuzzy.add_event("w", 0.5).unwrap();
        let a = fuzzy.add_element(fuzzy.root(), "a");
        fuzzy
            .set_condition(a, Condition::from_literal(Literal::pos(w)))
            .unwrap();
        let b = fuzzy.add_element(a, "b");
        // b itself is certain, but it sits below the uncertain a.
        assert!((fuzzy.node_probability(b) - 0.5).abs() < 1e-12);
        let worlds = fuzzy.to_possible_worlds().unwrap();
        let without = parse_data_tree("<r/>").unwrap();
        let with = parse_data_tree("<r><a><b/></a></r>").unwrap();
        assert!((worlds.probability_of_tree(&without) - 0.5).abs() < 1e-12);
        assert!((worlds.probability_of_tree(&with) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn existence_condition_conjoins_ancestors() {
        let mut fuzzy = FuzzyTree::new("r");
        let w1 = fuzzy.add_event("w1", 0.5).unwrap();
        let w2 = fuzzy.add_event("w2", 0.5).unwrap();
        let a = fuzzy.add_element(fuzzy.root(), "a");
        fuzzy
            .set_condition(a, Condition::from_literal(Literal::pos(w1)))
            .unwrap();
        let b = fuzzy.add_element(a, "b");
        fuzzy
            .set_condition(b, Condition::from_literal(Literal::pos(w2)))
            .unwrap();
        let existence = fuzzy.existence_condition(b);
        assert_eq!(existence.len(), 2);
        assert!(existence.contains(Literal::pos(w1)));
        assert!(existence.contains(Literal::pos(w2)));
        assert!((fuzzy.node_probability(b) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn root_condition_is_rejected() {
        let mut fuzzy = FuzzyTree::new("r");
        let w = fuzzy.add_event("w", 0.5).unwrap();
        let err = fuzzy
            .set_condition(fuzzy.root(), Condition::from_literal(Literal::pos(w)))
            .unwrap_err();
        assert_eq!(err, CoreError::RootConditionNotAllowed);
    }

    #[test]
    fn setting_condition_on_missing_node_fails() {
        let mut fuzzy = FuzzyTree::new("r");
        let w = fuzzy.add_event("w", 0.5).unwrap();
        let a = fuzzy.add_element(fuzzy.root(), "a");
        fuzzy.remove_subtree(a).unwrap();
        let err = fuzzy
            .set_condition(a, Condition::from_literal(Literal::pos(w)))
            .unwrap_err();
        assert!(matches!(err, CoreError::InvalidNode(_)));
    }

    #[test]
    fn remove_subtree_discards_conditions() {
        let mut fuzzy = slide12_example();
        let b = fuzzy.tree().find_elements("B")[0];
        fuzzy.remove_subtree(b).unwrap();
        assert!(fuzzy.validate().is_ok());
        assert_eq!(fuzzy.condition_literal_count(), 1); // only D's w2 remains
    }

    #[test]
    fn duplicate_subtree_preserves_descendant_conditions() {
        let mut fuzzy = FuzzyTree::new("r");
        let w = fuzzy.add_event("w", 0.6).unwrap();
        let v = fuzzy.add_event("v", 0.3).unwrap();
        let a = fuzzy.add_element(fuzzy.root(), "a");
        fuzzy
            .set_condition(a, Condition::from_literal(Literal::pos(w)))
            .unwrap();
        let b = fuzzy.add_element(a, "b");
        fuzzy
            .set_condition(b, Condition::from_literal(Literal::pos(v)))
            .unwrap();
        let copy =
            fuzzy.duplicate_subtree(fuzzy.root(), a, Condition::from_literal(Literal::neg(w)));
        assert_eq!(
            fuzzy.condition(copy),
            Condition::from_literal(Literal::neg(w))
        );
        let copied_b = fuzzy.tree().children(copy)[0];
        assert_eq!(
            fuzzy.condition(copied_b),
            Condition::from_literal(Literal::pos(v))
        );
        assert!(fuzzy.validate().is_ok());
    }

    #[test]
    fn graft_subtree_attaches_a_plain_tree() {
        let mut fuzzy = FuzzyTree::new("r");
        let w = fuzzy.add_event("w", 0.5).unwrap();
        let subtree = parse_data_tree("<x><y>1</y></x>").unwrap();
        let grafted = fuzzy.graft_subtree(
            fuzzy.root(),
            &subtree,
            subtree.root(),
            Condition::from_literal(Literal::pos(w)),
        );
        assert_eq!(fuzzy.tree().subtree_size(grafted), 3);
        assert_eq!(fuzzy.condition(grafted).len(), 1);
        let worlds = fuzzy.to_possible_worlds().unwrap();
        assert_eq!(worlds.len(), 2);
    }

    #[test]
    fn mentioned_events_ignores_unused_events() {
        let mut fuzzy = slide12_example();
        fuzzy.add_event("unused", 0.5).unwrap();
        assert_eq!(fuzzy.mentioned_events().len(), 2);
        assert_eq!(fuzzy.event_count(), 3);
        // Unused events do not blow up the expansion.
        assert_eq!(fuzzy.to_possible_worlds().unwrap().len(), 3);
    }

    #[test]
    fn fuzzy_canonical_string_distinguishes_conditions() {
        let mut fuzzy = FuzzyTree::new("r");
        let w = fuzzy.add_event("w", 0.5).unwrap();
        let a = fuzzy.add_element(fuzzy.root(), "a");
        let b = fuzzy.add_element(fuzzy.root(), "a");
        assert_eq!(
            fuzzy.fuzzy_canonical_string(a),
            fuzzy.fuzzy_canonical_string(b)
        );
        fuzzy
            .set_condition(a, Condition::from_literal(Literal::pos(w)))
            .unwrap();
        assert_ne!(
            fuzzy.fuzzy_canonical_string(a),
            fuzzy.fuzzy_canonical_string(b)
        );
    }

    #[test]
    fn semantic_equivalence_detects_equal_distributions() {
        let fuzzy = slide12_example();
        let mut other = slide12_example();
        assert!(fuzzy.semantically_equivalent(&other, 1e-9).unwrap());
        // Changing a probability breaks equivalence.
        let w1 = other.events().lookup("w1").unwrap();
        let mut events = other.events.clone();
        events.set_probability(w1, 0.5).unwrap();
        other.events = events;
        assert!(!fuzzy.semantically_equivalent(&other, 1e-9).unwrap());
    }

    #[test]
    fn validate_rejects_unknown_event_ids() {
        let mut fuzzy = FuzzyTree::new("r");
        let a = fuzzy.add_element(fuzzy.root(), "a");
        // Forge a condition over an event id that is not in the table.
        let bogus = {
            let mut other = EventTable::new();
            other.add_event("ghost", 0.5).unwrap()
        };
        fuzzy
            .conditions
            .insert(a, Condition::from_literal(Literal::pos(bogus)));
        assert!(matches!(fuzzy.validate(), Err(CoreError::Event(_))));
    }
}
