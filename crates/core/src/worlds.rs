//! The possible-worlds model: the semantic foundation of probabilistic XML.
//!
//! A probabilistic instance is a finite set of `(tree, probability)` pairs —
//! one per possible world (slide 9). Queries and updates are defined world by
//! world (slide 10):
//!
//! * the result of a query `Q` over `T = {(tᵢ, pᵢ)}` is the normalisation of
//!   `{(t, pᵢ) | t ∈ Q(tᵢ)}`;
//! * the result of an update `u` (query `Q` + operations `τ` + confidence `c`)
//!   is the normalisation of the worlds not selected by `Q`, plus `(τ(t), p·c)`
//!   and `(t, p·(1−c))` for every selected world `(t, p)`.
//!
//! **Normalisation** merges unordered-isomorphic trees, summing their
//! probabilities. [`PossibleWorlds::rescaled`] additionally scales the total
//! mass back to 1 for the situations where the paper's definition calls for a
//! proper distribution.

use std::collections::HashMap;

use pxml_query::{MatchStrategy, Pattern};
use pxml_tree::{CanonicalForm, Tree};

use crate::error::CoreError;
use crate::update::UpdateTransaction;

/// A finite set of possible worlds, each a data tree with a probability.
#[derive(Debug, Clone, Default)]
pub struct PossibleWorlds {
    worlds: Vec<(Tree, f64)>,
}

impl PossibleWorlds {
    /// The empty set of worlds.
    pub fn new() -> Self {
        PossibleWorlds::default()
    }

    /// A deterministic instance: a single world with probability 1.
    pub fn certain(tree: Tree) -> Self {
        PossibleWorlds {
            worlds: vec![(tree, 1.0)],
        }
    }

    /// Builds a set from explicit `(tree, probability)` pairs.
    pub fn from_worlds(worlds: impl IntoIterator<Item = (Tree, f64)>) -> Result<Self, CoreError> {
        let worlds: Vec<(Tree, f64)> = worlds.into_iter().collect();
        for (_, p) in &worlds {
            if !p.is_finite() || *p <= 0.0 {
                return Err(CoreError::InvalidWorldProbability(*p));
            }
        }
        Ok(PossibleWorlds { worlds })
    }

    /// Adds a world. Worlds with non-positive probability are ignored (they
    /// cannot be observed and normalisation would drop them anyway).
    pub fn push(&mut self, tree: Tree, probability: f64) {
        if probability > 0.0 && probability.is_finite() {
            self.worlds.push((tree, probability));
        }
    }

    /// The number of worlds (before any merging).
    pub fn len(&self) -> usize {
        self.worlds.len()
    }

    /// `true` when the set contains no world.
    pub fn is_empty(&self) -> bool {
        self.worlds.is_empty()
    }

    /// Iterates over the worlds.
    pub fn iter(&self) -> impl Iterator<Item = &(Tree, f64)> {
        self.worlds.iter()
    }

    /// The sum of all world probabilities.
    pub fn total_probability(&self) -> f64 {
        self.worlds.iter().map(|(_, p)| p).sum()
    }

    /// The expected number of nodes of a random world.
    pub fn expected_node_count(&self) -> f64 {
        let total = self.total_probability();
        if total == 0.0 {
            return 0.0;
        }
        self.worlds
            .iter()
            .map(|(tree, p)| tree.node_count() as f64 * p)
            .sum::<f64>()
            / total
    }

    /// The probability mass of the worlds satisfying `predicate`.
    pub fn probability_that(&self, mut predicate: impl FnMut(&Tree) -> bool) -> f64 {
        self.worlds
            .iter()
            .filter(|(tree, _)| predicate(tree))
            .map(|(_, p)| p)
            .sum()
    }

    /// The probability mass of the worlds isomorphic to `tree`.
    pub fn probability_of_tree(&self, tree: &Tree) -> f64 {
        self.probability_that(|world| world.isomorphic(tree))
    }

    /// Normalisation: merges unordered-isomorphic worlds, summing their
    /// probabilities. The total mass is preserved.
    pub fn normalized(&self) -> PossibleWorlds {
        let mut order: Vec<CanonicalForm> = Vec::new();
        let mut merged: HashMap<String, (Tree, f64)> = HashMap::new();
        for (tree, p) in &self.worlds {
            let form = CanonicalForm::of_tree(tree);
            let key = form.as_str().to_string();
            if let Some(entry) = merged.get_mut(&key) {
                entry.1 += p;
            } else {
                merged.insert(key, (tree.clone(), *p));
                order.push(form);
            }
        }
        // Deterministic order: sort by canonical form.
        order.sort();
        let worlds = order
            .into_iter()
            .map(|form| merged.remove(form.as_str()).expect("inserted above"))
            .collect();
        PossibleWorlds { worlds }
    }

    /// Normalisation followed by rescaling so that probabilities sum to 1.
    pub fn rescaled(&self) -> Result<PossibleWorlds, CoreError> {
        let normalized = self.normalized();
        let total = normalized.total_probability();
        if normalized.is_empty() || total <= 0.0 {
            return Err(CoreError::EmptyWorldSet);
        }
        Ok(PossibleWorlds {
            worlds: normalized
                .worlds
                .into_iter()
                .map(|(tree, p)| (tree, p / total))
                .collect(),
        })
    }

    /// Semantic equality: both sets, once normalised, contain the same trees
    /// with the same probabilities (up to `epsilon`).
    pub fn equivalent(&self, other: &PossibleWorlds, epsilon: f64) -> bool {
        let a = self.normalized();
        let b = other.normalized();
        if a.len() != b.len() {
            return false;
        }
        for (tree, p) in a.iter() {
            let q = b.probability_of_tree(tree);
            if (p - q).abs() > epsilon {
                return false;
            }
        }
        true
    }

    /// The query semantic foundation (slide 10): evaluate `query` in every
    /// world, emit each answer with the world's probability, and normalise.
    ///
    /// The returned set is *not* rescaled: the probability attached to an
    /// answer tree is the probability that this answer is produced, so the
    /// total can be below 1 (worlds with no match contribute nothing) or
    /// above 1 (a world can produce several distinct answers).
    pub fn query(&self, query: &Pattern) -> PossibleWorlds {
        let mut result = PossibleWorlds::new();
        for (tree, p) in &self.worlds {
            let answers = query.evaluate(tree);
            // Several matches within one world may yield isomorphic answers;
            // the paper's definition collects the *set* Q(tᵢ), so deduplicate
            // inside each world before emitting.
            for (answer, _group) in answers.distinct_answers() {
                result.push(answer, *p);
            }
        }
        result.normalized()
    }

    /// The update semantic foundation (slide 10): worlds selected by the
    /// update's query are split into an updated copy (probability `p·c`) and
    /// an unchanged copy (`p·(1−c)`); unselected worlds are kept; the result
    /// is normalised.
    pub fn update(&self, update: &UpdateTransaction) -> PossibleWorlds {
        let mut result = PossibleWorlds::new();
        let confidence = update.confidence();
        for (tree, p) in &self.worlds {
            let matches = update
                .pattern()
                .find_matches_with(tree, MatchStrategy::Indexed);
            if matches.is_empty() {
                result.push(tree.clone(), *p);
                continue;
            }
            let updated = update.apply_to_tree_with_matches(tree, &matches);
            result.push(updated, p * confidence);
            if confidence < 1.0 {
                result.push(tree.clone(), p * (1.0 - confidence));
            }
        }
        result.normalized()
    }
}

impl FromIterator<(Tree, f64)> for PossibleWorlds {
    fn from_iter<T: IntoIterator<Item = (Tree, f64)>>(iter: T) -> Self {
        let mut worlds = PossibleWorlds::new();
        for (tree, p) in iter {
            worlds.push(tree, p);
        }
        worlds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pxml_tree::parse_data_tree;

    /// The slide-9 example: four worlds over A with children among {B, C, D}.
    fn slide9() -> PossibleWorlds {
        let worlds = vec![
            (parse_data_tree("<A><C/></A>").unwrap(), 0.06),
            (parse_data_tree("<A><C/><D/></A>").unwrap(), 0.14),
            (parse_data_tree("<A><B/><C/></A>").unwrap(), 0.24),
            (parse_data_tree("<A><B/><C/><D/></A>").unwrap(), 0.56),
        ];
        PossibleWorlds::from_worlds(worlds).unwrap()
    }

    #[test]
    fn slide9_is_a_distribution() {
        let worlds = slide9();
        assert_eq!(worlds.len(), 4);
        assert!((worlds.total_probability() - 1.0).abs() < 1e-12);
        assert!(!worlds.is_empty());
    }

    #[test]
    fn probability_queries() {
        let worlds = slide9();
        // P(B present) = 0.24 + 0.56
        let p_b = worlds.probability_that(|t| !t.find_elements("B").is_empty());
        assert!((p_b - 0.8).abs() < 1e-12);
        // P(D present) = 0.14 + 0.56
        let p_d = worlds.probability_that(|t| !t.find_elements("D").is_empty());
        assert!((p_d - 0.7).abs() < 1e-12);
        let exact = parse_data_tree("<A><C/></A>").unwrap();
        assert!((worlds.probability_of_tree(&exact) - 0.06).abs() < 1e-12);
    }

    #[test]
    fn push_ignores_non_positive_probabilities() {
        let mut worlds = PossibleWorlds::new();
        worlds.push(parse_data_tree("<A/>").unwrap(), 0.0);
        worlds.push(parse_data_tree("<A/>").unwrap(), -0.5);
        worlds.push(parse_data_tree("<A/>").unwrap(), f64::NAN);
        assert!(worlds.is_empty());
        worlds.push(parse_data_tree("<A/>").unwrap(), 0.5);
        assert_eq!(worlds.len(), 1);
    }

    #[test]
    fn from_worlds_rejects_bad_probabilities() {
        let bad = vec![(parse_data_tree("<A/>").unwrap(), 0.0)];
        assert!(matches!(
            PossibleWorlds::from_worlds(bad),
            Err(CoreError::InvalidWorldProbability(_))
        ));
    }

    #[test]
    fn normalization_merges_isomorphic_worlds() {
        let mut worlds = PossibleWorlds::new();
        worlds.push(parse_data_tree("<A><B/><C/></A>").unwrap(), 0.3);
        worlds.push(parse_data_tree("<A><C/><B/></A>").unwrap(), 0.2);
        worlds.push(parse_data_tree("<A><B/></A>").unwrap(), 0.5);
        let normalized = worlds.normalized();
        assert_eq!(normalized.len(), 2);
        let merged = parse_data_tree("<A><B/><C/></A>").unwrap();
        assert!((normalized.probability_of_tree(&merged) - 0.5).abs() < 1e-12);
        assert!((normalized.total_probability() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rescaling_restores_a_distribution() {
        let mut worlds = PossibleWorlds::new();
        worlds.push(parse_data_tree("<A><B/></A>").unwrap(), 0.2);
        worlds.push(parse_data_tree("<A/>").unwrap(), 0.2);
        let rescaled = worlds.rescaled().unwrap();
        assert!((rescaled.total_probability() - 1.0).abs() < 1e-12);
        assert!(
            (rescaled.probability_of_tree(&parse_data_tree("<A/>").unwrap()) - 0.5).abs() < 1e-12
        );
        assert!(matches!(
            PossibleWorlds::new().rescaled(),
            Err(CoreError::EmptyWorldSet)
        ));
    }

    #[test]
    fn equivalence_is_insensitive_to_order_and_split_mass() {
        let a = slide9();
        let mut b = PossibleWorlds::new();
        // Same distribution, worlds listed in another order and one world
        // split into two pieces.
        b.push(parse_data_tree("<A><B/><C/><D/></A>").unwrap(), 0.26);
        b.push(parse_data_tree("<A><B/><C/><D/></A>").unwrap(), 0.30);
        b.push(parse_data_tree("<A><B/><C/></A>").unwrap(), 0.24);
        b.push(parse_data_tree("<A><C/><D/></A>").unwrap(), 0.14);
        b.push(parse_data_tree("<A><C/></A>").unwrap(), 0.06);
        assert!(a.equivalent(&b, 1e-9));
        let mut c = PossibleWorlds::new();
        c.push(parse_data_tree("<A/>").unwrap(), 1.0);
        assert!(!a.equivalent(&c, 1e-9));
    }

    #[test]
    fn expected_node_count() {
        let worlds = slide9();
        // Node counts: 2, 3, 3, 4 with probabilities 0.06, 0.14, 0.24, 0.56.
        let expected = 2.0 * 0.06 + 3.0 * 0.14 + 3.0 * 0.24 + 4.0 * 0.56;
        assert!((worlds.expected_node_count() - expected).abs() < 1e-12);
        assert_eq!(PossibleWorlds::new().expected_node_count(), 0.0);
    }

    #[test]
    fn query_semantics_collects_answers_across_worlds() {
        let worlds = slide9();
        // Query: an A with a B child — answer is the minimal subtree A{B}.
        let query = Pattern::parse("A { B }").unwrap();
        let result = worlds.query(&query);
        assert_eq!(result.len(), 1);
        let answer = parse_data_tree("<A><B/></A>").unwrap();
        assert!((result.probability_of_tree(&answer) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn query_with_no_match_returns_empty_set() {
        let worlds = slide9();
        let query = Pattern::parse("Z").unwrap();
        assert!(worlds.query(&query).is_empty());
    }

    #[test]
    fn certain_instance_and_collect() {
        let tree = parse_data_tree("<A><B/></A>").unwrap();
        let worlds = PossibleWorlds::certain(tree.clone());
        assert_eq!(worlds.len(), 1);
        assert!((worlds.total_probability() - 1.0).abs() < 1e-12);
        let collected: PossibleWorlds = vec![(tree, 0.4)].into_iter().collect();
        assert_eq!(collected.len(), 1);
    }
}
