//! Probabilistic update transactions (slides 7, 14, 15).
//!
//! An update transaction is a TPWJ query plus a set of elementary operations
//! (subtree insertions and subtree deletions) anchored at pattern nodes, plus
//! a *confidence* `c ∈ [0, 1]`.
//!
//! * **On a plain tree** (`τ`): the operations are applied at every match —
//!   insertions first, then deletions (a deletion of the same region wins).
//! * **On a possible-worlds set** (slide 10): every world selected by the
//!   query is split into `(τ(t), p·c)` and `(t, p·(1−c))`; unselected worlds
//!   are untouched; the result is normalised — see
//!   [`crate::worlds::PossibleWorlds::update`].
//! * **On a fuzzy tree** (slides 14–15): a fresh event records the confidence;
//!   every insertion adds the inserted subtree conditioned on the *match
//!   condition* of its match (conjoined with the confidence event); every
//!   deletion rewrites the target's condition to "…and the deletion condition
//!   does not hold", which requires **duplicating** the target subtree once
//!   per literal of the deletion condition because per-node conditions must
//!   stay conjunctive — the mechanism behind the conditional-replacement
//!   example and behind the exponential growth the paper warns about.

use std::collections::HashMap;

use pxml_event::{Condition, EventId, Literal};
use pxml_query::{MatchStrategy, Matching, PNodeId, Pattern};
use pxml_tree::{NodeId, Tree};

use crate::error::CoreError;
use crate::fuzzy::FuzzyTree;
use crate::fuzzy_query::match_condition;
use crate::simplify::{Simplifier, SimplifyPolicy, SimplifyReport};

/// An elementary operation of an update transaction, anchored at a pattern
/// node of the transaction's query.
#[derive(Debug, Clone, PartialEq)]
pub enum UpdateOperation {
    /// Insert a copy of `subtree` as a new child of the node mapped by
    /// `target`.
    Insert {
        /// Pattern node whose image receives the new child.
        target: PNodeId,
        /// The subtree to insert (its root becomes the new child).
        subtree: Tree,
    },
    /// Delete the subtree rooted at the node mapped by `target`.
    Delete {
        /// Pattern node whose image is deleted.
        target: PNodeId,
    },
}

/// Statistics describing the effect of applying an update to a fuzzy tree.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct UpdateStats {
    /// Number of matches of the transaction's query on the underlying tree
    /// (including matches later skipped as inconsistent).
    pub match_count: usize,
    /// Matches whose condition was consistent and therefore applied.
    pub applied_matches: usize,
    /// Nodes added by insertions.
    pub inserted_nodes: usize,
    /// Nodes added by deletion-induced duplication.
    pub duplicated_nodes: usize,
    /// Nodes removed (the original copies of deleted subtrees).
    pub removed_nodes: usize,
    /// The fresh event recording the confidence, when `confidence < 1`.
    pub confidence_event: Option<EventId>,
    /// The report of the inline simplification run triggered by the apply
    /// pipeline's [`SimplifyPolicy`], when one ran.
    pub simplify: Option<SimplifyReport>,
}

/// A probabilistic update transaction: query + operations + confidence.
#[derive(Debug, Clone)]
pub struct UpdateTransaction {
    pattern: Pattern,
    operations: Vec<UpdateOperation>,
    confidence: f64,
}

impl UpdateTransaction {
    /// Creates an empty transaction for `pattern` with the given confidence.
    pub fn new(pattern: Pattern, confidence: f64) -> Result<Self, CoreError> {
        if !(0.0..=1.0).contains(&confidence) || confidence.is_nan() {
            return Err(CoreError::InvalidConfidence(confidence));
        }
        Ok(UpdateTransaction {
            pattern,
            operations: Vec::new(),
            confidence,
        })
    }

    /// A certain (confidence 1) transaction.
    pub fn certain(pattern: Pattern) -> Self {
        UpdateTransaction::new(pattern, 1.0).expect("1.0 is a valid confidence")
    }

    /// Adds an insertion (builder style).
    pub fn with_insert(mut self, target: PNodeId, subtree: Tree) -> Self {
        self.operations
            .push(UpdateOperation::Insert { target, subtree });
        self
    }

    /// Adds a deletion (builder style).
    pub fn with_delete(mut self, target: PNodeId) -> Self {
        self.operations.push(UpdateOperation::Delete { target });
        self
    }

    /// Adds an operation.
    pub fn push_operation(&mut self, operation: UpdateOperation) {
        self.operations.push(operation);
    }

    /// The transaction's query.
    pub fn pattern(&self) -> &Pattern {
        &self.pattern
    }

    /// The transaction's operations.
    pub fn operations(&self) -> &[UpdateOperation] {
        &self.operations
    }

    /// The transaction's confidence.
    pub fn confidence(&self) -> f64 {
        self.confidence
    }

    /// Returns a copy of this transaction with a different confidence.
    pub fn with_confidence(&self, confidence: f64) -> Result<Self, CoreError> {
        let mut copy = self.clone();
        if !(0.0..=1.0).contains(&confidence) || confidence.is_nan() {
            return Err(CoreError::InvalidConfidence(confidence));
        }
        copy.confidence = confidence;
        Ok(copy)
    }

    /// Deterministic application `τ(t)`: the operations are applied at every
    /// match of the query — insertions first (one per match), then deletions
    /// (deduplicated per target node). The tree is returned unchanged when
    /// the query does not match.
    pub fn apply_to_tree(&self, tree: &Tree) -> Tree {
        let matches = self.pattern.find_matches_with(tree, MatchStrategy::Indexed);
        self.apply_to_tree_with_matches(tree, &matches)
    }

    /// Same as [`UpdateTransaction::apply_to_tree`] with precomputed matches.
    pub(crate) fn apply_to_tree_with_matches(&self, tree: &Tree, matches: &[Matching]) -> Tree {
        if matches.is_empty() {
            return tree.clone();
        }
        let mut result = tree.clone();
        // Insertions: one copy per match.
        for matching in matches {
            for operation in &self.operations {
                if let UpdateOperation::Insert { target, subtree } = operation {
                    let parent = matching.image(*target);
                    if result.contains(parent) && result.is_element(parent) {
                        result.copy_subtree_from(parent, subtree, subtree.root());
                    }
                }
            }
        }
        // Deletions: deduplicated; the document root is never deleted.
        let mut targets: Vec<NodeId> = Vec::new();
        for matching in matches {
            for operation in &self.operations {
                if let UpdateOperation::Delete { target } = operation {
                    targets.push(matching.image(*target));
                }
            }
        }
        targets.sort_unstable();
        targets.dedup();
        for node in targets {
            if node != result.root() && result.contains(node) {
                result
                    .remove_subtree(node)
                    .expect("target checked to be a live non-root node");
            }
        }
        result
    }

    /// Probabilistic application to a fuzzy tree (slides 14–15), without
    /// inline simplification (equivalent to
    /// [`UpdateTransaction::apply_to_fuzzy_with`] under
    /// [`SimplifyPolicy::Never`]).
    ///
    /// The fuzzy tree is modified in place; the returned [`UpdateStats`]
    /// describe the effect. When the query has no match on the underlying
    /// tree the document is unchanged and no event is created.
    pub fn apply_to_fuzzy(&self, fuzzy: &mut FuzzyTree) -> Result<UpdateStats, CoreError> {
        self.apply_to_fuzzy_with(fuzzy, SimplifyPolicy::Never)
    }

    /// Probabilistic application to a fuzzy tree through the policy-aware
    /// apply pipeline: the update is applied as in
    /// [`UpdateTransaction::apply_to_fuzzy`], then the [`SimplifyPolicy`]
    /// decides whether a simplification pass runs *inside* the pipeline —
    /// right where deletion-induced duplication is created — before the
    /// caller ever sees the document.
    pub fn apply_to_fuzzy_with(
        &self,
        fuzzy: &mut FuzzyTree,
        policy: SimplifyPolicy,
    ) -> Result<UpdateStats, CoreError> {
        let mut stats = self.apply_operations(fuzzy)?;
        if policy.should_run(fuzzy) {
            stats.simplify = Some(Simplifier::new().run(fuzzy)?);
        }
        Ok(stats)
    }

    /// The raw operation pipeline: match, insert, delete.
    fn apply_operations(&self, fuzzy: &mut FuzzyTree) -> Result<UpdateStats, CoreError> {
        let mut stats = UpdateStats::default();
        let matches = self
            .pattern
            .find_matches_with(fuzzy.tree(), MatchStrategy::Indexed);
        stats.match_count = matches.len();
        if matches.is_empty() {
            return Ok(stats);
        }

        // The confidence of the transaction is recorded as one fresh event
        // shared by all its matches.
        let confidence_literal = if self.confidence < 1.0 {
            let event = fuzzy.fresh_event(self.confidence)?;
            stats.confidence_event = Some(event);
            Some(Literal::pos(event))
        } else {
            None
        };

        // Match conditions, computed against the *original* document.
        let mut applied: Vec<(Matching, Condition)> = Vec::new();
        for matching in matches {
            let mut condition = match_condition(fuzzy, &self.pattern, &matching);
            if let Some(literal) = confidence_literal {
                condition = condition.and_literal(literal);
            }
            if !condition.is_consistent() {
                continue;
            }
            applied.push((matching, condition));
        }
        stats.applied_matches = applied.len();

        // Phase 1: insertions. The inserted subtree exists exactly when its
        // match does, so its root carries the match condition (minus the
        // literals already guaranteed by the insertion point's ancestors).
        for (matching, condition) in &applied {
            for operation in &self.operations {
                if let UpdateOperation::Insert { target, subtree } = operation {
                    let parent = matching.image(*target);
                    if !fuzzy.tree().contains(parent) || !fuzzy.tree().is_element(parent) {
                        continue;
                    }
                    let context = fuzzy.existence_condition(parent);
                    let root_condition = condition.without_implied_by(&context);
                    fuzzy.graft_subtree(parent, subtree, subtree.root(), root_condition);
                    stats.inserted_nodes += subtree.node_count();
                }
            }
        }

        // Phase 2: deletions. Group the deletion conditions per target node,
        // then process targets deepest-first so that duplicating an ancestor
        // copies already-processed descendants verbatim.
        let mut deletions: HashMap<NodeId, Vec<Condition>> = HashMap::new();
        for (matching, condition) in &applied {
            for operation in &self.operations {
                if let UpdateOperation::Delete { target } = operation {
                    let node = matching.image(*target);
                    if node == fuzzy.root() {
                        // The document root is never deleted (mirrors τ).
                        continue;
                    }
                    deletions.entry(node).or_default().push(condition.clone());
                }
            }
        }
        let mut targets: Vec<NodeId> = deletions.keys().copied().collect();
        targets.sort_by_key(|&node| std::cmp::Reverse(fuzzy.tree().depth(node)));
        for target in targets {
            let mut conditions = deletions.remove(&target).expect("key collected above");
            // Several matches frequently delete the same node under the same
            // condition (e.g. when they only differ at nodes unrelated to the
            // target); applying duplicates is a no-op that still fragments
            // the survivor cover, so normalise first.
            conditions.sort();
            conditions.dedup();
            let context = {
                let parent = fuzzy
                    .tree()
                    .parent(target)
                    .ok_or(CoreError::CannotDeleteRoot)?;
                fuzzy.existence_condition(parent)
            };
            let mut current: Vec<NodeId> = vec![target];
            for condition in conditions {
                let mut next: Vec<NodeId> = Vec::new();
                for node in current {
                    next.extend(apply_deletion(
                        fuzzy, node, &condition, &context, &mut stats,
                    )?);
                }
                current = next;
            }
        }
        Ok(stats)
    }
}

/// Applies one conditional deletion to one node: the node's subtree is
/// replaced by one copy per *effective* literal `dᵢ` of the deletion
/// condition, the `i`-th copy conditioned on
/// `original ∧ d₁ ∧ … ∧ d_{i−1} ∧ ¬dᵢ` (copies with an inconsistent
/// condition are skipped). The union of the copies' conditions is exactly
/// `original ∧ ¬(d₁ ∧ … ∧ d_k)`, i.e. "the node survives the deletion", and
/// the copies are pairwise disjoint.
///
/// `context` is the existence condition of the node's parent. It prunes the
/// work the bare chain construction wastes at scale (the mechanism behind
/// the E10 blow-up):
///
/// * when the node's own condition (or the context) contradicts the deletion
///   condition, the node exists only in worlds the deletion does not select —
///   it survives *unchanged*, no copies needed;
/// * deletion literals already guaranteed by the node or its ancestors
///   contribute only inconsistent copies — they are skipped up front;
/// * copies whose condition contradicts the context exist in no world — they
///   are never materialised (the bare chain would keep duplicating them in
///   later rounds).
fn apply_deletion(
    fuzzy: &mut FuzzyTree,
    node: NodeId,
    deletion: &Condition,
    context: &Condition,
    stats: &mut UpdateStats,
) -> Result<Vec<NodeId>, CoreError> {
    let parent = fuzzy
        .tree()
        .parent(node)
        .ok_or(CoreError::CannotDeleteRoot)?;
    let original = fuzzy.condition(node);
    if deletion
        .literals()
        .iter()
        .any(|lit| original.contains(lit.negated()) || context.contains(lit.negated()))
    {
        // The deletion condition is disjoint from the node's existence
        // condition: the node survives as it is.
        return Ok(vec![node]);
    }
    // Effective chain: literals not already guaranteed at the node.
    let effective = deletion
        .without_implied_by(&original)
        .without_implied_by(context);
    let effective = effective.literals();
    if effective.is_empty() {
        // The deletion holds whenever the node exists: plain removal.
        stats.removed_nodes += fuzzy.tree().subtree_size(node);
        fuzzy.remove_subtree(node)?;
        return Ok(Vec::new());
    }
    let mut copies = Vec::new();
    let mut prefix = original.clone();
    for (index, literal) in effective.iter().enumerate() {
        let copy_condition = prefix.and_literal(literal.negated());
        if copy_condition.is_consistent()
            && !copy_condition
                .literals()
                .iter()
                .any(|lit| context.contains(lit.negated()))
        {
            let copy = fuzzy.duplicate_subtree(parent, node, copy_condition);
            stats.duplicated_nodes += fuzzy.tree().subtree_size(copy);
            copies.push(copy);
        }
        if index + 1 < effective.len() {
            prefix = prefix.and_literal(*literal);
            if !prefix.is_consistent() {
                break;
            }
        }
    }
    stats.removed_nodes += fuzzy.tree().subtree_size(node);
    fuzzy.remove_subtree(node)?;
    Ok(copies)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fuzzy::slide12_example;
    use crate::worlds::PossibleWorlds;
    use pxml_tree::parse_data_tree;

    fn insert_pattern() -> (Pattern, PNodeId) {
        let pattern = Pattern::parse("A { B }").unwrap();
        let root = pattern.root();
        (pattern, root)
    }

    #[test]
    fn transaction_construction_and_accessors() {
        let (pattern, root) = insert_pattern();
        let subtree = parse_data_tree("<N>new</N>").unwrap();
        let tx = UpdateTransaction::new(pattern.clone(), 0.9)
            .unwrap()
            .with_insert(root, subtree)
            .with_delete(root);
        assert_eq!(tx.operations().len(), 2);
        assert!((tx.confidence() - 0.9).abs() < 1e-12);
        assert_eq!(tx.pattern().to_string(), pattern.to_string());
        let copy = tx.with_confidence(0.5).unwrap();
        assert!((copy.confidence() - 0.5).abs() < 1e-12);
        assert!(copy.with_confidence(1.5).is_err());
    }

    #[test]
    fn invalid_confidence_is_rejected() {
        let (pattern, _) = insert_pattern();
        assert!(matches!(
            UpdateTransaction::new(pattern.clone(), -0.1),
            Err(CoreError::InvalidConfidence(_))
        ));
        assert!(matches!(
            UpdateTransaction::new(pattern, f64::NAN),
            Err(CoreError::InvalidConfidence(_))
        ));
    }

    #[test]
    fn deterministic_insert_applies_at_every_match() {
        let tree = parse_data_tree("<R><A><B/></A><A><B/></A><A/></R>").unwrap();
        let (pattern, root) = insert_pattern();
        let subtree = parse_data_tree("<N/>").unwrap();
        let tx = UpdateTransaction::certain(pattern).with_insert(root, subtree);
        let updated = tx.apply_to_tree(&tree);
        // Two A{B} matches receive an N child; the third A does not.
        assert_eq!(updated.find_elements("N").len(), 2);
        assert_eq!(tree.find_elements("N").len(), 0, "input is untouched");
    }

    #[test]
    fn deterministic_delete_removes_targets_once() {
        let tree = parse_data_tree("<R><A><B/><B/></A></R>").unwrap();
        let mut pattern = Pattern::element("A");
        let b = pattern.add_child(pattern.root(), pxml_query::Axis::Child, Some("B"));
        let tx = UpdateTransaction::certain(pattern).with_delete(b);
        let updated = tx.apply_to_tree(&tree);
        assert!(updated.find_elements("B").is_empty());
        assert_eq!(updated.node_count(), 2);
    }

    #[test]
    fn deterministic_update_without_match_is_identity() {
        let tree = parse_data_tree("<R><X/></R>").unwrap();
        let (pattern, root) = insert_pattern();
        let tx =
            UpdateTransaction::certain(pattern).with_insert(root, parse_data_tree("<N/>").unwrap());
        let updated = tx.apply_to_tree(&tree);
        assert!(updated.isomorphic(&tree));
    }

    #[test]
    fn root_deletion_is_ignored() {
        let tree = parse_data_tree("<A><B/></A>").unwrap();
        let (pattern, root) = insert_pattern();
        let tx = UpdateTransaction::certain(pattern).with_delete(root);
        let updated = tx.apply_to_tree(&tree);
        assert!(updated.isomorphic(&tree));
        // Fuzzy side behaves the same.
        let mut fuzzy = FuzzyTree::from_tree(tree.clone());
        let (pattern2, root2) = insert_pattern();
        let tx2 = UpdateTransaction::certain(pattern2).with_delete(root2);
        tx2.apply_to_fuzzy(&mut fuzzy).unwrap();
        assert!(fuzzy.tree().isomorphic(&tree));
    }

    #[test]
    fn fuzzy_insert_carries_match_and_confidence_conditions() {
        let mut fuzzy = slide12_example();
        // Insert an F below A when B is present, with confidence 0.9.
        let pattern = Pattern::parse("A { B }").unwrap();
        let target = pattern.root();
        let tx = UpdateTransaction::new(pattern, 0.9)
            .unwrap()
            .with_insert(target, parse_data_tree("<F/>").unwrap());
        let stats = tx.apply_to_fuzzy(&mut fuzzy).unwrap();
        assert_eq!(stats.match_count, 1);
        assert_eq!(stats.applied_matches, 1);
        assert_eq!(stats.inserted_nodes, 1);
        assert!(stats.confidence_event.is_some());
        let f = fuzzy.tree().find_elements("F")[0];
        // F exists iff w1 ∧ ¬w2 (the match) ∧ w3 (the confidence event).
        assert_eq!(fuzzy.condition(f).len(), 3);
        assert!((fuzzy.node_probability(f) - 0.24 * 0.9).abs() < 1e-12);
        assert!(fuzzy.validate().is_ok());
    }

    #[test]
    fn fuzzy_update_with_no_match_is_a_noop() {
        let mut fuzzy = slide12_example();
        let before_events = fuzzy.event_count();
        let pattern = Pattern::parse("Z").unwrap();
        let tx = UpdateTransaction::new(pattern, 0.5).unwrap().with_insert(
            Pattern::parse("Z").unwrap().root(),
            parse_data_tree("<N/>").unwrap(),
        );
        let stats = tx.apply_to_fuzzy(&mut fuzzy).unwrap();
        assert_eq!(stats.match_count, 0);
        assert_eq!(fuzzy.event_count(), before_events);
        assert!(fuzzy.tree().find_elements("N").is_empty());
    }

    #[test]
    fn certain_deletion_removes_node_without_duplication() {
        // Deleting a certain node with a certain match and confidence 1: the
        // deletion condition is empty, so no copies are created at all.
        let tree = parse_data_tree("<R><A/><B/></R>").unwrap();
        let mut fuzzy = FuzzyTree::from_tree(tree);
        let pattern = Pattern::element("A");
        let target = pattern.root();
        let tx = UpdateTransaction::certain(pattern).with_delete(target);
        let stats = tx.apply_to_fuzzy(&mut fuzzy).unwrap();
        assert_eq!(stats.duplicated_nodes, 0);
        assert_eq!(stats.removed_nodes, 1);
        assert!(fuzzy.tree().find_elements("A").is_empty());
        assert_eq!(fuzzy.event_count(), 0);
    }

    /// The slide-15 example: replace C by D if B is present, confidence 0.9.
    #[test]
    fn conditional_replacement_reproduces_slide15() {
        use pxml_event::Literal;
        // Initial document: A(B[w1], C[w2]) with P(w1)=0.8, P(w2)=0.7.
        let mut fuzzy = FuzzyTree::new("A");
        let w1 = fuzzy.add_event("w1", 0.8).unwrap();
        let w2 = fuzzy.add_event("w2", 0.7).unwrap();
        let root = fuzzy.root();
        let b = fuzzy.add_element(root, "B");
        fuzzy
            .set_condition(b, Condition::from_literal(Literal::pos(w1)))
            .unwrap();
        let c = fuzzy.add_element(root, "C");
        fuzzy
            .set_condition(c, Condition::from_literal(Literal::pos(w2)))
            .unwrap();

        // Replacement: where A has children B and C, delete C and insert D.
        let pattern = Pattern::parse("/A { B, C }").unwrap();
        let ids: Vec<PNodeId> = pattern.node_ids().collect();
        let (a_node, c_node) = (ids[0], ids[2]);
        let tx = UpdateTransaction::new(pattern, 0.9)
            .unwrap()
            .with_insert(a_node, parse_data_tree("<D/>").unwrap())
            .with_delete(c_node);
        let stats = tx.apply_to_fuzzy(&mut fuzzy).unwrap();

        // One new event w3 with probability 0.9.
        let w3 = stats
            .confidence_event
            .expect("confidence < 1 creates an event");
        assert!((fuzzy.events().probability(w3) - 0.9).abs() < 1e-12);
        assert_eq!(fuzzy.event_count(), 3);

        // The B node is untouched.
        let b_nodes = fuzzy.tree().find_elements("B");
        assert_eq!(b_nodes.len(), 1);
        assert_eq!(
            fuzzy.condition(b_nodes[0]),
            Condition::from_literal(Literal::pos(w1))
        );

        // C is duplicated into exactly the two copies of the slide:
        // C[¬w1, w2] and C[w1, w2, ¬w3].
        let c_nodes = fuzzy.tree().find_elements("C");
        assert_eq!(c_nodes.len(), 2);
        let mut c_conditions: Vec<Condition> =
            c_nodes.iter().map(|&n| fuzzy.condition(n)).collect();
        c_conditions.sort();
        let expected_1 = Condition::from_literals([Literal::neg(w1), Literal::pos(w2)]);
        let expected_2 =
            Condition::from_literals([Literal::pos(w1), Literal::pos(w2), Literal::neg(w3)]);
        let mut expected = vec![expected_1, expected_2];
        expected.sort();
        assert_eq!(c_conditions, expected);

        // D is inserted with condition w1 ∧ w2 ∧ w3.
        let d_nodes = fuzzy.tree().find_elements("D");
        assert_eq!(d_nodes.len(), 1);
        assert_eq!(
            fuzzy.condition(d_nodes[0]),
            Condition::from_literals([Literal::pos(w1), Literal::pos(w2), Literal::pos(w3)])
        );
        assert!(fuzzy.validate().is_ok());
    }

    #[test]
    fn fuzzy_update_commutes_with_possible_worlds_update() {
        // update(worlds(F)) == worlds(update(F)) on the slide-12 document for
        // several transactions.
        let base = slide12_example();

        // Transaction 1: insert E below A when D is present, confidence 0.6.
        let pattern = Pattern::parse("A { D }").unwrap();
        let a = pattern.root();
        let tx1 = UpdateTransaction::new(pattern, 0.6)
            .unwrap()
            .with_insert(a, parse_data_tree("<E><X/></E>").unwrap());

        // Transaction 2: delete B when B is present, confidence 0.5.
        let pattern2 = Pattern::parse("A { B }").unwrap();
        let b = pattern2.node_ids().nth(1).unwrap();
        let tx2 = UpdateTransaction::new(pattern2, 0.5)
            .unwrap()
            .with_delete(b);

        // Transaction 3: certain replacement of C by F.
        let pattern3 = Pattern::parse("A { C }").unwrap();
        let ids3: Vec<PNodeId> = pattern3.node_ids().collect();
        let tx3 = UpdateTransaction::certain(pattern3)
            .with_insert(ids3[0], parse_data_tree("<F/>").unwrap())
            .with_delete(ids3[1]);

        for (index, tx) in [tx1, tx2, tx3].iter().enumerate() {
            let worlds_then_update: PossibleWorlds = base.to_possible_worlds().unwrap().update(tx);
            let mut updated_fuzzy = base.clone();
            tx.apply_to_fuzzy(&mut updated_fuzzy).unwrap();
            let update_then_worlds = updated_fuzzy.to_possible_worlds().unwrap();
            assert!(
                worlds_then_update.equivalent(&update_then_worlds, 1e-9),
                "update commutation failed for transaction #{index}"
            );
        }
    }

    #[test]
    fn chained_conditional_deletions_grow_the_tree_exponentially() {
        // Conditional deletions whose condition involves events independent
        // from the target ("complex dependencies", slide 14) duplicate every
        // existing copy of the target: k chained deletions leave 2^k copies.
        use pxml_event::Literal;
        let mut fuzzy = FuzzyTree::new("A");
        let root = fuzzy.root();
        let rounds = 4;
        for k in 1..=rounds {
            let event = fuzzy.add_event(format!("x{k}"), 0.5).unwrap();
            let b = fuzzy.add_element(root, format!("B{k}"));
            fuzzy
                .set_condition(b, Condition::from_literal(Literal::pos(event)))
                .unwrap();
        }
        fuzzy.add_element(root, "C");
        let mut copies = vec![fuzzy.tree().find_elements("C").len()];
        for k in 1..=rounds {
            let pattern = Pattern::parse(&format!("/A {{ B{k}, C }}")).unwrap();
            let ids: Vec<PNodeId> = pattern.node_ids().collect();
            let tx = UpdateTransaction::new(pattern, 0.5)
                .unwrap()
                .with_delete(ids[2]);
            tx.apply_to_fuzzy(&mut fuzzy).unwrap();
            copies.push(fuzzy.tree().find_elements("C").len());
        }
        let expected: Vec<usize> = (0..=rounds).map(|k| 1usize << k).collect();
        assert_eq!(copies, expected, "copies must double every round");
        assert!(fuzzy.validate().is_ok());
    }

    #[test]
    fn update_stats_count_duplication() {
        let mut fuzzy = slide12_example();
        // Delete D when C is present (C is certain, D carries w2), with
        // confidence 0.9: D is duplicated into the "confidence event false"
        // copy before the original is removed.
        let pattern = Pattern::parse("/A { C, D }").unwrap();
        let ids: Vec<PNodeId> = pattern.node_ids().collect();
        let tx = UpdateTransaction::new(pattern, 0.9)
            .unwrap()
            .with_delete(ids[2]);
        let stats = tx.apply_to_fuzzy(&mut fuzzy).unwrap();
        assert_eq!(stats.match_count, 1);
        assert_eq!(stats.removed_nodes, 1);
        assert_eq!(stats.duplicated_nodes, 1);
        assert!(fuzzy.validate().is_ok());
    }
}
