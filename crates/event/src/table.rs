//! The table of probabilistic events.

use std::collections::HashMap;
use std::fmt;

use crate::error::EventError;

/// A handle to a probabilistic event in an [`EventTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(pub(crate) u32);

impl EventId {
    /// The raw index of the event in its table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// The set of probabilistic events of a fuzzy tree, each with an independent
/// probability of being true (the table on the right of slide 12).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EventTable {
    names: Vec<String>,
    probabilities: Vec<f64>,
    by_name: HashMap<String, EventId>,
}

impl EventTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// The number of events.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` if the table has no events.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Adds a named event with the given probability.
    pub fn add_event(
        &mut self,
        name: impl Into<String>,
        probability: f64,
    ) -> Result<EventId, EventError> {
        let name = name.into();
        if !(0.0..=1.0).contains(&probability) || probability.is_nan() {
            return Err(EventError::InvalidProbability(probability));
        }
        if self.by_name.contains_key(&name) {
            return Err(EventError::DuplicateEventName(name));
        }
        let id = EventId(self.names.len() as u32);
        self.by_name.insert(name.clone(), id);
        self.names.push(name);
        self.probabilities.push(probability);
        Ok(id)
    }

    /// Adds a fresh event with an automatically generated name (`w0`, `w1`, …
    /// skipping names already in use). Used by probabilistic updates, which
    /// introduce one new event per transaction (its confidence).
    pub fn fresh_event(&mut self, probability: f64) -> Result<EventId, EventError> {
        let mut counter = self.names.len();
        loop {
            let candidate = format!("w{counter}");
            if !self.by_name.contains_key(&candidate) {
                return self.add_event(candidate, probability);
            }
            counter += 1;
        }
    }

    /// Returns `true` if `id` belongs to this table.
    pub fn contains(&self, id: EventId) -> bool {
        id.index() < self.names.len()
    }

    /// The probability of an event.
    ///
    /// # Panics
    /// Panics if the id does not belong to this table.
    pub fn probability(&self, id: EventId) -> f64 {
        self.probabilities[id.index()]
    }

    /// Fallible variant of [`EventTable::probability`].
    pub fn try_probability(&self, id: EventId) -> Result<f64, EventError> {
        self.probabilities
            .get(id.index())
            .copied()
            .ok_or(EventError::UnknownEventId(id.0))
    }

    /// Changes the probability of an existing event.
    pub fn set_probability(&mut self, id: EventId, probability: f64) -> Result<(), EventError> {
        if !(0.0..=1.0).contains(&probability) || probability.is_nan() {
            return Err(EventError::InvalidProbability(probability));
        }
        if !self.contains(id) {
            return Err(EventError::UnknownEventId(id.0));
        }
        self.probabilities[id.index()] = probability;
        Ok(())
    }

    /// The name of an event.
    pub fn name(&self, id: EventId) -> &str {
        &self.names[id.index()]
    }

    /// Looks an event up by name.
    pub fn lookup(&self, name: &str) -> Option<EventId> {
        self.by_name.get(name).copied()
    }

    /// Looks an event up by name, reporting an error when missing.
    pub fn require(&self, name: &str) -> Result<EventId, EventError> {
        self.lookup(name)
            .ok_or_else(|| EventError::UnknownEvent(name.to_string()))
    }

    /// Iterates over all event ids in insertion order.
    pub fn ids(&self) -> impl Iterator<Item = EventId> + '_ {
        (0..self.names.len() as u32).map(EventId)
    }

    /// Iterates over `(id, name, probability)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (EventId, &str, f64)> + '_ {
        self.ids()
            .map(move |id| (id, self.name(id), self.probability(id)))
    }

    /// Events that are certain (probability exactly 0 or 1); the simplifier
    /// removes these from conditions.
    pub fn deterministic_events(&self) -> Vec<(EventId, bool)> {
        self.iter()
            .filter_map(|(id, _, p)| {
                if p == 0.0 {
                    Some((id, false))
                } else if p == 1.0 {
                    Some((id, true))
                } else {
                    None
                }
            })
            .collect()
    }
}

impl fmt::Display for EventTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Event   Proba.")?;
        for (_, name, p) in self.iter() {
            writeln!(f, "{name:<7} {p}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_query_events() {
        let mut table = EventTable::new();
        assert!(table.is_empty());
        let w1 = table.add_event("w1", 0.8).unwrap();
        let w2 = table.add_event("w2", 0.7).unwrap();
        assert_eq!(table.len(), 2);
        assert_eq!(table.probability(w1), 0.8);
        assert_eq!(table.probability(w2), 0.7);
        assert_eq!(table.name(w1), "w1");
        assert_eq!(table.lookup("w2"), Some(w2));
        assert_eq!(table.lookup("nope"), None);
        assert!(table.contains(w1));
        assert!(!table.contains(EventId(99)));
    }

    #[test]
    fn rejects_bad_probabilities() {
        let mut table = EventTable::new();
        assert!(matches!(
            table.add_event("w", -0.1),
            Err(EventError::InvalidProbability(_))
        ));
        assert!(matches!(
            table.add_event("w", 1.1),
            Err(EventError::InvalidProbability(_))
        ));
        assert!(matches!(
            table.add_event("w", f64::NAN),
            Err(EventError::InvalidProbability(_))
        ));
        let w = table.add_event("w", 0.5).unwrap();
        assert!(table.set_probability(w, 2.0).is_err());
        assert!(table.set_probability(w, 0.25).is_ok());
        assert_eq!(table.probability(w), 0.25);
    }

    #[test]
    fn rejects_duplicate_names() {
        let mut table = EventTable::new();
        table.add_event("w", 0.5).unwrap();
        assert_eq!(
            table.add_event("w", 0.6),
            Err(EventError::DuplicateEventName("w".into()))
        );
    }

    #[test]
    fn fresh_events_avoid_collisions() {
        let mut table = EventTable::new();
        table.add_event("w0", 0.5).unwrap();
        table.add_event("w1", 0.5).unwrap();
        let fresh = table.fresh_event(0.9).unwrap();
        assert_eq!(table.name(fresh), "w2");
        let fresh2 = table.fresh_event(0.9).unwrap();
        assert_eq!(table.name(fresh2), "w3");
    }

    #[test]
    fn require_and_try_probability_report_errors() {
        let table = EventTable::new();
        assert!(matches!(
            table.require("x"),
            Err(EventError::UnknownEvent(_))
        ));
        assert!(matches!(
            table.try_probability(EventId(0)),
            Err(EventError::UnknownEventId(0))
        ));
    }

    #[test]
    fn iteration_and_display() {
        let mut table = EventTable::new();
        table.add_event("w1", 0.8).unwrap();
        table.add_event("w2", 0.7).unwrap();
        let collected: Vec<_> = table.iter().map(|(_, n, p)| (n.to_string(), p)).collect();
        assert_eq!(collected, vec![("w1".into(), 0.8), ("w2".into(), 0.7)]);
        let display = table.to_string();
        assert!(display.contains("w1"));
        assert!(display.contains("0.7"));
        assert_eq!(table.ids().count(), 2);
    }

    #[test]
    fn deterministic_events_are_detected() {
        let mut table = EventTable::new();
        let a = table.add_event("always", 1.0).unwrap();
        let n = table.add_event("never", 0.0).unwrap();
        table.add_event("maybe", 0.5).unwrap();
        let det = table.deterministic_events();
        assert_eq!(det, vec![(a, true), (n, false)]);
    }
}
