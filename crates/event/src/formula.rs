//! Boolean formulas over probabilistic events and exact probability
//! computation.
//!
//! Per-node conditions in the fuzzy-tree model are plain conjunctions, but
//! several computations need richer formulas:
//!
//! * merging the answers of several query matches that yield the same result
//!   tree requires the probability of a **disjunction** of match conditions;
//! * deletion semantics reasons about the **negation** of a deletion
//!   condition;
//! * the simplifier decides logical equivalence of node conditions in
//!   context.
//!
//! [`Formula`] covers and/or/not over event literals, with exact probability
//! by Shannon expansion (events are independent). The cost is exponential in
//! the number of *distinct events occurring in the formula*, which stays
//! small in practice — and this locality is precisely the advantage of the
//! fuzzy-tree representation that experiment E3 measures.

use std::collections::BTreeSet;

use crate::condition::{Condition, Literal};
use crate::table::{EventId, EventTable};
use crate::valuation::Valuation;

/// A boolean formula over probabilistic events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Formula {
    /// The constant true.
    True,
    /// The constant false.
    False,
    /// A single literal.
    Lit(Literal),
    /// Conjunction of subformulas (empty = true).
    And(Vec<Formula>),
    /// Disjunction of subformulas (empty = false).
    Or(Vec<Formula>),
    /// Negation.
    Not(Box<Formula>),
}

impl Formula {
    /// The formula of a conjunctive condition.
    pub fn from_condition(condition: &Condition) -> Formula {
        if condition.is_empty() {
            return Formula::True;
        }
        if !condition.is_consistent() {
            return Formula::False;
        }
        Formula::And(
            condition
                .literals()
                .iter()
                .copied()
                .map(Formula::Lit)
                .collect(),
        )
    }

    /// The disjunction of a set of conjunctive conditions (a DNF), e.g. the
    /// existence condition of "at least one of these matches".
    pub fn any_of_conditions(conditions: &[Condition]) -> Formula {
        Formula::or(conditions.iter().map(Formula::from_condition).collect())
    }

    /// Smart conjunction constructor with constant folding.
    pub fn and(parts: Vec<Formula>) -> Formula {
        let mut flat = Vec::new();
        for part in parts {
            match part {
                Formula::True => {}
                Formula::False => return Formula::False,
                Formula::And(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Formula::True,
            1 => flat.pop().expect("length checked"),
            _ => Formula::And(flat),
        }
    }

    /// Smart disjunction constructor with constant folding.
    pub fn or(parts: Vec<Formula>) -> Formula {
        let mut flat = Vec::new();
        for part in parts {
            match part {
                Formula::False => {}
                Formula::True => return Formula::True,
                Formula::Or(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Formula::False,
            1 => flat.pop().expect("length checked"),
            _ => Formula::Or(flat),
        }
    }

    /// Smart negation constructor (also available as the `!` operator).
    pub fn negate(part: Formula) -> Formula {
        match part {
            Formula::True => Formula::False,
            Formula::False => Formula::True,
            Formula::Not(inner) => *inner,
            Formula::Lit(lit) => Formula::Lit(lit.negated()),
            other => Formula::Not(Box::new(other)),
        }
    }

    /// The set of events mentioned by the formula.
    pub fn events(&self) -> BTreeSet<EventId> {
        let mut out = BTreeSet::new();
        self.collect_events(&mut out);
        out
    }

    fn collect_events(&self, out: &mut BTreeSet<EventId>) {
        match self {
            Formula::True | Formula::False => {}
            Formula::Lit(lit) => {
                out.insert(lit.event);
            }
            Formula::And(parts) | Formula::Or(parts) => {
                for part in parts {
                    part.collect_events(out);
                }
            }
            Formula::Not(inner) => inner.collect_events(out),
        }
    }

    /// Evaluates the formula under a complete valuation.
    pub fn eval(&self, valuation: &Valuation) -> bool {
        match self {
            Formula::True => true,
            Formula::False => false,
            Formula::Lit(lit) => lit.satisfied_by(valuation),
            Formula::And(parts) => parts.iter().all(|part| part.eval(valuation)),
            Formula::Or(parts) => parts.iter().any(|part| part.eval(valuation)),
            Formula::Not(inner) => !inner.eval(valuation),
        }
    }

    /// Substitutes a truth value for an event and simplifies.
    pub fn restrict(&self, event: EventId, value: bool) -> Formula {
        match self {
            Formula::True => Formula::True,
            Formula::False => Formula::False,
            Formula::Lit(lit) => {
                if lit.event == event {
                    if lit.positive == value {
                        Formula::True
                    } else {
                        Formula::False
                    }
                } else {
                    Formula::Lit(*lit)
                }
            }
            Formula::And(parts) => Formula::and(
                parts
                    .iter()
                    .map(|part| part.restrict(event, value))
                    .collect(),
            ),
            Formula::Or(parts) => Formula::or(
                parts
                    .iter()
                    .map(|part| part.restrict(event, value))
                    .collect(),
            ),
            Formula::Not(inner) => Formula::negate(inner.restrict(event, value)),
        }
    }

    /// Exact probability of the formula being true, by Shannon expansion over
    /// the events it mentions (events are mutually independent).
    pub fn probability(&self, table: &EventTable) -> f64 {
        match self {
            Formula::True => return 1.0,
            Formula::False => return 0.0,
            Formula::Lit(lit) => return lit.probability(table),
            _ => {}
        }
        let events = self.events();
        let Some(&event) = events.iter().next() else {
            // No events left but not a constant: cannot happen after the
            // smart constructors, treat conservatively by evaluation.
            return if self.eval(&Valuation::all_false(table)) {
                1.0
            } else {
                0.0
            };
        };
        let p = table.probability(event);
        let if_true = self.restrict(event, true).probability(table);
        let if_false = self.restrict(event, false).probability(table);
        p * if_true + (1.0 - p) * if_false
    }

    /// `true` when the formula is a tautology (decided by Shannon expansion).
    pub fn is_tautology(&self) -> bool {
        match self {
            Formula::True => true,
            Formula::False | Formula::Lit(_) => false,
            _ => {
                let events = self.events();
                match events.iter().next() {
                    None => matches!(self.constant_value(), Some(true)),
                    Some(&event) => {
                        self.restrict(event, true).is_tautology()
                            && self.restrict(event, false).is_tautology()
                    }
                }
            }
        }
    }

    /// `true` when the formula is unsatisfiable.
    pub fn is_contradiction(&self) -> bool {
        Formula::negate(self.clone()).is_tautology()
    }

    /// `true` when the two formulas are logically equivalent.
    pub fn equivalent(&self, other: &Formula) -> bool {
        let differs = Formula::or(vec![
            Formula::and(vec![self.clone(), Formula::negate(other.clone())]),
            Formula::and(vec![Formula::negate(self.clone()), other.clone()]),
        ]);
        differs.is_contradiction()
    }

    fn constant_value(&self) -> Option<bool> {
        match self {
            Formula::True => Some(true),
            Formula::False => Some(false),
            _ => None,
        }
    }
}

impl std::ops::Not for Formula {
    type Output = Formula;

    fn not(self) -> Formula {
        Formula::negate(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> (EventTable, EventId, EventId, EventId) {
        let mut t = EventTable::new();
        let w1 = t.add_event("w1", 0.8).unwrap();
        let w2 = t.add_event("w2", 0.7).unwrap();
        let w3 = t.add_event("w3", 0.9).unwrap();
        (t, w1, w2, w3)
    }

    #[test]
    fn constants_and_literals() {
        let (t, w1, _, _) = table();
        assert_eq!(Formula::True.probability(&t), 1.0);
        assert_eq!(Formula::False.probability(&t), 0.0);
        assert!((Formula::Lit(Literal::pos(w1)).probability(&t) - 0.8).abs() < 1e-12);
        assert!((Formula::Lit(Literal::neg(w1)).probability(&t) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn smart_constructors_fold_constants() {
        let (_, w1, _, _) = table();
        let lit = Formula::Lit(Literal::pos(w1));
        assert_eq!(Formula::and(vec![]), Formula::True);
        assert_eq!(Formula::or(vec![]), Formula::False);
        assert_eq!(Formula::and(vec![Formula::True, lit.clone()]), lit);
        assert_eq!(
            Formula::and(vec![Formula::False, lit.clone()]),
            Formula::False
        );
        assert_eq!(Formula::or(vec![Formula::True, lit.clone()]), Formula::True);
        assert_eq!(Formula::or(vec![Formula::False, lit.clone()]), lit);
        assert_eq!(Formula::negate(Formula::True), Formula::False);
        assert_eq!(Formula::negate(Formula::negate(lit.clone())), lit);
        assert_eq!(
            Formula::negate(Formula::Lit(Literal::pos(w1))),
            Formula::Lit(Literal::neg(w1))
        );
    }

    #[test]
    fn from_condition() {
        let (t, w1, w2, _) = table();
        let cond = Condition::from_literals(vec![Literal::pos(w1), Literal::neg(w2)]);
        let formula = Formula::from_condition(&cond);
        assert!((formula.probability(&t) - 0.24).abs() < 1e-12);
        assert_eq!(Formula::from_condition(&Condition::always()), Formula::True);
        let inconsistent = Condition::from_literals(vec![Literal::pos(w1), Literal::neg(w1)]);
        assert_eq!(Formula::from_condition(&inconsistent), Formula::False);
    }

    #[test]
    fn probability_of_conjunction_and_disjunction() {
        let (t, w1, w2, _) = table();
        let a = Formula::Lit(Literal::pos(w1));
        let b = Formula::Lit(Literal::pos(w2));
        let both = Formula::and(vec![a.clone(), b.clone()]);
        let either = Formula::or(vec![a, b]);
        assert!((both.probability(&t) - 0.56).abs() < 1e-12);
        // P(w1 ∨ w2) = 0.8 + 0.7 − 0.56
        assert!((either.probability(&t) - 0.94).abs() < 1e-12);
    }

    #[test]
    fn probability_handles_shared_events_correctly() {
        let (t, w1, w2, _) = table();
        // (w1 ∧ w2) ∨ (w1 ∧ ¬w2) ≡ w1 : naive inclusion-free summing would
        // give 0.8 but so does the exact computation — the point is that the
        // shared event w1 must not be double counted as 0.56 + 0.24 ≠ P,
        // which happens to equal 0.8 here, so also test an overlapping pair.
        let c1 = Condition::from_literals(vec![Literal::pos(w1), Literal::pos(w2)]);
        let c2 = Condition::from_literals(vec![Literal::pos(w1)]);
        let f = Formula::any_of_conditions(&[c1, c2]);
        // (w1∧w2) ∨ w1 ≡ w1.
        assert!((f.probability(&t) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn eval_and_restrict() {
        let (t, w1, w2, _) = table();
        let f = Formula::or(vec![
            Formula::Lit(Literal::pos(w1)),
            Formula::Lit(Literal::pos(w2)),
        ]);
        let mut v = Valuation::all_false(&t);
        assert!(!f.eval(&v));
        v.set(w2, true);
        assert!(f.eval(&v));
        assert_eq!(f.restrict(w1, true), Formula::True);
        assert_eq!(f.restrict(w1, false), Formula::Lit(Literal::pos(w2)));
    }

    #[test]
    fn probability_matches_enumeration() {
        let (t, w1, w2, w3) = table();
        let f = Formula::or(vec![
            Formula::and(vec![
                Formula::Lit(Literal::pos(w1)),
                Formula::Lit(Literal::neg(w2)),
            ]),
            Formula::and(vec![
                Formula::Lit(Literal::pos(w2)),
                Formula::Lit(Literal::pos(w3)),
            ]),
        ]);
        let by_shannon = f.probability(&t);
        let by_enumeration: f64 = crate::valuation::enumerate_valuations(&t)
            .unwrap()
            .into_iter()
            .filter(|v| f.eval(v))
            .map(|v| v.probability(&t))
            .sum();
        assert!((by_shannon - by_enumeration).abs() < 1e-12);
    }

    #[test]
    fn tautology_contradiction_equivalence() {
        let (_, w1, w2, _) = table();
        let a = Formula::Lit(Literal::pos(w1));
        let not_a = Formula::Lit(Literal::neg(w1));
        assert!(Formula::or(vec![a.clone(), not_a.clone()]).is_tautology());
        assert!(Formula::and(vec![a.clone(), not_a.clone()]).is_contradiction());
        assert!(!a.is_tautology());
        assert!(!a.is_contradiction());
        // De Morgan: ¬(w1 ∧ w2) ≡ ¬w1 ∨ ¬w2.
        let lhs = Formula::negate(Formula::and(vec![
            Formula::Lit(Literal::pos(w1)),
            Formula::Lit(Literal::pos(w2)),
        ]));
        let rhs = Formula::or(vec![
            Formula::Lit(Literal::neg(w1)),
            Formula::Lit(Literal::neg(w2)),
        ]);
        assert!(lhs.equivalent(&rhs));
        assert!(!lhs.equivalent(&a));
    }

    #[test]
    fn events_are_collected() {
        let (_, w1, w2, w3) = table();
        let f = Formula::and(vec![
            Formula::Lit(Literal::pos(w1)),
            Formula::negate(Formula::or(vec![
                Formula::Lit(Literal::neg(w2)),
                Formula::Lit(Literal::pos(w3)),
            ])),
        ]);
        let events = f.events();
        assert_eq!(events.len(), 3);
        assert!(events.contains(&w1) && events.contains(&w2) && events.contains(&w3));
        assert!(Formula::True.events().is_empty());
    }
}
