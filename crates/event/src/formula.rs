//! Boolean formulas over probabilistic events and exact probability
//! computation.
//!
//! Per-node conditions in the fuzzy-tree model are plain conjunctions, but
//! several computations need richer formulas:
//!
//! * merging the answers of several query matches that yield the same result
//!   tree requires the probability of a **disjunction** of match conditions;
//! * deletion semantics reasons about the **negation** of a deletion
//!   condition;
//! * the simplifier decides logical equivalence of node conditions in
//!   context.
//!
//! [`Formula`] covers and/or/not over event literals, with exact probability
//! computed by compiling the formula into a reduced ordered [`Bdd`] and
//! running one weighted model-counting walk over the diagram — linear in BDD
//! size where the original Shannon expansion paid `2^events`. The Shannon
//! path survives as [`Formula::probability_shannon`], the independent test
//! oracle the BDD engine is validated against (see `tests/bdd_props.rs`).

use std::collections::BTreeSet;

use crate::bdd::Bdd;
use crate::condition::{Condition, Literal};
use crate::table::{EventId, EventTable};
use crate::valuation::Valuation;

/// A boolean formula over probabilistic events.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Formula {
    /// The constant true.
    True,
    /// The constant false.
    False,
    /// A single literal.
    Lit(Literal),
    /// Conjunction of subformulas (empty = true).
    And(Vec<Formula>),
    /// Disjunction of subformulas (empty = false).
    Or(Vec<Formula>),
    /// Negation.
    Not(Box<Formula>),
}

impl Formula {
    /// The formula of a conjunctive condition.
    pub fn from_condition(condition: &Condition) -> Formula {
        if condition.is_empty() {
            return Formula::True;
        }
        if !condition.is_consistent() {
            return Formula::False;
        }
        Formula::And(
            condition
                .literals()
                .iter()
                .copied()
                .map(Formula::Lit)
                .collect(),
        )
    }

    /// The disjunction of a set of conjunctive conditions (a DNF), e.g. the
    /// existence condition of "at least one of these matches".
    pub fn any_of_conditions(conditions: &[Condition]) -> Formula {
        Formula::any_of(conditions)
    }

    /// Iterator-based variant of [`Formula::any_of_conditions`]: borrows the
    /// conditions instead of requiring them collected into a slice.
    pub fn any_of<'a>(conditions: impl IntoIterator<Item = &'a Condition>) -> Formula {
        Formula::or(
            conditions
                .into_iter()
                .map(Formula::from_condition)
                .collect(),
        )
    }

    /// Smart conjunction constructor with constant folding.
    pub fn and(parts: Vec<Formula>) -> Formula {
        let mut flat = Vec::new();
        for part in parts {
            match part {
                Formula::True => {}
                Formula::False => return Formula::False,
                Formula::And(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Formula::True,
            1 => flat.pop().expect("length checked"),
            _ => Formula::And(flat),
        }
    }

    /// Smart disjunction constructor with constant folding.
    pub fn or(parts: Vec<Formula>) -> Formula {
        let mut flat = Vec::new();
        for part in parts {
            match part {
                Formula::False => {}
                Formula::True => return Formula::True,
                Formula::Or(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Formula::False,
            1 => flat.pop().expect("length checked"),
            _ => Formula::Or(flat),
        }
    }

    /// Smart negation constructor (also available as the `!` operator).
    pub fn negate(part: Formula) -> Formula {
        match part {
            Formula::True => Formula::False,
            Formula::False => Formula::True,
            Formula::Not(inner) => *inner,
            Formula::Lit(lit) => Formula::Lit(lit.negated()),
            other => Formula::Not(Box::new(other)),
        }
    }

    /// The set of events mentioned by the formula.
    pub fn events(&self) -> BTreeSet<EventId> {
        let mut out = BTreeSet::new();
        self.collect_events(&mut out);
        out
    }

    fn collect_events(&self, out: &mut BTreeSet<EventId>) {
        match self {
            Formula::True | Formula::False => {}
            Formula::Lit(lit) => {
                out.insert(lit.event);
            }
            Formula::And(parts) | Formula::Or(parts) => {
                for part in parts {
                    part.collect_events(out);
                }
            }
            Formula::Not(inner) => inner.collect_events(out),
        }
    }

    /// Evaluates the formula under a complete valuation.
    pub fn eval(&self, valuation: &Valuation) -> bool {
        match self {
            Formula::True => true,
            Formula::False => false,
            Formula::Lit(lit) => lit.satisfied_by(valuation),
            Formula::And(parts) => parts.iter().all(|part| part.eval(valuation)),
            Formula::Or(parts) => parts.iter().any(|part| part.eval(valuation)),
            Formula::Not(inner) => !inner.eval(valuation),
        }
    }

    /// Substitutes a truth value for an event and simplifies.
    pub fn restrict(&self, event: EventId, value: bool) -> Formula {
        match self {
            Formula::True => Formula::True,
            Formula::False => Formula::False,
            Formula::Lit(lit) => {
                if lit.event == event {
                    if lit.positive == value {
                        Formula::True
                    } else {
                        Formula::False
                    }
                } else {
                    Formula::Lit(*lit)
                }
            }
            Formula::And(parts) => Formula::and(
                parts
                    .iter()
                    .map(|part| part.restrict(event, value))
                    .collect(),
            ),
            Formula::Or(parts) => Formula::or(
                parts
                    .iter()
                    .map(|part| part.restrict(event, value))
                    .collect(),
            ),
            Formula::Not(inner) => Formula::negate(inner.restrict(event, value)),
        }
    }

    /// Exact probability of the formula being true (events are mutually
    /// independent): the formula is compiled into a reduced ordered BDD and
    /// the probability is one weighted model-counting walk over the diagram —
    /// linear in BDD size instead of exponential in the number of distinct
    /// events. For richer workflows (incremental disjunctions, shared
    /// probability caches, disjoint covers) use [`Bdd`] directly.
    pub fn probability(&self, table: &EventTable) -> f64 {
        match self {
            Formula::True => return 1.0,
            Formula::False => return 0.0,
            Formula::Lit(lit) => return lit.probability(table),
            _ => {}
        }
        let mut bdd = Bdd::new();
        let node = bdd.formula(self);
        bdd.probability(node, table)
    }

    /// The original Shannon-expansion probability computation — exponential
    /// in the number of distinct events the formula mentions. Kept as the
    /// independent test oracle for the BDD engine (and as the baseline the
    /// harness experiment E13 measures against); production callers should
    /// use [`Formula::probability`].
    pub fn probability_shannon(&self, table: &EventTable) -> f64 {
        match self {
            Formula::True => return 1.0,
            Formula::False => return 0.0,
            Formula::Lit(lit) => return lit.probability(table),
            _ => {}
        }
        let events = self.events();
        let Some(&event) = events.iter().next() else {
            // No events left but not a constant: cannot happen after the
            // smart constructors, treat conservatively by evaluation.
            return if self.eval(&Valuation::all_false(table)) {
                1.0
            } else {
                0.0
            };
        };
        let p = table.probability(event);
        let if_true = self.restrict(event, true).probability_shannon(table);
        let if_false = self.restrict(event, false).probability_shannon(table);
        p * if_true + (1.0 - p) * if_false
    }

    /// `true` when the formula is a tautology. Decided on the BDD: by
    /// canonicity a formula is valid iff its diagram is the ⊤ terminal.
    pub fn is_tautology(&self) -> bool {
        match self {
            Formula::True => true,
            Formula::False | Formula::Lit(_) => false,
            _ => {
                let mut bdd = Bdd::new();
                bdd.formula(self).is_true()
            }
        }
    }

    /// `true` when the formula is unsatisfiable (its diagram is ⊥).
    pub fn is_contradiction(&self) -> bool {
        match self {
            Formula::False => true,
            Formula::True | Formula::Lit(_) => false,
            _ => {
                let mut bdd = Bdd::new();
                bdd.formula(self).is_false()
            }
        }
    }

    /// `true` when the two formulas are logically equivalent: compiled in one
    /// shared manager, equivalent functions hash-cons to the same node.
    pub fn equivalent(&self, other: &Formula) -> bool {
        let mut bdd = Bdd::new();
        bdd.formula(self) == bdd.formula(other)
    }
}

impl std::ops::Not for Formula {
    type Output = Formula;

    fn not(self) -> Formula {
        Formula::negate(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> (EventTable, EventId, EventId, EventId) {
        let mut t = EventTable::new();
        let w1 = t.add_event("w1", 0.8).unwrap();
        let w2 = t.add_event("w2", 0.7).unwrap();
        let w3 = t.add_event("w3", 0.9).unwrap();
        (t, w1, w2, w3)
    }

    #[test]
    fn constants_and_literals() {
        let (t, w1, _, _) = table();
        assert_eq!(Formula::True.probability(&t), 1.0);
        assert_eq!(Formula::False.probability(&t), 0.0);
        assert!((Formula::Lit(Literal::pos(w1)).probability(&t) - 0.8).abs() < 1e-12);
        assert!((Formula::Lit(Literal::neg(w1)).probability(&t) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn smart_constructors_fold_constants() {
        let (_, w1, _, _) = table();
        let lit = Formula::Lit(Literal::pos(w1));
        assert_eq!(Formula::and(vec![]), Formula::True);
        assert_eq!(Formula::or(vec![]), Formula::False);
        assert_eq!(Formula::and(vec![Formula::True, lit.clone()]), lit);
        assert_eq!(
            Formula::and(vec![Formula::False, lit.clone()]),
            Formula::False
        );
        assert_eq!(Formula::or(vec![Formula::True, lit.clone()]), Formula::True);
        assert_eq!(Formula::or(vec![Formula::False, lit.clone()]), lit);
        assert_eq!(Formula::negate(Formula::True), Formula::False);
        assert_eq!(Formula::negate(Formula::negate(lit.clone())), lit);
        assert_eq!(
            Formula::negate(Formula::Lit(Literal::pos(w1))),
            Formula::Lit(Literal::neg(w1))
        );
    }

    #[test]
    fn from_condition() {
        let (t, w1, w2, _) = table();
        let cond = Condition::from_literals(vec![Literal::pos(w1), Literal::neg(w2)]);
        let formula = Formula::from_condition(&cond);
        assert!((formula.probability(&t) - 0.24).abs() < 1e-12);
        assert_eq!(Formula::from_condition(&Condition::always()), Formula::True);
        let inconsistent = Condition::from_literals(vec![Literal::pos(w1), Literal::neg(w1)]);
        assert_eq!(Formula::from_condition(&inconsistent), Formula::False);
    }

    #[test]
    fn probability_of_conjunction_and_disjunction() {
        let (t, w1, w2, _) = table();
        let a = Formula::Lit(Literal::pos(w1));
        let b = Formula::Lit(Literal::pos(w2));
        let both = Formula::and(vec![a.clone(), b.clone()]);
        let either = Formula::or(vec![a, b]);
        assert!((both.probability(&t) - 0.56).abs() < 1e-12);
        // P(w1 ∨ w2) = 0.8 + 0.7 − 0.56
        assert!((either.probability(&t) - 0.94).abs() < 1e-12);
    }

    #[test]
    fn probability_handles_shared_events_correctly() {
        let (t, w1, w2, _) = table();
        // (w1 ∧ w2) ∨ (w1 ∧ ¬w2) ≡ w1 : naive inclusion-free summing would
        // give 0.8 but so does the exact computation — the point is that the
        // shared event w1 must not be double counted as 0.56 + 0.24 ≠ P,
        // which happens to equal 0.8 here, so also test an overlapping pair.
        let c1 = Condition::from_literals(vec![Literal::pos(w1), Literal::pos(w2)]);
        let c2 = Condition::from_literals(vec![Literal::pos(w1)]);
        let f = Formula::any_of_conditions(&[c1, c2]);
        // (w1∧w2) ∨ w1 ≡ w1.
        assert!((f.probability(&t) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn eval_and_restrict() {
        let (t, w1, w2, _) = table();
        let f = Formula::or(vec![
            Formula::Lit(Literal::pos(w1)),
            Formula::Lit(Literal::pos(w2)),
        ]);
        let mut v = Valuation::all_false(&t);
        assert!(!f.eval(&v));
        v.set(w2, true);
        assert!(f.eval(&v));
        assert_eq!(f.restrict(w1, true), Formula::True);
        assert_eq!(f.restrict(w1, false), Formula::Lit(Literal::pos(w2)));
    }

    #[test]
    fn probability_matches_enumeration() {
        let (t, w1, w2, w3) = table();
        let f = Formula::or(vec![
            Formula::and(vec![
                Formula::Lit(Literal::pos(w1)),
                Formula::Lit(Literal::neg(w2)),
            ]),
            Formula::and(vec![
                Formula::Lit(Literal::pos(w2)),
                Formula::Lit(Literal::pos(w3)),
            ]),
        ]);
        let by_bdd = f.probability(&t);
        let by_shannon = f.probability_shannon(&t);
        let by_enumeration: f64 = crate::valuation::enumerate_valuations(&t)
            .unwrap()
            .into_iter()
            .filter(|v| f.eval(v))
            .map(|v| v.probability(&t))
            .sum();
        assert!((by_bdd - by_enumeration).abs() < 1e-12);
        assert!((by_shannon - by_enumeration).abs() < 1e-12);
    }

    #[test]
    fn tautology_contradiction_equivalence() {
        let (_, w1, w2, _) = table();
        let a = Formula::Lit(Literal::pos(w1));
        let not_a = Formula::Lit(Literal::neg(w1));
        assert!(Formula::or(vec![a.clone(), not_a.clone()]).is_tautology());
        assert!(Formula::and(vec![a.clone(), not_a.clone()]).is_contradiction());
        assert!(!a.is_tautology());
        assert!(!a.is_contradiction());
        // De Morgan: ¬(w1 ∧ w2) ≡ ¬w1 ∨ ¬w2.
        let lhs = Formula::negate(Formula::and(vec![
            Formula::Lit(Literal::pos(w1)),
            Formula::Lit(Literal::pos(w2)),
        ]));
        let rhs = Formula::or(vec![
            Formula::Lit(Literal::neg(w1)),
            Formula::Lit(Literal::neg(w2)),
        ]);
        assert!(lhs.equivalent(&rhs));
        assert!(!lhs.equivalent(&a));
    }

    #[test]
    fn events_are_collected() {
        let (_, w1, w2, w3) = table();
        let f = Formula::and(vec![
            Formula::Lit(Literal::pos(w1)),
            Formula::negate(Formula::or(vec![
                Formula::Lit(Literal::neg(w2)),
                Formula::Lit(Literal::pos(w3)),
            ])),
        ]);
        let events = f.events();
        assert_eq!(events.len(), 3);
        assert!(events.contains(&w1) && events.contains(&w2) && events.contains(&w3));
        assert!(Formula::True.events().is_empty());
    }
}
