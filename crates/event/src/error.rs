//! Error type for the event substrate.

use std::fmt;

/// Errors raised when manipulating events, conditions and valuations.
#[derive(Debug, Clone, PartialEq)]
pub enum EventError {
    /// A probability outside `[0, 1]` (or NaN) was supplied.
    InvalidProbability(f64),
    /// An event with the same name already exists in the table.
    DuplicateEventName(String),
    /// The named event does not exist in the table.
    UnknownEvent(String),
    /// The event id does not belong to the table.
    UnknownEventId(u32),
    /// A condition string could not be parsed.
    ParseError(String),
    /// Exhaustive valuation enumeration was requested over too many events.
    TooManyEvents { requested: usize, limit: usize },
}

impl fmt::Display for EventError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventError::InvalidProbability(p) => {
                write!(f, "invalid probability {p}: must lie in [0, 1]")
            }
            EventError::DuplicateEventName(name) => {
                write!(f, "an event named `{name}` already exists")
            }
            EventError::UnknownEvent(name) => write!(f, "unknown event `{name}`"),
            EventError::UnknownEventId(id) => write!(f, "unknown event id {id}"),
            EventError::ParseError(msg) => write!(f, "condition parse error: {msg}"),
            EventError::TooManyEvents { requested, limit } => write!(
                f,
                "refusing to enumerate 2^{requested} valuations (limit is 2^{limit})"
            ),
        }
    }
}

impl std::error::Error for EventError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(EventError::InvalidProbability(1.5)
            .to_string()
            .contains("1.5"));
        assert!(EventError::DuplicateEventName("w".into())
            .to_string()
            .contains("`w`"));
        assert!(EventError::UnknownEvent("x".into())
            .to_string()
            .contains("`x`"));
        assert!(EventError::UnknownEventId(7).to_string().contains('7'));
        assert!(EventError::ParseError("bad".into())
            .to_string()
            .contains("bad"));
        let e = EventError::TooManyEvents {
            requested: 40,
            limit: 24,
        };
        assert!(e.to_string().contains("2^40"));
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&EventError::InvalidProbability(2.0));
    }
}
