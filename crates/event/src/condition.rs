//! Event conditions: conjunctions of event literals.
//!
//! In the fuzzy-tree model every node carries a condition that is a
//! *conjunction of probabilistic events or negations of probabilistic events*
//! (slide 12). The empty conjunction is `⊤` (always true) and annotates
//! ordinary, certain nodes.

use std::collections::BTreeSet;
use std::fmt;

use crate::error::EventError;
use crate::table::{EventId, EventTable};
use crate::valuation::Valuation;

/// A single event literal: an event or its negation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Literal {
    /// The underlying event.
    pub event: EventId,
    /// `true` for `w`, `false` for `¬w`.
    pub positive: bool,
}

impl Literal {
    /// The positive literal `w`.
    pub fn pos(event: EventId) -> Self {
        Literal {
            event,
            positive: true,
        }
    }

    /// The negative literal `¬w`.
    pub fn neg(event: EventId) -> Self {
        Literal {
            event,
            positive: false,
        }
    }

    /// The literal with the same event and opposite sign.
    pub fn negated(self) -> Self {
        Literal {
            event: self.event,
            positive: !self.positive,
        }
    }

    /// The probability of this literal being true.
    pub fn probability(self, table: &EventTable) -> f64 {
        let p = table.probability(self.event);
        if self.positive {
            p
        } else {
            1.0 - p
        }
    }

    /// Whether the literal holds under a valuation.
    pub fn satisfied_by(self, valuation: &Valuation) -> bool {
        valuation.get(self.event) == self.positive
    }

    /// Renders the literal using the table's event names (`w` / `!w`).
    pub fn display(self, table: &EventTable) -> String {
        if self.positive {
            table.name(self.event).to_string()
        } else {
            format!("!{}", table.name(self.event))
        }
    }
}

/// A conjunction of event literals, kept sorted and deduplicated.
///
/// The empty condition is the tautology `⊤`. A condition containing both `w`
/// and `¬w` is *inconsistent* (its probability is 0 and any node carrying it
/// can be pruned by the simplifier).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Condition {
    literals: Vec<Literal>,
}

impl Condition {
    /// The empty (always true) condition.
    pub fn always() -> Self {
        Condition::default()
    }

    /// Builds a condition from literals (duplicates removed, order irrelevant).
    pub fn from_literals(literals: impl IntoIterator<Item = Literal>) -> Self {
        let set: BTreeSet<Literal> = literals.into_iter().collect();
        Condition {
            literals: set.into_iter().collect(),
        }
    }

    /// A condition with a single literal.
    pub fn from_literal(literal: Literal) -> Self {
        Condition {
            literals: vec![literal],
        }
    }

    /// The literals, sorted by event id (and sign).
    pub fn literals(&self) -> &[Literal] {
        &self.literals
    }

    /// The number of literals.
    pub fn len(&self) -> usize {
        self.literals.len()
    }

    /// `true` if the condition is the tautology `⊤`.
    pub fn is_empty(&self) -> bool {
        self.literals.is_empty()
    }

    /// Alias of [`Condition::is_empty`] matching the paper's terminology.
    pub fn is_always_true(&self) -> bool {
        self.is_empty()
    }

    /// `true` when no event appears both positively and negatively.
    pub fn is_consistent(&self) -> bool {
        self.literals
            .windows(2)
            .all(|pair| pair[0].event != pair[1].event)
    }

    /// `true` if the condition contains this exact literal.
    pub fn contains(&self, literal: Literal) -> bool {
        self.literals.binary_search(&literal).is_ok()
    }

    /// `true` if the condition mentions this event (positively or negatively).
    pub fn mentions(&self, event: EventId) -> bool {
        self.literals.iter().any(|lit| lit.event == event)
    }

    /// The set of events mentioned by the condition.
    pub fn events(&self) -> BTreeSet<EventId> {
        self.literals.iter().map(|lit| lit.event).collect()
    }

    /// Conjunction of two conditions.
    pub fn and(&self, other: &Condition) -> Condition {
        Condition::from_literals(self.literals.iter().chain(other.literals.iter()).copied())
    }

    /// Conjunction with a single literal.
    pub fn and_literal(&self, literal: Literal) -> Condition {
        Condition::from_literals(
            self.literals
                .iter()
                .copied()
                .chain(std::iter::once(literal)),
        )
    }

    /// Syntactic implication between conjunctions: `self ⇒ other` holds when
    /// every literal of `other` appears in `self` (or `self` is inconsistent).
    pub fn implies(&self, other: &Condition) -> bool {
        if !self.is_consistent() {
            return true;
        }
        other.literals.iter().all(|lit| self.contains(*lit))
    }

    /// Removes the literals already guaranteed by `context` (used to strip
    /// conditions implied by ancestors). Returns the reduced condition.
    pub fn without_implied_by(&self, context: &Condition) -> Condition {
        Condition {
            literals: self
                .literals
                .iter()
                .copied()
                .filter(|lit| !context.contains(*lit))
                .collect(),
        }
    }

    /// Whether the condition holds under a complete valuation of the events.
    pub fn satisfied_by(&self, valuation: &Valuation) -> bool {
        self.literals.iter().all(|lit| lit.satisfied_by(valuation))
    }

    /// The exact probability of the condition: events are independent, so a
    /// consistent conjunction has probability equal to the product of its
    /// literals' probabilities; an inconsistent one has probability 0.
    pub fn probability(&self, table: &EventTable) -> f64 {
        if !self.is_consistent() {
            return 0.0;
        }
        self.literals
            .iter()
            .map(|lit| lit.probability(table))
            .product()
    }

    /// Renders the condition using event names: literals separated by single
    /// spaces, negation written `!w`; the empty condition renders as `""`.
    pub fn display(&self, table: &EventTable) -> String {
        self.literals
            .iter()
            .map(|lit| lit.display(table))
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// Parses a condition in the [`Condition::display`] syntax (also accepts
    /// `¬w`, `not w` and comma separators). Unknown event names are errors.
    pub fn parse(input: &str, table: &EventTable) -> Result<Condition, EventError> {
        let mut literals = Vec::new();
        let normalized = input.replace(',', " ");
        let mut tokens = normalized.split_whitespace().peekable();
        while let Some(token) = tokens.next() {
            let (positive, name) = if let Some(rest) = token.strip_prefix('!') {
                (false, rest)
            } else if let Some(rest) = token.strip_prefix('¬') {
                (false, rest)
            } else if token == "not" {
                let name = tokens.next().ok_or_else(|| {
                    EventError::ParseError("`not` must be followed by an event name".into())
                })?;
                (false, name)
            } else {
                (true, token)
            };
            if name.is_empty() {
                return Err(EventError::ParseError(format!(
                    "empty event name in token `{token}`"
                )));
            }
            let event = table.require(name)?;
            literals.push(Literal { event, positive });
        }
        Ok(Condition::from_literals(literals))
    }
}

impl fmt::Display for Condition {
    /// Table-free rendering using raw event ids (`e0 !e1`); use
    /// [`Condition::display`] for named output.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.literals.is_empty() {
            return write!(f, "⊤");
        }
        for (i, lit) in self.literals.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            if !lit.positive {
                write!(f, "!")?;
            }
            write!(f, "{}", lit.event)?;
        }
        Ok(())
    }
}

impl FromIterator<Literal> for Condition {
    fn from_iter<T: IntoIterator<Item = Literal>>(iter: T) -> Self {
        Condition::from_literals(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> (EventTable, EventId, EventId, EventId) {
        let mut t = EventTable::new();
        let w1 = t.add_event("w1", 0.8).unwrap();
        let w2 = t.add_event("w2", 0.7).unwrap();
        let w3 = t.add_event("w3", 0.9).unwrap();
        (t, w1, w2, w3)
    }

    #[test]
    fn literal_basics() {
        let (t, w1, _, _) = table();
        let p = Literal::pos(w1);
        let n = Literal::neg(w1);
        assert_eq!(p.negated(), n);
        assert_eq!(n.negated(), p);
        assert!((p.probability(&t) - 0.8).abs() < 1e-12);
        assert!((n.probability(&t) - 0.2).abs() < 1e-12);
        assert_eq!(p.display(&t), "w1");
        assert_eq!(n.display(&t), "!w1");
    }

    #[test]
    fn construction_dedupes_and_sorts() {
        let (_, w1, w2, _) = table();
        let c =
            Condition::from_literals(vec![Literal::neg(w2), Literal::pos(w1), Literal::pos(w1)]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.literals()[0], Literal::pos(w1));
        assert_eq!(c.literals()[1], Literal::neg(w2));
        let collected: Condition = vec![Literal::pos(w1)].into_iter().collect();
        assert_eq!(collected, Condition::from_literal(Literal::pos(w1)));
    }

    #[test]
    fn always_true_condition() {
        let (t, _, _, _) = table();
        let c = Condition::always();
        assert!(c.is_empty());
        assert!(c.is_always_true());
        assert!(c.is_consistent());
        assert_eq!(c.probability(&t), 1.0);
        assert_eq!(c.display(&t), "");
        assert_eq!(c.to_string(), "⊤");
    }

    #[test]
    fn consistency_detection() {
        let (_, w1, w2, _) = table();
        let ok = Condition::from_literals(vec![Literal::pos(w1), Literal::neg(w2)]);
        let bad = Condition::from_literals(vec![Literal::pos(w1), Literal::neg(w1)]);
        assert!(ok.is_consistent());
        assert!(!bad.is_consistent());
    }

    #[test]
    fn probability_of_conjunction() {
        let (t, w1, w2, _) = table();
        // P(w1 ∧ ¬w2) = 0.8 × 0.3 — the B-node of slide 12.
        let c = Condition::from_literals(vec![Literal::pos(w1), Literal::neg(w2)]);
        assert!((c.probability(&t) - 0.24).abs() < 1e-12);
        // Inconsistent conditions have probability 0.
        let bad = Condition::from_literals(vec![Literal::pos(w1), Literal::neg(w1)]);
        assert_eq!(bad.probability(&t), 0.0);
    }

    #[test]
    fn and_combines_and_dedupes() {
        let (t, w1, w2, w3) = table();
        let a = Condition::from_literals(vec![Literal::pos(w1), Literal::pos(w2)]);
        let b = Condition::from_literals(vec![Literal::pos(w2), Literal::pos(w3)]);
        let both = a.and(&b);
        assert_eq!(both.len(), 3);
        assert!((both.probability(&t) - 0.8 * 0.7 * 0.9).abs() < 1e-12);
        let extended = a.and_literal(Literal::neg(w3));
        assert_eq!(extended.len(), 3);
        assert!(extended.contains(Literal::neg(w3)));
    }

    #[test]
    fn implication_and_context_reduction() {
        let (_, w1, w2, w3) = table();
        let strong =
            Condition::from_literals(vec![Literal::pos(w1), Literal::neg(w2), Literal::pos(w3)]);
        let weak = Condition::from_literals(vec![Literal::pos(w1), Literal::pos(w3)]);
        assert!(strong.implies(&weak));
        assert!(!weak.implies(&strong));
        assert!(strong.implies(&Condition::always()));
        // Inconsistent conditions imply everything.
        let bad = Condition::from_literals(vec![Literal::pos(w1), Literal::neg(w1)]);
        assert!(bad.implies(&strong));

        let reduced = strong.without_implied_by(&weak);
        assert_eq!(reduced, Condition::from_literal(Literal::neg(w2)));
    }

    #[test]
    fn mentions_and_events() {
        let (_, w1, w2, w3) = table();
        let c = Condition::from_literals(vec![Literal::pos(w1), Literal::neg(w2)]);
        assert!(c.mentions(w1));
        assert!(c.mentions(w2));
        assert!(!c.mentions(w3));
        assert_eq!(c.events().len(), 2);
    }

    #[test]
    fn satisfaction_under_valuation() {
        let (t, w1, w2, _) = table();
        let c = Condition::from_literals(vec![Literal::pos(w1), Literal::neg(w2)]);
        let mut v = Valuation::all_false(&t);
        assert!(!c.satisfied_by(&v));
        v.set(w1, true);
        assert!(c.satisfied_by(&v));
        v.set(w2, true);
        assert!(!c.satisfied_by(&v));
    }

    #[test]
    fn parse_round_trip() {
        let (t, w1, w2, w3) = table();
        let c =
            Condition::from_literals(vec![Literal::pos(w1), Literal::neg(w2), Literal::pos(w3)]);
        let text = c.display(&t);
        assert_eq!(text, "w1 !w2 w3");
        let reparsed = Condition::parse(&text, &t).unwrap();
        assert_eq!(reparsed, c);
    }

    #[test]
    fn parse_accepts_alternate_syntax() {
        let (t, w1, w2, _) = table();
        let expected = Condition::from_literals(vec![Literal::pos(w1), Literal::neg(w2)]);
        assert_eq!(Condition::parse("w1, ¬w2", &t).unwrap(), expected);
        assert_eq!(Condition::parse("w1 not w2", &t).unwrap(), expected);
        assert_eq!(Condition::parse("", &t).unwrap(), Condition::always());
    }

    #[test]
    fn parse_errors() {
        let (t, _, _, _) = table();
        assert!(matches!(
            Condition::parse("unknown", &t),
            Err(EventError::UnknownEvent(_))
        ));
        assert!(matches!(
            Condition::parse("w1 not", &t),
            Err(EventError::ParseError(_))
        ));
        assert!(matches!(
            Condition::parse("!", &t),
            Err(EventError::ParseError(_))
        ));
    }

    #[test]
    fn display_with_ids() {
        let (_, w1, w2, _) = table();
        let c = Condition::from_literals(vec![Literal::pos(w1), Literal::neg(w2)]);
        assert_eq!(c.to_string(), "e0 !e1");
    }
}
