//! Reduced ordered binary decision diagrams (ROBDDs) over probabilistic
//! events — the exact-probability engine behind [`Formula`].
//!
//! Shannon expansion (the original [`Formula::probability_shannon`] path) is
//! exponential in the number of *distinct events* a formula mentions; a
//! hash-consed decision diagram makes the practical cases fast without
//! giving up exactness:
//!
//! * nodes live in an arena and are **hash-consed** through a unique table,
//!   so structurally equal functions share one node — canonicity makes
//!   equivalence checking a pointer comparison;
//! * [`Bdd::and`] / [`Bdd::or`] / [`Bdd::not`] are the classic memoized
//!   `apply` recursions, polynomial in the sizes of their operands;
//! * [`Bdd::probability`] is **one weighted model-counting walk** over the
//!   DAG with a per-node cache — linear in BDD size, where Shannon expansion
//!   pays `2^events`;
//! * [`Bdd::disjoint_cover`] reads a pairwise-disjoint conjunctive cover off
//!   the root→⊤ path structure (any two distinct paths fix some variable to
//!   opposite values), which is what lets the simplifier's group re-cover
//!   scale past small event counts.
//!
//! The default variable order is the event-id order of the owning
//! [`EventTable`]: conditions produced by the update pipeline mention events
//! in creation order, which keeps related literals adjacent. Path-structure
//! consumers ([`Bdd::disjoint_cover`]) are sensitive to the order — fewer
//! paths mean smaller covers — so [`Bdd::with_order`] lets callers hoist
//! chosen events to the top of the diagram (the simplifier puts
//! uniform-sign "guard" events like deletion confidences first, which
//! collapses deletion-ladder fragments to their minimal cover).
//!
//! A [`Bdd`] is an explicit manager: every node handle ([`BddRef`]) is only
//! meaningful relative to the manager that created it. Managers are cheap to
//! create (two terminal nodes), so per-computation managers are the normal
//! usage pattern; long-lived managers amortize the unique table and apply
//! caches across computations over the same events.
//!
//! ```
//! use pxml_event::{Bdd, Condition, EventTable, Literal};
//!
//! let mut events = EventTable::new();
//! let w1 = events.add_event("w1", 0.8).unwrap();
//! let w2 = events.add_event("w2", 0.7).unwrap();
//!
//! let mut bdd = Bdd::new();
//! let a = bdd.condition(&Condition::from_literal(Literal::pos(w1)));
//! let b = bdd.condition(&Condition::from_literal(Literal::pos(w2)));
//! let either = bdd.or(a, b);
//! // P(w1 ∨ w2) = 0.8 + 0.7 − 0.56.
//! assert!((bdd.probability(either, &events) - 0.94).abs() < 1e-12);
//! ```

use std::collections::hash_map::Entry;
use std::collections::HashMap;

use crate::condition::{Condition, Literal};
use crate::formula::Formula;
use crate::table::{EventId, EventTable};

/// A handle to a node of a [`Bdd`] manager.
///
/// Handles are only meaningful relative to the manager that produced them.
/// Because the manager hash-conses, two handles from the same manager denote
/// the same boolean function **iff they are equal** — this is what makes
/// equivalence, tautology and contradiction checks O(1) after construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BddRef(u32);

impl BddRef {
    /// The constant-false function `⊥`.
    pub const FALSE: BddRef = BddRef(0);
    /// The constant-true function `⊤`.
    pub const TRUE: BddRef = BddRef(1);

    /// `true` when this is the constant-false function.
    pub fn is_false(self) -> bool {
        self == BddRef::FALSE
    }

    /// `true` when this is the constant-true function.
    pub fn is_true(self) -> bool {
        self == BddRef::TRUE
    }

    /// `true` for either terminal.
    pub fn is_constant(self) -> bool {
        self.0 <= 1
    }
}

/// Variable index reserved for the two terminal nodes; ordered after every
/// real variable so `min` over node variables picks the topmost decision.
const TERMINAL_VAR: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct Node {
    /// Decision variable (the raw event index), or [`TERMINAL_VAR`].
    var: u32,
    /// Cofactor when the event is false.
    lo: BddRef,
    /// Cofactor when the event is true.
    hi: BddRef,
}

/// A reduced ordered BDD manager: arena, unique table and apply caches.
#[derive(Debug, Default)]
pub struct Bdd {
    nodes: Vec<Node>,
    /// Hash-consing table: `(var, lo, hi) → node`.
    unique: HashMap<(u32, BddRef, BddRef), BddRef>,
    and_cache: HashMap<(BddRef, BddRef), BddRef>,
    or_cache: HashMap<(BddRef, BddRef), BddRef>,
    not_cache: HashMap<BddRef, BddRef>,
    /// Custom variable order: events listed in [`Bdd::with_order`] get the
    /// topmost levels in listing order; unlisted events follow in id order.
    /// Empty = plain event-id order.
    levels: HashMap<u32, u64>,
}

impl Bdd {
    /// An empty manager holding only the two terminals, ordering variables
    /// by event id.
    pub fn new() -> Self {
        Bdd {
            nodes: vec![
                Node {
                    var: TERMINAL_VAR,
                    lo: BddRef::FALSE,
                    hi: BddRef::FALSE,
                },
                Node {
                    var: TERMINAL_VAR,
                    lo: BddRef::TRUE,
                    hi: BddRef::TRUE,
                },
            ],
            unique: HashMap::new(),
            and_cache: HashMap::new(),
            or_cache: HashMap::new(),
            not_cache: HashMap::new(),
            levels: HashMap::new(),
        }
    }

    /// A manager whose variable order starts with `order` (topmost first);
    /// events not listed come after all listed ones, in event-id order. The
    /// order is fixed for the manager's lifetime.
    pub fn with_order(order: impl IntoIterator<Item = EventId>) -> Self {
        let mut bdd = Bdd::new();
        for (level, event) in order.into_iter().enumerate() {
            bdd.levels
                .entry(event.index() as u32)
                .or_insert(level as u64);
        }
        bdd
    }

    /// The position of a variable in the order (smaller = nearer the root);
    /// terminals sort after everything.
    fn level(&self, var: u32) -> u64 {
        if var == TERMINAL_VAR {
            return u64::MAX;
        }
        match self.levels.get(&var) {
            Some(&level) => level,
            // Unlisted events keep id order, after every listed event.
            None => (1u64 << 32) + var as u64,
        }
    }

    /// Number of live nodes (terminals included).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The number of nodes reachable from `node` (terminals included) — the
    /// "BDD size" that probability computation is linear in.
    pub fn reachable_count(&self, node: BddRef) -> usize {
        let mut seen: Vec<bool> = vec![false; self.nodes.len()];
        let mut stack = vec![node];
        let mut count = 0;
        while let Some(n) = stack.pop() {
            if std::mem::replace(&mut seen[n.0 as usize], true) {
                continue;
            }
            count += 1;
            if !n.is_constant() {
                let node = self.nodes[n.0 as usize];
                stack.push(node.lo);
                stack.push(node.hi);
            }
        }
        count
    }

    /// The hash-consing constructor: reduced (no redundant tests) and unique
    /// (structurally equal functions share one node).
    fn mk(&mut self, var: u32, lo: BddRef, hi: BddRef) -> BddRef {
        if lo == hi {
            return lo;
        }
        match self.unique.entry((var, lo, hi)) {
            Entry::Occupied(hit) => *hit.get(),
            Entry::Vacant(slot) => {
                let fresh = BddRef(self.nodes.len() as u32);
                self.nodes.push(Node { var, lo, hi });
                *slot.insert(fresh)
            }
        }
    }

    /// The constant function.
    pub fn constant(&self, value: bool) -> BddRef {
        if value {
            BddRef::TRUE
        } else {
            BddRef::FALSE
        }
    }

    /// The function of a single literal.
    pub fn literal(&mut self, literal: Literal) -> BddRef {
        let var = literal.event.index() as u32;
        if literal.positive {
            self.mk(var, BddRef::FALSE, BddRef::TRUE)
        } else {
            self.mk(var, BddRef::TRUE, BddRef::FALSE)
        }
    }

    /// The function of a conjunctive [`Condition`] — built bottom-up in one
    /// pass, no `apply` needed.
    pub fn condition(&mut self, condition: &Condition) -> BddRef {
        if !condition.is_consistent() {
            return BddRef::FALSE;
        }
        let mut literals: Vec<Literal> = condition.literals().to_vec();
        literals.sort_unstable_by_key(|lit| self.level(lit.event.index() as u32));
        let mut acc = BddRef::TRUE;
        for literal in literals.iter().rev() {
            let var = literal.event.index() as u32;
            acc = if literal.positive {
                self.mk(var, BddRef::FALSE, acc)
            } else {
                self.mk(var, acc, BddRef::FALSE)
            };
        }
        acc
    }

    /// The disjunction of a set of conjunctive conditions (a DNF), built
    /// incrementally — the existence condition of "at least one of these".
    pub fn any_of<'a>(&mut self, conditions: impl IntoIterator<Item = &'a Condition>) -> BddRef {
        let mut acc = BddRef::FALSE;
        for condition in conditions {
            let node = self.condition(condition);
            acc = self.or(acc, node);
        }
        acc
    }

    /// The function of an arbitrary [`Formula`].
    pub fn formula(&mut self, formula: &Formula) -> BddRef {
        match formula {
            Formula::True => BddRef::TRUE,
            Formula::False => BddRef::FALSE,
            Formula::Lit(literal) => self.literal(*literal),
            Formula::And(parts) => {
                let mut acc = BddRef::TRUE;
                for part in parts {
                    if acc.is_false() {
                        break;
                    }
                    let node = self.formula(part);
                    acc = self.and(acc, node);
                }
                acc
            }
            Formula::Or(parts) => {
                let mut acc = BddRef::FALSE;
                for part in parts {
                    if acc.is_true() {
                        break;
                    }
                    let node = self.formula(part);
                    acc = self.or(acc, node);
                }
                acc
            }
            Formula::Not(inner) => {
                let node = self.formula(inner);
                self.not(node)
            }
        }
    }

    /// Splits `a` and `b` on their topmost variable: returns the variable and
    /// both pairs of cofactors (an operand not testing that variable is its
    /// own cofactor on both branches).
    fn cofactors(&self, a: BddRef, b: BddRef) -> (u32, (BddRef, BddRef), (BddRef, BddRef)) {
        let node_a = self.nodes[a.0 as usize];
        let node_b = self.nodes[b.0 as usize];
        let var = if self.level(node_a.var) <= self.level(node_b.var) {
            node_a.var
        } else {
            node_b.var
        };
        let split = |node: Node, handle: BddRef| {
            if node.var == var {
                (node.lo, node.hi)
            } else {
                (handle, handle)
            }
        };
        (var, split(node_a, a), split(node_b, b))
    }

    /// Memoized conjunction.
    pub fn and(&mut self, a: BddRef, b: BddRef) -> BddRef {
        if a == b || b.is_true() {
            return a;
        }
        if a.is_true() {
            return b;
        }
        if a.is_false() || b.is_false() {
            return BddRef::FALSE;
        }
        let key = (a.min(b), a.max(b));
        if let Some(&hit) = self.and_cache.get(&key) {
            return hit;
        }
        let (var, (a_lo, a_hi), (b_lo, b_hi)) = self.cofactors(a, b);
        let lo = self.and(a_lo, b_lo);
        let hi = self.and(a_hi, b_hi);
        let result = self.mk(var, lo, hi);
        self.and_cache.insert(key, result);
        result
    }

    /// Memoized disjunction.
    pub fn or(&mut self, a: BddRef, b: BddRef) -> BddRef {
        if a == b || b.is_false() {
            return a;
        }
        if a.is_false() {
            return b;
        }
        if a.is_true() || b.is_true() {
            return BddRef::TRUE;
        }
        let key = (a.min(b), a.max(b));
        if let Some(&hit) = self.or_cache.get(&key) {
            return hit;
        }
        let (var, (a_lo, a_hi), (b_lo, b_hi)) = self.cofactors(a, b);
        let lo = self.or(a_lo, b_lo);
        let hi = self.or(a_hi, b_hi);
        let result = self.mk(var, lo, hi);
        self.or_cache.insert(key, result);
        result
    }

    /// Memoized negation.
    pub fn not(&mut self, a: BddRef) -> BddRef {
        if a.is_false() {
            return BddRef::TRUE;
        }
        if a.is_true() {
            return BddRef::FALSE;
        }
        if let Some(&hit) = self.not_cache.get(&a) {
            return hit;
        }
        let node = self.nodes[a.0 as usize];
        let lo = self.not(node.lo);
        let hi = self.not(node.hi);
        let result = self.mk(node.var, lo, hi);
        self.not_cache.insert(a, result);
        self.not_cache.insert(result, a);
        result
    }

    /// The cofactor of `node` with `event` fixed to `value` (memoized per
    /// call — restriction results are not shared across calls because the
    /// fixed event differs).
    pub fn restrict(&mut self, node: BddRef, event: EventId, value: bool) -> BddRef {
        let var = event.index() as u32;
        let mut memo: HashMap<BddRef, BddRef> = HashMap::new();
        self.restrict_rec(node, var, value, &mut memo)
    }

    fn restrict_rec(
        &mut self,
        node: BddRef,
        var: u32,
        value: bool,
        memo: &mut HashMap<BddRef, BddRef>,
    ) -> BddRef {
        let data = self.nodes[node.0 as usize];
        if self.level(data.var) > self.level(var) {
            // Terminals and nodes entirely below `var` never test it.
            return node;
        }
        if data.var == var {
            return if value { data.hi } else { data.lo };
        }
        if let Some(&hit) = memo.get(&node) {
            return hit;
        }
        let lo = self.restrict_rec(data.lo, var, value, memo);
        let hi = self.restrict_rec(data.hi, var, value, memo);
        let result = self.mk(data.var, lo, hi);
        memo.insert(node, result);
        result
    }

    /// Exact probability of the function being true under the independent
    /// event probabilities of `table`: one weighted model-counting walk over
    /// the DAG with a per-node cache — **linear in BDD size**.
    ///
    /// # Panics
    /// Panics if the function tests an event `table` does not contain (the
    /// same contract as [`EventTable::probability`]).
    pub fn probability(&self, node: BddRef, table: &EventTable) -> f64 {
        let mut cache: HashMap<BddRef, f64> = HashMap::new();
        self.probability_cached(node, table, &mut cache)
    }

    /// [`Bdd::probability`] over several roots sharing one per-node cache —
    /// cheaper than independent calls when the functions share structure
    /// (e.g. the per-answer disjunctions of one query result).
    pub fn probabilities(&self, nodes: &[BddRef], table: &EventTable) -> Vec<f64> {
        let mut cache: HashMap<BddRef, f64> = HashMap::new();
        nodes
            .iter()
            .map(|&node| self.probability_cached(node, table, &mut cache))
            .collect()
    }

    fn probability_cached(
        &self,
        node: BddRef,
        table: &EventTable,
        cache: &mut HashMap<BddRef, f64>,
    ) -> f64 {
        if node.is_false() {
            return 0.0;
        }
        if node.is_true() {
            return 1.0;
        }
        if let Some(&hit) = cache.get(&node) {
            return hit;
        }
        let data = self.nodes[node.0 as usize];
        let p = table.probability(EventId(data.var));
        let lo = self.probability_cached(data.lo, table, cache);
        let hi = self.probability_cached(data.hi, table, cache);
        let result = p * hi + (1.0 - p) * lo;
        cache.insert(node, result);
        result
    }

    /// A pairwise-disjoint conjunctive cover of the function, read off the
    /// root→⊤ paths: each path fixes the variables it passes through, and any
    /// two distinct paths disagree on the value of some fixed variable, so
    /// the terms are disjoint by construction and their union is exactly the
    /// function.
    ///
    /// Returns `None` when more than `max_terms` terms would be needed, or
    /// when the path walk exceeds an internal step budget proportional to
    /// `max_terms` (dense functions can have few ⊤-paths but exponentially
    /// many ⊥-paths; the budget keeps the walk from paying for them). The
    /// constant-false function yields the empty cover.
    pub fn disjoint_cover(&self, node: BddRef, max_terms: usize) -> Option<Vec<Condition>> {
        let mut terms = Vec::new();
        let mut path: Vec<Literal> = Vec::new();
        // Every recursion step pushes at most one literal, and a ⊤-path is at
        // most `nodes` long, so this bounds the walk to roughly the work of
        // emitting `max_terms + 1` terms over a moderately shared DAG.
        let mut budget = 64 * (max_terms + 1) * (self.nodes.len().min(4096) + 16);
        if self.cover_rec(node, &mut path, &mut terms, max_terms, &mut budget) {
            Some(terms)
        } else {
            None
        }
    }

    fn cover_rec(
        &self,
        node: BddRef,
        path: &mut Vec<Literal>,
        terms: &mut Vec<Condition>,
        max_terms: usize,
        budget: &mut usize,
    ) -> bool {
        if *budget == 0 {
            return false;
        }
        *budget -= 1;
        if node.is_false() {
            return true;
        }
        if node.is_true() {
            if terms.len() >= max_terms {
                return false;
            }
            terms.push(Condition::from_literals(path.iter().copied()));
            return true;
        }
        let data = self.nodes[node.0 as usize];
        let event = EventId(data.var);
        path.push(Literal::neg(event));
        let lo_ok = self.cover_rec(data.lo, path, terms, max_terms, budget);
        path.pop();
        if !lo_ok {
            return false;
        }
        path.push(Literal::pos(event));
        let hi_ok = self.cover_rec(data.hi, path, terms, max_terms, budget);
        path.pop();
        hi_ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::valuation::enumerate_valuations;

    fn table() -> (EventTable, EventId, EventId, EventId) {
        let mut t = EventTable::new();
        let w1 = t.add_event("w1", 0.8).unwrap();
        let w2 = t.add_event("w2", 0.7).unwrap();
        let w3 = t.add_event("w3", 0.9).unwrap();
        (t, w1, w2, w3)
    }

    #[test]
    fn terminals_and_literals() {
        let (t, w1, _, _) = table();
        let mut bdd = Bdd::new();
        assert!(BddRef::TRUE.is_true() && BddRef::FALSE.is_false());
        assert_eq!(bdd.probability(BddRef::TRUE, &t), 1.0);
        assert_eq!(bdd.probability(BddRef::FALSE, &t), 0.0);
        let pos = bdd.literal(Literal::pos(w1));
        let neg = bdd.literal(Literal::neg(w1));
        assert!((bdd.probability(pos, &t) - 0.8).abs() < 1e-12);
        assert!((bdd.probability(neg, &t) - 0.2).abs() < 1e-12);
        assert_eq!(bdd.not(pos), neg);
        assert_eq!(bdd.not(neg), pos);
    }

    #[test]
    fn hash_consing_shares_nodes() {
        let (_, w1, w2, _) = table();
        let mut bdd = Bdd::new();
        let a = bdd.condition(&Condition::from_literals([
            Literal::pos(w1),
            Literal::neg(w2),
        ]));
        let b = bdd.condition(&Condition::from_literals([
            Literal::neg(w2),
            Literal::pos(w1),
        ]));
        assert_eq!(a, b);
        // ¬¬f is f, by the not-cache symmetry and canonicity.
        let n = bdd.not(a);
        assert_eq!(bdd.not(n), a);
    }

    #[test]
    fn inconsistent_condition_is_false() {
        let (_, w1, _, _) = table();
        let mut bdd = Bdd::new();
        let bad = Condition::from_literals([Literal::pos(w1), Literal::neg(w1)]);
        assert_eq!(bdd.condition(&bad), BddRef::FALSE);
        assert_eq!(bdd.condition(&Condition::always()), BddRef::TRUE);
    }

    #[test]
    fn and_or_match_probability_laws() {
        let (t, w1, w2, _) = table();
        let mut bdd = Bdd::new();
        let a = bdd.literal(Literal::pos(w1));
        let b = bdd.literal(Literal::pos(w2));
        let both = bdd.and(a, b);
        let either = bdd.or(a, b);
        assert!((bdd.probability(both, &t) - 0.56).abs() < 1e-12);
        assert!((bdd.probability(either, &t) - 0.94).abs() < 1e-12);
        // a ∨ ¬a ≡ ⊤, a ∧ ¬a ≡ ⊥ — canonicity gives the terminals directly.
        let na = bdd.not(a);
        assert_eq!(bdd.or(a, na), BddRef::TRUE);
        assert_eq!(bdd.and(a, na), BddRef::FALSE);
    }

    #[test]
    fn restriction_is_the_cofactor() {
        let (_, w1, w2, _) = table();
        let mut bdd = Bdd::new();
        let a = bdd.literal(Literal::pos(w1));
        let b = bdd.literal(Literal::pos(w2));
        let either = bdd.or(a, b);
        assert_eq!(bdd.restrict(either, w1, true), BddRef::TRUE);
        assert_eq!(bdd.restrict(either, w1, false), b);
        assert_eq!(bdd.restrict(b, w1, false), b);
    }

    #[test]
    fn probability_agrees_with_valuation_enumeration() {
        let (t, w1, w2, w3) = table();
        let mut bdd = Bdd::new();
        // (w1 ∧ ¬w2) ∨ (w2 ∧ w3), the formula.rs cross-check example.
        let left = bdd.condition(&Condition::from_literals([
            Literal::pos(w1),
            Literal::neg(w2),
        ]));
        let right = bdd.condition(&Condition::from_literals([
            Literal::pos(w2),
            Literal::pos(w3),
        ]));
        let f = bdd.or(left, right);
        let formula = Formula::or(vec![
            Formula::and(vec![
                Formula::Lit(Literal::pos(w1)),
                Formula::Lit(Literal::neg(w2)),
            ]),
            Formula::and(vec![
                Formula::Lit(Literal::pos(w2)),
                Formula::Lit(Literal::pos(w3)),
            ]),
        ]);
        let by_enumeration: f64 = enumerate_valuations(&t)
            .unwrap()
            .into_iter()
            .filter(|v| formula.eval(v))
            .map(|v| v.probability(&t))
            .sum();
        assert!((bdd.probability(f, &t) - by_enumeration).abs() < 1e-12);
        let same = bdd.formula(&formula);
        assert_eq!(same, f);
    }

    #[test]
    fn shared_cache_probabilities_match_independent_calls() {
        let (t, w1, w2, w3) = table();
        let mut bdd = Bdd::new();
        let a = bdd.condition(&Condition::from_literals([
            Literal::pos(w1),
            Literal::pos(w2),
        ]));
        let b = bdd.condition(&Condition::from_literals([
            Literal::pos(w2),
            Literal::neg(w3),
        ]));
        let c = bdd.or(a, b);
        let batch = bdd.probabilities(&[a, b, c], &t);
        for (node, expected) in [a, b, c].into_iter().zip(&batch) {
            assert!((bdd.probability(node, &t) - expected).abs() < 1e-15);
        }
    }

    #[test]
    fn disjoint_cover_partitions_the_function() {
        let (t, w1, w2, w3) = table();
        let mut bdd = Bdd::new();
        let conditions = [
            Condition::from_literals([Literal::pos(w1), Literal::neg(w2)]),
            Condition::from_literals([Literal::pos(w2), Literal::pos(w3)]),
            Condition::from_literals([Literal::neg(w1), Literal::neg(w2)]),
        ];
        let union = bdd.any_of(conditions.iter());
        let cover = bdd.disjoint_cover(union, 16).unwrap();
        // Terms are consistent, pairwise disjoint, and their union is the
        // original function (checked by probability mass: disjoint terms sum).
        let mass: f64 = cover.iter().map(|term| term.probability(&t)).sum();
        assert!((mass - bdd.probability(union, &t)).abs() < 1e-12);
        for (i, a) in cover.iter().enumerate() {
            assert!(a.is_consistent());
            for b in cover.iter().skip(i + 1) {
                assert!(
                    a.literals().iter().any(|lit| b.contains(lit.negated())),
                    "cover terms must be pairwise disjoint"
                );
            }
        }
        // Every term implies the union.
        let mut check = Bdd::new();
        let union2 = check.any_of(conditions.iter());
        for term in &cover {
            let t_node = check.condition(term);
            assert_eq!(check.or(union2, t_node), union2);
        }
    }

    #[test]
    fn disjoint_cover_respects_the_term_cap() {
        let (_, w1, w2, w3) = table();
        let mut bdd = Bdd::new();
        // w1 ⊕-ish structure with 2+ paths to ⊤.
        let conditions = [
            Condition::from_literals([Literal::pos(w1), Literal::neg(w2)]),
            Condition::from_literals([Literal::neg(w1), Literal::pos(w3)]),
        ];
        let union = bdd.any_of(conditions.iter());
        assert!(bdd.disjoint_cover(union, 1).is_none());
        assert_eq!(bdd.disjoint_cover(BddRef::FALSE, 0), Some(Vec::new()));
        let single = bdd.disjoint_cover(BddRef::TRUE, 1).unwrap();
        assert_eq!(single, vec![Condition::always()]);
    }

    #[test]
    fn custom_order_shrinks_the_ladder_cover() {
        // Deletion-ladder fragments: first-success pieces of
        // v ∧ (¬c ∨ ¬w0 ∧ ¬w1 ∧ ¬w2). In id order (w's first) the path
        // cover reproduces the ladder; with the shared guards v and c on
        // top it collapses to the 2-term optimum.
        let mut t = EventTable::new();
        let w: Vec<EventId> = (0..3)
            .map(|i| t.add_event(format!("w{i}"), 0.7).unwrap())
            .collect();
        let v = t.add_event("v", 0.8).unwrap();
        let c = t.add_event("c", 0.9).unwrap();
        let mut fragments = vec![Condition::from_literals([
            Literal::pos(v),
            Literal::pos(w[0]),
            Literal::neg(c),
        ])];
        for k in 1..3 {
            let mut lits = vec![Literal::pos(v), Literal::pos(w[k]), Literal::neg(c)];
            lits.extend(w[..k].iter().map(|&e| Literal::neg(e)));
            fragments.push(Condition::from_literals(lits));
        }
        fragments.push(Condition::from_literals(
            [Literal::pos(v)]
                .into_iter()
                .chain(w.iter().map(|&e| Literal::neg(e))),
        ));
        let mut plain = Bdd::new();
        let plain_union = plain.any_of(fragments.iter());
        let mut ordered = Bdd::with_order([v, c]);
        let ordered_union = ordered.any_of(fragments.iter());
        let ordered_cover = ordered
            .disjoint_cover(ordered_union, fragments.len() - 1)
            .unwrap();
        assert_eq!(ordered_cover.len(), 2);
        // Same function, same probability, different diagram shape.
        assert!(
            (plain.probability(plain_union, &t) - ordered.probability(ordered_union, &t)).abs()
                < 1e-12
        );
        let mass: f64 = ordered_cover.iter().map(|term| term.probability(&t)).sum();
        assert!((mass - ordered.probability(ordered_union, &t)).abs() < 1e-12);
    }

    #[test]
    fn wide_disjunction_stays_small_and_fast() {
        // 32 distinct events: Shannon expansion would pay 2^32; the BDD of a
        // disjunction of single-literal conditions is a chain of 34 nodes.
        let mut t = EventTable::new();
        let events: Vec<EventId> = (0..32)
            .map(|i| t.add_event(format!("w{i}"), 0.5).unwrap())
            .collect();
        let conditions: Vec<Condition> = events
            .iter()
            .map(|&e| Condition::from_literal(Literal::pos(e)))
            .collect();
        let mut bdd = Bdd::new();
        let union = bdd.any_of(conditions.iter());
        assert_eq!(bdd.reachable_count(union), 34);
        let p = bdd.probability(union, &t);
        assert!((p - (1.0 - 0.5f64.powi(32))).abs() < 1e-12);
    }
}
