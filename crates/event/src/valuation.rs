//! Valuations of probabilistic events and their exhaustive enumeration.
//!
//! A valuation assigns a truth value to every event of an [`EventTable`].
//! Expanding a fuzzy tree into its possible worlds enumerates all `2^n`
//! valuations of its `n` events; the enumeration is capped (see
//! [`MAX_ENUMERATED_EVENTS`]) because the whole point of the fuzzy-tree model
//! is to avoid materialising that exponential set unless explicitly asked to.

use crate::error::EventError;
use crate::table::{EventId, EventTable};

/// Hard cap on exhaustive valuation enumeration (2^24 ≈ 16.7M worlds).
pub const MAX_ENUMERATED_EVENTS: usize = 24;

/// A complete assignment of truth values to the events of a table.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Valuation {
    values: Vec<bool>,
}

impl Valuation {
    /// The valuation assigning `false` to every event of `table`.
    pub fn all_false(table: &EventTable) -> Self {
        Valuation {
            values: vec![false; table.len()],
        }
    }

    /// The valuation assigning `true` to every event of `table`.
    pub fn all_true(table: &EventTable) -> Self {
        Valuation {
            values: vec![true; table.len()],
        }
    }

    /// Builds a valuation from the bits of `mask` over the listed events,
    /// starting from all-false: bit `i` of `mask` gives the value of
    /// `events[i]`.
    pub fn from_mask(table: &EventTable, events: &[EventId], mask: u64) -> Self {
        let mut v = Valuation::all_false(table);
        for (i, &event) in events.iter().enumerate() {
            v.set(event, mask & (1 << i) != 0);
        }
        v
    }

    /// The truth value of an event (events outside the original table default
    /// to `false`).
    pub fn get(&self, event: EventId) -> bool {
        self.values.get(event.index()).copied().unwrap_or(false)
    }

    /// Sets the truth value of an event, growing the assignment if needed.
    pub fn set(&mut self, event: EventId, value: bool) {
        if event.index() >= self.values.len() {
            self.values.resize(event.index() + 1, false);
        }
        self.values[event.index()] = value;
    }

    /// The number of events with an explicit value.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when the valuation covers no event.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The probability of this exact valuation: events are independent, so it
    /// is the product over all events of `P(e)` or `1 − P(e)`.
    pub fn probability(&self, table: &EventTable) -> f64 {
        table
            .ids()
            .map(|event| {
                let p = table.probability(event);
                if self.get(event) {
                    p
                } else {
                    1.0 - p
                }
            })
            .product()
    }

    /// The events assigned `true`.
    pub fn true_events(&self) -> Vec<EventId> {
        self.values
            .iter()
            .enumerate()
            .filter(|(_, &value)| value)
            .map(|(index, _)| EventId(index as u32))
            .collect()
    }
}

/// Enumerates all `2^n` valuations of the events of `table`.
///
/// Fails with [`EventError::TooManyEvents`] beyond [`MAX_ENUMERATED_EVENTS`]
/// events.
pub fn enumerate_valuations(table: &EventTable) -> Result<Vec<Valuation>, EventError> {
    let events: Vec<EventId> = table.ids().collect();
    enumerate_valuations_over(table, &events)
}

/// Enumerates all valuations that differ only on the listed `events`; every
/// other event of the table is fixed to `false`.
///
/// Used when only the events mentioned by some conditions matter: the caller
/// combines the result with per-event probabilities restricted to `events`.
pub fn enumerate_valuations_over(
    table: &EventTable,
    events: &[EventId],
) -> Result<Vec<Valuation>, EventError> {
    if events.len() > MAX_ENUMERATED_EVENTS {
        return Err(EventError::TooManyEvents {
            requested: events.len(),
            limit: MAX_ENUMERATED_EVENTS,
        });
    }
    let count: u64 = 1 << events.len();
    let mut out = Vec::with_capacity(count as usize);
    for mask in 0..count {
        out.push(Valuation::from_mask(table, events, mask));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> (EventTable, EventId, EventId) {
        let mut t = EventTable::new();
        let w1 = t.add_event("w1", 0.8).unwrap();
        let w2 = t.add_event("w2", 0.7).unwrap();
        (t, w1, w2)
    }

    #[test]
    fn all_false_and_all_true() {
        let (t, w1, w2) = table();
        let f = Valuation::all_false(&t);
        let tr = Valuation::all_true(&t);
        assert!(!f.get(w1) && !f.get(w2));
        assert!(tr.get(w1) && tr.get(w2));
        assert_eq!(f.len(), 2);
        assert!(!f.is_empty());
        assert!(Valuation::all_false(&EventTable::new()).is_empty());
    }

    #[test]
    fn set_and_get() {
        let (t, w1, w2) = table();
        let mut v = Valuation::all_false(&t);
        v.set(w1, true);
        assert!(v.get(w1));
        assert!(!v.get(w2));
        assert_eq!(v.true_events(), vec![w1]);
        // Getting an out-of-range event defaults to false; setting grows.
        let far = EventId(10);
        assert!(!v.get(far));
        v.set(far, true);
        assert!(v.get(far));
    }

    #[test]
    fn valuation_probability() {
        let (t, w1, w2) = table();
        let mut v = Valuation::all_false(&t);
        // P(¬w1 ∧ ¬w2) = 0.2 × 0.3
        assert!((v.probability(&t) - 0.06).abs() < 1e-12);
        v.set(w1, true);
        // P(w1 ∧ ¬w2) = 0.8 × 0.3
        assert!((v.probability(&t) - 0.24).abs() < 1e-12);
        v.set(w2, true);
        assert!((v.probability(&t) - 0.56).abs() < 1e-12);
    }

    #[test]
    fn enumeration_covers_all_valuations_and_sums_to_one() {
        let (t, _, _) = table();
        let all = enumerate_valuations(&t).unwrap();
        assert_eq!(all.len(), 4);
        let total: f64 = all.iter().map(|v| v.probability(&t)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        // All valuations are distinct.
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn enumeration_over_subset() {
        let (t, w1, _) = table();
        let partial = enumerate_valuations_over(&t, &[w1]).unwrap();
        assert_eq!(partial.len(), 2);
        assert!(partial.iter().all(|v| !v.get(EventId(1))));
    }

    #[test]
    fn from_mask_sets_bits_in_order() {
        let (t, w1, w2) = table();
        let v = Valuation::from_mask(&t, &[w1, w2], 0b10);
        assert!(!v.get(w1));
        assert!(v.get(w2));
    }

    #[test]
    fn enumeration_is_capped() {
        let mut t = EventTable::new();
        for i in 0..(MAX_ENUMERATED_EVENTS + 1) {
            t.add_event(format!("e{i}"), 0.5).unwrap();
        }
        assert!(matches!(
            enumerate_valuations(&t),
            Err(EventError::TooManyEvents { .. })
        ));
    }

    #[test]
    fn empty_table_has_single_valuation() {
        let t = EventTable::new();
        let all = enumerate_valuations(&t).unwrap();
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].probability(&t), 1.0);
    }
}
