//! # pxml-event
//!
//! Probabilistic events and event conditions — the probabilistic substrate of
//! the fuzzy-tree model of *Querying and Updating Probabilistic Information
//! in XML* (Abiteboul & Senellart, EDBT 2006).
//!
//! A fuzzy tree annotates every node with an **event condition**: a
//! conjunction of *probabilistic events* or negations of probabilistic
//! events (slide 12). Events are pairwise independent and each carries a
//! probability, recorded in an [`EventTable`].
//!
//! This crate provides:
//!
//! * [`EventTable`], [`EventId`] — the set of events and their probabilities;
//! * [`Literal`], [`Condition`] — conjunctions of (possibly negated) events,
//!   with consistency checking, implication, simplification and exact
//!   probability under independence;
//! * [`Valuation`] and exhaustive valuation enumeration — used to expand a
//!   fuzzy tree into its possible worlds;
//! * [`Formula`] — arbitrary and/or/not combinations of events with exact
//!   probability computation, used when several query matches must be
//!   combined (probability of a *disjunction* of match conditions) and by
//!   the simplifier;
//! * [`Bdd`], [`BddRef`] — the reduced ordered binary decision diagram
//!   engine behind exact probability: hash-consed nodes, memoized
//!   and/or/not/restrict, probability by one weighted model-counting walk
//!   (linear in BDD size instead of exponential in event count), and
//!   disjoint conjunctive covers read off the path structure.
//!
//! ```
//! use pxml_event::{Condition, EventTable, Literal};
//!
//! let mut events = EventTable::new();
//! let w1 = events.add_event("w1", 0.8).unwrap();
//! let w2 = events.add_event("w2", 0.7).unwrap();
//!
//! // The condition of node B on slide 12:  w1 ∧ ¬w2.
//! let cond = Condition::from_literals(vec![Literal::pos(w1), Literal::neg(w2)]);
//! assert!((cond.probability(&events) - 0.8 * 0.3).abs() < 1e-12);
//! ```

pub mod bdd;
pub mod condition;
pub mod error;
pub mod formula;
pub mod table;
pub mod valuation;

pub use bdd::{Bdd, BddRef};
pub use condition::{Condition, Literal};
pub use error::EventError;
pub use formula::Formula;
pub use table::{EventId, EventTable};
pub use valuation::{enumerate_valuations, enumerate_valuations_over, Valuation};
