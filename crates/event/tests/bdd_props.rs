//! Property-based validation of the BDD probability engine against two
//! independent oracles: for any random formula over at most 12 events,
//!
//! * `Formula::probability` (BDD model counting),
//! * `Formula::probability_shannon` (the original Shannon expansion), and
//! * brute-force valuation enumeration (sum the probabilities of the
//!   satisfying valuations)
//!
//! must agree to within 1e-9; tautology/contradiction decisions must agree
//! with enumeration as well, and the BDD's disjoint covers must carry
//! exactly the function's probability mass.

use proptest::prelude::*;
use pxml_event::{enumerate_valuations, Bdd, Condition, EventId, EventTable, Formula, Literal};

const EVENTS: usize = 12;

/// A table of 12 events with fixed, varied, non-deterministic probabilities
/// (the agreement property holds for any probabilities; randomizing them
/// would only blur failure reports).
fn table() -> (EventTable, Vec<EventId>) {
    let mut table = EventTable::new();
    let events = (0..EVENTS)
        .map(|i| {
            let p = (i * 7 % 11 + 1) as f64 / 12.0;
            table.add_event(format!("w{i}"), p).unwrap()
        })
        .collect();
    (table, events)
}

/// Blueprint of a random formula, independent of any event table: leaves
/// name events by index, inner nodes are NOT (first child) / AND / OR.
#[derive(Clone, Debug)]
enum Shape {
    Lit(u8, bool),
    Not(Box<Shape>),
    And(Vec<Shape>),
    Or(Vec<Shape>),
}

impl Shape {
    fn to_formula(&self, events: &[EventId]) -> Formula {
        match self {
            Shape::Lit(index, positive) => {
                let event = events[*index as usize % events.len()];
                Formula::Lit(if *positive {
                    Literal::pos(event)
                } else {
                    Literal::neg(event)
                })
            }
            Shape::Not(inner) => Formula::negate(inner.to_formula(events)),
            Shape::And(parts) => Formula::and(parts.iter().map(|p| p.to_formula(events)).collect()),
            Shape::Or(parts) => Formula::or(parts.iter().map(|p| p.to_formula(events)).collect()),
        }
    }
}

fn shape_strategy() -> BoxedStrategy<Shape> {
    let leaf = (0u8..EVENTS as u8, any::<bool>()).prop_map(|(event, sign)| Shape::Lit(event, sign));
    leaf.boxed().prop_recursive(4, 48, 4, |inner| {
        (0u8..3, proptest::collection::vec(inner, 1..5)).prop_map(|(op, mut children)| match op {
            0 => Shape::Not(Box::new(children.pop().expect("at least one child"))),
            1 => Shape::And(children),
            _ => Shape::Or(children),
        })
    })
}

fn by_enumeration(formula: &Formula, table: &EventTable) -> f64 {
    enumerate_valuations(table)
        .unwrap()
        .into_iter()
        .filter(|v| formula.eval(v))
        .map(|v| v.probability(table))
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn bdd_shannon_and_enumeration_agree(shape in shape_strategy()) {
        let (table, events) = table();
        let formula = shape.to_formula(&events);
        let by_bdd = formula.probability(&table);
        let by_shannon = formula.probability_shannon(&table);
        let by_valuations = by_enumeration(&formula, &table);
        prop_assert!(
            (by_bdd - by_valuations).abs() < 1e-9,
            "BDD {by_bdd} vs enumeration {by_valuations} on {formula:?}"
        );
        prop_assert!(
            (by_shannon - by_valuations).abs() < 1e-9,
            "Shannon {by_shannon} vs enumeration {by_valuations} on {formula:?}"
        );
    }

    #[test]
    fn tautology_and_contradiction_agree_with_enumeration(shape in shape_strategy()) {
        let (table, events) = table();
        let formula = shape.to_formula(&events);
        let satisfying = enumerate_valuations(&table)
            .unwrap()
            .iter()
            .filter(|v| formula.eval(v))
            .count();
        let total = 1usize << EVENTS;
        prop_assert_eq!(formula.is_tautology(), satisfying == total);
        prop_assert_eq!(formula.is_contradiction(), satisfying == 0);
        // A formula is always equivalent to itself and to its double
        // negation, and canonical equality survives a round trip.
        let doubled = Formula::negate(Formula::negate(formula.clone()));
        prop_assert!(formula.equivalent(&doubled));
    }

    #[test]
    fn disjoint_cover_carries_the_exact_mass(shape in shape_strategy()) {
        let (table, events) = table();
        let formula = shape.to_formula(&events);
        let mut bdd = Bdd::new();
        let node = bdd.formula(&formula);
        // Generous cap: 2^12 terms always suffice for 12 events.
        let Some(cover) = bdd.disjoint_cover(node, 1 << EVENTS) else {
            return Ok(());
        };
        let mass: f64 = cover.iter().map(|term| term.probability(&table)).sum();
        prop_assert!(
            (mass - formula.probability(&table)).abs() < 1e-9,
            "cover mass {mass} vs probability on {formula:?}"
        );
        for (i, a) in cover.iter().enumerate() {
            prop_assert!(a.is_consistent());
            for b in cover.iter().skip(i + 1) {
                prop_assert!(
                    a.literals().iter().any(|lit| b.contains(lit.negated())),
                    "terms {a} and {b} are not disjoint"
                );
            }
        }
    }
}

/// Deterministic cross-check on conjunctive-condition disjunctions (the
/// exact shape the query path builds): incremental [`Bdd::any_of`] equals
/// the formula route and the Shannon oracle.
#[test]
fn any_of_conditions_matches_both_probability_paths() {
    let (table, events) = table();
    let conditions: Vec<Condition> = (0..8)
        .map(|i| {
            Condition::from_literals((0..3).map(|j| {
                let event = events[(i * 3 + j * 5) % events.len()];
                if (i + j) % 3 == 0 {
                    Literal::neg(event)
                } else {
                    Literal::pos(event)
                }
            }))
        })
        .collect();
    let mut bdd = Bdd::new();
    let union = bdd.any_of(conditions.iter());
    let by_bdd = bdd.probability(union, &table);
    let formula = Formula::any_of_conditions(&conditions);
    assert!((by_bdd - formula.probability(&table)).abs() < 1e-12);
    assert!((by_bdd - formula.probability_shannon(&table)).abs() < 1e-12);
    assert!((by_bdd - by_enumeration(&formula, &table)).abs() < 1e-12);
}
