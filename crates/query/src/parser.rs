//! Textual syntax for TPWJ queries.
//!
//! The grammar (whitespace-insensitive):
//!
//! ```text
//! query    := '/'? node                 -- leading '/' anchors the pattern
//!                                       -- root to the document root
//! node     := label pred* body?
//! label    := NAME | '*'
//! pred     := '[' '=' STRING ']'        -- value test
//!           | '[' '$' NAME ']'          -- join variable
//! body     := '{' child (',' child)* '}'
//! child    := ('//' | '/')? node        -- '//' = descendant edge,
//!                                       -- '/' or nothing = child edge
//! STRING   := '"' (escaped chars) '"'
//! ```
//!
//! Examples:
//!
//! * `book { author, title }` — a `book` with an `author` child and a `title`
//!   child, anywhere in the document;
//! * `/A { B, C[$x], //D[$x] }` — the slide-6 query: anchored at the root
//!   `A`, a `B` child, a `C` child and a `D` descendant joined by value.

use crate::error::QueryError;
use crate::pattern::{Axis, JoinId, PNodeId, Pattern};

/// Parses a textual TPWJ query.
pub fn parse(input: &str) -> Result<Pattern, QueryError> {
    let mut parser = Parser {
        input: input.as_bytes(),
        pos: 0,
        joins: Vec::new(),
    };
    parser.skip_ws();
    let anchored = parser.eat(b'/') && !parser.eat_str("/");
    // ("//" at the very start is treated like an unanchored pattern.)
    parser.skip_ws();
    let mut pattern = parser.parse_root()?;
    pattern.set_anchored(anchored);
    parser.skip_ws();
    if parser.pos != parser.input.len() {
        return Err(QueryError::parse(
            "unexpected trailing characters",
            parser.pos,
        ));
    }
    pattern.validate()?;
    Ok(pattern)
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
    /// Join variables seen so far: `(name, id)`.
    joins: Vec<(String, JoinId)>,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn eat(&mut self, byte: u8) -> bool {
        if self.peek() == Some(byte) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_str(&mut self, s: &str) -> bool {
        if self.input[self.pos..].starts_with(s.as_bytes()) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn parse_root(&mut self) -> Result<Pattern, QueryError> {
        let label = self.parse_label()?;
        let mut pattern = Pattern::new(label.as_deref());
        let root = pattern.root();
        self.parse_predicates(&mut pattern, root)?;
        self.skip_ws();
        if self.peek() == Some(b'{') {
            self.parse_body(&mut pattern, root)?;
        }
        Ok(pattern)
    }

    fn parse_node(
        &mut self,
        pattern: &mut Pattern,
        parent: PNodeId,
        axis: Axis,
    ) -> Result<(), QueryError> {
        let label = self.parse_label()?;
        let node = pattern.add_child(parent, axis, label.as_deref());
        self.parse_predicates(pattern, node)?;
        self.skip_ws();
        if self.peek() == Some(b'{') {
            self.parse_body(pattern, node)?;
        }
        Ok(())
    }

    fn parse_body(&mut self, pattern: &mut Pattern, parent: PNodeId) -> Result<(), QueryError> {
        self.expect(b'{')?;
        loop {
            self.skip_ws();
            let axis = if self.eat_str("//") {
                Axis::Descendant
            } else {
                // An optional single '/' also denotes a child edge.
                self.eat(b'/');
                Axis::Child
            };
            self.skip_ws();
            self.parse_node(pattern, parent, axis)?;
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            self.expect(b'}')?;
            return Ok(());
        }
    }

    fn parse_label(&mut self) -> Result<Option<String>, QueryError> {
        self.skip_ws();
        if self.eat(b'*') {
            return Ok(None);
        }
        let name = self.parse_name()?;
        Ok(Some(name))
    }

    fn parse_name(&mut self) -> Result<String, QueryError> {
        let start = self.pos;
        while let Some(byte) = self.peek() {
            let ok = byte.is_ascii_alphanumeric()
                || byte == b'_'
                || byte == b'-'
                || byte == b'.'
                || byte == b':'
                || byte >= 0x80;
            if !ok {
                break;
            }
            self.pos += 1;
        }
        if self.pos == start {
            return Err(QueryError::parse("expected a name", self.pos));
        }
        String::from_utf8(self.input[start..self.pos].to_vec())
            .map_err(|_| QueryError::parse("name is not valid UTF-8", start))
    }

    fn parse_predicates(&mut self, pattern: &mut Pattern, node: PNodeId) -> Result<(), QueryError> {
        loop {
            self.skip_ws();
            if !self.eat(b'[') {
                return Ok(());
            }
            self.skip_ws();
            match self.peek() {
                Some(b'=') => {
                    self.pos += 1;
                    self.skip_ws();
                    let value = self.parse_string()?;
                    pattern.set_value(node, value);
                }
                Some(b'$') => {
                    self.pos += 1;
                    let name = self.parse_name()?;
                    let join = self.join_for(pattern, &name);
                    pattern.join(node, join);
                }
                _ => {
                    return Err(QueryError::parse(
                        "expected `=` (value test) or `$` (join variable) inside `[...]`",
                        self.pos,
                    ))
                }
            }
            self.skip_ws();
            self.expect(b']')?;
        }
    }

    fn join_for(&mut self, pattern: &mut Pattern, name: &str) -> JoinId {
        if let Some((_, id)) = self.joins.iter().find(|(existing, _)| existing == name) {
            return *id;
        }
        let id = pattern.new_join(name);
        self.joins.push((name.to_string(), id));
        id
    }

    fn parse_string(&mut self) -> Result<String, QueryError> {
        if !self.eat(b'"') {
            return Err(QueryError::parse(
                "expected a double-quoted string",
                self.pos,
            ));
        }
        let mut out = Vec::new();
        loop {
            match self.peek() {
                None => return Err(QueryError::parse("unterminated string", self.pos)),
                Some(b'"') => {
                    self.pos += 1;
                    return String::from_utf8(out)
                        .map_err(|_| QueryError::parse("string is not valid UTF-8", self.pos));
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(escaped @ (b'"' | b'\\')) => {
                            out.push(escaped);
                            self.pos += 1;
                        }
                        Some(b'n') => {
                            out.push(b'\n');
                            self.pos += 1;
                        }
                        _ => {
                            return Err(QueryError::parse("invalid escape sequence", self.pos));
                        }
                    }
                }
                Some(byte) => {
                    out.push(byte);
                    self.pos += 1;
                }
            }
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), QueryError> {
        if self.eat(byte) {
            Ok(())
        } else {
            Err(QueryError::parse(
                format!("expected `{}`", byte as char),
                self.pos,
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::MatchStrategy;
    use pxml_tree::parse_data_tree;

    #[test]
    fn single_label() {
        let p = parse("book").unwrap();
        assert_eq!(p.len(), 1);
        assert_eq!(p.node(p.root()).label.as_deref(), Some("book"));
        assert!(!p.is_anchored());
    }

    #[test]
    fn wildcard_and_anchor() {
        let p = parse("/*").unwrap();
        assert!(p.is_anchored());
        assert_eq!(p.node(p.root()).label, None);
    }

    #[test]
    fn children_and_descendants() {
        let p = parse("A { B, //C, /D }").unwrap();
        assert_eq!(p.len(), 4);
        let root = p.root();
        let children = &p.node(root).children;
        assert_eq!(children.len(), 3);
        assert_eq!(p.node(children[0]).parent.unwrap().1, Axis::Child);
        assert_eq!(p.node(children[1]).parent.unwrap().1, Axis::Descendant);
        assert_eq!(p.node(children[2]).parent.unwrap().1, Axis::Child);
    }

    #[test]
    fn nested_bodies() {
        let p = parse("a { b { c { d } }, e }").unwrap();
        assert_eq!(p.len(), 5);
    }

    #[test]
    fn value_predicate() {
        let p = parse(r#"person { name[="Alan \"T\"..."] }"#).unwrap();
        let name = p.node(p.root()).children[0];
        assert_eq!(p.node(name).value.as_deref(), Some("Alan \"T\"..."));
    }

    #[test]
    fn join_predicate_shares_variables() {
        let p = parse("A { B[$x], C { D[$x] }, E[$y], F[$y] }").unwrap();
        assert_eq!(p.join_count(), 2);
        let groups = p.join_groups();
        assert_eq!(groups[0].len(), 2);
        assert_eq!(groups[1].len(), 2);
    }

    #[test]
    fn slide6_query_parses_and_matches() {
        let p = parse("/A { B, C[$x], //D[$x] }").unwrap();
        assert!(p.is_anchored());
        assert_eq!(p.len(), 4);
        let tree = parse_data_tree("<A><B>b</B><C>v</C><E><D>v</D></E></A>").unwrap();
        assert_eq!(p.find_matches_with(&tree, MatchStrategy::Naive).len(), 1);
    }

    #[test]
    fn round_trip_display_parse() {
        for text in [
            "book { author, title }",
            "/A { B, C[$x], //D[$x] }",
            "* { //leaf[=\"v\"] }",
        ] {
            let p = parse(text).unwrap();
            let reparsed = parse(&p.to_string()).unwrap();
            assert_eq!(p.to_string(), reparsed.to_string());
        }
    }

    #[test]
    fn error_on_dangling_join() {
        let err = parse("A { B[$x] }").unwrap_err();
        assert!(matches!(err, QueryError::DanglingJoinVariable(_)));
    }

    #[test]
    fn error_on_trailing_garbage() {
        let err = parse("A } extra").unwrap_err();
        assert!(matches!(err, QueryError::ParseError { .. }));
    }

    #[test]
    fn error_on_missing_name() {
        assert!(parse("").is_err());
        assert!(parse("{ B }").is_err());
        assert!(parse("A { }").is_err());
    }

    #[test]
    fn error_on_bad_predicate() {
        assert!(parse("A[>3]").is_err());
        assert!(parse("A[=unquoted]").is_err());
        assert!(parse("A[=\"open").is_err());
        assert!(parse("A[=\"bad\\escape\"]").is_err());
    }

    #[test]
    fn error_on_unclosed_body() {
        assert!(parse("A { B").is_err());
        assert!(parse("A { B,, C }").is_err());
    }

    #[test]
    fn whitespace_is_flexible() {
        let p = parse("  A{B ,//C[ $x ] ,D[ =\"1\" ]{E[$x]}}  ").unwrap();
        assert_eq!(p.len(), 5);
        assert_eq!(p.join_count(), 1);
    }
}
