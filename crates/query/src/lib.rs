//! # pxml-query
//!
//! Tree-Pattern-With-Join (TPWJ) queries — the query language of *Querying
//! and Updating Probabilistic Information in XML* (Abiteboul & Senellart,
//! EDBT 2006), described on slide 6 as "a standard subset of XQuery".
//!
//! A query is a tree pattern whose nodes carry a label test (or wildcard),
//! optionally a value test, and optionally a *join variable*; edges are
//! either child (`/`) or descendant (`//`) edges. A **match** is a
//! homomorphism from pattern nodes to data-tree nodes respecting labels,
//! edges, value tests and value joins. The **answer** associated with a match
//! is the *minimal subtree* of the data tree containing all mapped nodes.
//!
//! ```
//! use pxml_query::Pattern;
//! use pxml_tree::parse_data_tree;
//!
//! let tree = parse_data_tree(
//!     "<library><book><author>Knuth</author><title>TAOCP</title></book>\
//!      <book><author>Turing</author></book></library>").unwrap();
//!
//! // All books that have both an author and a title.
//! let query = Pattern::parse("book { author, title }").unwrap();
//! let matches = query.find_matches(&tree);
//! assert_eq!(matches.len(), 1);
//!
//! let answer = &query.evaluate(&tree).matches[0];
//! assert_eq!(answer.answer.find_elements("author").len(), 1);
//! ```
//!
//! The module split mirrors the processing pipeline:
//! [`pattern`] (the query data structure and builder), [`parser`] (the text
//! syntax), [`matcher`] (naive and index-based evaluation, used as the
//! baseline/optimised pair of experiment E9), and [`answer`] (minimal-subtree
//! answer construction).

pub mod answer;
pub mod error;
pub mod matcher;
pub mod parser;
pub mod pattern;

pub use answer::{MatchAnswer, QueryAnswers};
pub use error::QueryError;
pub use matcher::{LabelIndex, MatchStrategy, Matching};
pub use pattern::{Axis, JoinId, PNodeId, Pattern, PatternNode};
