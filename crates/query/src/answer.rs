//! Query answers: the minimal subtree containing the mapped nodes.
//!
//! Slide 6: *"Result: minimal subtree containing all the nodes mapped by the
//! query."* For every match we build that subtree (a Steiner tree of the
//! mapped nodes) as an independent [`Tree`], keeping the mapping from data
//! nodes to answer nodes so that probabilistic evaluation can attach node
//! conditions to the answer.

use std::collections::HashMap;

use pxml_tree::path::steiner_tree;
use pxml_tree::{CanonicalForm, NodeId, Tree};

use crate::matcher::{find_matches, MatchStrategy, Matching};
use crate::pattern::Pattern;

/// The answer derived from a single match.
#[derive(Debug, Clone)]
pub struct MatchAnswer {
    /// The match itself (images of every pattern node).
    pub matching: Matching,
    /// The minimal subtree of the data tree containing all mapped nodes.
    pub answer: Tree,
    /// Mapping from data-tree nodes (those kept in the answer) to the
    /// corresponding nodes of `answer`.
    pub node_map: HashMap<NodeId, NodeId>,
}

/// The result of evaluating a query over a data tree.
#[derive(Debug, Clone, Default)]
pub struct QueryAnswers {
    /// One entry per match, in matcher order.
    pub matches: Vec<MatchAnswer>,
}

impl QueryAnswers {
    /// The number of matches.
    pub fn len(&self) -> usize {
        self.matches.len()
    }

    /// `true` when the query did not match.
    pub fn is_empty(&self) -> bool {
        self.matches.is_empty()
    }

    /// Groups matches whose answers are unordered-isomorphic; returns one
    /// representative tree per group together with the indices of the matches
    /// producing it.
    pub fn distinct_answers(&self) -> Vec<(Tree, Vec<usize>)> {
        let mut groups: Vec<(CanonicalForm, Tree, Vec<usize>)> = Vec::new();
        for (index, answer) in self.matches.iter().enumerate() {
            let form = CanonicalForm::of_tree(&answer.answer);
            if let Some(group) = groups.iter_mut().find(|(existing, _, _)| *existing == form) {
                group.2.push(index);
            } else {
                groups.push((form, answer.answer.clone(), vec![index]));
            }
        }
        groups
            .into_iter()
            .map(|(_, tree, indices)| (tree, indices))
            .collect()
    }
}

/// Evaluates a pattern over a tree: all matches plus their minimal-subtree
/// answers.
pub fn evaluate(pattern: &Pattern, tree: &Tree, strategy: MatchStrategy) -> QueryAnswers {
    let matches = find_matches(pattern, tree, strategy);
    let matches = matches
        .into_iter()
        .map(|matching| answer_for(tree, matching))
        .collect();
    QueryAnswers { matches }
}

/// Builds the minimal-subtree answer for one match.
pub fn answer_for(tree: &Tree, matching: Matching) -> MatchAnswer {
    let mapped = matching.mapped_nodes();
    let (answer, node_map) = steiner_tree(tree, &mapped).expect("a match maps at least one node");
    MatchAnswer {
        matching,
        answer,
        node_map,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::{Axis, Pattern};
    use pxml_tree::parse_data_tree;

    fn library() -> Tree {
        parse_data_tree(
            "<library>\
               <book><author>Knuth</author><title>TAOCP</title></book>\
               <book><author>Turing</author><title>On Computable Numbers</title></book>\
               <journal><title>CACM</title></journal>\
             </library>",
        )
        .unwrap()
    }

    #[test]
    fn answer_is_minimal_subtree() {
        let tree = library();
        let mut pattern = Pattern::element("book");
        pattern.add_child(pattern.root(), Axis::Child, Some("author"));
        pattern.add_child(pattern.root(), Axis::Child, Some("title"));
        let answers = evaluate(&pattern, &tree, MatchStrategy::Indexed);
        assert_eq!(answers.len(), 2);
        for answer in &answers.matches {
            // book + author + title, but not the text values (they are not
            // mapped by the pattern and lie below the mapped nodes).
            assert_eq!(answer.answer.node_count(), 3);
            assert_eq!(
                answer.answer.label(answer.answer.root()).element_name(),
                Some("book")
            );
        }
        assert!(!answers.is_empty());
    }

    #[test]
    fn node_map_relates_data_and_answer_nodes() {
        let tree = library();
        let mut pattern = Pattern::element("book");
        let author = pattern.add_child(pattern.root(), Axis::Child, Some("author"));
        let answers = evaluate(&pattern, &tree, MatchStrategy::Indexed);
        for answer in &answers.matches {
            let data_author = answer.matching.image(author);
            let answer_author = answer.node_map[&data_author];
            assert_eq!(
                answer.answer.label(answer_author).element_name(),
                Some("author")
            );
        }
    }

    #[test]
    fn answers_spanning_branches_go_through_the_lca() {
        let tree = library();
        // author and a title anywhere below library: LCA is the library root
        // when they come from different books.
        let mut pattern = Pattern::element("library");
        pattern.add_child(pattern.root(), Axis::Descendant, Some("author"));
        pattern.add_child(pattern.root(), Axis::Descendant, Some("title"));
        let answers = evaluate(&pattern, &tree, MatchStrategy::Indexed);
        // 2 authors × 3 titles.
        assert_eq!(answers.len(), 6);
        for answer in &answers.matches {
            assert_eq!(
                answer.answer.label(answer.answer.root()).element_name(),
                Some("library")
            );
        }
    }

    #[test]
    fn distinct_answers_merge_isomorphic_results() {
        let tree =
            parse_data_tree("<r><p><q>same</q></p><p><q>same</q></p><p><q>different</q></p></r>")
                .unwrap();
        let mut pattern = Pattern::element("p");
        pattern.add_child(pattern.root(), Axis::Child, Some("q"));
        let answers = evaluate(&pattern, &tree, MatchStrategy::Indexed);
        assert_eq!(answers.len(), 3);
        // All three answers are p(q) — identical once text is excluded — so
        // they merge into a single distinct answer.
        let distinct = answers.distinct_answers();
        assert_eq!(distinct.len(), 1);
        assert_eq!(distinct[0].1.len(), 3);
    }

    #[test]
    fn distinct_answers_keep_structurally_different_results_apart() {
        let tree = library();
        let pattern = Pattern::parse("* { title }").unwrap();
        let answers = evaluate(&pattern, &tree, MatchStrategy::Indexed);
        // book{title} twice and journal{title} once → two distinct shapes.
        let distinct = answers.distinct_answers();
        assert_eq!(distinct.len(), 2);
        let sizes: Vec<usize> = distinct.iter().map(|(_, group)| group.len()).collect();
        assert!(sizes.contains(&2) && sizes.contains(&1));
    }

    #[test]
    fn empty_result_set() {
        let tree = library();
        let pattern = Pattern::element("nonexistent");
        let answers = evaluate(&pattern, &tree, MatchStrategy::Indexed);
        assert!(answers.is_empty());
        assert!(answers.distinct_answers().is_empty());
    }
}
