//! The TPWJ pattern data structure.

use std::collections::HashMap;
use std::fmt;

use pxml_tree::Tree;

use crate::answer::QueryAnswers;
use crate::error::QueryError;
use crate::matcher::{MatchStrategy, Matching};

/// A handle to a node of a [`Pattern`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PNodeId(pub(crate) u32);

impl PNodeId {
    /// The raw index of this pattern node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PNodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// A join-variable identifier; pattern nodes sharing a join id must map to
/// data nodes with equal values ("join by value", slide 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JoinId(pub(crate) u32);

/// The axis of the edge connecting a pattern node to its parent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Axis {
    /// Parent/child edge (`/`).
    Child,
    /// Ancestor/descendant edge (`//`), any positive number of steps.
    Descendant,
}

/// A single node of a tree pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternNode {
    /// Required element name; `None` is the wildcard `*`.
    pub label: Option<String>,
    /// Required node value (compared against [`pxml_tree::Tree::node_value`]).
    pub value: Option<String>,
    /// The join variable this node participates in, if any.
    pub join: Option<JoinId>,
    /// Edge to the parent pattern node (`None` for the pattern root).
    pub parent: Option<(PNodeId, Axis)>,
    /// Children of this pattern node.
    pub children: Vec<PNodeId>,
}

impl PatternNode {
    /// Whether the node's label test accepts the element name `name`.
    pub fn matches_label(&self, name: &str) -> bool {
        match &self.label {
            None => true,
            Some(required) => required == name,
        }
    }
}

/// A Tree-Pattern-With-Join query.
///
/// Built either programmatically (see [`Pattern::new`], [`Pattern::add_child`],
/// [`Pattern::set_value`], [`Pattern::join`]) or from text via
/// [`Pattern::parse`] — see the crate documentation for the grammar.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pattern {
    nodes: Vec<PatternNode>,
    root: PNodeId,
    joins: u32,
    anchored: bool,
    join_names: HashMap<u32, String>,
}

impl Pattern {
    /// Creates a pattern with a single root node testing for `label`
    /// (`None` = wildcard). By default the pattern root may map to *any*
    /// node of the data tree; see [`Pattern::set_anchored`].
    pub fn new(label: Option<&str>) -> Self {
        Pattern {
            nodes: vec![PatternNode {
                label: label.map(|s| s.to_string()),
                value: None,
                join: None,
                parent: None,
                children: Vec::new(),
            }],
            root: PNodeId(0),
            joins: 0,
            anchored: false,
            join_names: HashMap::new(),
        }
    }

    /// Convenience constructor for a single-label pattern.
    pub fn element(label: &str) -> Self {
        Pattern::new(Some(label))
    }

    /// Parses the textual query syntax (see [`crate::parser`]).
    pub fn parse(input: &str) -> Result<Self, QueryError> {
        crate::parser::parse(input)
    }

    /// The pattern root.
    pub fn root(&self) -> PNodeId {
        self.root
    }

    /// The number of pattern nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if the pattern consists of the root only.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Whether the pattern root must map to the data-tree root.
    pub fn is_anchored(&self) -> bool {
        self.anchored
    }

    /// Requires (or releases) the pattern root to map to the data-tree root.
    pub fn set_anchored(&mut self, anchored: bool) {
        self.anchored = anchored;
    }

    /// Access to a pattern node.
    ///
    /// # Panics
    /// Panics if the id does not belong to this pattern.
    pub fn node(&self, id: PNodeId) -> &PatternNode {
        &self.nodes[id.index()]
    }

    /// All pattern node ids, root first, in creation order (parents always
    /// precede their children).
    pub fn node_ids(&self) -> impl Iterator<Item = PNodeId> {
        (0..self.nodes.len() as u32).map(PNodeId)
    }

    /// Adds a child pattern node below `parent` along `axis`.
    pub fn add_child(&mut self, parent: PNodeId, axis: Axis, label: Option<&str>) -> PNodeId {
        assert!(
            parent.index() < self.nodes.len(),
            "invalid parent pattern node {parent}"
        );
        let id = PNodeId(self.nodes.len() as u32);
        self.nodes.push(PatternNode {
            label: label.map(|s| s.to_string()),
            value: None,
            join: None,
            parent: Some((parent, axis)),
            children: Vec::new(),
        });
        self.nodes[parent.index()].children.push(id);
        id
    }

    /// Requires the node mapped by `id` to have the given value.
    pub fn set_value(&mut self, id: PNodeId, value: impl Into<String>) {
        self.nodes[id.index()].value = Some(value.into());
    }

    /// Creates a fresh join variable.
    pub fn new_join(&mut self, name: impl Into<String>) -> JoinId {
        let id = JoinId(self.joins);
        self.join_names.insert(self.joins, name.into());
        self.joins += 1;
        id
    }

    /// Adds a pattern node to a join group.
    pub fn join(&mut self, id: PNodeId, join: JoinId) {
        self.nodes[id.index()].join = Some(join);
    }

    /// The display name of a join variable.
    pub fn join_name(&self, join: JoinId) -> &str {
        self.join_names
            .get(&join.0)
            .map(|s| s.as_str())
            .unwrap_or("j")
    }

    /// The number of join variables.
    pub fn join_count(&self) -> usize {
        self.joins as usize
    }

    /// The members of each join group, indexed by join id.
    pub fn join_groups(&self) -> Vec<Vec<PNodeId>> {
        let mut groups = vec![Vec::new(); self.joins as usize];
        for id in self.node_ids() {
            if let Some(join) = self.node(id).join {
                groups[join.0 as usize].push(id);
            }
        }
        groups
    }

    /// Checks structural sanity: every join variable constrains at least two
    /// nodes, and parent/child links are consistent.
    pub fn validate(&self) -> Result<(), QueryError> {
        for (index, node) in self.nodes.iter().enumerate() {
            let id = PNodeId(index as u32);
            if let Some((parent, _)) = node.parent {
                if parent.index() >= self.nodes.len() {
                    return Err(QueryError::InvalidPatternNode(parent.0));
                }
                if !self.nodes[parent.index()].children.contains(&id) {
                    return Err(QueryError::InvalidPatternNode(id.0));
                }
            }
            for &child in &node.children {
                if child.index() >= self.nodes.len() {
                    return Err(QueryError::InvalidPatternNode(child.0));
                }
            }
        }
        for (join_index, group) in self.join_groups().iter().enumerate() {
            if group.len() == 1 {
                let name = self
                    .join_names
                    .get(&(join_index as u32))
                    .cloned()
                    .unwrap_or_else(|| join_index.to_string());
                return Err(QueryError::DanglingJoinVariable(name));
            }
        }
        Ok(())
    }

    /// Finds every match of this pattern in `tree` using the optimised
    /// (index-based) strategy.
    pub fn find_matches(&self, tree: &Tree) -> Vec<Matching> {
        crate::matcher::find_matches(self, tree, MatchStrategy::Indexed)
    }

    /// Finds every match using an explicitly chosen strategy (the naive
    /// strategy is the baseline of experiment E9).
    pub fn find_matches_with(&self, tree: &Tree, strategy: MatchStrategy) -> Vec<Matching> {
        crate::matcher::find_matches(self, tree, strategy)
    }

    /// Evaluates the query: every match together with its minimal-subtree
    /// answer.
    pub fn evaluate(&self, tree: &Tree) -> QueryAnswers {
        crate::answer::evaluate(self, tree, MatchStrategy::Indexed)
    }

    /// Renders the pattern in the textual syntax accepted by
    /// [`Pattern::parse`].
    fn render(&self, id: PNodeId, out: &mut String) {
        let node = self.node(id);
        match &node.label {
            Some(label) => out.push_str(label),
            None => out.push('*'),
        }
        if let Some(value) = &node.value {
            out.push_str("[=\"");
            out.push_str(&value.replace('\\', "\\\\").replace('"', "\\\""));
            out.push_str("\"]");
        }
        if let Some(join) = node.join {
            out.push_str("[$");
            out.push_str(self.join_name(join));
            out.push(']');
        }
        if !node.children.is_empty() {
            out.push_str(" { ");
            for (i, &child) in node.children.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                if let Some((_, Axis::Descendant)) = self.node(child).parent {
                    out.push_str("//");
                }
                self.render(child, out);
            }
            out.push_str(" }");
        }
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        if self.anchored {
            out.push('/');
        }
        self.render(self.root, &mut out);
        f.write_str(&out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pxml_tree::parse_data_tree;

    /// The slide-6 query: A with children B and C, C joined by value with a
    /// descendant D.
    fn slide6_pattern() -> Pattern {
        let mut p = Pattern::element("A");
        let root = p.root();
        let _b = p.add_child(root, Axis::Child, Some("B"));
        let c = p.add_child(root, Axis::Child, Some("C"));
        let d = p.add_child(root, Axis::Descendant, Some("D"));
        let j = p.new_join("x");
        p.join(c, j);
        p.join(d, j);
        p
    }

    #[test]
    fn builder_constructs_expected_shape() {
        let p = slide6_pattern();
        assert_eq!(p.len(), 4);
        assert!(!p.is_empty());
        assert_eq!(p.node(p.root()).children.len(), 3);
        assert_eq!(p.join_count(), 1);
        assert_eq!(p.join_groups()[0].len(), 2);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn wildcard_and_label_tests() {
        let node = PatternNode {
            label: None,
            value: None,
            join: None,
            parent: None,
            children: vec![],
        };
        assert!(node.matches_label("anything"));
        let named = PatternNode {
            label: Some("B".into()),
            ..node
        };
        assert!(named.matches_label("B"));
        assert!(!named.matches_label("C"));
    }

    #[test]
    fn dangling_join_is_invalid() {
        let mut p = Pattern::element("A");
        let b = p.add_child(p.root(), Axis::Child, Some("B"));
        let j = p.new_join("x");
        p.join(b, j);
        assert_eq!(
            p.validate().unwrap_err(),
            QueryError::DanglingJoinVariable("x".into())
        );
    }

    #[test]
    fn display_round_trips_through_parser() {
        let p = slide6_pattern();
        let text = p.to_string();
        let reparsed = Pattern::parse(&text).unwrap();
        assert_eq!(reparsed.len(), p.len());
        assert_eq!(reparsed.join_count(), p.join_count());
        assert_eq!(reparsed.to_string(), text);
    }

    #[test]
    fn anchoring_flag() {
        let mut p = Pattern::element("A");
        assert!(!p.is_anchored());
        p.set_anchored(true);
        assert!(p.is_anchored());
        assert!(p.to_string().starts_with('/'));
    }

    #[test]
    fn evaluate_convenience_matches_matcher() {
        let tree = parse_data_tree("<A><B>k</B><C>v</C><E><D>v</D></E></A>").unwrap();
        let p = slide6_pattern();
        let matches = p.find_matches(&tree);
        assert_eq!(matches.len(), 1);
        let answers = p.evaluate(&tree);
        assert_eq!(answers.matches.len(), 1);
    }

    #[test]
    fn value_constraint_is_stored() {
        let mut p = Pattern::element("A");
        let b = p.add_child(p.root(), Axis::Child, Some("B"));
        p.set_value(b, "42");
        assert_eq!(p.node(b).value.as_deref(), Some("42"));
        assert!(p.to_string().contains("[=\"42\"]"));
    }

    #[test]
    #[should_panic(expected = "invalid parent")]
    fn adding_child_to_bogus_parent_panics() {
        let mut p = Pattern::element("A");
        p.add_child(PNodeId(42), Axis::Child, Some("B"));
    }
}
