//! Errors for TPWJ query construction and parsing.

use std::fmt;

/// Errors raised while building or parsing a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// A pattern node id does not belong to the pattern.
    InvalidPatternNode(u32),
    /// The textual query could not be parsed.
    ParseError {
        /// Description of the problem.
        message: String,
        /// Byte offset in the input where the problem was detected.
        position: usize,
    },
    /// A join variable is used by a single pattern node only (a join needs at
    /// least two participants to constrain anything).
    DanglingJoinVariable(String),
}

impl QueryError {
    pub(crate) fn parse(message: impl Into<String>, position: usize) -> Self {
        QueryError::ParseError {
            message: message.into(),
            position,
        }
    }
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::InvalidPatternNode(id) => write!(f, "invalid pattern node id {id}"),
            QueryError::ParseError { message, position } => {
                write!(f, "query parse error at byte {position}: {message}")
            }
            QueryError::DanglingJoinVariable(name) => {
                write!(f, "join variable ${name} is used by a single pattern node")
            }
        }
    }
}

impl std::error::Error for QueryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(QueryError::InvalidPatternNode(4).to_string().contains('4'));
        let e = QueryError::parse("oops", 12);
        assert!(e.to_string().contains("byte 12"));
        assert!(e.to_string().contains("oops"));
        assert!(QueryError::DanglingJoinVariable("x".into())
            .to_string()
            .contains("$x"));
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&QueryError::InvalidPatternNode(0));
    }
}
