//! Evaluation of TPWJ patterns: finding all matches (homomorphisms).
//!
//! Two interchangeable strategies are provided; they return exactly the same
//! set of matches and form the baseline / optimised pair of experiment E9:
//!
//! * [`MatchStrategy::Naive`] — for each pattern node, scan *all* element
//!   nodes with a compatible label and check the structural edge afterwards;
//! * [`MatchStrategy::Indexed`] — build a [`LabelIndex`] once, seed the root
//!   from the index, and generate candidates for non-root pattern nodes
//!   directly from the image of their parent (children or descendants),
//!   which prunes the search space early.

use std::collections::HashMap;

use pxml_tree::{NodeId, Tree};

use crate::pattern::{Axis, PNodeId, Pattern};

/// How the matcher generates candidate nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchStrategy {
    /// Scan all nodes for every pattern node (baseline).
    Naive,
    /// Use a label index and parent-image narrowing (optimised).
    Indexed,
}

/// A complete match: the image of every pattern node in the data tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Matching {
    assignments: Vec<NodeId>,
}

impl Matching {
    /// The data node mapped by a pattern node.
    pub fn image(&self, node: PNodeId) -> NodeId {
        self.assignments[node.index()]
    }

    /// The images of all pattern nodes, in pattern-node order.
    pub fn images(&self) -> &[NodeId] {
        &self.assignments
    }

    /// The set of distinct data nodes used by the match.
    pub fn mapped_nodes(&self) -> Vec<NodeId> {
        let mut nodes = self.assignments.clone();
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }
}

/// An index from element names to the nodes bearing them.
#[derive(Debug, Clone, Default)]
pub struct LabelIndex {
    by_label: HashMap<String, Vec<NodeId>>,
    element_count: usize,
}

impl LabelIndex {
    /// Builds the index for a tree (one pass).
    pub fn build(tree: &Tree) -> Self {
        let mut by_label: HashMap<String, Vec<NodeId>> = HashMap::new();
        let mut element_count = 0;
        for node in tree.nodes() {
            if let Some(name) = tree.label(node).element_name() {
                by_label.entry(name.to_string()).or_default().push(node);
                element_count += 1;
            }
        }
        LabelIndex {
            by_label,
            element_count,
        }
    }

    /// The nodes carrying a given element name.
    pub fn nodes_with_label(&self, label: &str) -> &[NodeId] {
        self.by_label.get(label).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The number of nodes a label test would have to consider: the label's
    /// occurrence count, or the total element count for a wildcard.
    pub fn selectivity(&self, label: Option<&str>) -> usize {
        match label {
            Some(name) => self.nodes_with_label(name).len(),
            None => self.element_count,
        }
    }

    /// The number of element nodes in the indexed tree.
    pub fn element_count(&self) -> usize {
        self.element_count
    }
}

/// Finds every match of `pattern` in `tree` using the requested strategy.
pub fn find_matches(pattern: &Pattern, tree: &Tree, strategy: MatchStrategy) -> Vec<Matching> {
    let index = match strategy {
        MatchStrategy::Indexed => Some(LabelIndex::build(tree)),
        MatchStrategy::Naive => None,
    };
    let all_elements: Vec<NodeId> = tree
        .nodes()
        .into_iter()
        .filter(|&n| tree.is_element(n))
        .collect();

    let mut assignment: Vec<Option<NodeId>> = vec![None; pattern.len()];
    let mut results = Vec::new();
    assign(
        pattern,
        tree,
        strategy,
        index.as_ref(),
        &all_elements,
        0,
        &mut assignment,
        &mut results,
    );
    results
}

/// Checks whether the pattern has at least one match ("the tree is selected
/// by the query", as the update semantics puts it).
pub fn has_match(pattern: &Pattern, tree: &Tree) -> bool {
    !find_matches(pattern, tree, MatchStrategy::Indexed).is_empty()
}

#[allow(clippy::too_many_arguments)]
fn assign(
    pattern: &Pattern,
    tree: &Tree,
    strategy: MatchStrategy,
    index: Option<&LabelIndex>,
    all_elements: &[NodeId],
    next: usize,
    assignment: &mut Vec<Option<NodeId>>,
    results: &mut Vec<Matching>,
) {
    if next == pattern.len() {
        results.push(Matching {
            assignments: assignment
                .iter()
                .map(|slot| slot.expect("complete assignment"))
                .collect(),
        });
        return;
    }
    let pattern_node_id = crate::pattern::PNodeId(next as u32);
    let pattern_node = pattern.node(pattern_node_id);

    let candidates: Vec<NodeId> = match (strategy, pattern_node.parent) {
        // Root candidates.
        (_, None) if pattern.is_anchored() => vec![tree.root()],
        (MatchStrategy::Naive, None) => all_elements.to_vec(),
        (MatchStrategy::Indexed, None) => match &pattern_node.label {
            Some(label) => index
                .expect("indexed strategy builds an index")
                .nodes_with_label(label)
                .to_vec(),
            None => all_elements.to_vec(),
        },
        // Non-root: the parent pattern node has an image already (pattern
        // nodes are created parent-first, so its index is smaller).
        (MatchStrategy::Naive, Some(_)) => all_elements.to_vec(),
        (MatchStrategy::Indexed, Some((parent, axis))) => {
            let parent_image = assignment[parent.index()].expect("parent assigned before child");
            match axis {
                Axis::Child => tree.children(parent_image).to_vec(),
                Axis::Descendant => tree.descendants(parent_image),
            }
        }
    };

    for candidate in candidates {
        if !node_satisfies_tests(pattern, pattern_node_id, tree, candidate) {
            continue;
        }
        // Structural edge check (already guaranteed by construction for the
        // indexed strategy, but cheap enough to keep uniform).
        if let Some((parent, axis)) = pattern_node.parent {
            let parent_image = assignment[parent.index()].expect("parent assigned before child");
            let edge_ok = match axis {
                Axis::Child => tree.parent(candidate) == Some(parent_image),
                Axis::Descendant => tree.is_strict_ancestor(parent_image, candidate),
            };
            if !edge_ok {
                continue;
            }
        }
        // Join constraints against already-assigned members of the group.
        if let Some(join) = pattern_node.join {
            let candidate_value = tree.node_value(candidate);
            if candidate_value.is_none() {
                continue;
            }
            let mut consistent = true;
            for other in pattern.node_ids() {
                if other == pattern_node_id || pattern.node(other).join != Some(join) {
                    continue;
                }
                if let Some(other_image) = assignment[other.index()] {
                    if tree.node_value(other_image) != candidate_value {
                        consistent = false;
                        break;
                    }
                }
            }
            if !consistent {
                continue;
            }
        }
        assignment[next] = Some(candidate);
        assign(
            pattern,
            tree,
            strategy,
            index,
            all_elements,
            next + 1,
            assignment,
            results,
        );
        assignment[next] = None;
    }
}

fn node_satisfies_tests(
    pattern: &Pattern,
    pattern_node: PNodeId,
    tree: &Tree,
    node: NodeId,
) -> bool {
    let spec = pattern.node(pattern_node);
    let Some(name) = tree.label(node).element_name() else {
        // Pattern nodes match element nodes only.
        return false;
    };
    if !spec.matches_label(name) {
        return false;
    }
    if let Some(required) = &spec.value {
        if tree.node_value(node) != Some(required.as_str()) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::{Axis, Pattern};
    use pxml_tree::parse_data_tree;

    fn sample_tree() -> Tree {
        parse_data_tree(
            "<A>\
               <B>k</B>\
               <B>other</B>\
               <C>v</C>\
               <E><D>v</D><D>w</D></E>\
             </A>",
        )
        .unwrap()
    }

    fn both_strategies(pattern: &Pattern, tree: &Tree) -> (Vec<Matching>, Vec<Matching>) {
        (
            find_matches(pattern, tree, MatchStrategy::Naive),
            find_matches(pattern, tree, MatchStrategy::Indexed),
        )
    }

    fn as_sets(matches: &[Matching]) -> std::collections::BTreeSet<Vec<NodeId>> {
        matches.iter().map(|m| m.images().to_vec()).collect()
    }

    #[test]
    fn single_label_pattern_matches_every_occurrence() {
        let tree = sample_tree();
        let pattern = Pattern::element("B");
        let (naive, indexed) = both_strategies(&pattern, &tree);
        assert_eq!(naive.len(), 2);
        assert_eq!(as_sets(&naive), as_sets(&indexed));
    }

    #[test]
    fn child_edges_are_respected() {
        let tree = sample_tree();
        let mut pattern = Pattern::element("A");
        pattern.add_child(pattern.root(), Axis::Child, Some("D"));
        // D is a grandchild of A, not a child.
        assert!(find_matches(&pattern, &tree, MatchStrategy::Indexed).is_empty());
        assert!(find_matches(&pattern, &tree, MatchStrategy::Naive).is_empty());
    }

    #[test]
    fn descendant_edges_reach_deeper_nodes() {
        let tree = sample_tree();
        let mut pattern = Pattern::element("A");
        pattern.add_child(pattern.root(), Axis::Descendant, Some("D"));
        let (naive, indexed) = both_strategies(&pattern, &tree);
        assert_eq!(naive.len(), 2);
        assert_eq!(as_sets(&naive), as_sets(&indexed));
    }

    #[test]
    fn value_tests_filter_matches() {
        let tree = sample_tree();
        let mut pattern = Pattern::element("A");
        let d = pattern.add_child(pattern.root(), Axis::Descendant, Some("D"));
        pattern.set_value(d, "v");
        let matches = pattern.find_matches(&tree);
        assert_eq!(matches.len(), 1);
        let image = matches[0].image(d);
        assert_eq!(tree.node_value(image), Some("v"));
    }

    #[test]
    fn join_by_value_links_branches() {
        let tree = sample_tree();
        // C and some descendant D must carry the same value.
        let mut pattern = Pattern::element("A");
        let c = pattern.add_child(pattern.root(), Axis::Child, Some("C"));
        let d = pattern.add_child(pattern.root(), Axis::Descendant, Some("D"));
        let j = pattern.new_join("x");
        pattern.join(c, j);
        pattern.join(d, j);
        let (naive, indexed) = both_strategies(&pattern, &tree);
        assert_eq!(naive.len(), 1, "only D=v joins with C=v");
        assert_eq!(as_sets(&naive), as_sets(&indexed));
        let m = &indexed[0];
        assert_eq!(tree.node_value(m.image(d)), Some("v"));
    }

    #[test]
    fn join_requires_a_value() {
        let tree = sample_tree();
        // E has no value (its children are elements), so a join on E and C
        // can never be satisfied.
        let mut pattern = Pattern::element("A");
        let c = pattern.add_child(pattern.root(), Axis::Child, Some("C"));
        let e = pattern.add_child(pattern.root(), Axis::Child, Some("E"));
        let j = pattern.new_join("x");
        pattern.join(c, j);
        pattern.join(e, j);
        assert!(pattern.find_matches(&tree).is_empty());
    }

    #[test]
    fn wildcard_matches_any_element() {
        let tree = sample_tree();
        let pattern = Pattern::new(None);
        // Every element node matches (8 of them), but no text node.
        let expected = tree
            .nodes()
            .into_iter()
            .filter(|&n| tree.is_element(n))
            .count();
        assert_eq!(pattern.find_matches(&tree).len(), expected);
    }

    #[test]
    fn anchored_pattern_only_matches_the_root() {
        let tree = sample_tree();
        let mut pattern = Pattern::new(None);
        pattern.set_anchored(true);
        let matches = pattern.find_matches(&tree);
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].image(pattern.root()), tree.root());
    }

    #[test]
    fn unanchored_root_matches_anywhere() {
        let tree = sample_tree();
        let pattern = Pattern::element("D");
        assert_eq!(pattern.find_matches(&tree).len(), 2);
    }

    #[test]
    fn strategies_agree_on_a_complex_pattern() {
        let tree = parse_data_tree(
            "<r><a><b>1</b><c>1</c></a><a><b>2</b><c>3</c></a><a><b>4</b><c>4</c><d/></a></r>",
        )
        .unwrap();
        let mut pattern = Pattern::element("a");
        let b = pattern.add_child(pattern.root(), Axis::Child, Some("b"));
        let c = pattern.add_child(pattern.root(), Axis::Child, Some("c"));
        let j = pattern.new_join("v");
        pattern.join(b, j);
        pattern.join(c, j);
        let (naive, indexed) = both_strategies(&pattern, &tree);
        assert_eq!(naive.len(), 2);
        assert_eq!(as_sets(&naive), as_sets(&indexed));
    }

    #[test]
    fn has_match_reports_selection() {
        let tree = sample_tree();
        assert!(has_match(&Pattern::element("C"), &tree));
        assert!(!has_match(&Pattern::element("Z"), &tree));
    }

    #[test]
    fn label_index_counts_and_lookup() {
        let tree = sample_tree();
        let index = LabelIndex::build(&tree);
        assert_eq!(index.nodes_with_label("B").len(), 2);
        assert_eq!(index.nodes_with_label("missing").len(), 0);
        assert_eq!(index.selectivity(Some("D")), 2);
        assert_eq!(index.selectivity(None), index.element_count());
        assert_eq!(index.element_count(), 7);
    }

    #[test]
    fn mapped_nodes_are_deduplicated() {
        let tree = parse_data_tree("<a><b/></a>").unwrap();
        // Two pattern nodes can map to the same data node via // + *.
        let mut pattern = Pattern::element("a");
        pattern.add_child(pattern.root(), Axis::Descendant, None);
        let matches = pattern.find_matches(&tree);
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].mapped_nodes().len(), 2);
    }
}
