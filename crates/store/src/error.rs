//! Errors of the storage layer.

use std::fmt;

use pxml_core::CoreError;
use pxml_event::EventError;
use pxml_query::QueryError;
use pxml_tree::XmlError;

/// Errors raised while reading or writing probabilistic XML documents.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file is not well-formed XML.
    Xml(XmlError),
    /// The file is well-formed XML but not a valid PrXML document or journal.
    Format(String),
    /// A condition or event table entry is invalid.
    Event(EventError),
    /// A journal entry carries an invalid query.
    Query(QueryError),
    /// A model-level error (bad confidence, root condition, …).
    Core(CoreError),
    /// The requested document does not exist in the store.
    MissingDocument(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(err) => write!(f, "I/O error: {err}"),
            StoreError::Xml(err) => write!(f, "{err}"),
            StoreError::Format(msg) => write!(f, "invalid PrXML content: {msg}"),
            StoreError::Event(err) => write!(f, "{err}"),
            StoreError::Query(err) => write!(f, "{err}"),
            StoreError::Core(err) => write!(f, "{err}"),
            StoreError::MissingDocument(name) => {
                write!(f, "document `{name}` does not exist in the store")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(err) => Some(err),
            StoreError::Xml(err) => Some(err),
            StoreError::Event(err) => Some(err),
            StoreError::Query(err) => Some(err),
            StoreError::Core(err) => Some(err),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(err: std::io::Error) -> Self {
        StoreError::Io(err)
    }
}

impl From<XmlError> for StoreError {
    fn from(err: XmlError) -> Self {
        StoreError::Xml(err)
    }
}

impl From<EventError> for StoreError {
    fn from(err: EventError) -> Self {
        StoreError::Event(err)
    }
}

impl From<QueryError> for StoreError {
    fn from(err: QueryError) -> Self {
        StoreError::Query(err)
    }
}

impl From<CoreError> for StoreError {
    fn from(err: CoreError) -> Self {
        StoreError::Core(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        use std::error::Error;
        let io: StoreError = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(io.to_string().contains("gone"));
        assert!(io.source().is_some());
        let fmt = StoreError::Format("bad header".into());
        assert!(fmt.to_string().contains("bad header"));
        assert!(fmt.source().is_none());
        let missing = StoreError::MissingDocument("people".into());
        assert!(missing.to_string().contains("people"));
        let xml: StoreError = XmlError::new("oops", 1, 2).into();
        assert!(xml.to_string().contains("oops"));
        let event: StoreError = EventError::UnknownEvent("w".into()).into();
        assert!(event.to_string().contains('w'));
        let core: StoreError = CoreError::CannotDeleteRoot.into();
        assert!(core.to_string().contains("delete"));
        let query: StoreError = QueryError::InvalidPatternNode(1).into();
        assert!(query.to_string().contains('1'));
    }
}
