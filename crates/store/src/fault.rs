//! Deterministic fault injection for the storage layer.
//!
//! [`FaultBackend`] wraps any `Arc<dyn StorageBackend>` and consults a shared
//! [`FaultPlan`] before the operations it forwards; the same plan can be
//! installed into [`FsOptions::fault`](crate::FsOptions) so the `FsBackend`
//! **fsync funnel** consults it too — the one injection point the trait
//! surface cannot see. Together they cover the four faultable operations the
//! robustness battery drives: journal appends, fsync rounds, checkpoint
//! loads and checkpoint folds.
//!
//! Everything is deterministic: "fail the Nth append" faults are exact
//! per-operation counters, and rate-based faults draw from a seeded
//! SplitMix64 stream, so a failing chaos run reproduces from its seed alone.
//!
//! # Fault semantics
//!
//! * [`FaultKind::Error`] fires **before** the operation touches the inner
//!   backend: nothing is written, the caller gets a typed
//!   [`StoreError::Io`] whose message carries the [`INJECTED_FAULT`] marker.
//! * [`FaultKind::TornWrite`] (appends only) lets the inner append land and
//!   then shears trailing bytes off the newest segment file — the on-disk
//!   shape of a crash mid-record. The error is reported to the caller and
//!   the document **must be reopened** before further appends: the in-memory
//!   meters are deliberately left stale, exactly like a real torn write,
//!   and only a rescan (`reopen_document`) truncates the torn tail away.
//! * [`FaultKind::Latency`] sleeps, then lets the operation through — the
//!   slow-disk half of the chaos battery.
//!
//! Fsync faults against a backend with no filesystem under it (no
//! [`root_dir`](crate::StorageBackend::root_dir)) fire at the append itself:
//! for such backends the append *is* the durability point, so the
//! conservative pre-write semantics apply and nothing phantom survives.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use pxml_core::{FuzzyTree, UpdateTransaction};

use crate::backend::StorageBackend;
use crate::error::StoreError;
use crate::group::{CommitTicket, DurabilityStats};

/// Marker every injected error message starts with; [`is_injected`] keys on
/// it so tests can tell planned faults from real I/O trouble.
pub const INJECTED_FAULT: &str = "injected fault";

/// `true` when `error` is an I/O error manufactured by a [`FaultPlan`].
pub fn is_injected(error: &StoreError) -> bool {
    matches!(error, StoreError::Io(io) if io.to_string().contains(INJECTED_FAULT))
}

/// The storage operations a [`FaultPlan`] can target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOp {
    /// A journal append (any of the `append_batch*` entry points).
    Append,
    /// A device fsync round — consulted by the `FsBackend` fsync funnel
    /// when the plan is installed via [`FsOptions::fault`](crate::FsOptions),
    /// or at the append itself on backends with no filesystem below.
    Fsync,
    /// A checkpoint read (`load_document`).
    Load,
    /// A checkpoint fold (`checkpoint`).
    Checkpoint,
}

impl FaultOp {
    const ALL: usize = 4;

    fn index(self) -> usize {
        match self {
            FaultOp::Append => 0,
            FaultOp::Fsync => 1,
            FaultOp::Load => 2,
            FaultOp::Checkpoint => 3,
        }
    }

    fn label(self) -> &'static str {
        match self {
            FaultOp::Append => "append",
            FaultOp::Fsync => "fsync",
            FaultOp::Load => "load",
            FaultOp::Checkpoint => "checkpoint",
        }
    }
}

/// What an injected fault does to its operation (see the module docs for
/// the exact semantics of each).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Fail with a typed I/O error before the operation runs.
    Error,
    /// Let an append land, then shear bytes off the newest segment file —
    /// the on-disk shape of a crash mid-record. Falls back to [`Error`]
    /// semantics on backends with no filesystem. Appends only.
    ///
    /// [`Error`]: FaultKind::Error
    TornWrite,
    /// Sleep this long, then let the operation through.
    Latency(Duration),
}

/// One scheduled deterministic fault: the `nth` (1-based) operation of `op`
/// observed by the plan.
#[derive(Debug, Clone, Copy)]
struct Scheduled {
    op: FaultOp,
    nth: usize,
    kind: FaultKind,
}

/// A seeded, shareable fault schedule (see the module docs).
///
/// Built with the `fail_nth` / `fail_rate` / `latency` builders *before*
/// wrapping in an `Arc`; afterwards the plan is immutable apart from its
/// lock-free counters and RNG stream, so it can be consulted from any
/// thread without ordering constraints.
pub struct FaultPlan {
    seed: u64,
    scheduled: Vec<Scheduled>,
    /// Probability that each operation of this kind fails ([`FaultKind::Error`]).
    rates: [f64; FaultOp::ALL],
    /// Unconditional injected latency per operation kind.
    latency: [Duration; FaultOp::ALL],
    /// Operations observed, per kind.
    counters: [AtomicUsize; FaultOp::ALL],
    /// Faults actually injected (errors and torn writes; latency excluded).
    injected: AtomicUsize,
    /// SplitMix64 stream for the rate decisions: `fetch_add` of the golden
    /// gamma advances the stream atomically, the mix is pure — no lock.
    rng: AtomicU64,
}

impl fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultPlan")
            .field("seed", &self.seed)
            .field("scheduled", &self.scheduled.len())
            .field("rates", &self.rates)
            .field("injected", &self.injected_faults())
            .finish_non_exhaustive()
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::new()
    }
}

impl FaultPlan {
    /// An empty plan: every operation passes through untouched.
    pub fn new() -> Self {
        FaultPlan::seeded(0)
    }

    /// An empty plan whose rate decisions draw from `seed`.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            scheduled: Vec::new(),
            rates: [0.0; FaultOp::ALL],
            latency: [Duration::ZERO; FaultOp::ALL],
            counters: Default::default(),
            injected: AtomicUsize::new(0),
            rng: AtomicU64::new(seed),
        }
    }

    /// Schedules the `nth` (1-based) `op` to fail with a typed I/O error.
    pub fn fail_nth(self, op: FaultOp, nth: usize) -> Self {
        self.fail_nth_with(op, nth, FaultKind::Error)
    }

    /// Schedules the `nth` (1-based) `op` to fail with `kind`.
    pub fn fail_nth_with(mut self, op: FaultOp, nth: usize, kind: FaultKind) -> Self {
        assert!(nth >= 1, "fault schedules are 1-based");
        self.scheduled.push(Scheduled { op, nth, kind });
        self
    }

    /// Every `op` fails independently with probability `rate`, decided by
    /// the seeded stream.
    pub fn fail_rate(mut self, op: FaultOp, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
        self.rates[op.index()] = rate;
        self
    }

    /// Every `op` sleeps `latency` before running.
    pub fn latency(mut self, op: FaultOp, latency: Duration) -> Self {
        self.latency[op.index()] = latency;
        self
    }

    /// The seed the rate decisions draw from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// How many operations of this kind the plan has observed.
    pub fn ops(&self, op: FaultOp) -> usize {
        self.counters[op.index()].load(Ordering::Relaxed)
    }

    /// How many faults (errors and torn writes) the plan has injected.
    pub fn injected_faults(&self) -> usize {
        self.injected.load(Ordering::Relaxed)
    }

    /// One SplitMix64 step: the atomic add is the whole state transition,
    /// so concurrent callers draw distinct values from one stream.
    fn next_f64(&self) -> f64 {
        let state = self
            .rng
            .fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed)
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 * (1.0 / ((1u64 << 53) as f64))
    }

    /// Counts one `op`, applies any injected latency, and returns the fault
    /// to inject, if any. The crate's injection points call this exactly
    /// once per operation.
    pub(crate) fn decide(&self, op: FaultOp) -> Option<(FaultKind, StoreError)> {
        let count = self.counters[op.index()].fetch_add(1, Ordering::Relaxed) + 1;
        let latency = self.latency[op.index()];
        if latency > Duration::ZERO {
            std::thread::sleep(latency);
        }
        let kind = self
            .scheduled
            .iter()
            .find(|fault| fault.op == op && fault.nth == count)
            .map(|fault| fault.kind)
            .or_else(|| {
                let rate = self.rates[op.index()];
                (rate > 0.0 && self.next_f64() < rate).then_some(FaultKind::Error)
            })?;
        if let FaultKind::Latency(sleep) = kind {
            std::thread::sleep(sleep);
            return None;
        }
        self.injected.fetch_add(1, Ordering::Relaxed);
        let error = StoreError::Io(std::io::Error::other(format!(
            "{INJECTED_FAULT}: {} #{count}",
            op.label()
        )));
        Some((kind, error))
    }

    /// [`FaultPlan::decide`] for injection points that cannot carry a torn
    /// write (everything but appends): torn writes degrade to plain errors.
    pub(crate) fn decide_error(&self, op: FaultOp) -> Result<(), StoreError> {
        match self.decide(op) {
            Some((_, error)) => Err(error),
            None => Ok(()),
        }
    }
}

/// A [`StorageBackend`] decorator injecting the faults of a [`FaultPlan`]
/// (see the module docs). With an empty plan it is a pure pass-through —
/// the backend conformance suite runs against it in exactly that mode.
#[derive(Debug, Clone)]
pub struct FaultBackend {
    inner: Arc<dyn StorageBackend>,
    plan: Arc<FaultPlan>,
}

impl FaultBackend {
    /// Wraps `inner`, consulting `plan` before appends, loads and
    /// checkpoints. For fsync faults against an `FsBackend`, install the
    /// same plan via [`FsOptions::fault`](crate::FsOptions) too.
    pub fn new(inner: Arc<dyn StorageBackend>, plan: Arc<FaultPlan>) -> Self {
        FaultBackend { inner, plan }
    }

    /// The shared plan (op counters, injected-fault count).
    pub fn plan(&self) -> &Arc<FaultPlan> {
        &self.plan
    }

    /// The fault decision every append entry point funnels through: counts
    /// the append, and on backends with no filesystem below also lets
    /// planned fsync faults fire here (the append is their durability
    /// point). Returns the error to surface without touching the inner
    /// backend, or the torn-write marker.
    fn append_fault(&self) -> Result<Option<StoreError>, StoreError> {
        match self.plan.decide(FaultOp::Append) {
            Some((FaultKind::TornWrite, error)) if self.inner.root_dir().is_some() => {
                return Ok(Some(error));
            }
            Some((_, error)) => return Err(error),
            None => {}
        }
        if self.inner.root_dir().is_none() {
            self.plan.decide_error(FaultOp::Fsync)?;
        }
        Ok(None)
    }

    /// The torn-write shear: chops `TEAR_BYTES` off the end of the newest
    /// segment file of `name`, leaving a record whose payload is shorter
    /// than its header promises — what a crash mid-append leaves behind.
    fn tear_tail(&self, name: &str) -> Result<(), StoreError> {
        const TEAR_BYTES: u64 = 3;
        let root = self
            .inner
            .root_dir()
            .ok_or_else(|| StoreError::Format("torn write needs a filesystem backend".into()))?;
        let Some((path, len)) = newest_segment(root, name)? else {
            return Ok(());
        };
        let file = fs::OpenOptions::new().write(true).open(&path)?;
        file.set_len(len.saturating_sub(TEAR_BYTES))?;
        file.sync_all()?;
        Ok(())
    }
}

/// The highest-(epoch, seq) segment file of `name` under `root`, with its
/// length — the file the last append touched.
fn newest_segment(root: &Path, name: &str) -> Result<Option<(PathBuf, u64)>, StoreError> {
    let mut newest: Option<(u64, u64, PathBuf)> = None;
    let prefix = format!("{name}.journal.");
    for entry in fs::read_dir(root)? {
        let path = entry?.path();
        let Some(file_name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        let Some(parts) = file_name
            .strip_prefix(&prefix)
            .and_then(|rest| rest.strip_suffix(".seg"))
        else {
            continue;
        };
        let Some((epoch, seq)) = parts.split_once('.') else {
            continue;
        };
        let (Ok(epoch), Ok(seq)) = (epoch.parse::<u64>(), seq.parse::<u64>()) else {
            continue;
        };
        if newest
            .as_ref()
            .is_none_or(|(e, s, _)| (epoch, seq) > (*e, *s))
        {
            newest = Some((epoch, seq, path));
        }
    }
    match newest {
        Some((_, _, path)) => {
            let len = fs::metadata(&path)?.len();
            Ok(Some((path, len)))
        }
        None => Ok(None),
    }
}

impl StorageBackend for FaultBackend {
    fn list_documents(&self) -> Result<Vec<String>, StoreError> {
        self.inner.list_documents()
    }

    fn contains(&self, name: &str) -> bool {
        self.inner.contains(name)
    }

    fn save_document(&self, name: &str, fuzzy: &FuzzyTree) -> Result<(), StoreError> {
        self.inner.save_document(name, fuzzy)
    }

    fn load_document(&self, name: &str) -> Result<FuzzyTree, StoreError> {
        self.plan.decide_error(FaultOp::Load)?;
        self.inner.load_document(name)
    }

    fn append_batch(&self, name: &str, batch: &[UpdateTransaction]) -> Result<(), StoreError> {
        match self.append_fault()? {
            None => self.inner.append_batch(name, batch),
            Some(error) => {
                self.inner.append_batch(name, batch)?;
                self.tear_tail(name)?;
                Err(error)
            }
        }
    }

    fn append_batch_grouped(
        &self,
        name: &str,
        batch: &[UpdateTransaction],
    ) -> Result<(), StoreError> {
        match self.append_fault()? {
            None => self.inner.append_batch_grouped(name, batch),
            Some(error) => {
                self.inner.append_batch_grouped(name, batch)?;
                self.tear_tail(name)?;
                Err(error)
            }
        }
    }

    fn append_batch_enqueue(&self, name: &str, batch: &[UpdateTransaction]) -> CommitTicket {
        match self.append_fault() {
            Err(error) => CommitTicket::resolved(Err(error)),
            // A torn write cannot resolve asynchronously (the shear must
            // happen after the write, before the caller sees the ticket),
            // so it runs the append synchronously.
            Ok(Some(error)) => CommitTicket::resolved(
                self.inner
                    .append_batch_grouped(name, batch)
                    .and_then(|()| self.tear_tail(name))
                    .and(Err(error)),
            ),
            Ok(None) => self.inner.append_batch_enqueue(name, batch),
        }
    }

    fn durability_stats(&self) -> DurabilityStats {
        self.inner.durability_stats()
    }

    fn group_barrier(&self) {
        self.inner.group_barrier();
    }

    fn read_batches(&self, name: &str) -> Result<Vec<Vec<UpdateTransaction>>, StoreError> {
        self.inner.read_batches(name)
    }

    fn read_journal(&self, name: &str) -> Result<Vec<UpdateTransaction>, StoreError> {
        self.inner.read_journal(name)
    }

    fn journal_length(&self, name: &str) -> Result<usize, StoreError> {
        self.inner.journal_length(name)
    }

    fn journal_batches(&self, name: &str) -> Result<usize, StoreError> {
        self.inner.journal_batches(name)
    }

    fn journal_size_bytes(&self, name: &str) -> Result<u64, StoreError> {
        self.inner.journal_size_bytes(name)
    }

    fn checkpoint(&self, name: &str, fuzzy: &FuzzyTree) -> Result<(), StoreError> {
        self.plan.decide_error(FaultOp::Checkpoint)?;
        self.inner.checkpoint(name, fuzzy)
    }

    fn remove_document(&self, name: &str) -> Result<(), StoreError> {
        self.inner.remove_document(name)
    }

    fn recover_document(&self, name: &str) -> Result<FuzzyTree, StoreError> {
        self.inner.recover_document(name)
    }

    /// Recovery entry point: deliberately fault-free, so a quarantined
    /// document can always be reopened even under an aggressive plan.
    fn reopen_document(&self, name: &str) -> Result<FuzzyTree, StoreError> {
        self.inner.reopen_document(name)
    }

    fn root_dir(&self) -> Option<&Path> {
        self.inner.root_dir()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_decides_nothing_but_counts() {
        let plan = FaultPlan::new();
        for _ in 0..5 {
            assert!(plan.decide(FaultOp::Append).is_none());
        }
        assert_eq!(plan.ops(FaultOp::Append), 5);
        assert_eq!(plan.ops(FaultOp::Fsync), 0);
        assert_eq!(plan.injected_faults(), 0);
    }

    #[test]
    fn nth_fault_fires_exactly_once() {
        let plan = FaultPlan::new().fail_nth(FaultOp::Fsync, 3);
        assert!(plan.decide(FaultOp::Fsync).is_none());
        assert!(plan.decide(FaultOp::Fsync).is_none());
        let (kind, error) = plan.decide(FaultOp::Fsync).expect("third fsync fails");
        assert_eq!(kind, FaultKind::Error);
        assert!(is_injected(&error));
        assert!(plan.decide(FaultOp::Fsync).is_none());
        assert_eq!(plan.injected_faults(), 1);
    }

    #[test]
    fn rate_faults_are_seed_deterministic() {
        let run = |seed: u64| -> Vec<bool> {
            let plan = FaultPlan::seeded(seed).fail_rate(FaultOp::Append, 0.3);
            (0..64)
                .map(|_| plan.decide(FaultOp::Append).is_some())
                .collect()
        };
        assert_eq!(run(7), run(7), "same seed, same fault sequence");
        assert_ne!(run(7), run(8), "different seeds diverge");
        let hits = run(7).iter().filter(|hit| **hit).count();
        assert!((5..25).contains(&hits), "rate 0.3 over 64 ops hit {hits}");
    }
}
