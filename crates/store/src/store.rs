//! The document store: a directory of PrXML documents with atomic saves and
//! per-document update journals.
//!
//! Layout of a store rooted at `dir`:
//!
//! ```text
//! dir/
//!   <name>.pxml        -- the last checkpointed fuzzy tree (PrXML format)
//!   <name>.journal     -- updates applied since that checkpoint
//! ```
//!
//! * [`DocumentStore::save_document`] writes atomically (temp file + rename);
//! * [`DocumentStore::append_batch`] stages a committed transaction batch
//!   into the journal — the write goes to a `.tmp` staging file first and the
//!   rename over the journal is the commit point, so a crash mid-write leaves
//!   the previous journal intact and the staged batch is cleanly discarded;
//! * [`DocumentStore::recover_document`] reloads the checkpoint and replays
//!   the journal — the crash-recovery path;
//! * [`DocumentStore::checkpoint`] folds the journal into a fresh checkpoint.
//!
//! # Concurrency
//!
//! Every mutating operation (save, batch append, checkpoint, remove) takes a
//! **per-document** write mutex shared by all clones of the store, so two
//! threads appending to the *same* journal serialize with each other while
//! appends to unrelated documents proceed in parallel — there is no
//! store-wide lock. Reads are rename-safe: a concurrent commit swaps files
//! atomically, so a reader sees either the previous or the new state, never
//! a torn file.

use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use parking_lot::Mutex;
use pxml_core::{FuzzyTree, UpdateTransaction};

use crate::error::StoreError;
use crate::format::{parse_fuzzy_document, serialize_fuzzy_document};
use crate::journal::{parse_batched_journal, serialize_batched_journal};

/// A file-system store of probabilistic XML documents.
///
/// Cloning is cheap and clones share the per-document write mutexes, so a
/// store handed to several threads keeps same-document writes serialized.
#[derive(Debug, Clone)]
pub struct DocumentStore {
    root: PathBuf,
    /// One write mutex per document name, shared across clones. Guards the
    /// read-modify-write cycle of journal appends and the save/truncate pair
    /// of checkpoints; never held for two documents at once.
    write_locks: Arc<Mutex<HashMap<String, Arc<Mutex<()>>>>>,
}

impl DocumentStore {
    /// Opens (creating it if needed) a store rooted at `root`.
    ///
    /// Stale `.tmp` staging files — the debris of a commit killed between the
    /// staging write and the rename — are discarded here: the batch they
    /// carried never reached its commit point, so recovery must not see it.
    pub fn open(root: impl AsRef<Path>) -> Result<Self, StoreError> {
        let root = root.as_ref().to_path_buf();
        fs::create_dir_all(&root)?;
        for entry in fs::read_dir(&root)? {
            let path = entry?.path();
            if path.extension().and_then(|ext| ext.to_str()) == Some("tmp") {
                fs::remove_file(path)?;
            }
        }
        Ok(DocumentStore {
            root,
            write_locks: Arc::new(Mutex::new(HashMap::new())),
        })
    }

    /// The write mutex of one document (created on first use). The registry
    /// lock is held only long enough to clone the per-document `Arc`.
    fn write_lock(&self, name: &str) -> Arc<Mutex<()>> {
        self.write_locks
            .lock()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// The directory backing this store.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn document_path(&self, name: &str) -> PathBuf {
        self.root.join(format!("{name}.pxml"))
    }

    fn journal_path(&self, name: &str) -> PathBuf {
        self.root.join(format!("{name}.journal"))
    }

    /// Lists the names of the stored documents (sorted).
    pub fn list_documents(&self) -> Result<Vec<String>, StoreError> {
        let mut names = Vec::new();
        for entry in fs::read_dir(&self.root)? {
            let entry = entry?;
            let path = entry.path();
            if path.extension().and_then(|ext| ext.to_str()) == Some("pxml") {
                if let Some(stem) = path.file_stem().and_then(|stem| stem.to_str()) {
                    names.push(stem.to_string());
                }
            }
        }
        names.sort();
        Ok(names)
    }

    /// Returns `true` if a document with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.document_path(name).exists()
    }

    /// Saves a document checkpoint atomically (write to a temporary file in
    /// the same directory, then rename over the target).
    pub fn save_document(&self, name: &str, fuzzy: &FuzzyTree) -> Result<(), StoreError> {
        let lock = self.write_lock(name);
        let _guard = lock.lock();
        self.save_document_locked(name, fuzzy)
    }

    /// The checkpoint write itself, assuming the caller holds the document's
    /// write mutex.
    fn save_document_locked(&self, name: &str, fuzzy: &FuzzyTree) -> Result<(), StoreError> {
        let target = self.document_path(name);
        let temporary = self.root.join(format!(".{name}.pxml.tmp"));
        fs::write(&temporary, serialize_fuzzy_document(fuzzy, true))?;
        fs::rename(&temporary, &target)?;
        Ok(())
    }

    /// Loads the last checkpoint of a document (ignoring any journal).
    pub fn load_document(&self, name: &str) -> Result<FuzzyTree, StoreError> {
        let path = self.document_path(name);
        if !path.exists() {
            return Err(StoreError::MissingDocument(name.to_string()));
        }
        let text = fs::read_to_string(path)?;
        parse_fuzzy_document(&text)
    }

    /// Deletes a document and its journal.
    ///
    /// The name's write mutex deliberately stays in the registry: dropping
    /// it would let a thread still holding the old `Arc` interleave its
    /// journal read-modify-write with a writer of a same-named *re-created*
    /// document under a fresh mutex, silently losing a batch. One retained
    /// mutex per name ever removed is a bounded price for that guarantee.
    pub fn remove_document(&self, name: &str) -> Result<(), StoreError> {
        let lock = self.write_lock(name);
        let _guard = lock.lock();
        let path = self.document_path(name);
        if !path.exists() {
            return Err(StoreError::MissingDocument(name.to_string()));
        }
        fs::remove_file(path)?;
        let journal = self.journal_path(name);
        if journal.exists() {
            fs::remove_file(journal)?;
        }
        Ok(())
    }

    /// The updates recorded in a document's journal, flattened to application
    /// order (empty when there is no journal file).
    pub fn read_journal(&self, name: &str) -> Result<Vec<UpdateTransaction>, StoreError> {
        Ok(self.read_batches(name)?.into_iter().flatten().collect())
    }

    /// The committed transaction batches recorded in a document's journal
    /// (empty when there is no journal file).
    pub fn read_batches(&self, name: &str) -> Result<Vec<Vec<UpdateTransaction>>, StoreError> {
        let path = self.journal_path(name);
        if !path.exists() {
            return Ok(Vec::new());
        }
        parse_batched_journal(&fs::read_to_string(path)?)
    }

    /// Stages one committed transaction batch into a document's journal.
    ///
    /// The whole journal is rewritten to a `.tmp` staging file and renamed
    /// over the journal; the rename is the commit point. A crash before the
    /// rename leaves the previous journal intact (the staged batch is
    /// discarded at the next [`DocumentStore::open`]); after the rename,
    /// recovery replays the batch.
    pub fn append_batch(&self, name: &str, batch: &[UpdateTransaction]) -> Result<(), StoreError> {
        let lock = self.write_lock(name);
        let _guard = lock.lock();
        if !self.contains(name) {
            return Err(StoreError::MissingDocument(name.to_string()));
        }
        let mut batches = self.read_batches(name)?;
        batches.push(batch.to_vec());
        let temporary = self.root.join(format!(".{name}.journal.tmp"));
        fs::write(&temporary, serialize_batched_journal(&batches))?;
        fs::rename(&temporary, self.journal_path(name))?;
        Ok(())
    }

    /// Number of journaled updates awaiting a checkpoint.
    pub fn journal_length(&self, name: &str) -> Result<usize, StoreError> {
        Ok(self.read_journal(name)?.len())
    }

    /// Recovery: the last checkpoint with the journal replayed on top. This
    /// is what the warehouse loads at start-up after a crash.
    pub fn recover_document(&self, name: &str) -> Result<FuzzyTree, StoreError> {
        let mut fuzzy = self.load_document(name)?;
        for update in self.read_journal(name)? {
            update.apply_to_fuzzy(&mut fuzzy)?;
        }
        Ok(fuzzy)
    }

    /// Checkpoints a document: writes `fuzzy` as the new checkpoint and
    /// truncates the journal. The checkpoint write and the journal truncation
    /// happen under the document's write mutex so a concurrent append cannot
    /// slip a batch in between (it would be silently un-truncated and replay
    /// on top of a state that already contains it).
    pub fn checkpoint(&self, name: &str, fuzzy: &FuzzyTree) -> Result<(), StoreError> {
        let lock = self.write_lock(name);
        let _guard = lock.lock();
        self.save_document_locked(name, fuzzy)?;
        let journal = self.journal_path(name);
        if journal.exists() {
            fs::remove_file(journal)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pxml_core::UpdateOperation;
    use pxml_query::Pattern;
    use pxml_tree::parse_data_tree;
    use std::sync::atomic::{AtomicU64, Ordering};

    static COUNTER: AtomicU64 = AtomicU64::new(0);

    /// A unique scratch directory for one test.
    fn scratch(label: &str) -> PathBuf {
        let unique = format!(
            "pxml-store-test-{}-{}-{}",
            std::process::id(),
            label,
            COUNTER.fetch_add(1, Ordering::SeqCst)
        );
        std::env::temp_dir().join(unique)
    }

    fn sample_fuzzy() -> FuzzyTree {
        use pxml_event::{Condition, Literal};
        let mut fuzzy = FuzzyTree::new("directory");
        let w = fuzzy.add_event("w", 0.6).unwrap();
        let person = fuzzy.add_element(fuzzy.root(), "person");
        let name = fuzzy.add_element(person, "name");
        fuzzy.add_text(name, "alice");
        let phone = fuzzy.add_element(person, "phone");
        fuzzy.add_text(phone, "+33-1");
        fuzzy
            .set_condition(phone, Condition::from_literal(Literal::pos(w)))
            .unwrap();
        fuzzy
    }

    fn sample_update() -> UpdateTransaction {
        let pattern = Pattern::parse("person { name[=\"alice\"] }").unwrap();
        let target = pattern.root();
        UpdateTransaction::new(pattern, 0.8).unwrap().with_insert(
            target,
            parse_data_tree("<email>alice@example.org</email>").unwrap(),
        )
    }

    #[test]
    fn open_save_load_round_trip() {
        let dir = scratch("roundtrip");
        let store = DocumentStore::open(&dir).unwrap();
        assert!(store.list_documents().unwrap().is_empty());
        let fuzzy = sample_fuzzy();
        store.save_document("people", &fuzzy).unwrap();
        assert!(store.contains("people"));
        assert_eq!(store.list_documents().unwrap(), vec!["people"]);
        let loaded = store.load_document("people").unwrap();
        assert!(fuzzy.semantically_equivalent(&loaded, 1e-12).unwrap());
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn missing_documents_are_reported() {
        let dir = scratch("missing");
        let store = DocumentStore::open(&dir).unwrap();
        assert!(matches!(
            store.load_document("ghost"),
            Err(StoreError::MissingDocument(_))
        ));
        assert!(matches!(
            store.append_batch("ghost", &[sample_update()]),
            Err(StoreError::MissingDocument(_))
        ));
        assert!(matches!(
            store.remove_document("ghost"),
            Err(StoreError::MissingDocument(_))
        ));
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn saving_twice_overwrites_atomically() {
        let dir = scratch("overwrite");
        let store = DocumentStore::open(&dir).unwrap();
        store.save_document("doc", &sample_fuzzy()).unwrap();
        let replacement = FuzzyTree::new("empty");
        store.save_document("doc", &replacement).unwrap();
        let loaded = store.load_document("doc").unwrap();
        assert_eq!(loaded.node_count(), 1);
        // No temporary files are left behind.
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty());
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn journal_append_read_and_recover() {
        let dir = scratch("journal");
        let store = DocumentStore::open(&dir).unwrap();
        let fuzzy = sample_fuzzy();
        store.save_document("people", &fuzzy).unwrap();
        assert_eq!(store.journal_length("people").unwrap(), 0);

        let update = sample_update();
        store
            .append_batch("people", std::slice::from_ref(&update))
            .unwrap();
        store.append_batch("people", &[update]).unwrap();
        assert_eq!(store.journal_length("people").unwrap(), 2);
        assert_eq!(store.read_batches("people").unwrap().len(), 2);

        // Recovery replays the journal on top of the checkpoint.
        let recovered = store.recover_document("people").unwrap();
        assert_eq!(recovered.tree().find_elements("email").len(), 2);
        // The checkpoint itself is untouched.
        let checkpointed = store.load_document("people").unwrap();
        assert!(checkpointed.tree().find_elements("email").is_empty());
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn recovery_equals_in_memory_application() {
        let dir = scratch("recovery-equivalence");
        let store = DocumentStore::open(&dir).unwrap();
        let mut in_memory = sample_fuzzy();
        store.save_document("people", &in_memory).unwrap();
        let update = sample_update();
        store
            .append_batch("people", std::slice::from_ref(&update))
            .unwrap();
        update.apply_to_fuzzy(&mut in_memory).unwrap();
        let recovered = store.recover_document("people").unwrap();
        assert!(recovered.semantically_equivalent(&in_memory, 1e-9).unwrap());
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn checkpoint_folds_journal() {
        let dir = scratch("checkpoint");
        let store = DocumentStore::open(&dir).unwrap();
        store.save_document("people", &sample_fuzzy()).unwrap();
        store.append_batch("people", &[sample_update()]).unwrap();
        let recovered = store.recover_document("people").unwrap();
        store.checkpoint("people", &recovered).unwrap();
        assert_eq!(store.journal_length("people").unwrap(), 0);
        let loaded = store.load_document("people").unwrap();
        assert_eq!(loaded.tree().find_elements("email").len(), 1);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn remove_document_deletes_files() {
        let dir = scratch("remove");
        let store = DocumentStore::open(&dir).unwrap();
        store.save_document("doc", &sample_fuzzy()).unwrap();
        store.append_batch("doc", &[sample_update()]).unwrap();
        store.remove_document("doc").unwrap();
        assert!(!store.contains("doc"));
        assert!(store.list_documents().unwrap().is_empty());
        assert_eq!(store.journal_length("doc").unwrap(), 0);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn multi_update_batch_is_one_journal_entry() {
        let dir = scratch("batch");
        let store = DocumentStore::open(&dir).unwrap();
        store.save_document("people", &sample_fuzzy()).unwrap();
        store
            .append_batch("people", &[sample_update(), sample_update()])
            .unwrap();
        assert_eq!(store.read_batches("people").unwrap().len(), 1);
        assert_eq!(store.journal_length("people").unwrap(), 2);
        let recovered = store.recover_document("people").unwrap();
        assert_eq!(recovered.tree().find_elements("email").len(), 2);
        fs::remove_dir_all(dir).unwrap();
    }

    /// Clones of one store share the per-document write mutexes: concurrent
    /// appends to the same journal from several threads must all land (the
    /// read-modify-write cycle cannot lose a batch to a race).
    #[test]
    fn concurrent_appends_to_one_document_all_land() {
        let dir = scratch("concurrent-appends");
        let store = DocumentStore::open(&dir).unwrap();
        store.save_document("people", &sample_fuzzy()).unwrap();
        let threads = 4;
        let per_thread = 5;
        let barrier = std::sync::Arc::new(std::sync::Barrier::new(threads));
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let store = store.clone();
                let barrier = barrier.clone();
                scope.spawn(move || {
                    barrier.wait();
                    for _ in 0..per_thread {
                        store.append_batch("people", &[sample_update()]).unwrap();
                    }
                });
            }
        });
        assert_eq!(
            store.read_batches("people").unwrap().len(),
            threads * per_thread
        );
        fs::remove_dir_all(dir).unwrap();
    }

    /// Appends to *different* documents run from several threads write two
    /// independent journals that never interleave entries.
    #[test]
    fn concurrent_appends_to_distinct_documents_stay_separate() {
        let dir = scratch("distinct-appends");
        let store = DocumentStore::open(&dir).unwrap();
        store.save_document("a", &sample_fuzzy()).unwrap();
        store.save_document("b", &sample_fuzzy()).unwrap();
        let barrier = std::sync::Arc::new(std::sync::Barrier::new(2));
        std::thread::scope(|scope| {
            for name in ["a", "b"] {
                let store = store.clone();
                let barrier = barrier.clone();
                scope.spawn(move || {
                    barrier.wait();
                    for i in 0..6 {
                        let pattern = Pattern::parse("person { name }").unwrap();
                        let target = pattern.root();
                        let update = UpdateTransaction::new(pattern, 0.5).unwrap().with_insert(
                            target,
                            parse_data_tree(&format!("<tag-{name}-{i}/>")).unwrap(),
                        );
                        store.append_batch(name, &[update]).unwrap();
                    }
                });
            }
        });
        for name in ["a", "b"] {
            let batches = store.read_batches(name).unwrap();
            assert_eq!(batches.len(), 6);
            for update in batches.into_iter().flatten() {
                let own = update.operations().iter().all(|op| match op {
                    UpdateOperation::Insert { subtree, .. } => subtree
                        .label(subtree.root())
                        .as_str()
                        .starts_with(&format!("tag-{name}-")),
                    UpdateOperation::Delete { .. } => false,
                });
                assert!(own, "journal of `{name}` holds only its own updates");
            }
        }
        fs::remove_dir_all(dir).unwrap();
    }

    /// A commit killed between the staging write and the rename must be
    /// cleanly discarded: the next open sweeps the staging file and recovery
    /// replays only what reached the commit point.
    #[test]
    fn crash_before_commit_point_discards_staged_batch() {
        let dir = scratch("crash-before-rename");
        let store = DocumentStore::open(&dir).unwrap();
        store.save_document("people", &sample_fuzzy()).unwrap();
        store.append_batch("people", &[sample_update()]).unwrap();

        // Simulate the torn commit: the staged journal (with a second batch)
        // is fully written, but the process dies before the rename.
        let staged = crate::journal::serialize_batched_journal(&[
            vec![sample_update()],
            vec![sample_update()],
        ]);
        fs::write(dir.join(".people.journal.tmp"), staged).unwrap();

        let reopened = DocumentStore::open(&dir).unwrap();
        assert!(!dir.join(".people.journal.tmp").exists(), "debris swept");
        assert_eq!(reopened.journal_length("people").unwrap(), 1);
        let recovered = reopened.recover_document("people").unwrap();
        assert_eq!(recovered.tree().find_elements("email").len(), 1);
        fs::remove_dir_all(dir).unwrap();
    }

    /// Once the rename happened the batch is durable: a crash immediately
    /// after the commit point must replay it on reopen.
    #[test]
    fn crash_after_commit_point_replays_staged_batch() {
        let dir = scratch("crash-after-rename");
        {
            let store = DocumentStore::open(&dir).unwrap();
            store.save_document("people", &sample_fuzzy()).unwrap();
            store
                .append_batch("people", &[sample_update(), sample_update()])
                .unwrap();
            // The store is dropped without a checkpoint: the batch only
            // exists in the journal.
        }
        let reopened = DocumentStore::open(&dir).unwrap();
        let recovered = reopened.recover_document("people").unwrap();
        assert_eq!(recovered.tree().find_elements("email").len(), 2);
        fs::remove_dir_all(dir).unwrap();
    }

    /// The kill-point matrix with *two* documents mid-commit: one document's
    /// batch reached its commit point (journal renamed), the other's was
    /// still staged (`.tmp` not yet renamed) when the process died. Recovery
    /// must replay the first, discard the second, and keep the two journals
    /// fully separate.
    #[test]
    fn crash_with_two_in_flight_documents_recovers_each_independently() {
        let dir = scratch("two-doc-crash");
        let store = DocumentStore::open(&dir).unwrap();
        store.save_document("committed", &sample_fuzzy()).unwrap();
        store.save_document("staged", &sample_fuzzy()).unwrap();

        // Document `committed`: the batch passed its commit point.
        store.append_batch("committed", &[sample_update()]).unwrap();
        // Document `staged`: the staging file was fully written but the
        // process died before the rename.
        let staged = crate::journal::serialize_batched_journal(&[vec![sample_update()]]);
        fs::write(dir.join(".staged.journal.tmp"), staged).unwrap();

        let reopened = DocumentStore::open(&dir).unwrap();
        assert!(!dir.join(".staged.journal.tmp").exists(), "debris swept");
        assert_eq!(reopened.journal_length("committed").unwrap(), 1);
        assert_eq!(reopened.journal_length("staged").unwrap(), 0);
        let committed = reopened.recover_document("committed").unwrap();
        assert_eq!(committed.tree().find_elements("email").len(), 1);
        let staged = reopened.recover_document("staged").unwrap();
        assert!(staged.tree().find_elements("email").is_empty());
        fs::remove_dir_all(dir).unwrap();
    }

    /// Journals written before the batch layout (bare `<pxml:update>`
    /// children) keep replaying.
    #[test]
    fn legacy_flat_journals_still_replay() {
        let dir = scratch("legacy-journal");
        let store = DocumentStore::open(&dir).unwrap();
        store.save_document("people", &sample_fuzzy()).unwrap();
        let flat = {
            use pxml_tree::{XmlDocument, XmlElement, XmlNode};
            let mut journal = XmlElement::new("pxml:journal");
            journal
                .children
                .push(XmlNode::Element(crate::journal::update_to_element(
                    &sample_update(),
                )));
            XmlDocument::new(journal).to_xml_string(true)
        };
        fs::write(dir.join("people.journal"), flat).unwrap();
        assert_eq!(store.journal_length("people").unwrap(), 1);
        let recovered = store.recover_document("people").unwrap();
        assert_eq!(recovered.tree().find_elements("email").len(), 1);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn multiple_documents_coexist() {
        let dir = scratch("multi");
        let store = DocumentStore::open(&dir).unwrap();
        store.save_document("a", &sample_fuzzy()).unwrap();
        store.save_document("b", &FuzzyTree::new("other")).unwrap();
        assert_eq!(store.list_documents().unwrap(), vec!["a", "b"]);
        fs::remove_dir_all(dir).unwrap();
    }
}
