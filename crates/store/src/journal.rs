//! Textual form of probabilistic update transactions and the update journal.
//!
//! The paper expresses updates in XUpdate and compiles them against the
//! stored documents; here transactions are serialized to a small XML dialect
//! of the same flavour:
//!
//! ```xml
//! <pxml:update confidence="0.9" query="/A { B, C }">
//!   <pxml:insert target="0"><D/></pxml:insert>
//!   <pxml:delete target="2"/>
//! </pxml:update>
//! ```
//!
//! `target` is the index of the pattern node (in `Pattern::node_ids` order)
//! at whose image the operation is applied.
//!
//! A journal file is a sequence of **batches** wrapped in `<pxml:journal>`:
//! each `<pxml:batch>` element holds the updates of one committed
//! transaction, in application order. Bare `<pxml:update>` children are also
//! accepted (the pre-batch journal layout) and read back as single-update
//! batches, so journals written before the session API keep replaying.

use pxml_core::{UpdateOperation, UpdateTransaction};
use pxml_query::{PNodeId, Pattern};
use pxml_tree::{data_tree_to_xml, xml_to_data_tree, XmlDocument, XmlElement, XmlNode};

use crate::error::StoreError;

/// Serializes an update transaction to its XML element.
pub fn update_to_element(update: &UpdateTransaction) -> XmlElement {
    let mut element = XmlElement::new("pxml:update")
        .with_attribute("confidence", format!("{}", update.confidence()))
        .with_attribute("query", update.pattern().to_string());
    for operation in update.operations() {
        match operation {
            UpdateOperation::Insert { target, subtree } => {
                let mut insert = XmlElement::new("pxml:insert")
                    .with_attribute("target", target.index().to_string());
                insert
                    .children
                    .push(XmlNode::Element(data_tree_to_xml(subtree).root));
                element.children.push(XmlNode::Element(insert));
            }
            UpdateOperation::Delete { target } => {
                element.children.push(XmlNode::Element(
                    XmlElement::new("pxml:delete")
                        .with_attribute("target", target.index().to_string()),
                ));
            }
        }
    }
    element
}

/// Serializes an update transaction to XML text.
pub fn serialize_update(update: &UpdateTransaction, pretty: bool) -> String {
    XmlDocument::new(update_to_element(update)).to_xml_string(pretty)
}

/// Parses an update transaction from its XML element.
pub fn update_from_element(element: &XmlElement) -> Result<UpdateTransaction, StoreError> {
    if element.name != "pxml:update" {
        return Err(StoreError::Format(format!(
            "expected <pxml:update>, found <{}>",
            element.name
        )));
    }
    let confidence: f64 = element
        .attribute("confidence")
        .ok_or_else(|| StoreError::Format("<pxml:update> without confidence".into()))?
        .parse()
        .map_err(|_| StoreError::Format("malformed confidence".into()))?;
    let query_text = element
        .attribute("query")
        .ok_or_else(|| StoreError::Format("<pxml:update> without query".into()))?;
    let pattern = Pattern::parse(query_text)?;
    let pattern_nodes: Vec<PNodeId> = pattern.node_ids().collect();
    let mut update = UpdateTransaction::new(pattern, confidence)?;

    for child in element.child_elements() {
        let target_index: usize = child
            .attribute("target")
            .ok_or_else(|| StoreError::Format(format!("<{}> without target", child.name)))?
            .parse()
            .map_err(|_| StoreError::Format("malformed target index".into()))?;
        let target = *pattern_nodes.get(target_index).ok_or_else(|| {
            StoreError::Format(format!(
                "target index {target_index} is outside the query's {} pattern nodes",
                pattern_nodes.len()
            ))
        })?;
        match child.name.as_str() {
            "pxml:insert" => {
                let subtree_element = child
                    .child_elements()
                    .next()
                    .ok_or_else(|| StoreError::Format("<pxml:insert> without a subtree".into()))?;
                let subtree = xml_to_data_tree(&XmlDocument::new(subtree_element.clone()));
                update.push_operation(UpdateOperation::Insert { target, subtree });
            }
            "pxml:delete" => {
                update.push_operation(UpdateOperation::Delete { target });
            }
            other => {
                return Err(StoreError::Format(format!(
                    "unexpected <{other}> inside <pxml:update>"
                )))
            }
        }
    }
    Ok(update)
}

/// Parses an update transaction from XML text.
pub fn parse_update(input: &str) -> Result<UpdateTransaction, StoreError> {
    let document = XmlDocument::parse(input)?;
    update_from_element(&document.root)
}

/// Serializes one committed batch as a standalone `<pxml:batch>` document —
/// the payload of a single segment-journal record (see [`crate::fs`]).
pub fn serialize_batch(batch: &[UpdateTransaction]) -> String {
    let mut element = XmlElement::new("pxml:batch");
    for update in batch {
        element
            .children
            .push(XmlNode::Element(update_to_element(update)));
    }
    XmlDocument::new(element).to_xml_string(false)
}

/// Parses one standalone `<pxml:batch>` document (a segment-record payload).
pub fn parse_batch(input: &str) -> Result<Vec<UpdateTransaction>, StoreError> {
    let document = XmlDocument::parse(input)?;
    if document.root.name != "pxml:batch" {
        return Err(StoreError::Format(format!(
            "expected <pxml:batch>, found <{}>",
            document.root.name
        )));
    }
    document
        .root
        .child_elements()
        .map(update_from_element)
        .collect()
}

/// Serializes a whole journal as a sequence of single-update batches.
pub fn serialize_journal(updates: &[UpdateTransaction]) -> String {
    let batches: Vec<Vec<UpdateTransaction>> = updates.iter().map(|u| vec![u.clone()]).collect();
    serialize_batched_journal(&batches)
}

/// Serializes a whole journal: one `<pxml:batch>` element per committed
/// transaction.
pub fn serialize_batched_journal(batches: &[Vec<UpdateTransaction>]) -> String {
    let mut journal = XmlElement::new("pxml:journal");
    for batch in batches {
        let mut element = XmlElement::new("pxml:batch");
        for update in batch {
            element
                .children
                .push(XmlNode::Element(update_to_element(update)));
        }
        journal.children.push(XmlNode::Element(element));
    }
    XmlDocument::new(journal).to_xml_string(true)
}

/// Parses a whole journal, flattened to application order.
pub fn parse_journal(input: &str) -> Result<Vec<UpdateTransaction>, StoreError> {
    Ok(parse_batched_journal(input)?
        .into_iter()
        .flatten()
        .collect())
}

/// Parses a whole journal, one entry per committed batch. Bare
/// `<pxml:update>` children (the pre-batch layout) are read as single-update
/// batches.
pub fn parse_batched_journal(input: &str) -> Result<Vec<Vec<UpdateTransaction>>, StoreError> {
    let document = XmlDocument::parse(input)?;
    if document.root.name != "pxml:journal" {
        return Err(StoreError::Format(format!(
            "expected <pxml:journal>, found <{}>",
            document.root.name
        )));
    }
    let mut batches = Vec::new();
    for child in document.root.child_elements() {
        match child.name.as_str() {
            "pxml:batch" => {
                batches.push(
                    child
                        .child_elements()
                        .map(update_from_element)
                        .collect::<Result<Vec<_>, _>>()?,
                );
            }
            "pxml:update" => batches.push(vec![update_from_element(child)?]),
            other => {
                return Err(StoreError::Format(format!(
                    "unexpected <{other}> inside <pxml:journal>"
                )))
            }
        }
    }
    Ok(batches)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pxml_tree::parse_data_tree;

    fn sample_update() -> UpdateTransaction {
        let pattern = Pattern::parse("/A { B, C }").unwrap();
        let ids: Vec<PNodeId> = pattern.node_ids().collect();
        UpdateTransaction::new(pattern, 0.9)
            .unwrap()
            .with_insert(ids[0], parse_data_tree("<D><x>1</x></D>").unwrap())
            .with_delete(ids[2])
    }

    #[test]
    fn update_round_trips_through_text() {
        let update = sample_update();
        let text = serialize_update(&update, true);
        assert!(text.contains("confidence=\"0.9\""));
        assert!(text.contains("pxml:insert"));
        assert!(text.contains("pxml:delete"));
        let reparsed = parse_update(&text).unwrap();
        assert_eq!(reparsed.pattern().to_string(), update.pattern().to_string());
        assert!((reparsed.confidence() - 0.9).abs() < 1e-12);
        assert_eq!(reparsed.operations().len(), 2);
        match (&reparsed.operations()[0], &update.operations()[0]) {
            (
                UpdateOperation::Insert {
                    target: t1,
                    subtree: s1,
                },
                UpdateOperation::Insert {
                    target: t2,
                    subtree: s2,
                },
            ) => {
                assert_eq!(t1, t2);
                assert!(s1.isomorphic(s2));
            }
            _ => panic!("first operation must be an insert"),
        }
    }

    #[test]
    fn reparsed_updates_have_the_same_effect() {
        let update = sample_update();
        let reparsed = parse_update(&serialize_update(&update, false)).unwrap();
        let document = parse_data_tree("<A><B/><C><junk/></C></A>").unwrap();
        assert!(update
            .apply_to_tree(&document)
            .isomorphic(&reparsed.apply_to_tree(&document)));
    }

    #[test]
    fn journal_round_trips() {
        let updates = vec![sample_update(), {
            let pattern = Pattern::parse("person { name }").unwrap();
            let name = pattern.node_ids().nth(1).unwrap();
            UpdateTransaction::new(pattern, 0.5)
                .unwrap()
                .with_delete(name)
        }];
        let text = serialize_journal(&updates);
        let reparsed = parse_journal(&text).unwrap();
        assert_eq!(reparsed.len(), 2);
        assert_eq!(reparsed[1].pattern().to_string(), "person { name }");
    }

    #[test]
    fn empty_journal_round_trips() {
        let text = serialize_journal(&[]);
        assert!(parse_journal(&text).unwrap().is_empty());
    }

    #[test]
    fn batched_journal_round_trips() {
        let batches = vec![
            vec![sample_update(), sample_update()],
            vec![sample_update()],
        ];
        let text = serialize_batched_journal(&batches);
        assert!(text.contains("pxml:batch"));
        let reparsed = parse_batched_journal(&text).unwrap();
        assert_eq!(reparsed.len(), 2);
        assert_eq!(reparsed[0].len(), 2);
        assert_eq!(reparsed[1].len(), 1);
        // The flat view preserves application order.
        assert_eq!(parse_journal(&text).unwrap().len(), 3);
    }

    #[test]
    fn flat_entries_parse_as_singleton_batches() {
        use pxml_tree::{XmlDocument, XmlElement, XmlNode};
        let mut journal = XmlElement::new("pxml:journal");
        journal
            .children
            .push(XmlNode::Element(update_to_element(&sample_update())));
        let text = XmlDocument::new(journal).to_xml_string(true);
        let batches = parse_batched_journal(&text).unwrap();
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].len(), 1);
    }

    #[test]
    fn malformed_updates_are_rejected() {
        assert!(matches!(
            parse_update("<pxml:update query=\"A\"/>"),
            Err(StoreError::Format(_))
        ));
        assert!(matches!(
            parse_update("<pxml:update confidence=\"0.5\"/>"),
            Err(StoreError::Format(_))
        ));
        assert!(matches!(
            parse_update("<pxml:update confidence=\"0.5\" query=\"A {\"/>"),
            Err(StoreError::Query(_))
        ));
        assert!(matches!(
            parse_update(
                "<pxml:update confidence=\"0.5\" query=\"A\"><pxml:delete target=\"7\"/></pxml:update>"
            ),
            Err(StoreError::Format(_))
        ));
        assert!(matches!(
            parse_update(
                "<pxml:update confidence=\"0.5\" query=\"A\"><pxml:frob target=\"0\"/></pxml:update>"
            ),
            Err(StoreError::Format(_))
        ));
        assert!(matches!(
            parse_update("<pxml:update confidence=\"2.0\" query=\"A\"/>"),
            Err(StoreError::Core(_))
        ));
        assert!(matches!(
            parse_journal("<pxml:updates/>"),
            Err(StoreError::Format(_))
        ));
    }
}
