//! Group commit: cross-document fsync coalescing for the segment journal.
//!
//! [`FsBackend::append_batch`](crate::FsBackend::append_batch) pays one fsync
//! round per batch per document. Under many concurrent writers those fsyncs —
//! not the CPU work — cap commit throughput: eight writers on eight documents
//! issue eight device flushes where one would durably cover them all. The
//! [`GroupCommitter`] closes that gap with the leader/follower protocol real
//! databases use:
//!
//! 1. a committer **enqueues** its batch into the shared window and receives
//!    a [`CommitTicket`];
//! 2. the first committer to wait on an open window becomes the **leader**:
//!    it keeps the window open briefly (until `window_max_batches` batches
//!    have gathered or `window_max_wait` has elapsed), drains every enqueued
//!    append — across *all* documents — writes their records, and issues a
//!    **single fsync round** for the whole window;
//! 3. every other member is a **follower**: it blocks until the leader
//!    completes its slot and wakes it.
//!
//! # Durability contract
//!
//! Identical to the synchronous path: a commit is **acknowledged** (its
//! ticket resolves `Ok`) only after its window's fsync round, and crash
//! replay never surfaces an unacknowledged batch — before the round the
//! records are at most torn tails that recovery truncates away. Grouping
//! changes *when* the fsync happens and *how many batches it covers*, never
//! what an acknowledgement means.
//!
//! The committer runs without a background thread: leadership is taken at
//! wait time by whichever committer arrives first, so an idle store costs
//! nothing and process exit cannot strand a flusher thread.
//!
//! # Fsync failure poisons the committer
//!
//! A failed window fsync errors **every** ticket in that window — none is
//! acknowledged — and **poisons** the committer: every later enqueue fails
//! immediately until the document is re-opened
//! (`StorageBackend::reopen_document`), which re-establishes the on-disk
//! truth and clears the poison. The committer never retries the fsync and
//! then acks: after a failed fsync the kernel may have *dropped* the dirty
//! pages while clearing the error flag, so a retry that returns success
//! proves nothing about the lost writes — the PostgreSQL "fsyncgate" bug
//! class. The unsynced records themselves are rolled back (truncated away)
//! by the failing flush, so recovery replays exactly the acknowledged
//! prefix.
//!
//! # Idle fast-path
//!
//! A leader whose window holds a single batch and has seen no evidence of
//! concurrent committers — no second pending append, no enqueue racing a
//! previous window — drains immediately instead of waiting out
//! `window_max_wait`: a sequential writer pays sync-path latency, not one
//! fill timeout per commit. The first sign of concurrency (an enqueue that
//! finds the window occupied or a leader mid-flush) re-arms the fill-wait so
//! racing committers coalesce again; a fill-wait that still drains solo
//! disarms it. Tests that need a deliberately held-open window opt out via
//! [`FsOptions::group_fill_idle_windows`](crate::FsOptions).

use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, LockClass, Mutex, MutexGuard};

use pxml_core::UpdateTransaction;

use crate::error::StoreError;
use crate::fs::FsBackend;

/// How a backend turns an acknowledged append into a durable one.
///
/// Selected through `SessionConfig` (or `FsOptions` at the store layer); see
/// the README's "Commit pipeline" section for a tuning table.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum CommitPolicy {
    /// One fsync round per append, issued synchronously before the append
    /// returns — the historical behaviour and the default. Lowest latency
    /// for a single writer; under `N` concurrent writers the rounds
    /// serialize on the device.
    #[default]
    Sync,
    /// Appends gather in a shared cross-document window and one fsync round
    /// covers the whole window (leader/follower group commit). Adds up to
    /// `window_max_wait` of latency per commit; divides the number of device
    /// flush rounds by up to `window_max_batches`.
    Grouped {
        /// The window drains as soon as it holds this many batches
        /// (clamped to at least 1).
        window_max_batches: usize,
        /// The window drains no later than this long after it opened, full
        /// or not — the latency bound a lone committer pays.
        window_max_wait: Duration,
    },
}

impl CommitPolicy {
    /// A `Grouped` policy with defaults sized for the sharded engine's
    /// 8-thread sweet spot: windows of up to 8 batches, drained within 2 ms.
    pub fn grouped() -> Self {
        CommitPolicy::Grouped {
            window_max_batches: 8,
            window_max_wait: Duration::from_millis(2),
        }
    }
}

/// Fsync/window observability counters of a storage backend.
///
/// `fsyncs` counts **device flush rounds**, not individual file syncs: a
/// grouped window touching eight documents syncs eight files behind one
/// shared round and counts **1** — which is exactly the quantity group
/// commit divides, and what E14 asserts shrinks below the commit count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DurabilityStats {
    /// Fsync barrier rounds issued to the backing device (each round may
    /// sync several files and the directory).
    pub fsyncs: usize,
    /// Batches acknowledged through a group-commit window.
    pub grouped_commits: usize,
    /// Group-commit windows flushed (only windows that durably landed at
    /// least one batch are counted).
    pub grouped_windows: usize,
}

impl DurabilityStats {
    /// Mean batches per flushed window — the coalescing factor group commit
    /// achieved (0.0 before any window has flushed).
    pub fn mean_window_occupancy(&self) -> f64 {
        if self.grouped_windows == 0 {
            0.0
        } else {
            self.grouped_commits as f64 / self.grouped_windows as f64
        }
    }
}

const SLOT_PENDING: u8 = 0;
const SLOT_OK: u8 = 1;
const SLOT_ERR: u8 = 2;

/// One enqueued batch's completion state, shared between its ticket holder
/// and the window leader that flushes it.
pub(crate) struct CommitSlot {
    /// The atomic the acknowledgement decision reads: acquire/release only,
    /// so the record write happens-before the ack.
    state: AtomicU8, // lint: protocol-atomic
    error: Mutex<Option<String>>,
}

impl CommitSlot {
    fn new() -> Arc<Self> {
        Arc::new(CommitSlot {
            state: AtomicU8::new(SLOT_PENDING),
            error: Mutex::with_class(LockClass::CommitSlot, None),
        })
    }

    /// Marks the slot durable. The `Release` store pairs with the waiter's
    /// `Acquire` load so the record write happens-before the acknowledgement.
    pub(crate) fn complete_ok(&self) {
        self.state.store(SLOT_OK, Ordering::Release);
    }

    /// Marks the slot failed, carrying the failure message (StoreError is
    /// not clonable, so per-slot outcomes travel as text).
    pub(crate) fn complete_err(&self, message: String) {
        *self.error.lock() = Some(message);
        self.state.store(SLOT_ERR, Ordering::Release);
    }

    fn status(&self) -> u8 {
        self.state.load(Ordering::Acquire)
    }

    fn take_error(&self) -> StoreError {
        let message = self
            .error
            .lock()
            .take()
            .unwrap_or_else(|| "group-commit window failed".to_string());
        StoreError::Io(std::io::Error::other(message))
    }
}

/// One window member: a batch bound for `name`'s journal, plus the slot its
/// outcome lands on.
pub(crate) struct PendingAppend {
    pub(crate) name: String,
    pub(crate) batch: Vec<UpdateTransaction>,
    pub(crate) slot: Arc<CommitSlot>,
}

/// The window state behind the committer's mutex.
struct Window {
    /// Appends enqueued into the currently open window.
    pending: Vec<PendingAppend>,
    /// Whether a leader currently owns a drained window (windows flush one
    /// at a time; the next leader is elected only after the previous one
    /// finishes, which also keeps journal order equal to enqueue order).
    leader_active: bool,
    /// When the oldest pending append was enqueued — the clock the leader's
    /// `window_max_wait` deadline runs against.
    opened_at: Option<Instant>,
    /// Evidence of concurrent committers: set when an enqueue finds the
    /// window already occupied or a leader mid-flush, cleared when a full
    /// fill-wait still drains a solo window. Gates the idle fast-path (see
    /// the module docs).
    concurrency_hint: bool,
    /// Set when a window fsync failed: the committer refuses all further
    /// work (every enqueue fails immediately) until the store is re-opened
    /// or a document reopen clears it. See "Fsync failure poisons the
    /// committer" in the module docs.
    poisoned: Option<String>,
}

/// The error message enqueues and drains carry while the committer is
/// poisoned.
fn poisoned_message(cause: &str) -> String {
    format!("group committer poisoned by a failed fsync (reopen the document to recover): {cause}")
}

/// The leader/follower group committer of one [`FsBackend`] (see the module
/// docs for the protocol and durability contract).
///
/// The committer holds no reference to its backend — flushes borrow the
/// backend at wait time — so backend clones and the committer can share
/// `Arc`s freely without a cycle.
pub struct GroupCommitter {
    window_max_batches: usize,
    window_max_wait: Duration,
    /// Deliberate-window mode: solo leaders fill-wait too, instead of taking
    /// the idle fast-path (see [`crate::FsOptions::group_fill_idle_windows`]).
    fill_idle_windows: bool,
    window: Mutex<Window>,
    wakeup: Condvar,
}

impl fmt::Debug for GroupCommitter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GroupCommitter")
            .field("window_max_batches", &self.window_max_batches)
            .field("window_max_wait", &self.window_max_wait)
            .finish_non_exhaustive()
    }
}

impl GroupCommitter {
    pub(crate) fn new(
        window_max_batches: usize,
        window_max_wait: Duration,
        fill_idle_windows: bool,
    ) -> Self {
        GroupCommitter {
            window_max_batches: window_max_batches.max(1),
            window_max_wait,
            fill_idle_windows,
            window: Mutex::with_class(
                LockClass::GroupCommitter,
                Window {
                    pending: Vec::new(),
                    leader_active: false,
                    opened_at: None,
                    concurrency_hint: false,
                    poisoned: None,
                },
            ),
            wakeup: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Window> {
        self.window.lock()
    }

    /// Enqueues a batch into the open window and returns its slot. The
    /// append is not durable (and must not be acknowledged) until the slot
    /// completes — [`GroupCommitter::wait`] does both. On a poisoned
    /// committer the slot comes back already failed and nothing is enqueued.
    pub(crate) fn enqueue(&self, name: &str, batch: &[UpdateTransaction]) -> Arc<CommitSlot> {
        let slot = CommitSlot::new();
        let mut window = self.lock();
        if let Some(cause) = &window.poisoned {
            let message = poisoned_message(cause);
            drop(window);
            slot.complete_err(message);
            return slot;
        }
        if window.leader_active || !window.pending.is_empty() {
            // Someone else is committing right now: re-arm the fill-wait so
            // the racing appends coalesce into shared windows.
            window.concurrency_hint = true;
        }
        if window.opened_at.is_none() {
            window.opened_at = Some(Instant::now());
        }
        window.pending.push(PendingAppend {
            name: name.to_string(),
            batch: batch.to_vec(),
            slot: slot.clone(),
        });
        drop(window);
        // Wake a leader sitting in its fill-wait: the window may be full now.
        self.wakeup.notify_all();
        slot
    }

    /// Blocks until `slot` is durable (or failed), driving the protocol:
    /// a waiter that finds no active leader becomes one, fills its window up
    /// to the policy bounds, drains it and flushes it through `backend`;
    /// everyone else sleeps until the leader's wake-up.
    pub(crate) fn wait(&self, slot: &CommitSlot, backend: &FsBackend) -> Result<(), StoreError> {
        loop {
            match slot.status() {
                SLOT_OK => return Ok(()),
                SLOT_ERR => return Err(slot.take_error()),
                _ => {}
            }
            let mut window = self.lock();
            // Re-check under the lock: a leader may have completed the slot
            // between the fast-path check and the lock.
            if slot.status() != SLOT_PENDING {
                continue;
            }
            if window.leader_active {
                // Follower: the leader always notifies after it releases
                // leadership, and every slot it drained is completed by then.
                self.wakeup.wait(&mut window);
                drop(window);
                continue;
            }
            if let Some(cause) = window.poisoned.clone() {
                // Poisoned: nothing may flush. Fail whatever is queued (our
                // own slot included — it was enqueued before the poison
                // landed) and let the loop observe the failure.
                let drained = std::mem::take(&mut window.pending);
                window.opened_at = None;
                drop(window);
                let message = poisoned_message(&cause);
                for member in &drained {
                    member.slot.complete_err(message.clone());
                }
                self.wakeup.notify_all();
                continue;
            }
            // No leader and our slot is still pending, so it is still in the
            // queue: take leadership and fill the window. Idle fast-path: a
            // lone append with no evidence of concurrency skips the fill-wait
            // entirely (see the module docs).
            window.leader_active = true;
            let fill =
                self.fill_idle_windows || window.concurrency_hint || window.pending.len() > 1;
            if fill {
                let opened = window.opened_at.unwrap_or_else(Instant::now);
                while window.pending.len() < self.window_max_batches {
                    let elapsed = opened.elapsed();
                    if elapsed >= self.window_max_wait {
                        break;
                    }
                    self.wakeup
                        .wait_for(&mut window, self.window_max_wait - elapsed);
                }
                if window.pending.len() == 1 && !self.fill_idle_windows {
                    // A full fill-wait still drained solo: the concurrency is
                    // over, let the next lone committer fast-path again.
                    window.concurrency_hint = false;
                }
            }
            let drained = std::mem::take(&mut window.pending);
            window.opened_at = None;
            // Flush outside the lock so new appends can enqueue into the
            // next window meanwhile; `leader_active` stays set, serializing
            // windows (and journal order) until this one is fully complete.
            drop(window);
            let flushed = backend.flush_window(drained);
            let mut window = self.lock();
            if let Err(cause) = flushed {
                // The window fsync failed: every slot in it is already
                // errored and the unsynced records rolled back — poison the
                // committer so nothing flushes until a reopen (see the
                // module docs for why there is no retry).
                window.poisoned = Some(cause);
            }
            window.leader_active = false;
            drop(window);
            self.wakeup.notify_all();
            // Loop: our own slot was in the drained window, so it is
            // completed now and the next iteration returns.
        }
    }

    /// Quiesces the committer: waits out any in-flight window and flushes
    /// everything enqueued, leaving no batch buffered. Operations that must
    /// observe a settled journal (compaction folds, document removal) run
    /// this first — otherwise a window flushing *after* e.g. a checkpoint
    /// fold would land pre-fold batches in the post-fold epoch and replay
    /// would double-apply them.
    pub(crate) fn barrier(&self, backend: &FsBackend) {
        loop {
            let mut window = self.lock();
            if window.leader_active {
                self.wakeup.wait(&mut window);
                drop(window);
                continue;
            }
            if let Some(cause) = window.poisoned.clone() {
                // Poisoned: nothing may flush. Fail the queue — that *is*
                // the settled state a barrier caller needs.
                let drained = std::mem::take(&mut window.pending);
                window.opened_at = None;
                drop(window);
                let message = poisoned_message(&cause);
                for member in &drained {
                    member.slot.complete_err(message.clone());
                }
                self.wakeup.notify_all();
                return;
            }
            if window.pending.is_empty() {
                return;
            }
            // Drain immediately — no fill-wait: the barrier caller must not
            // stall for the window deadline.
            window.leader_active = true;
            let drained = std::mem::take(&mut window.pending);
            window.opened_at = None;
            drop(window);
            let flushed = backend.flush_window(drained);
            let mut window = self.lock();
            if let Err(cause) = flushed {
                window.poisoned = Some(cause);
            }
            window.leader_active = false;
            drop(window);
            self.wakeup.notify_all();
        }
    }

    /// Lifts the poison after a document reopen re-established the on-disk
    /// truth. Safe because the failing flush already rolled its unsynced
    /// records back — there is no half-durable window to resume.
    pub(crate) fn clear_poison(&self) {
        self.lock().poisoned = None;
    }
}

/// What a [`CommitTicket`] still owes its holder.
enum TicketInner {
    /// The append already completed synchronously with this outcome.
    Resolved(Result<(), StoreError>),
    /// The append sits in a group-commit window; resolving means driving
    /// [`GroupCommitter::wait`] through the detached backend handle.
    Window {
        slot: Arc<CommitSlot>,
        committer: Arc<GroupCommitter>,
        backend: FsBackend,
    },
}

/// A pending acknowledgement of an enqueued journal append.
///
/// Returned by
/// [`StorageBackend::append_batch_enqueue`](crate::StorageBackend::append_batch_enqueue):
/// the batch is in its backend's commit pipeline, and the ticket resolves —
/// via [`CommitTicket::wait`], or polled through [`CommitTicket::is_durable`]
/// — once the window fsync makes it durable (or fails). Backends without a
/// group-commit window return tickets that are already resolved.
///
/// Dropping an unresolved ticket **blocks until the append completes**, then
/// discards the outcome: an enqueued batch is never silently abandoned, and
/// the durability error, if any, still surfaces at recovery time.
#[must_use = "an enqueued append is acknowledged only by waiting on its ticket"]
pub struct CommitTicket {
    inner: Option<TicketInner>,
}

impl fmt::Debug for CommitTicket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CommitTicket")
            .field("durable", &self.is_durable())
            .finish()
    }
}

impl CommitTicket {
    /// A ticket for an append that already completed synchronously with
    /// `outcome` — what every backend without a group-commit pipeline
    /// returns (the default-impl degradation path).
    pub fn resolved(outcome: Result<(), StoreError>) -> Self {
        CommitTicket {
            inner: Some(TicketInner::Resolved(outcome)),
        }
    }

    pub(crate) fn window(
        slot: Arc<CommitSlot>,
        committer: Arc<GroupCommitter>,
        backend: FsBackend,
    ) -> Self {
        CommitTicket {
            inner: Some(TicketInner::Window {
                slot,
                committer,
                backend,
            }),
        }
    }

    /// `true` once the append's outcome is known (durably flushed or
    /// failed) — a non-blocking poll; [`CommitTicket::wait`] returns the
    /// outcome itself.
    pub fn is_durable(&self) -> bool {
        match &self.inner {
            None | Some(TicketInner::Resolved(_)) => true,
            Some(TicketInner::Window { slot, .. }) => slot.status() != SLOT_PENDING,
        }
    }

    /// Blocks until the append is durable and returns its outcome. A waiter
    /// that finds no window leader becomes the leader itself and flushes
    /// the window (see [`GroupCommitter`]).
    pub fn wait(mut self) -> Result<(), StoreError> {
        match self.inner.take() {
            None => Ok(()),
            Some(TicketInner::Resolved(outcome)) => outcome,
            Some(TicketInner::Window {
                slot,
                committer,
                backend,
            }) => committer.wait(&slot, &backend),
        }
    }
}

impl Drop for CommitTicket {
    fn drop(&mut self) {
        if let Some(TicketInner::Window {
            slot,
            committer,
            backend,
        }) = self.inner.take()
        {
            // A dropped ticket deliberately discards the outcome: the batch
            // still flushes, and the durability error (if any) resurfaces at
            // recovery time — see the type docs.
            // lint: allow(io-result-drop)
            let _ = committer.wait(&slot, &backend);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::DurabilityStats;

    /// A fresh sync-policy backend has flushed no grouped window: the
    /// occupancy must be an exact `0.0`, never `0/0 = NaN` — the server's
    /// `stats` frame serializes this value for brand-new tenants.
    #[test]
    fn occupancy_zero_windows_is_zero_not_nan() {
        let fresh = DurabilityStats::default();
        assert_eq!(fresh.mean_window_occupancy(), 0.0);
        // Sync commits bump fsyncs without ever opening a window; the
        // guard keys off windows, not commits.
        let sync_only = DurabilityStats {
            fsyncs: 17,
            grouped_commits: 0,
            grouped_windows: 0,
        };
        let occupancy = sync_only.mean_window_occupancy();
        assert!(occupancy.is_finite());
        assert_eq!(occupancy, 0.0);
    }

    #[test]
    fn occupancy_is_commits_per_window() {
        let stats = DurabilityStats {
            fsyncs: 3,
            grouped_commits: 24,
            grouped_windows: 3,
        };
        assert_eq!(stats.mean_window_occupancy(), 8.0);
    }
}
