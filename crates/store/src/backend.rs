//! The pluggable storage abstraction: [`StorageBackend`].
//!
//! The paper's warehouse (Section 6 / slide 16) is a persistent
//! probabilistic tree plus a journal of probabilistic updates; *how* that
//! pair is laid out is an implementation choice. This trait names the
//! operations the warehouse engine needs so the same document set can be
//! served from alternative representations — the shipped implementations are
//! [`FsBackend`](crate::FsBackend) (durable append-only segment journal on
//! the file system) and [`MemBackend`](crate::MemBackend) (in-process, for
//! tests and benches).

use pxml_core::{FuzzyTree, UpdateTransaction};

use crate::error::StoreError;
use crate::group::{CommitTicket, DurabilityStats};

/// A store of named probabilistic XML documents, each a **checkpoint** (the
/// last materialized fuzzy tree) plus a **journal** of committed update
/// batches applied since that checkpoint.
///
/// # Locking and atomicity contract
///
/// Every implementation must guarantee, per document:
///
/// * **Mutations serialize per document.** Two concurrent calls to
///   [`append_batch`](StorageBackend::append_batch),
///   [`save_document`](StorageBackend::save_document),
///   [`checkpoint`](StorageBackend::checkpoint) or
///   [`remove_document`](StorageBackend::remove_document) for the *same*
///   document must behave as if executed one after the other; mutations of
///   *distinct* documents should be able to proceed in parallel (the
///   warehouse engine relies on this for multi-document throughput).
///   Backends are handed out as `Arc<dyn StorageBackend>` shared across
///   threads, so this serialization must be internal.
/// * **`append_batch` is atomic and ordered.** After it returns, recovery
///   sees the batch exactly once, after every previously appended batch; if
///   the process dies mid-call, recovery sees either the whole batch or none
///   of it — never a partial or reordered batch. Durable backends must have
///   flushed the batch to stable storage before returning.
/// * **`checkpoint` folds atomically.** The new checkpoint replaces the old
///   one and empties the journal as one logical step: a crash at any point
///   leaves recovery with either (old checkpoint + full journal) or (new
///   checkpoint + empty journal) — journal batches are never replayed on top
///   of a checkpoint that already contains them, and never lost.
/// * **Reads are torn-free.** [`load_document`](StorageBackend::load_document),
///   [`read_batches`](StorageBackend::read_batches) and the journal meters
///   observe some committed state, never a half-written one.
///
/// The contract deliberately does **not** require cross-document atomicity or
/// a global snapshot: the engine's per-document locks provide all ordering
/// above the storage layer.
pub trait StorageBackend: Send + Sync + std::fmt::Debug {
    /// The names of the stored documents (sorted).
    fn list_documents(&self) -> Result<Vec<String>, StoreError>;

    /// Returns `true` if a document with this name exists.
    fn contains(&self, name: &str) -> bool;

    /// Saves a document checkpoint without touching its journal (used when a
    /// document is first created; the journal is empty then).
    fn save_document(&self, name: &str, fuzzy: &FuzzyTree) -> Result<(), StoreError>;

    /// Loads the last checkpoint of a document (ignoring any journal).
    fn load_document(&self, name: &str) -> Result<FuzzyTree, StoreError>;

    /// Durably appends one committed transaction batch to a document's
    /// journal. Cost must not grow with the journal's accumulated length —
    /// O(batch), the property experiment E12 measures.
    fn append_batch(&self, name: &str, batch: &[UpdateTransaction]) -> Result<(), StoreError>;

    /// The committed batches of a document's journal, in commit order.
    fn read_batches(&self, name: &str) -> Result<Vec<Vec<UpdateTransaction>>, StoreError>;

    /// Number of journaled updates awaiting a checkpoint. Backends keep this
    /// O(1) from journal metadata — it is polled on every commit.
    fn journal_length(&self, name: &str) -> Result<usize, StoreError>;

    /// Number of journaled batches awaiting a checkpoint (O(1); drives
    /// `CompactionPolicy::EveryNBatches`).
    fn journal_batches(&self, name: &str) -> Result<usize, StoreError>;

    /// Total serialized size of the journal in bytes (O(1); drives
    /// `CompactionPolicy::SizeThreshold`).
    fn journal_size_bytes(&self, name: &str) -> Result<u64, StoreError>;

    /// Checkpoints a document: writes `fuzzy` as the new checkpoint and
    /// empties the journal, atomically in the sense of the trait contract.
    fn checkpoint(&self, name: &str, fuzzy: &FuzzyTree) -> Result<(), StoreError>;

    /// Deletes a document, its checkpoint and its journal.
    fn remove_document(&self, name: &str) -> Result<(), StoreError>;

    /// The directory backing the store, when it has one (`None` for purely
    /// in-memory backends).
    fn root_dir(&self) -> Option<&std::path::Path> {
        None
    }

    /// [`append_batch`](StorageBackend::append_batch) through the backend's
    /// group-commit pipeline, when it has one: the batch may share its
    /// durability fsync with concurrently committed batches of *other*
    /// documents, and the call blocks until that shared fsync. The
    /// acknowledgement contract is unchanged — on `Ok` the batch is durable
    /// and recovery replays it; on a crash before the fsync, recovery never
    /// surfaces it.
    ///
    /// The default implementation **degrades to the synchronous path**: it
    /// forwards to `append_batch`, so backends without a group committer
    /// (e.g. [`MemBackend`](crate::MemBackend)) meet the same contract with
    /// per-append durability and the conformance suite passes untouched.
    fn append_batch_grouped(
        &self,
        name: &str,
        batch: &[UpdateTransaction],
    ) -> Result<(), StoreError> {
        self.append_batch(name, batch)
    }

    /// The asynchronous half of group commit: hands the batch to the
    /// backend's commit pipeline and returns a [`CommitTicket`] that
    /// resolves once the batch's fsync window completes. The batch must not
    /// be acknowledged to clients until the ticket resolves `Ok`.
    ///
    /// The default implementation **degrades to the synchronous path**: the
    /// append runs to completion inside this call and the returned ticket is
    /// already resolved with its outcome, so polling or waiting on it never
    /// blocks.
    fn append_batch_enqueue(&self, name: &str, batch: &[UpdateTransaction]) -> CommitTicket {
        CommitTicket::resolved(self.append_batch(name, batch))
    }

    /// Fsync/window observability counters of the backend's durability
    /// pipeline.
    ///
    /// The default implementation returns all-zero stats — backends without
    /// a durability pipeline (or without instrumentation) have nothing to
    /// report, and callers must treat zeros as "not instrumented", not as
    /// "free durability".
    fn durability_stats(&self) -> DurabilityStats {
        DurabilityStats::default()
    }

    /// Drains the backend's group-commit pipeline: waits out any in-flight
    /// fsync window and flushes everything enqueued, so every batch whose
    /// ticket was handed out before this call is durable when it returns.
    /// Long-running embedders (the `pxml-server` tenant LRU, graceful
    /// shutdown) call this before dropping a backend so pipelined commits
    /// are never abandoned mid-window.
    ///
    /// The default implementation is a **no-op**: backends without a group
    /// committer have nothing in flight once their synchronous calls return.
    fn group_barrier(&self) {}

    /// The updates recorded in a document's journal, flattened to
    /// application order.
    fn read_journal(&self, name: &str) -> Result<Vec<UpdateTransaction>, StoreError> {
        Ok(self.read_batches(name)?.into_iter().flatten().collect())
    }

    /// Recovery: the last checkpoint with the journal replayed on top. This
    /// is what the warehouse loads at start-up after a crash.
    fn recover_document(&self, name: &str) -> Result<FuzzyTree, StoreError> {
        let mut fuzzy = self.load_document(name)?;
        for update in self.read_journal(name)? {
            update.apply_to_fuzzy(&mut fuzzy)?;
        }
        Ok(fuzzy)
    }

    /// In-place recovery after a failed commit: drop any cached state for
    /// `name`, re-establish the on-disk truth (truncating a torn or
    /// unsynced journal tail), clear a poisoned commit pipeline, and return
    /// the recovered tree — the checkpoint with the surviving journal
    /// replayed on top. `Warehouse::reopen_document` routes through this to
    /// lift a document out of quarantine.
    ///
    /// The default implementation forwards to
    /// [`recover_document`](StorageBackend::recover_document): backends
    /// without caches or a commit pipeline have nothing else to reset.
    fn reopen_document(&self, name: &str) -> Result<FuzzyTree, StoreError> {
        self.recover_document(name)
    }
}
