//! # pxml-store
//!
//! Storage for probabilistic XML documents behind a pluggable backend
//! abstraction.
//!
//! The paper's prototype stores fuzzy XML documents as plain files on the
//! file system ("File system storage", slide 16). This crate provides that
//! substrate in a durable form, and the trait that lets the warehouse run
//! over alternative representations:
//!
//! * [`backend`] — the [`StorageBackend`] trait: checkpoint + journal
//!   operations with a documented per-document locking/atomicity contract;
//! * [`mod@format`] — the **PrXML** textual format: a fuzzy tree is written as an
//!   ordinary XML document whose uncertain nodes carry a `pxml:cond`
//!   attribute, whose event table is stored in a `pxml:events` header, and
//!   whose root carries the journal epoch its checkpoint folded;
//! * [`journal`] — the textual form of probabilistic update transactions,
//!   batch payloads, and the legacy monolithic journal layout;
//! * [`fs`] — [`FsBackend`]: the durable file-system backend with an
//!   **append-only segment journal** (O(batch) commits, torn-tail crash
//!   recovery, auto-migration of legacy monolithic journals);
//! * [`group`] — the cross-document **group-commit** layer: [`CommitPolicy`],
//!   the leader/follower [`GroupCommitter`] coalescing many documents'
//!   appends into one fsync window, and the [`CommitTicket`] handle of an
//!   enqueued append;
//! * [`mem`] — [`MemBackend`]: the in-process backend for tests and benches;
//! * [`fault`] — [`FaultBackend`]: deterministic fault injection over any
//!   backend, driven by a seeded [`FaultPlan`] (the chaos battery and the
//!   E18 sweep run the whole stack through it).
//!
//! [`DocumentStore`] is the historical name of the file-system store and
//! remains an alias for [`FsBackend`].
//!
//! ```no_run
//! use pxml_core::FuzzyTree;
//! use pxml_store::DocumentStore;
//!
//! let store = DocumentStore::open("/tmp/pxml-warehouse").unwrap();
//! store.save_document("people", &FuzzyTree::new("directory")).unwrap();
//! let loaded = store.load_document("people").unwrap();
//! assert_eq!(loaded.node_count(), 1);
//! ```

pub mod backend;
pub mod error;
pub mod fault;
pub mod format;
pub mod fs;
pub mod group;
pub mod journal;
pub mod mem;

pub use backend::StorageBackend;
pub use error::StoreError;
pub use fault::{is_injected, FaultBackend, FaultKind, FaultOp, FaultPlan};
pub use format::{parse_fuzzy_document, serialize_fuzzy_document};
pub use fs::{FsBackend, FsOptions, DEFAULT_SEGMENT_ROLL_BYTES};
pub use group::{CommitPolicy, CommitTicket, DurabilityStats, GroupCommitter};
pub use journal::{
    parse_batch, parse_batched_journal, parse_update, serialize_batch, serialize_batched_journal,
    serialize_update,
};
pub use mem::MemBackend;

/// The historical name of the file-system store: an alias for [`FsBackend`].
pub type DocumentStore = FsBackend;
