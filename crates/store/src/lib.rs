//! # pxml-store
//!
//! File-system storage for probabilistic XML documents.
//!
//! The paper's prototype stores fuzzy XML documents as plain files on the
//! file system ("File system storage", slide 16). This crate provides that
//! substrate in a durable form:
//!
//! * [`mod@format`] — the **PrXML** textual format: a fuzzy tree is written as an
//!   ordinary XML document whose uncertain nodes carry a `pxml:cond`
//!   attribute and whose event table is stored in a `pxml:events` header;
//! * [`journal`] — the textual form of probabilistic update transactions and
//!   the append-only, batch-structured update journal;
//! * [`store`] — the [`DocumentStore`]: a directory of named documents with
//!   atomic saves (write-to-temp + rename), per-document update journals
//!   whose batch appends commit atomically at a rename, and crash recovery
//!   by journal replay.
//!
//! ```no_run
//! use pxml_core::FuzzyTree;
//! use pxml_store::DocumentStore;
//!
//! let store = DocumentStore::open("/tmp/pxml-warehouse").unwrap();
//! store.save_document("people", &FuzzyTree::new("directory")).unwrap();
//! let loaded = store.load_document("people").unwrap();
//! assert_eq!(loaded.node_count(), 1);
//! ```

pub mod error;
pub mod format;
pub mod journal;
pub mod store;

pub use error::StoreError;
pub use format::{parse_fuzzy_document, serialize_fuzzy_document};
pub use journal::{
    parse_batched_journal, parse_update, serialize_batched_journal, serialize_update,
};
pub use store::DocumentStore;
