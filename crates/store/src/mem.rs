//! [`MemBackend`]: the in-process storage backend.
//!
//! Holds checkpoints and journals in a shared map — nothing touches the file
//! system, so tests and benches can exercise the full warehouse pipeline
//! (including the compaction policy, which reads the journal meters) without
//! scratch directories, and E12 can separate the storage cost of a commit
//! from the engine cost.
//!
//! The batch payloads are round-tripped through the same `<pxml:batch>`
//! serialization as [`FsBackend`](crate::FsBackend), so the journal meters
//! (`journal_size_bytes` in particular) are comparable across backends and a
//! workload that serializes wrongly fails here too.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::{LockClass, Mutex};
use pxml_core::{FuzzyTree, UpdateTransaction};

use crate::backend::StorageBackend;
use crate::error::StoreError;
use crate::journal::serialize_batch;

/// One document's in-memory state.
#[derive(Debug, Clone)]
struct MemDoc {
    checkpoint: FuzzyTree,
    batches: Vec<Vec<UpdateTransaction>>,
    updates: usize,
    bytes: u64,
}

/// The in-memory storage backend (see the module docs).
///
/// Cloning is cheap and clones share the underlying map. Mutations take one
/// store-wide mutex held only for the in-memory bookkeeping — strictly
/// stronger than the per-document serialization the
/// [`StorageBackend`] contract requires, and never held across I/O (there is
/// none).
#[derive(Debug, Clone)]
pub struct MemBackend {
    docs: Arc<Mutex<HashMap<String, MemDoc>>>,
}

impl Default for MemBackend {
    fn default() -> Self {
        MemBackend {
            docs: Arc::new(Mutex::with_class(LockClass::Journal, HashMap::new())),
        }
    }
}

impl MemBackend {
    /// An empty in-memory store.
    pub fn new() -> Self {
        MemBackend::default()
    }

    fn with_doc<R>(
        &self,
        name: &str,
        body: impl FnOnce(&mut MemDoc) -> R,
    ) -> Result<R, StoreError> {
        let mut docs = self.docs.lock();
        let doc = docs
            .get_mut(name)
            .ok_or_else(|| StoreError::MissingDocument(name.to_string()))?;
        Ok(body(doc))
    }
}

impl StorageBackend for MemBackend {
    fn list_documents(&self) -> Result<Vec<String>, StoreError> {
        let mut names: Vec<String> = self.docs.lock().keys().cloned().collect();
        names.sort();
        Ok(names)
    }

    fn contains(&self, name: &str) -> bool {
        self.docs.lock().contains_key(name)
    }

    fn save_document(&self, name: &str, fuzzy: &FuzzyTree) -> Result<(), StoreError> {
        let mut docs = self.docs.lock();
        match docs.get_mut(name) {
            // Overwriting a checkpoint leaves the journal untouched, exactly
            // like the file-system backend.
            Some(doc) => doc.checkpoint = fuzzy.clone(),
            None => {
                docs.insert(
                    name.to_string(),
                    MemDoc {
                        checkpoint: fuzzy.clone(),
                        batches: Vec::new(),
                        updates: 0,
                        bytes: 0,
                    },
                );
            }
        }
        Ok(())
    }

    fn load_document(&self, name: &str) -> Result<FuzzyTree, StoreError> {
        self.with_doc(name, |doc| doc.checkpoint.clone())
    }

    fn append_batch(&self, name: &str, batch: &[UpdateTransaction]) -> Result<(), StoreError> {
        self.with_doc(name, |doc| {
            doc.bytes += serialize_batch(batch).len() as u64;
            doc.updates += batch.len();
            doc.batches.push(batch.to_vec());
        })
    }

    fn read_batches(&self, name: &str) -> Result<Vec<Vec<UpdateTransaction>>, StoreError> {
        match self.docs.lock().get(name) {
            Some(doc) => Ok(doc.batches.clone()),
            // Mirror the file-system backend: an unknown document simply has
            // an empty journal.
            None => Ok(Vec::new()),
        }
    }

    fn journal_length(&self, name: &str) -> Result<usize, StoreError> {
        Ok(self.docs.lock().get(name).map_or(0, |doc| doc.updates))
    }

    fn journal_batches(&self, name: &str) -> Result<usize, StoreError> {
        Ok(self
            .docs
            .lock()
            .get(name)
            .map_or(0, |doc| doc.batches.len()))
    }

    fn journal_size_bytes(&self, name: &str) -> Result<u64, StoreError> {
        Ok(self.docs.lock().get(name).map_or(0, |doc| doc.bytes))
    }

    fn checkpoint(&self, name: &str, fuzzy: &FuzzyTree) -> Result<(), StoreError> {
        self.with_doc(name, |doc| {
            doc.checkpoint = fuzzy.clone();
            doc.batches.clear();
            doc.updates = 0;
            doc.bytes = 0;
        })
    }

    fn remove_document(&self, name: &str) -> Result<(), StoreError> {
        self.docs
            .lock()
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| StoreError::MissingDocument(name.to_string()))
    }
}
