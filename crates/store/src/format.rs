//! The PrXML on-disk format for fuzzy trees.
//!
//! A fuzzy tree is stored as an ordinary XML document:
//!
//! ```xml
//! <pxml:document xmlns:pxml="urn:pxml">
//!   <pxml:events>
//!     <pxml:event name="w1" probability="0.8"/>
//!     <pxml:event name="w2" probability="0.7"/>
//!   </pxml:events>
//!   <pxml:content>
//!     <A>
//!       <B pxml:cond="w1 !w2"/>
//!       <C/>
//!       <D pxml:cond="w2"/>
//!     </A>
//!   </pxml:content>
//! </pxml:document>
//! ```
//!
//! Element nodes carry their condition in a `pxml:cond` attribute; text nodes
//! with a condition are wrapped in a `pxml:text` element (attributes cannot
//! be attached to character data). Certain nodes are written without any
//! PrXML markup, so a certain document round-trips as plain XML plus a small
//! header.
//!
//! Checkpoints written by the segment-journal store additionally carry a
//! `pxml:epoch` attribute on the root: the journal generation this checkpoint
//! folded. It rides the checkpoint file itself so the checkpoint rename stays
//! the *single* atomic commit point of a compaction — recovery replays only
//! segments of the checkpoint's own epoch, which makes a crash between the
//! rename and the deletion of the folded segments harmless (see
//! [`crate::fs`]). Documents without the attribute are epoch 0.

use pxml_core::FuzzyTree;
use pxml_event::Condition;
use pxml_tree::{Label, NodeId, XmlDocument, XmlElement, XmlNode};

use crate::error::StoreError;

/// Attribute carrying a node condition.
pub const CONDITION_ATTRIBUTE: &str = "pxml:cond";
/// Wrapper element for conditional text nodes.
pub const TEXT_ELEMENT: &str = "pxml:text";
/// Attribute on `<pxml:document>` carrying the journal epoch the checkpoint
/// folded (absent = epoch 0).
pub const EPOCH_ATTRIBUTE: &str = "pxml:epoch";

/// Serializes a fuzzy tree to the PrXML textual format (epoch 0).
pub fn serialize_fuzzy_document(fuzzy: &FuzzyTree, pretty: bool) -> String {
    serialize_fuzzy_document_with_epoch(fuzzy, pretty, 0)
}

/// Serializes a fuzzy tree to the PrXML textual format, stamping the given
/// journal epoch on the `<pxml:document>` root (0 is omitted, keeping plain
/// documents free of storage metadata).
pub fn serialize_fuzzy_document_with_epoch(fuzzy: &FuzzyTree, pretty: bool, epoch: u64) -> String {
    let mut events = XmlElement::new("pxml:events");
    for (_, name, probability) in fuzzy.events().iter() {
        events.children.push(XmlNode::Element(
            XmlElement::new("pxml:event")
                .with_attribute("name", name)
                .with_attribute("probability", format_probability(probability)),
        ));
    }
    let mut content = XmlElement::new("pxml:content");
    content
        .children
        .push(XmlNode::Element(element_for(fuzzy, fuzzy.root())));
    let mut root = XmlElement::new("pxml:document").with_attribute("xmlns:pxml", "urn:pxml");
    if epoch != 0 {
        root.set_attribute(EPOCH_ATTRIBUTE, epoch.to_string());
    }
    let document = XmlDocument::new(root.with_child(events).with_child(content));
    document.to_xml_string(pretty)
}

/// Extracts the journal epoch from serialized PrXML text without parsing the
/// whole document: the attribute lives in the opening `<pxml:document>` tag,
/// so only the text up to the first `>` is scanned. Returns 0 when the
/// attribute is absent (plain or pre-segment documents).
pub fn extract_epoch(input: &str) -> u64 {
    let Some(open) = input.find("<pxml:document") else {
        return 0;
    };
    let rest = &input[open..];
    let Some(tag_end) = rest.find('>') else {
        return 0;
    };
    let tag = &rest[..tag_end];
    let Some(at) = tag.find(EPOCH_ATTRIBUTE) else {
        return 0;
    };
    tag[at + EPOCH_ATTRIBUTE.len()..]
        .trim_start()
        .strip_prefix('=')
        .map(|rest| rest.trim_start())
        .and_then(|rest| rest.strip_prefix('"'))
        .and_then(|rest| rest.split('"').next())
        .and_then(|value| value.parse().ok())
        .unwrap_or(0)
}

fn format_probability(probability: f64) -> String {
    // Full round-trip precision without trailing noise for common values.
    let mut text = format!("{probability}");
    if !text.contains('.') && !text.contains('e') {
        text.push_str(".0");
    }
    text
}

fn element_for(fuzzy: &FuzzyTree, node: NodeId) -> XmlElement {
    let tree = fuzzy.tree();
    let name = tree
        .label(node)
        .element_name()
        .unwrap_or(TEXT_ELEMENT)
        .to_string();
    let mut element = XmlElement::new(name);
    let condition = fuzzy.condition(node);
    if !condition.is_empty() {
        element.set_attribute(CONDITION_ATTRIBUTE, condition.display(fuzzy.events()));
    }
    for &child in tree.children(node) {
        match tree.label(child) {
            Label::Element(_) => element
                .children
                .push(XmlNode::Element(element_for(fuzzy, child))),
            Label::Text(value) => {
                let child_condition = fuzzy.condition(child);
                if child_condition.is_empty() {
                    element.children.push(XmlNode::Text(value.clone()));
                } else {
                    element.children.push(XmlNode::Element(
                        XmlElement::new(TEXT_ELEMENT)
                            .with_attribute(
                                CONDITION_ATTRIBUTE,
                                child_condition.display(fuzzy.events()),
                            )
                            .with_text(value.clone()),
                    ));
                }
            }
        }
    }
    element
}

/// Parses a PrXML document back into a fuzzy tree.
pub fn parse_fuzzy_document(input: &str) -> Result<FuzzyTree, StoreError> {
    let document = XmlDocument::parse(input)?;
    let root = &document.root;
    if root.name != "pxml:document" {
        return Err(StoreError::Format(format!(
            "expected a <pxml:document> root, found <{}>",
            root.name
        )));
    }
    let events_element = root
        .child_element("pxml:events")
        .ok_or_else(|| StoreError::Format("missing <pxml:events> header".into()))?;
    let content = root
        .child_element("pxml:content")
        .ok_or_else(|| StoreError::Format("missing <pxml:content> section".into()))?;
    let data_root = content
        .child_elements()
        .next()
        .ok_or_else(|| StoreError::Format("<pxml:content> has no root element".into()))?;

    let mut fuzzy = FuzzyTree::new(data_root.name.clone());
    for event in events_element.child_elements() {
        if event.name != "pxml:event" {
            return Err(StoreError::Format(format!(
                "unexpected <{}> inside <pxml:events>",
                event.name
            )));
        }
        let name = event
            .attribute("name")
            .ok_or_else(|| StoreError::Format("<pxml:event> without a name".into()))?;
        let probability: f64 = event
            .attribute("probability")
            .ok_or_else(|| StoreError::Format(format!("event `{name}` has no probability")))?
            .parse()
            .map_err(|_| {
                StoreError::Format(format!("event `{name}` has a malformed probability"))
            })?;
        fuzzy.add_event(name, probability)?;
    }

    // The root's own condition must be empty; reject it explicitly for a
    // clearer error than the model-level one.
    if data_root
        .attribute(CONDITION_ATTRIBUTE)
        .is_some_and(|c| !c.trim().is_empty())
    {
        return Err(StoreError::Core(
            pxml_core::CoreError::RootConditionNotAllowed,
        ));
    }
    let root_node = fuzzy.root();
    populate(&mut fuzzy, root_node, data_root)?;
    fuzzy.validate()?;
    Ok(fuzzy)
}

fn populate(fuzzy: &mut FuzzyTree, node: NodeId, element: &XmlElement) -> Result<(), StoreError> {
    for child in &element.children {
        match child {
            XmlNode::Comment(_) => {}
            XmlNode::Text(text) => {
                let trimmed = text.trim();
                if !trimmed.is_empty() {
                    fuzzy.add_text(node, trimmed.to_string());
                }
            }
            XmlNode::Element(child_element) => {
                let condition = match child_element.attribute(CONDITION_ATTRIBUTE) {
                    Some(text) => Condition::parse(text, fuzzy.events())?,
                    None => Condition::always(),
                };
                if child_element.name == TEXT_ELEMENT {
                    let value = child_element.text();
                    let text_node = fuzzy.add_text(node, value.trim().to_string());
                    fuzzy.set_condition(text_node, condition)?;
                } else {
                    let child_node = fuzzy.add_element(node, child_element.name.clone());
                    fuzzy.set_condition(child_node, condition)?;
                    populate(fuzzy, child_node, child_element)?;
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pxml_event::Literal;

    fn slide12() -> FuzzyTree {
        let mut fuzzy = FuzzyTree::new("A");
        let w1 = fuzzy.add_event("w1", 0.8).unwrap();
        let w2 = fuzzy.add_event("w2", 0.7).unwrap();
        let root = fuzzy.root();
        let b = fuzzy.add_element(root, "B");
        fuzzy
            .set_condition(
                b,
                Condition::from_literals([Literal::pos(w1), Literal::neg(w2)]),
            )
            .unwrap();
        fuzzy.add_element(root, "C");
        let d = fuzzy.add_element(root, "D");
        fuzzy
            .set_condition(d, Condition::from_literal(Literal::pos(w2)))
            .unwrap();
        fuzzy
    }

    #[test]
    fn serialization_contains_expected_markup() {
        let text = serialize_fuzzy_document(&slide12(), true);
        assert!(text.contains("<pxml:document"));
        assert!(text.contains("<pxml:event name=\"w1\" probability=\"0.8\"/>"));
        assert!(text.contains("pxml:cond=\"w1 !w2\""));
        assert!(text.contains("<C/>"));
    }

    #[test]
    fn round_trip_preserves_semantics() {
        let original = slide12();
        let text = serialize_fuzzy_document(&original, true);
        let reparsed = parse_fuzzy_document(&text).unwrap();
        assert_eq!(reparsed.event_count(), 2);
        assert!(original.semantically_equivalent(&reparsed, 1e-12).unwrap());
        // Compact form round-trips too.
        let compact = serialize_fuzzy_document(&original, false);
        let reparsed2 = parse_fuzzy_document(&compact).unwrap();
        assert!(original.semantically_equivalent(&reparsed2, 1e-12).unwrap());
    }

    #[test]
    fn text_values_and_conditional_text_round_trip() {
        let mut fuzzy = FuzzyTree::new("person");
        let w = fuzzy.add_event("w", 0.4).unwrap();
        let name = fuzzy.add_element(fuzzy.root(), "name");
        fuzzy.add_text(name, "Alan Turing");
        let phone = fuzzy.add_element(fuzzy.root(), "phone");
        let digits = fuzzy.add_text(phone, "+44 1234");
        fuzzy
            .set_condition(digits, Condition::from_literal(Literal::pos(w)))
            .unwrap();
        let text = serialize_fuzzy_document(&fuzzy, true);
        assert!(text.contains("<pxml:text"));
        let reparsed = parse_fuzzy_document(&text).unwrap();
        assert!(fuzzy.semantically_equivalent(&reparsed, 1e-12).unwrap());
        let reparsed_name = reparsed.tree().find_elements("name")[0];
        assert_eq!(
            reparsed.tree().node_value(reparsed_name),
            Some("Alan Turing")
        );
    }

    #[test]
    fn certain_documents_round_trip_with_empty_event_table() {
        let fuzzy = FuzzyTree::from_tree(
            pxml_tree::parse_data_tree("<lib><book><title>TAOCP</title></book></lib>").unwrap(),
        );
        let text = serialize_fuzzy_document(&fuzzy, true);
        let reparsed = parse_fuzzy_document(&text).unwrap();
        assert_eq!(reparsed.event_count(), 0);
        assert!(reparsed.tree().isomorphic(fuzzy.tree()));
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        assert!(matches!(
            parse_fuzzy_document("<not-pxml/>"),
            Err(StoreError::Format(_))
        ));
        assert!(matches!(
            parse_fuzzy_document(
                "<pxml:document><pxml:content><a/></pxml:content></pxml:document>"
            ),
            Err(StoreError::Format(_))
        ));
        assert!(matches!(
            parse_fuzzy_document("<pxml:document><pxml:events/></pxml:document>"),
            Err(StoreError::Format(_))
        ));
        assert!(matches!(
            parse_fuzzy_document("<pxml:document><pxml:events/><pxml:content/></pxml:document>"),
            Err(StoreError::Format(_))
        ));
        assert!(parse_fuzzy_document("not xml at all").is_err());
    }

    #[test]
    fn parse_rejects_unknown_events_and_bad_probabilities() {
        let unknown_event = r#"<pxml:document>
            <pxml:events/>
            <pxml:content><a><b pxml:cond="ghost"/></a></pxml:content>
        </pxml:document>"#;
        assert!(matches!(
            parse_fuzzy_document(unknown_event),
            Err(StoreError::Event(_))
        ));
        let bad_probability = r#"<pxml:document>
            <pxml:events><pxml:event name="w" probability="huge"/></pxml:events>
            <pxml:content><a/></pxml:content>
        </pxml:document>"#;
        assert!(matches!(
            parse_fuzzy_document(bad_probability),
            Err(StoreError::Format(_))
        ));
        let out_of_range = r#"<pxml:document>
            <pxml:events><pxml:event name="w" probability="1.5"/></pxml:events>
            <pxml:content><a/></pxml:content>
        </pxml:document>"#;
        assert!(matches!(
            parse_fuzzy_document(out_of_range),
            Err(StoreError::Event(_))
        ));
    }

    #[test]
    fn parse_rejects_condition_on_root() {
        let text = r#"<pxml:document>
            <pxml:events><pxml:event name="w" probability="0.5"/></pxml:events>
            <pxml:content><a pxml:cond="w"><b/></a></pxml:content>
        </pxml:document>"#;
        assert!(matches!(
            parse_fuzzy_document(text),
            Err(StoreError::Core(
                pxml_core::CoreError::RootConditionNotAllowed
            ))
        ));
    }

    #[test]
    fn probability_formatting_round_trips() {
        assert_eq!(format_probability(0.8), "0.8");
        assert_eq!(format_probability(1.0), "1.0");
        assert_eq!(format_probability(0.0), "0.0");
        let tricky = 0.1 + 0.2; // 0.30000000000000004
        let text = format_probability(tricky);
        let back: f64 = text.parse().unwrap();
        assert_eq!(back, tricky);
    }
}
