//! [`FsBackend`]: the durable file-system backend with an **append-only
//! segment journal**.
//!
//! Layout of a store rooted at `dir`:
//!
//! ```text
//! dir/
//!   <name>.pxml                   -- last checkpoint (PrXML; carries pxml:epoch)
//!   <name>.journal.<e>.<s>.seg    -- journal segment: epoch <e>, sequence <s>
//! ```
//!
//! # Segment format
//!
//! A segment file is a sequence of **records**, one per committed batch:
//!
//! ```text
//! [payload_len: u32 LE][update_count: u32 LE][payload: UTF-8 <pxml:batch> XML]
//! ```
//!
//! [`FsBackend::append_batch`] appends one record to the highest-sequence
//! segment of the current epoch (rolling to a new sequence number once the
//! active segment exceeds the roll threshold) and fsyncs it — commit cost is
//! **O(batch)**, independent of how many batches the journal already holds.
//! The `update_count` header field lets the store rebuild its per-document
//! journal meters (batches, updates, bytes) by walking headers only, so
//! [`FsBackend::journal_length`] is O(1) after the one-time scan.
//!
//! # Crash recovery
//!
//! Recovery replays the checkpoint plus the records of every segment of the
//! checkpoint's **epoch**, in (sequence, offset) order:
//!
//! * a **torn tail record** (the process died mid-append: a short header or
//!   fewer payload bytes than the length prefix promises) is detected in the
//!   highest-sequence segment, discarded and truncated away — the batch never
//!   reached its commit point. A short record *before* the tail is real
//!   corruption and reported as an error;
//! * a **compaction** ([`FsBackend::checkpoint`]) writes the new checkpoint
//!   (tmp + rename, stamped with `epoch + 1`) and only then deletes the
//!   folded segments. The rename is the single commit point: a crash in
//!   between leaves old-epoch segments on disk, which recovery ignores (their
//!   batches are already inside the checkpoint) and the next open sweeps;
//! * a **legacy monolithic journal** (`<name>.journal`, the pre-segment
//!   layout) is auto-migrated at [`FsBackend::open`]: its batches are
//!   rewritten as records of segment `<name>.journal.0.0.seg` and the old
//!   file is removed.
//!
//! [`FsBackend::open`] also sweeps stale debris: `.tmp` staging files of
//! checkpoints/compactions that never reached their rename, and orphaned
//! segment or legacy-journal files whose checkpoint is gone (the remains of a
//! document removal killed halfway).
//!
//! # Concurrency
//!
//! Every operation on a document takes a **per-document** mutex (shared by
//! all clones of the backend) that also guards the document's journal meters,
//! so same-document operations serialize while unrelated documents proceed in
//! parallel — there is no store-wide lock held across I/O. Checkpoint reads
//! are rename-safe: a concurrent compaction swaps the file atomically, so a
//! reader sees either the previous or the new checkpoint, never a torn file.

use std::collections::HashMap;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{LockClass, Mutex};
use pxml_core::{FuzzyTree, UpdateTransaction};

use crate::backend::StorageBackend;
use crate::error::StoreError;
use crate::fault::{FaultOp, FaultPlan};
use crate::format::{extract_epoch, parse_fuzzy_document, serialize_fuzzy_document_with_epoch};
use crate::group::{CommitPolicy, CommitTicket, DurabilityStats, GroupCommitter, PendingAppend};
use crate::journal::{parse_batch, parse_batched_journal, serialize_batch};

/// Bytes of each record header: `payload_len: u32 LE` + `update_count: u32 LE`.
const RECORD_HEADER_BYTES: u64 = 8;

/// Default segment roll threshold: once the active segment grows past this
/// many bytes, the next append starts a new segment file. Bounding the
/// active segment bounds the per-append fsync work (on file systems where
/// fsync cost grows with file size) and the torn-tail scan — both part of
/// the flat-commit-cost claim E12 measures.
pub const DEFAULT_SEGMENT_ROLL_BYTES: u64 = 512 * 1024;

/// Per-document journal meters and append cursor, rebuilt once per process by
/// scanning record headers and kept incrementally current afterwards. The
/// mutex around it doubles as the document's write lock.
#[derive(Debug, Default)]
struct DocMeta {
    /// Whether the on-disk state has been scanned into the fields below.
    loaded: bool,
    /// The journal epoch of the document's checkpoint.
    epoch: u64,
    /// Sequence number of the active (highest) segment; `None` while the
    /// journal is empty.
    active_seq: Option<u64>,
    /// Bytes already in the active segment (the roll trigger).
    active_len: u64,
    /// Committed batches awaiting a checkpoint.
    batches: usize,
    /// Journaled updates awaiting a checkpoint.
    updates: usize,
    /// Total record bytes across the journal's segments.
    bytes: u64,
}

impl DocMeta {
    fn reset_journal(&mut self, epoch: u64) {
        self.epoch = epoch;
        self.active_seq = None;
        self.active_len = 0;
        self.batches = 0;
        self.updates = 0;
        self.bytes = 0;
    }

    /// The cursor/meter state a failed fsync must roll back to.
    fn snapshot(&self) -> MetaSnapshot {
        MetaSnapshot {
            active_seq: self.active_seq,
            active_len: self.active_len,
            batches: self.batches,
            updates: self.updates,
            bytes: self.bytes,
        }
    }

    fn restore(&mut self, saved: &MetaSnapshot) {
        self.active_seq = saved.active_seq;
        self.active_len = saved.active_len;
        self.batches = saved.batches;
        self.updates = saved.updates;
        self.bytes = saved.bytes;
    }
}

/// A copy of [`DocMeta`]'s journal cursor and meters, taken before records
/// are written so a failed fsync round can roll the document back to its
/// last durable state (see [`FsBackend::rollback_unsynced`]).
#[derive(Debug, Clone, Copy)]
struct MetaSnapshot {
    active_seq: Option<u64>,
    active_len: u64,
    batches: usize,
    updates: usize,
    bytes: u64,
}

/// Construction options for [`FsBackend`] ([`FsBackend::with_options`]).
#[derive(Debug, Clone)]
pub struct FsOptions {
    /// Segment roll threshold in bytes; see [`DEFAULT_SEGMENT_ROLL_BYTES`].
    pub segment_roll_bytes: u64,
    /// How acknowledged appends become durable: per-append fsync rounds
    /// ([`CommitPolicy::Sync`], the default) or cross-document group commit
    /// ([`CommitPolicy::Grouped`]).
    pub commit: CommitPolicy,
    /// Artificial latency added to every fsync round, serialized through a
    /// shared device gate — a benchmark aid modelling storage whose flush
    /// cost dominates (the regime group commit exists for), so E14 measures
    /// the protocol rather than the page cache of the build machine.
    /// `Duration::ZERO` (the default) disables the model entirely.
    pub simulated_sync_latency: Duration,
    /// Deliberate-window mode for tests and benchmarks of the grouped
    /// policy: when `true`, a solo window leader waits out the fill window
    /// (`window_max_wait`) even with no sign of concurrent committers,
    /// instead of taking the idle fast-path that fsyncs a lone append
    /// immediately (see [`GroupCommitter`]'s module docs). `false` (the
    /// default) is what production sessions want.
    pub group_fill_idle_windows: bool,
    /// A fault plan the backend's **fsync funnel** consults before every
    /// real device flush — the injection point a
    /// [`FaultBackend`](crate::FaultBackend) wrapper cannot see from the
    /// trait surface. Share the same plan with the wrapper so its op
    /// counters cover the whole stack. `None` (the default) disables fsync
    /// injection entirely.
    pub fault: Option<Arc<FaultPlan>>,
}

impl Default for FsOptions {
    fn default() -> Self {
        FsOptions {
            segment_roll_bytes: DEFAULT_SEGMENT_ROLL_BYTES,
            commit: CommitPolicy::default(),
            simulated_sync_latency: Duration::ZERO,
            group_fill_idle_windows: false,
            fault: None,
        }
    }
}

/// The (possibly simulated) flush device shared by all clones of one
/// backend: fsync rounds serialize on the gate for `latency` each when the
/// model is enabled.
#[derive(Debug)]
struct Device {
    latency: Duration,
    gate: Mutex<()>,
}

/// The lock-free durability counters behind [`FsBackend::durability_stats`],
/// shared by all clones.
#[derive(Debug, Default)]
struct SyncCounters {
    fsyncs: AtomicUsize,
    grouped_commits: AtomicUsize,
    grouped_windows: AtomicUsize,
}

/// The file-system storage backend (see the module docs for the on-disk
/// format and crash-recovery rules).
///
/// Cloning is cheap and clones share the per-document mutexes, so a backend
/// handed to several threads keeps same-document operations serialized.
#[derive(Debug, Clone)]
pub struct FsBackend {
    root: PathBuf,
    roll_bytes: u64,
    /// One meta + write mutex per document name, shared across clones; never
    /// held for two documents at once. A name's entry deliberately survives
    /// document removal (see [`FsBackend::remove_document`]).
    metas: Arc<Mutex<HashMap<String, Arc<Mutex<DocMeta>>>>>,
    /// The group committer under [`CommitPolicy::Grouped`]; `None` makes
    /// every grouped entry point degrade to the synchronous path.
    group: Option<Arc<GroupCommitter>>,
    device: Arc<Device>,
    counters: Arc<SyncCounters>,
    /// The fault plan of [`FsOptions::fault`], consulted by the fsync
    /// funnel; `None` in production.
    fault: Option<Arc<FaultPlan>>,
}

/// One just-written journal record: the still-open (not yet fsync'd)
/// segment file, its sequence number, and whether this record created the
/// file — a directory mutation the covering fsync round must flush too.
struct AppendedRecord {
    file: fs::File,
    seq: u64,
    fresh: bool,
}

/// The parsed form of a segment file name `<name>.journal.<epoch>.<seq>.seg`.
struct SegmentName {
    document: String,
    epoch: u64,
    seq: u64,
}

/// Parses a segment file name from the right, so document names containing
/// dots stay unambiguous.
fn parse_segment_name(file_name: &str) -> Option<SegmentName> {
    let rest = file_name.strip_suffix(".seg")?;
    let (rest, seq) = rest.rsplit_once('.')?;
    let (rest, epoch) = rest.rsplit_once('.')?;
    let document = rest.strip_suffix(".journal")?;
    Some(SegmentName {
        document: document.to_string(),
        epoch: epoch.parse().ok()?,
        seq: seq.parse().ok()?,
    })
}

impl FsBackend {
    /// Opens (creating it if needed) a store rooted at `root`: sweeps stale
    /// debris (`.tmp` staging files, orphaned segments and legacy journals of
    /// removed documents) and migrates any legacy monolithic `<name>.journal`
    /// files to the segment format.
    pub fn open(root: impl AsRef<Path>) -> Result<Self, StoreError> {
        Self::with_options(root, FsOptions::default())
    }

    /// [`FsBackend::open`] with an explicit segment roll threshold (exposed
    /// for tests that need multi-segment journals without megabytes of data).
    pub fn with_segment_roll_bytes(
        root: impl AsRef<Path>,
        roll_bytes: u64,
    ) -> Result<Self, StoreError> {
        Self::with_options(
            root,
            FsOptions {
                segment_roll_bytes: roll_bytes,
                ..FsOptions::default()
            },
        )
    }

    /// [`FsBackend::open`] with full [`FsOptions`] — notably the
    /// [`CommitPolicy`] selecting per-append fsyncs or group commit.
    pub fn with_options(root: impl AsRef<Path>, options: FsOptions) -> Result<Self, StoreError> {
        let root = root.as_ref().to_path_buf();
        fs::create_dir_all(&root)?;
        let group = match options.commit {
            CommitPolicy::Sync => None,
            CommitPolicy::Grouped {
                window_max_batches,
                window_max_wait,
            } => Some(Arc::new(GroupCommitter::new(
                window_max_batches,
                window_max_wait,
                options.group_fill_idle_windows,
            ))),
        };
        let backend = FsBackend {
            root,
            roll_bytes: options.segment_roll_bytes.max(1),
            metas: Arc::new(Mutex::with_class(
                LockClass::JournalRegistry,
                HashMap::new(),
            )),
            group,
            device: Arc::new(Device {
                latency: options.simulated_sync_latency,
                gate: Mutex::with_class(LockClass::Device, ()),
            }),
            counters: Arc::new(SyncCounters::default()),
            fault: options.fault,
        };
        backend.sweep_and_migrate()?;
        Ok(backend)
    }

    /// A clone with the group committer detached: it shares every meter,
    /// counter and the device gate, but its appends take the synchronous
    /// path. Window flushes and ticket waits run through such a handle so
    /// they can never re-enter the committer they serve.
    fn degrouped(&self) -> FsBackend {
        FsBackend {
            group: None,
            ..self.clone()
        }
    }

    /// The open-time sweep: discard commit debris that never reached a
    /// rename commit point, drop files orphaned by a half-done removal, and
    /// migrate legacy monolithic journals.
    fn sweep_and_migrate(&self) -> Result<(), StoreError> {
        let mut checkpoints: Vec<String> = Vec::new();
        let mut segments: Vec<(PathBuf, SegmentName)> = Vec::new();
        let mut legacy: Vec<(PathBuf, String)> = Vec::new();
        for entry in fs::read_dir(&self.root)? {
            let path = entry?.path();
            let (Some(file_name), Some(ext)) = (
                path.file_name().and_then(|n| n.to_str()).map(String::from),
                path.extension().and_then(|e| e.to_str()).map(String::from),
            ) else {
                continue;
            };
            match ext.as_str() {
                // A `.tmp` is a staged checkpoint, compaction output or
                // migration that was killed before its rename: the state it
                // carried never reached a commit point, so it must not
                // survive into recovery.
                "tmp" => fs::remove_file(&path)?,
                "seg" => {
                    if let Some(parsed) = parse_segment_name(&file_name) {
                        segments.push((path, parsed));
                    }
                }
                "journal" => {
                    if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                        legacy.push((path.clone(), stem.to_string()));
                    }
                }
                "pxml" => {
                    if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                        checkpoints.push(stem.to_string());
                    }
                }
                _ => {}
            }
        }
        // Orphaned segments: a document removal deletes the checkpoint first,
        // so segments without a checkpoint belong to a removal that died
        // before finishing.
        let mut has_segments: std::collections::HashSet<String> = std::collections::HashSet::new();
        for (path, parsed) in &segments {
            if checkpoints.iter().any(|c| c == &parsed.document) {
                has_segments.insert(parsed.document.clone());
            } else {
                fs::remove_file(path)?;
            }
        }
        for (path, name) in legacy {
            if !checkpoints.iter().any(|c| c == &name) {
                // Same orphan rule as segments.
                fs::remove_file(&path)?;
            } else if has_segments.contains(&name) {
                // Segments can only coexist with a legacy journal when a
                // previous migration was killed after its rename commit
                // point: the segment already holds the journal, so the
                // leftover source file is safe to drop.
                fs::remove_file(&path)?;
            } else {
                self.migrate_legacy_journal(&path, &name)?;
            }
        }
        Ok(())
    }

    /// Rewrites a legacy monolithic journal as segment
    /// `<name>.journal.0.0.seg` (legacy checkpoints are always epoch 0). The
    /// segment is staged to a `.tmp` and renamed — the commit point — before
    /// the legacy file is removed, so a crash at any step leaves a state the
    /// next open handles.
    fn migrate_legacy_journal(&self, legacy_path: &Path, name: &str) -> Result<(), StoreError> {
        let batches = parse_batched_journal(&fs::read_to_string(legacy_path)?)?;
        if !batches.is_empty() {
            let mut encoded = Vec::new();
            for batch in &batches {
                encoded.extend_from_slice(&encode_record(batch));
            }
            let staged = self.root.join(format!(".{name}.journal.0.0.seg.tmp"));
            let mut file = fs::File::create(&staged)?;
            file.write_all(&encoded)?;
            file.sync_all()?;
            drop(file);
            fs::rename(&staged, self.segment_path(name, 0, 0))?;
            // The rename is the migration's commit point: make it durable
            // before the source is unlinked, or power loss could reorder the
            // two and drop the journal entirely.
            self.sync_dir()?;
        }
        fs::remove_file(legacy_path)?;
        Ok(())
    }

    /// Flushes the store directory itself: file creations, renames and
    /// unlinks live in the directory entry, and `fsync` of the file alone
    /// does not make them power-loss durable. Called whenever an operation's
    /// durability or ordering depends on a directory mutation having reached
    /// disk.
    fn sync_dir(&self) -> Result<(), StoreError> {
        fs::File::open(&self.root)?.sync_all()?;
        Ok(())
    }

    /// The meta/write mutex of one document (created on first use). The
    /// registry lock is held only long enough to clone the per-document
    /// `Arc`.
    fn meta(&self, name: &str) -> Arc<Mutex<DocMeta>> {
        self.metas
            .lock()
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Mutex::with_class(LockClass::Journal, DocMeta::default())))
            .clone()
    }

    /// The directory backing this store.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn document_path(&self, name: &str) -> PathBuf {
        self.root.join(format!("{name}.pxml"))
    }

    fn segment_path(&self, name: &str, epoch: u64, seq: u64) -> PathBuf {
        self.root.join(format!("{name}.journal.{epoch}.{seq}.seg"))
    }

    /// The document's current-epoch segment files, derived from the loaded
    /// journal meters — sequences run contiguously from 0 to the active one,
    /// so no directory scan is needed on the hot paths (reads, compaction).
    fn current_segment_paths(&self, name: &str, meta: &DocMeta) -> Vec<PathBuf> {
        match meta.active_seq {
            None => Vec::new(),
            Some(active) => (0..=active)
                .map(|seq| self.segment_path(name, meta.epoch, seq))
                .collect(),
        }
    }

    /// All segment files of one document (any epoch), found by scanning the
    /// store directory — O(total store entries), so reserved for the paths
    /// that genuinely need to see stale or orphaned files (the first load of
    /// a document and its removal).
    fn segments_of(&self, name: &str) -> Result<Vec<(PathBuf, SegmentName)>, StoreError> {
        let mut segments = Vec::new();
        for entry in fs::read_dir(&self.root)? {
            let path = entry?.path();
            let Some(file_name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            if let Some(parsed) = parse_segment_name(file_name) {
                if parsed.document == name {
                    segments.push((path, parsed));
                }
            }
        }
        segments.sort_by_key(|(_, parsed)| (parsed.epoch, parsed.seq));
        Ok(segments)
    }

    /// Rebuilds a document's journal meters from disk if this is the first
    /// touch: reads the checkpoint's epoch, drops segments of older epochs
    /// (the debris of a compaction killed between its rename commit point and
    /// the segment deletion — their batches are already folded into the
    /// checkpoint), truncates a torn tail record, and sums the headers.
    fn ensure_loaded(&self, name: &str, meta: &mut DocMeta) -> Result<(), StoreError> {
        if meta.loaded {
            return Ok(());
        }
        let checkpoint = self.document_path(name);
        let epoch = if checkpoint.exists() {
            extract_epoch(&fs::read_to_string(&checkpoint)?)
        } else {
            0
        };
        meta.reset_journal(epoch);
        let segments = self.segments_of(name)?;
        let last_current = segments
            .iter()
            .rev()
            .find(|(_, parsed)| parsed.epoch == epoch)
            .map(|(path, _)| path.clone());
        for (path, parsed) in segments {
            if parsed.epoch != epoch {
                fs::remove_file(&path)?;
                continue;
            }
            let is_tail = Some(&path) == last_current.as_ref();
            let scan = scan_segment(&path, is_tail)?;
            if scan.torn_at.is_some() {
                // The tail record never reached its commit point (the append
                // died mid-write): truncate it away so the next append starts
                // on a record boundary.
                let file = fs::OpenOptions::new().write(true).open(&path)?;
                file.set_len(scan.sound_bytes)?;
                file.sync_all()?;
            }
            meta.batches += scan.batches;
            meta.updates += scan.updates;
            meta.bytes += scan.sound_bytes;
            meta.active_seq = Some(parsed.seq);
            meta.active_len = scan.sound_bytes;
        }
        meta.loaded = true;
        Ok(())
    }

    /// Lists the names of the stored documents (sorted).
    pub fn list_documents(&self) -> Result<Vec<String>, StoreError> {
        let mut names = Vec::new();
        for entry in fs::read_dir(&self.root)? {
            let path = entry?.path();
            if path.extension().and_then(|ext| ext.to_str()) == Some("pxml") {
                if let Some(stem) = path.file_stem().and_then(|stem| stem.to_str()) {
                    names.push(stem.to_string());
                }
            }
        }
        names.sort();
        Ok(names)
    }

    /// Returns `true` if a document with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.document_path(name).exists()
    }

    /// Saves a document checkpoint atomically (write to a temporary file in
    /// the same directory, then rename over the target), preserving the
    /// document's journal epoch and leaving the journal untouched.
    pub fn save_document(&self, name: &str, fuzzy: &FuzzyTree) -> Result<(), StoreError> {
        let meta = self.meta(name);
        let mut meta = meta.lock();
        self.ensure_loaded(name, &mut meta)?;
        self.write_checkpoint(name, fuzzy, meta.epoch)
    }

    /// The atomic checkpoint write itself, assuming the caller holds the
    /// document's mutex.
    fn write_checkpoint(
        &self,
        name: &str,
        fuzzy: &FuzzyTree,
        epoch: u64,
    ) -> Result<(), StoreError> {
        let target = self.document_path(name);
        let temporary = self.root.join(format!(".{name}.pxml.tmp"));
        let mut file = fs::File::create(&temporary)?;
        file.write_all(serialize_fuzzy_document_with_epoch(fuzzy, true, epoch).as_bytes())?;
        file.sync_all()?;
        drop(file);
        fs::rename(&temporary, &target)?;
        // Make the rename itself power-loss durable. For a compaction this is
        // also an ordering barrier: the folded segments are deleted only
        // after this, so the deletions can never reach disk ahead of the new
        // checkpoint.
        self.sync_dir()?;
        Ok(())
    }

    /// Loads the last checkpoint of a document (ignoring any journal).
    pub fn load_document(&self, name: &str) -> Result<FuzzyTree, StoreError> {
        let path = self.document_path(name);
        if !path.exists() {
            return Err(StoreError::MissingDocument(name.to_string()));
        }
        let text = fs::read_to_string(path)?;
        parse_fuzzy_document(&text)
    }

    /// Deletes a document, its checkpoint and its journal segments.
    ///
    /// The name's meta mutex deliberately stays in the registry: dropping it
    /// would let a thread still holding the old `Arc` interleave its append
    /// with a writer of a same-named *re-created* document under a fresh
    /// mutex, silently corrupting a segment. One retained mutex per name ever
    /// removed is a bounded price for that guarantee.
    pub fn remove_document(&self, name: &str) -> Result<(), StoreError> {
        // Settle any in-flight group-commit window first (before the meta
        // lock — the flush needs it): a window flushing after the removal
        // would resurrect segment files for the deleted document.
        self.group_barrier();
        let meta = self.meta(name);
        let mut meta = meta.lock();
        let path = self.document_path(name);
        if !path.exists() {
            return Err(StoreError::MissingDocument(name.to_string()));
        }
        // Checkpoint first: if the removal dies halfway, the leftover
        // segments are recognizably orphaned (no checkpoint) and swept at the
        // next open. The directory flush pins that ordering against power
        // loss too.
        fs::remove_file(path)?;
        self.sync_dir()?;
        for (segment, _) in self.segments_of(name)? {
            fs::remove_file(segment)?;
        }
        meta.reset_journal(0);
        meta.loaded = false;
        Ok(())
    }

    /// The updates recorded in a document's journal, flattened to application
    /// order (empty when there is no journal).
    pub fn read_journal(&self, name: &str) -> Result<Vec<UpdateTransaction>, StoreError> {
        Ok(self.read_batches(name)?.into_iter().flatten().collect())
    }

    /// The committed transaction batches recorded in a document's journal
    /// (empty when there is no journal).
    pub fn read_batches(&self, name: &str) -> Result<Vec<Vec<UpdateTransaction>>, StoreError> {
        let meta = self.meta(name);
        let mut meta = meta.lock();
        self.ensure_loaded(name, &mut meta)?;
        let mut batches = Vec::with_capacity(meta.batches);
        for path in self.current_segment_paths(name, &meta) {
            let bytes = fs::read(&path)?;
            let mut offset = 0usize;
            while let Some(record) = sound_record(&bytes, offset) {
                batches.push(parse_batch(record.payload)?);
                offset = record.next;
            }
        }
        Ok(batches)
    }

    /// Durably appends one committed transaction batch to a document's
    /// journal: one length-prefixed record written to the active segment and
    /// covered by its own fsync round — **O(batch)**, never a rewrite of
    /// earlier records. The write lands in a new segment file when the
    /// active one has grown past the roll threshold.
    pub fn append_batch(&self, name: &str, batch: &[UpdateTransaction]) -> Result<(), StoreError> {
        let meta = self.meta(name);
        let mut meta = meta.lock();
        self.ensure_loaded(name, &mut meta)?;
        if !self.contains(name) {
            return Err(StoreError::MissingDocument(name.to_string()));
        }
        let saved = meta.snapshot();
        let appended = self.write_record(name, &mut meta, batch)?;
        match self.fsync_round(std::slice::from_ref(&appended.file), appended.fresh) {
            Ok(()) => Ok(()),
            Err(error) => {
                // The record is in the page cache but never reached the
                // device: roll it back so replay surfaces exactly the
                // acknowledged batches and nothing more.
                self.rollback_unsynced(name, &mut meta, &saved);
                Err(error)
            }
        }
    }

    /// Best-effort undo of the records written for `name` since `saved` but
    /// never covered by a successful fsync round: segments created after the
    /// snapshot are removed, the previously active segment is truncated back
    /// to its durable length, and the meters are restored. If the disk
    /// refuses even the rollback, the cached meters are invalidated so the
    /// next touch rescans the on-disk truth instead of trusting stale state.
    ///
    /// Callers must hold the document's meta lock *and* guarantee no new
    /// window can flush concurrently (the committer is poisoned first on the
    /// grouped path; the sync path holds the meta lock throughout).
    fn rollback_unsynced(&self, name: &str, meta: &mut DocMeta, saved: &MetaSnapshot) {
        let epoch = meta.epoch;
        let rolled: std::io::Result<()> = (|| {
            if let Some(active) = meta.active_seq {
                let first_new = saved.active_seq.map_or(0, |seq| seq + 1);
                for seq in first_new..=active {
                    let path = self.segment_path(name, epoch, seq);
                    if path.exists() {
                        fs::remove_file(&path)?;
                    }
                }
            }
            if let Some(seq) = saved.active_seq {
                let file = fs::OpenOptions::new()
                    .write(true)
                    .open(self.segment_path(name, epoch, seq))?;
                file.set_len(saved.active_len)?;
            }
            Ok(())
        })();
        meta.restore(saved);
        if rolled.is_err() {
            meta.loaded = false;
        }
    }

    /// Writes one record into the document's active segment (rolling past
    /// the threshold) and updates the journal meters, but does **not**
    /// fsync: the caller completes durability through
    /// [`FsBackend::fsync_round`], either alone (the synchronous append) or
    /// shared with other documents (a group-commit window). Both paths
    /// therefore roll — and flush fresh directory entries — by the exact
    /// same rules. The caller holds the document's meta lock with the meta
    /// loaded.
    ///
    /// The meters advance before the fsync: the bytes are in the file once
    /// `write_all` returns, so the meters stay consistent with what
    /// [`FsBackend::read_batches`] sees even if the later fsync fails (at
    /// reopen they are rebuilt from disk either way).
    fn write_record(
        &self,
        name: &str,
        meta: &mut DocMeta,
        batch: &[UpdateTransaction],
    ) -> Result<AppendedRecord, StoreError> {
        let record = encode_record(batch);
        let seq = match meta.active_seq {
            Some(seq) if meta.active_len < self.roll_bytes => seq,
            Some(seq) => seq + 1,
            None => 0,
        };
        let fresh = meta.active_seq != Some(seq);
        let path = self.segment_path(name, meta.epoch, seq);
        let mut file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        file.write_all(&record)?;
        if fresh {
            meta.active_seq = Some(seq);
            meta.active_len = record.len() as u64;
        } else {
            meta.active_len += record.len() as u64;
        }
        meta.batches += 1;
        meta.updates += batch.len();
        meta.bytes += record.len() as u64;
        Ok(AppendedRecord { file, seq, fresh })
    }

    /// One fsync round — the durability point of every record written since
    /// the previous round. Data files are flushed first, then (when any
    /// record started a fresh segment) the directory entry: a segment file's
    /// existence is a directory mutation, and power loss right after a roll
    /// must not unlink a segment whose batches were already acknowledged.
    /// Every append path funnels through here, so no roll site can skip the
    /// directory flush.
    ///
    /// Counts **one** `fsyncs` round however many files the round covers —
    /// the round is the unit the device serializes on, and the quantity
    /// group commit divides.
    fn fsync_round(&self, files: &[fs::File], fresh_segment: bool) -> Result<(), StoreError> {
        if let Some(plan) = &self.fault {
            // An injected fsync fault preempts the round entirely: the data
            // was written but never reached the device — exactly the state a
            // real fsync failure leaves (callers roll the records back).
            plan.decide_error(FaultOp::Fsync)?;
        }
        if self.device.latency > Duration::ZERO {
            let _gate = self.device.gate.lock();
            std::thread::sleep(self.device.latency);
        }
        for file in files {
            file.sync_data()?;
        }
        if fresh_segment {
            self.sync_dir()?;
        }
        self.counters.fsyncs.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// [`FsBackend::append_batch`] through the group-commit window when the
    /// backend was opened with [`CommitPolicy::Grouped`]: the batch is
    /// enqueued and the call blocks until its window's shared fsync round.
    /// Under [`CommitPolicy::Sync`] it degrades to the synchronous append.
    /// Either way the batch is durable when the call returns `Ok`.
    pub fn append_batch_grouped(
        &self,
        name: &str,
        batch: &[UpdateTransaction],
    ) -> Result<(), StoreError> {
        self.append_batch_enqueue(name, batch).wait()
    }

    /// The asynchronous half of group commit: enqueues the batch into the
    /// open window and returns a [`CommitTicket`] that resolves at the
    /// window's fsync. Under [`CommitPolicy::Sync`] the append happens
    /// synchronously and the ticket comes back already resolved.
    pub fn append_batch_enqueue(&self, name: &str, batch: &[UpdateTransaction]) -> CommitTicket {
        let Some(group) = &self.group else {
            return CommitTicket::resolved(self.append_batch(name, batch));
        };
        // Fail a missing document eagerly, before it can poison a window.
        // (A removal racing the window is still caught by the flush itself.)
        if !self.contains(name) {
            return CommitTicket::resolved(Err(StoreError::MissingDocument(name.to_string())));
        }
        let slot = group.enqueue(name, batch);
        CommitTicket::window(slot, group.clone(), self.degrouped())
    }

    /// Flushes one drained group-commit window: writes every member's
    /// record under its document's meta lock (one document at a time, in
    /// first-appearance order, so same-document records land in enqueue —
    /// i.e. commit — order and the one-lock-at-a-time rule holds), then
    /// issues a **single** shared fsync round and completes every slot.
    /// A per-member failure is carried on that member's slot and, for
    /// same-document successors (whose bytes would land after the torn
    /// record), on theirs too.
    ///
    /// A failed **window fsync** errors every written slot, rolls every
    /// touched document back to its pre-window state
    /// ([`FsBackend::rollback_unsynced`]), and returns the failure message
    /// so the committer poisons itself — no slot is ever acknowledged past
    /// a failed round, and the fsync is never retried (see the
    /// [`crate::group`] module docs).
    pub(crate) fn flush_window(&self, window: Vec<PendingAppend>) -> Result<(), String> {
        if window.is_empty() {
            return Ok(());
        }
        let mut order: Vec<String> = Vec::new();
        let mut by_doc: HashMap<String, Vec<PendingAppend>> = HashMap::new();
        for member in window {
            if !by_doc.contains_key(&member.name) {
                order.push(member.name.clone());
            }
            by_doc.entry(member.name.clone()).or_default().push(member);
        }
        // The written-but-not-yet-durable slots, plus one open handle per
        // touched segment file (same-document members usually share one).
        let mut written = Vec::new();
        let mut files: Vec<fs::File> = Vec::new();
        let mut open_segments: HashMap<(String, u64), ()> = HashMap::new();
        let mut fresh_segment = false;
        // Per-document pre-window snapshots, so a failed window fsync can
        // roll every touched journal back to its last durable state.
        let mut doc_snapshots: Vec<(String, MetaSnapshot)> = Vec::new();
        for name in order {
            // `order` holds each name once and `by_doc` was keyed from the
            // same members, so a miss can only mean the grouping above went
            // wrong — skip the name rather than panic with slots unresolved
            // (their tickets would surface the stall as a hang otherwise).
            let Some(members) = by_doc.remove(&name) else {
                continue;
            };
            let meta = self.meta(&name);
            let mut meta = meta.lock();
            let precheck = self.ensure_loaded(&name, &mut meta).and_then(|()| {
                if self.contains(&name) {
                    Ok(())
                } else {
                    Err(StoreError::MissingDocument(name.clone()))
                }
            });
            if let Err(error) = precheck {
                let message = error.to_string();
                for member in &members {
                    member.slot.complete_err(message.clone());
                }
                continue;
            }
            doc_snapshots.push((name.clone(), meta.snapshot()));
            let mut doc_failed: Option<String> = None;
            for member in members {
                if let Some(message) = &doc_failed {
                    member.slot.complete_err(message.clone());
                    continue;
                }
                match self.write_record(&name, &mut meta, &member.batch) {
                    Ok(appended) => {
                        fresh_segment |= appended.fresh;
                        if open_segments
                            .insert((name.clone(), appended.seq), ())
                            .is_none()
                        {
                            files.push(appended.file);
                        }
                        written.push(member.slot);
                    }
                    Err(error) => {
                        let message = error.to_string();
                        member.slot.complete_err(message.clone());
                        doc_failed = Some(message);
                    }
                }
            }
        }
        if written.is_empty() {
            return Ok(());
        }
        match self.fsync_round(&files, fresh_segment) {
            Ok(()) => {
                for slot in &written {
                    slot.complete_ok();
                }
                self.counters
                    .grouped_commits
                    .fetch_add(written.len(), Ordering::Relaxed);
                self.counters
                    .grouped_windows
                    .fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(error) => {
                let message = error.to_string();
                // Roll back before any waiter can observe the failure: when
                // a ticket resolves Err, the journal already holds exactly
                // the acknowledged prefix again. The caller poisons the
                // committer, so no new window can race these truncations.
                for (name, saved) in &doc_snapshots {
                    let meta = self.meta(name);
                    let mut meta = meta.lock();
                    self.rollback_unsynced(name, &mut meta, saved);
                }
                for slot in &written {
                    slot.complete_err(message.clone());
                }
                Err(message)
            }
        }
    }

    /// Waits out any in-flight group-commit window and flushes everything
    /// enqueued. Runs **before** this backend takes a document meta lock:
    /// the flush itself takes those locks, so a barrier under one would
    /// self-deadlock.
    fn group_barrier(&self) {
        if let Some(group) = &self.group {
            group.barrier(&self.degrouped());
        }
    }

    /// Fsync/window counters since this backend (or the clone family it
    /// belongs to) was opened. Lock-free snapshot.
    pub fn durability_stats(&self) -> DurabilityStats {
        DurabilityStats {
            fsyncs: self.counters.fsyncs.load(Ordering::Relaxed),
            grouped_commits: self.counters.grouped_commits.load(Ordering::Relaxed),
            grouped_windows: self.counters.grouped_windows.load(Ordering::Relaxed),
        }
    }

    /// Number of journaled updates awaiting a checkpoint — O(1) from the
    /// segment meters, no re-parsing.
    pub fn journal_length(&self, name: &str) -> Result<usize, StoreError> {
        let meta = self.meta(name);
        let mut meta = meta.lock();
        self.ensure_loaded(name, &mut meta)?;
        Ok(meta.updates)
    }

    /// Number of journaled batches awaiting a checkpoint (O(1)).
    pub fn journal_batches(&self, name: &str) -> Result<usize, StoreError> {
        let meta = self.meta(name);
        let mut meta = meta.lock();
        self.ensure_loaded(name, &mut meta)?;
        Ok(meta.batches)
    }

    /// Total record bytes in the journal's segments (O(1)).
    pub fn journal_size_bytes(&self, name: &str) -> Result<u64, StoreError> {
        let meta = self.meta(name);
        let mut meta = meta.lock();
        self.ensure_loaded(name, &mut meta)?;
        Ok(meta.bytes)
    }

    /// Recovery: the last checkpoint with the journal replayed on top. This
    /// is what the warehouse loads at start-up after a crash.
    pub fn recover_document(&self, name: &str) -> Result<FuzzyTree, StoreError> {
        let mut fuzzy = self.load_document(name)?;
        for update in self.read_journal(name)? {
            update.apply_to_fuzzy(&mut fuzzy)?;
        }
        Ok(fuzzy)
    }

    /// In-place recovery after a failed commit: clears a poisoned group
    /// committer (safe — the failing flush already rolled its unsynced
    /// records back), drops the document's cached journal meters so the next
    /// touch rescans the on-disk truth (truncating any torn tail), and
    /// returns the recovered tree. `Warehouse::reopen_document` routes
    /// through this to lift a document out of quarantine.
    pub fn reopen_document(&self, name: &str) -> Result<FuzzyTree, StoreError> {
        if let Some(group) = &self.group {
            group.clear_poison();
        }
        {
            let meta = self.meta(name);
            let mut meta = meta.lock();
            meta.loaded = false;
        }
        FsBackend::recover_document(self, name)
    }

    /// Checkpoints a document: writes `fuzzy` as the new checkpoint (stamped
    /// with the next journal epoch) and deletes the folded segments. The
    /// checkpoint rename is the single commit point — a crash before it keeps
    /// the old checkpoint + journal, a crash after it leaves stale-epoch
    /// segments that recovery ignores and the next open/scan sweeps.
    pub fn checkpoint(&self, name: &str, fuzzy: &FuzzyTree) -> Result<(), StoreError> {
        // Settle any in-flight group-commit window first (before the meta
        // lock — the flush needs it): a pre-fold batch flushing *after* the
        // fold would land in the new epoch and be double-applied by replay.
        self.group_barrier();
        let meta = self.meta(name);
        let mut meta = meta.lock();
        self.ensure_loaded(name, &mut meta)?;
        let next_epoch = meta.epoch + 1;
        // The folded segments, derived from the meters *before* the fold —
        // no directory scan on this per-compaction path (`ensure_loaded`
        // already swept any stale-epoch stragglers at first touch).
        let folded = self.current_segment_paths(name, &meta);
        self.write_checkpoint(name, fuzzy, next_epoch)?;
        // From here on the checkpoint owns the journal's content; the old
        // segments are garbage whether or not these deletions complete.
        meta.reset_journal(next_epoch);
        for segment in folded {
            fs::remove_file(segment)?;
        }
        Ok(())
    }
}

impl StorageBackend for FsBackend {
    fn list_documents(&self) -> Result<Vec<String>, StoreError> {
        FsBackend::list_documents(self)
    }

    fn contains(&self, name: &str) -> bool {
        FsBackend::contains(self, name)
    }

    fn save_document(&self, name: &str, fuzzy: &FuzzyTree) -> Result<(), StoreError> {
        FsBackend::save_document(self, name, fuzzy)
    }

    fn load_document(&self, name: &str) -> Result<FuzzyTree, StoreError> {
        FsBackend::load_document(self, name)
    }

    fn append_batch(&self, name: &str, batch: &[UpdateTransaction]) -> Result<(), StoreError> {
        FsBackend::append_batch(self, name, batch)
    }

    fn append_batch_grouped(
        &self,
        name: &str,
        batch: &[UpdateTransaction],
    ) -> Result<(), StoreError> {
        FsBackend::append_batch_grouped(self, name, batch)
    }

    fn append_batch_enqueue(&self, name: &str, batch: &[UpdateTransaction]) -> CommitTicket {
        FsBackend::append_batch_enqueue(self, name, batch)
    }

    fn durability_stats(&self) -> DurabilityStats {
        FsBackend::durability_stats(self)
    }

    fn group_barrier(&self) {
        FsBackend::group_barrier(self);
    }

    fn read_batches(&self, name: &str) -> Result<Vec<Vec<UpdateTransaction>>, StoreError> {
        FsBackend::read_batches(self, name)
    }

    fn journal_length(&self, name: &str) -> Result<usize, StoreError> {
        FsBackend::journal_length(self, name)
    }

    fn journal_batches(&self, name: &str) -> Result<usize, StoreError> {
        FsBackend::journal_batches(self, name)
    }

    fn journal_size_bytes(&self, name: &str) -> Result<u64, StoreError> {
        FsBackend::journal_size_bytes(self, name)
    }

    fn checkpoint(&self, name: &str, fuzzy: &FuzzyTree) -> Result<(), StoreError> {
        FsBackend::checkpoint(self, name, fuzzy)
    }

    fn remove_document(&self, name: &str) -> Result<(), StoreError> {
        FsBackend::remove_document(self, name)
    }

    fn recover_document(&self, name: &str) -> Result<FuzzyTree, StoreError> {
        FsBackend::recover_document(self, name)
    }

    fn reopen_document(&self, name: &str) -> Result<FuzzyTree, StoreError> {
        FsBackend::reopen_document(self, name)
    }

    fn root_dir(&self) -> Option<&Path> {
        Some(self.root())
    }
}

/// Encodes one batch as a segment record (header + `<pxml:batch>` payload).
fn encode_record(batch: &[UpdateTransaction]) -> Vec<u8> {
    let payload = serialize_batch(batch);
    let mut record = Vec::with_capacity(RECORD_HEADER_BYTES as usize + payload.len());
    record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    record.extend_from_slice(&(batch.len() as u32).to_le_bytes());
    record.extend_from_slice(payload.as_bytes());
    record
}

/// One whole record decoded from a segment.
struct SoundRecord<'a> {
    payload: &'a str,
    /// The header's update count — how many journaled updates the batch
    /// carries.
    updates: u32,
    /// Offset just past the record, where the next one starts.
    next: usize,
}

/// The sound record starting at `offset`, or `None` when the remaining bytes
/// are empty or torn (short header / short payload).
fn sound_record(bytes: &[u8], offset: usize) -> Option<SoundRecord<'_>> {
    let header_end = offset.checked_add(RECORD_HEADER_BYTES as usize)?;
    if header_end > bytes.len() {
        return None;
    }
    let payload_len = u32::from_le_bytes(bytes.get(offset..offset + 4)?.try_into().ok()?) as usize;
    let updates = u32::from_le_bytes(bytes.get(offset + 4..offset + 8)?.try_into().ok()?);
    let payload_end = header_end.checked_add(payload_len)?;
    if payload_end > bytes.len() {
        return None;
    }
    let payload = std::str::from_utf8(&bytes[header_end..payload_end]).ok()?;
    Some(SoundRecord {
        payload,
        updates,
        next: payload_end,
    })
}

/// One segment's header walk: record/update counts and the byte length of
/// the sound prefix.
struct SegmentScan {
    batches: usize,
    updates: usize,
    /// Bytes of whole records; anything beyond is a torn tail.
    sound_bytes: u64,
    /// Offset of a torn tail record, when one exists.
    torn_at: Option<u64>,
}

/// Walks a segment's record headers. A torn record is tolerated (reported
/// via `torn_at`) only when `tail` — in any other segment it means real
/// corruption, because appends only ever touch the journal's last segment.
fn scan_segment(path: &Path, tail: bool) -> Result<SegmentScan, StoreError> {
    let bytes = fs::read(path)?;
    let mut scan = SegmentScan {
        batches: 0,
        updates: 0,
        sound_bytes: 0,
        torn_at: None,
    };
    let mut offset = 0usize;
    while offset < bytes.len() {
        match sound_record(&bytes, offset) {
            // The record decodes its own update count, so the header is
            // never re-sliced here (the old re-slice panicked on a torn
            // header instead of reporting corruption through `StoreError`).
            Some(record) => {
                scan.batches += 1;
                scan.updates += record.updates as usize;
                offset = record.next;
                scan.sound_bytes = offset as u64;
            }
            None if tail => {
                scan.torn_at = Some(offset as u64);
                break;
            }
            None => {
                return Err(StoreError::Format(format!(
                    "segment {} holds a torn record at offset {offset} but is not the \
                     journal tail — the journal is corrupt",
                    path.display()
                )));
            }
        }
    }
    Ok(scan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pxml_core::UpdateOperation;
    use pxml_query::Pattern;
    use pxml_tree::parse_data_tree;
    use std::sync::atomic::{AtomicU64, Ordering};

    static COUNTER: AtomicU64 = AtomicU64::new(0);

    /// A unique scratch directory for one test.
    fn scratch(label: &str) -> PathBuf {
        let unique = format!(
            "pxml-store-test-{}-{}-{}",
            std::process::id(),
            label,
            COUNTER.fetch_add(1, Ordering::SeqCst)
        );
        std::env::temp_dir().join(unique)
    }

    fn sample_fuzzy() -> FuzzyTree {
        use pxml_event::{Condition, Literal};
        let mut fuzzy = FuzzyTree::new("directory");
        let w = fuzzy.add_event("w", 0.6).unwrap();
        let person = fuzzy.add_element(fuzzy.root(), "person");
        let name = fuzzy.add_element(person, "name");
        fuzzy.add_text(name, "alice");
        let phone = fuzzy.add_element(person, "phone");
        fuzzy.add_text(phone, "+33-1");
        fuzzy
            .set_condition(phone, Condition::from_literal(Literal::pos(w)))
            .unwrap();
        fuzzy
    }

    fn sample_update() -> UpdateTransaction {
        let pattern = Pattern::parse("person { name[=\"alice\"] }").unwrap();
        let target = pattern.root();
        UpdateTransaction::new(pattern, 0.8).unwrap().with_insert(
            target,
            parse_data_tree("<email>alice@example.org</email>").unwrap(),
        )
    }

    fn segment_files(dir: &Path) -> Vec<String> {
        let mut names: Vec<String> = fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.ends_with(".seg"))
            .collect();
        names.sort();
        names
    }

    #[test]
    fn open_save_load_round_trip() {
        let dir = scratch("roundtrip");
        let store = FsBackend::open(&dir).unwrap();
        assert!(store.list_documents().unwrap().is_empty());
        let fuzzy = sample_fuzzy();
        store.save_document("people", &fuzzy).unwrap();
        assert!(store.contains("people"));
        assert_eq!(store.list_documents().unwrap(), vec!["people"]);
        let loaded = store.load_document("people").unwrap();
        assert!(fuzzy.semantically_equivalent(&loaded, 1e-12).unwrap());
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn missing_documents_are_reported() {
        let dir = scratch("missing");
        let store = FsBackend::open(&dir).unwrap();
        assert!(matches!(
            store.load_document("ghost"),
            Err(StoreError::MissingDocument(_))
        ));
        assert!(matches!(
            store.append_batch("ghost", &[sample_update()]),
            Err(StoreError::MissingDocument(_))
        ));
        assert!(matches!(
            store.remove_document("ghost"),
            Err(StoreError::MissingDocument(_))
        ));
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn saving_twice_overwrites_atomically() {
        let dir = scratch("overwrite");
        let store = FsBackend::open(&dir).unwrap();
        store.save_document("doc", &sample_fuzzy()).unwrap();
        let replacement = FuzzyTree::new("empty");
        store.save_document("doc", &replacement).unwrap();
        let loaded = store.load_document("doc").unwrap();
        assert_eq!(loaded.node_count(), 1);
        // No temporary files are left behind.
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty());
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn journal_append_read_and_recover() {
        let dir = scratch("journal");
        let store = FsBackend::open(&dir).unwrap();
        let fuzzy = sample_fuzzy();
        store.save_document("people", &fuzzy).unwrap();
        assert_eq!(store.journal_length("people").unwrap(), 0);

        let update = sample_update();
        store
            .append_batch("people", std::slice::from_ref(&update))
            .unwrap();
        store.append_batch("people", &[update]).unwrap();
        assert_eq!(store.journal_length("people").unwrap(), 2);
        assert_eq!(store.journal_batches("people").unwrap(), 2);
        assert_eq!(store.read_batches("people").unwrap().len(), 2);
        assert!(store.journal_size_bytes("people").unwrap() > 0);

        // Recovery replays the journal on top of the checkpoint.
        let recovered = store.recover_document("people").unwrap();
        assert_eq!(recovered.tree().find_elements("email").len(), 2);
        // The checkpoint itself is untouched.
        let checkpointed = store.load_document("people").unwrap();
        assert!(checkpointed.tree().find_elements("email").is_empty());
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn recovery_equals_in_memory_application() {
        let dir = scratch("recovery-equivalence");
        let store = FsBackend::open(&dir).unwrap();
        let mut in_memory = sample_fuzzy();
        store.save_document("people", &in_memory).unwrap();
        let update = sample_update();
        store
            .append_batch("people", std::slice::from_ref(&update))
            .unwrap();
        update.apply_to_fuzzy(&mut in_memory).unwrap();
        let recovered = store.recover_document("people").unwrap();
        assert!(recovered.semantically_equivalent(&in_memory, 1e-9).unwrap());
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn checkpoint_folds_journal_and_bumps_epoch() {
        let dir = scratch("checkpoint");
        let store = FsBackend::open(&dir).unwrap();
        store.save_document("people", &sample_fuzzy()).unwrap();
        store.append_batch("people", &[sample_update()]).unwrap();
        let recovered = store.recover_document("people").unwrap();
        store.checkpoint("people", &recovered).unwrap();
        assert_eq!(store.journal_length("people").unwrap(), 0);
        assert!(segment_files(&dir).is_empty(), "folded segments deleted");
        let text = fs::read_to_string(dir.join("people.pxml")).unwrap();
        assert_eq!(extract_epoch(&text), 1, "checkpoint carries the new epoch");
        let loaded = store.load_document("people").unwrap();
        assert_eq!(loaded.tree().find_elements("email").len(), 1);

        // Appends after the fold land in the new epoch and replay on top.
        store.append_batch("people", &[sample_update()]).unwrap();
        assert_eq!(
            segment_files(&dir),
            vec!["people.journal.1.0.seg".to_string()]
        );
        let reopened = FsBackend::open(&dir).unwrap();
        let recovered = reopened.recover_document("people").unwrap();
        assert_eq!(recovered.tree().find_elements("email").len(), 2);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn save_document_preserves_the_epoch() {
        let dir = scratch("save-epoch");
        let store = FsBackend::open(&dir).unwrap();
        store.save_document("doc", &sample_fuzzy()).unwrap();
        store.checkpoint("doc", &sample_fuzzy()).unwrap();
        store.save_document("doc", &sample_fuzzy()).unwrap();
        let text = fs::read_to_string(dir.join("doc.pxml")).unwrap();
        assert_eq!(extract_epoch(&text), 1);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn remove_document_deletes_files() {
        let dir = scratch("remove");
        let store = FsBackend::open(&dir).unwrap();
        store.save_document("doc", &sample_fuzzy()).unwrap();
        store.append_batch("doc", &[sample_update()]).unwrap();
        store.remove_document("doc").unwrap();
        assert!(!store.contains("doc"));
        assert!(store.list_documents().unwrap().is_empty());
        assert!(segment_files(&dir).is_empty());
        assert_eq!(store.journal_length("doc").unwrap(), 0);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn multi_update_batch_is_one_journal_entry() {
        let dir = scratch("batch");
        let store = FsBackend::open(&dir).unwrap();
        store.save_document("people", &sample_fuzzy()).unwrap();
        store
            .append_batch("people", &[sample_update(), sample_update()])
            .unwrap();
        assert_eq!(store.read_batches("people").unwrap().len(), 1);
        assert_eq!(store.journal_length("people").unwrap(), 2);
        let recovered = store.recover_document("people").unwrap();
        assert_eq!(recovered.tree().find_elements("email").len(), 2);
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn appends_roll_into_new_segments_past_the_threshold() {
        let dir = scratch("roll");
        // A 1-byte threshold rolls after every record.
        let store = FsBackend::with_segment_roll_bytes(&dir, 1).unwrap();
        store.save_document("people", &sample_fuzzy()).unwrap();
        for _ in 0..3 {
            store.append_batch("people", &[sample_update()]).unwrap();
        }
        assert_eq!(
            segment_files(&dir),
            vec![
                "people.journal.0.0.seg".to_string(),
                "people.journal.0.1.seg".to_string(),
                "people.journal.0.2.seg".to_string(),
            ]
        );
        assert_eq!(store.journal_batches("people").unwrap(), 3);
        // A fresh handle rebuilds the same meters from the headers and
        // continues the sequence instead of overwriting.
        let reopened = FsBackend::with_segment_roll_bytes(&dir, 1).unwrap();
        assert_eq!(reopened.journal_batches("people").unwrap(), 3);
        reopened.append_batch("people", &[sample_update()]).unwrap();
        assert_eq!(segment_files(&dir).len(), 4);
        assert_eq!(
            reopened
                .recover_document("people")
                .unwrap()
                .tree()
                .find_elements("email")
                .len(),
            4
        );
        fs::remove_dir_all(dir).unwrap();
    }

    /// Clones of one store share the per-document mutexes: concurrent
    /// appends to the same journal from several threads must all land.
    #[test]
    fn concurrent_appends_to_one_document_all_land() {
        let dir = scratch("concurrent-appends");
        let store = FsBackend::open(&dir).unwrap();
        store.save_document("people", &sample_fuzzy()).unwrap();
        let threads = 4;
        let per_thread = 5;
        let barrier = std::sync::Arc::new(std::sync::Barrier::new(threads));
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let store = store.clone();
                let barrier = barrier.clone();
                scope.spawn(move || {
                    barrier.wait();
                    for _ in 0..per_thread {
                        store.append_batch("people", &[sample_update()]).unwrap();
                    }
                });
            }
        });
        assert_eq!(
            store.read_batches("people").unwrap().len(),
            threads * per_thread
        );
        assert_eq!(
            store.journal_batches("people").unwrap(),
            threads * per_thread
        );
        fs::remove_dir_all(dir).unwrap();
    }

    /// Appends to *different* documents run from several threads write two
    /// independent journals that never interleave entries.
    #[test]
    fn concurrent_appends_to_distinct_documents_stay_separate() {
        let dir = scratch("distinct-appends");
        let store = FsBackend::open(&dir).unwrap();
        store.save_document("a", &sample_fuzzy()).unwrap();
        store.save_document("b", &sample_fuzzy()).unwrap();
        let barrier = std::sync::Arc::new(std::sync::Barrier::new(2));
        std::thread::scope(|scope| {
            for name in ["a", "b"] {
                let store = store.clone();
                let barrier = barrier.clone();
                scope.spawn(move || {
                    barrier.wait();
                    for i in 0..6 {
                        let pattern = Pattern::parse("person { name }").unwrap();
                        let target = pattern.root();
                        let update = UpdateTransaction::new(pattern, 0.5).unwrap().with_insert(
                            target,
                            parse_data_tree(&format!("<tag-{name}-{i}/>")).unwrap(),
                        );
                        store.append_batch(name, &[update]).unwrap();
                    }
                });
            }
        });
        for name in ["a", "b"] {
            let batches = store.read_batches(name).unwrap();
            assert_eq!(batches.len(), 6);
            for update in batches.into_iter().flatten() {
                let own = update.operations().iter().all(|op| match op {
                    UpdateOperation::Insert { subtree, .. } => subtree
                        .label(subtree.root())
                        .as_str()
                        .starts_with(&format!("tag-{name}-")),
                    UpdateOperation::Delete { .. } => false,
                });
                assert!(own, "journal of `{name}` holds only its own updates");
            }
        }
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn multiple_documents_coexist() {
        let dir = scratch("multi");
        let store = FsBackend::open(&dir).unwrap();
        store.save_document("a", &sample_fuzzy()).unwrap();
        store.save_document("b", &FuzzyTree::new("other")).unwrap();
        assert_eq!(store.list_documents().unwrap(), vec!["a", "b"]);
        fs::remove_dir_all(dir).unwrap();
    }

    /// A grouped backend opened with the default window: tests construct it
    /// with a generous fill deadline so coalescing is deterministic-ish but
    /// a lone committer never stalls noticeably.
    fn grouped(dir: &Path, window_max_batches: usize) -> FsBackend {
        FsBackend::with_options(
            dir,
            FsOptions {
                commit: CommitPolicy::Grouped {
                    window_max_batches,
                    window_max_wait: Duration::from_millis(5),
                },
                ..FsOptions::default()
            },
        )
        .unwrap()
    }

    /// A lone committer under `Grouped` becomes its own window leader: the
    /// append lands durably, journal contents match the sync path, and the
    /// stats record one grouped commit in one window.
    #[test]
    fn grouped_single_committer_leads_its_own_window() {
        let dir = scratch("grouped-single");
        let store = grouped(&dir, 8);
        store.save_document("people", &sample_fuzzy()).unwrap();
        store
            .append_batch_grouped("people", &[sample_update()])
            .unwrap();
        assert_eq!(store.journal_batches("people").unwrap(), 1);
        assert_eq!(
            store
                .recover_document("people")
                .unwrap()
                .tree()
                .find_elements("email")
                .len(),
            1
        );
        let stats = store.durability_stats();
        assert_eq!(stats.grouped_commits, 1);
        assert_eq!(stats.grouped_windows, 1);
        assert!(stats.fsyncs >= 1);
        assert!((stats.mean_window_occupancy() - 1.0).abs() < 1e-12);
        fs::remove_dir_all(dir).unwrap();
    }

    /// Barrier-started grouped appends across two documents: all land, the
    /// two journals stay separate, and the windows issued strictly fewer
    /// fsync rounds than there were commits (the coalescing claim).
    #[test]
    fn grouped_appends_across_documents_coalesce_fsyncs() {
        let dir = scratch("grouped-coalesce");
        let store = grouped(&dir, 4);
        store.save_document("a", &sample_fuzzy()).unwrap();
        store.save_document("b", &sample_fuzzy()).unwrap();
        let baseline = store.durability_stats().fsyncs;
        let threads = 4;
        let per_thread = 3;
        let barrier = std::sync::Arc::new(std::sync::Barrier::new(threads));
        std::thread::scope(|scope| {
            for t in 0..threads {
                let store = store.clone();
                let barrier = barrier.clone();
                scope.spawn(move || {
                    let name = if t % 2 == 0 { "a" } else { "b" };
                    barrier.wait();
                    for _ in 0..per_thread {
                        store
                            .append_batch_grouped(name, &[sample_update()])
                            .unwrap();
                    }
                });
            }
        });
        let commits = threads * per_thread;
        assert_eq!(store.journal_batches("a").unwrap(), commits / 2);
        assert_eq!(store.journal_batches("b").unwrap(), commits / 2);
        let stats = store.durability_stats();
        assert_eq!(stats.grouped_commits, commits);
        assert!(
            stats.fsyncs - baseline < commits,
            "windows must coalesce: {} fsync rounds for {commits} commits",
            stats.fsyncs - baseline
        );
        assert!(stats.mean_window_occupancy() >= 1.0);
        fs::remove_dir_all(dir).unwrap();
    }

    /// Dropping an unresolved ticket still flushes the enqueued batch — an
    /// enqueue is never silently abandoned.
    #[test]
    fn dropped_ticket_still_flushes_the_batch() {
        let dir = scratch("grouped-drop-ticket");
        let store = grouped(&dir, 8);
        store.save_document("people", &sample_fuzzy()).unwrap();
        let ticket = store.append_batch_enqueue("people", &[sample_update()]);
        drop(ticket);
        assert_eq!(store.journal_batches("people").unwrap(), 1);
        fs::remove_dir_all(dir).unwrap();
    }

    /// An enqueue against a missing document fails eagerly with a resolved
    /// ticket instead of poisoning a window.
    #[test]
    fn grouped_enqueue_rejects_missing_documents() {
        let dir = scratch("grouped-missing");
        let store = grouped(&dir, 8);
        let ticket = store.append_batch_enqueue("ghost", &[sample_update()]);
        assert!(ticket.is_durable());
        assert!(matches!(ticket.wait(), Err(StoreError::MissingDocument(_))));
        fs::remove_dir_all(dir).unwrap();
    }

    /// `remove_document` barriers the window first: a batch enqueued before
    /// the removal flushes durably (its ticket resolves Ok), and the removal
    /// then deletes everything — no segment file is resurrected afterwards.
    #[test]
    fn removal_barriers_in_flight_grouped_appends() {
        let dir = scratch("grouped-remove-barrier");
        let store = grouped(&dir, 8);
        store.save_document("people", &sample_fuzzy()).unwrap();
        let ticket = store.append_batch_enqueue("people", &[sample_update()]);
        store.remove_document("people").unwrap();
        ticket.wait().unwrap();
        assert!(!store.contains("people"));
        assert!(segment_files(&dir).is_empty());
        fs::remove_dir_all(dir).unwrap();
    }

    /// `checkpoint` barriers the window first: a batch enqueued before the
    /// fold is flushed into the pre-fold epoch, so replay sees it exactly
    /// once (inside the checkpoint, not double-applied on top).
    #[test]
    fn checkpoint_barriers_then_folds_enqueued_batches() {
        let dir = scratch("grouped-checkpoint-barrier");
        let store = grouped(&dir, 8);
        store.save_document("people", &sample_fuzzy()).unwrap();
        let ticket = store.append_batch_enqueue("people", &[sample_update()]);
        // Fold with a state that already contains the enqueued update, as
        // the warehouse does (it applies in memory at enqueue time).
        let mut folded = sample_fuzzy();
        sample_update().apply_to_fuzzy(&mut folded).unwrap();
        store.checkpoint("people", &folded).unwrap();
        ticket.wait().unwrap();
        assert_eq!(store.journal_batches("people").unwrap(), 0);
        let recovered = store.recover_document("people").unwrap();
        assert_eq!(recovered.tree().find_elements("email").len(), 1);
        fs::remove_dir_all(dir).unwrap();
    }

    /// A failed fsync on the synchronous path rolls the record back: the
    /// error surfaces, the journal holds exactly the acknowledged batches
    /// (no phantom), and the document keeps working afterwards.
    #[test]
    fn sync_fsync_failure_rolls_the_record_back() {
        use crate::fault::{is_injected, FaultOp, FaultPlan};
        let dir = scratch("fsync-fail-sync");
        let plan = Arc::new(FaultPlan::new().fail_nth(FaultOp::Fsync, 2));
        let store = FsBackend::with_options(
            &dir,
            FsOptions {
                fault: Some(plan),
                ..FsOptions::default()
            },
        )
        .unwrap();
        store.save_document("people", &sample_fuzzy()).unwrap();
        store.append_batch("people", &[sample_update()]).unwrap();
        let error = store
            .append_batch("people", &[sample_update()])
            .unwrap_err();
        assert!(is_injected(&error), "unexpected error: {error}");
        assert_eq!(store.journal_batches("people").unwrap(), 1);
        assert_eq!(store.read_batches("people").unwrap().len(), 1);
        // A fresh handle rebuilds the same truth from disk.
        let reopened = FsBackend::open(&dir).unwrap();
        assert_eq!(reopened.journal_batches("people").unwrap(), 1);
        // The sync path carries no poison: the next append just works.
        store.append_batch("people", &[sample_update()]).unwrap();
        assert_eq!(store.journal_batches("people").unwrap(), 2);
        fs::remove_dir_all(dir).unwrap();
    }

    /// A failed window fsync errors every ticket, rolls the window's records
    /// back, and poisons the committer — recovery requires a reopen, which
    /// restores write availability with the journal equal to the
    /// acknowledged prefix.
    #[test]
    fn grouped_fsync_failure_poisons_until_reopen() {
        use crate::fault::{is_injected, FaultOp, FaultPlan};
        let dir = scratch("fsync-fail-grouped");
        let plan = Arc::new(FaultPlan::new().fail_nth(FaultOp::Fsync, 1));
        let store = FsBackend::with_options(
            &dir,
            FsOptions {
                commit: CommitPolicy::Grouped {
                    window_max_batches: 4,
                    window_max_wait: Duration::from_millis(5),
                },
                fault: Some(plan),
                ..FsOptions::default()
            },
        )
        .unwrap();
        store.save_document("people", &sample_fuzzy()).unwrap();
        let error = store
            .append_batch_grouped("people", &[sample_update()])
            .unwrap_err();
        assert!(is_injected(&error), "unexpected error: {error}");
        // Rolled back: no journal on disk, meters agree.
        assert_eq!(store.journal_batches("people").unwrap(), 0);
        assert!(segment_files(&dir).is_empty());
        // Poisoned: the next grouped append fails without touching the
        // device — there is no retry-fsync-then-ack.
        let fsyncs_before = store.durability_stats().fsyncs;
        let poisoned = store
            .append_batch_grouped("people", &[sample_update()])
            .unwrap_err();
        assert!(poisoned.to_string().contains("poisoned"));
        assert_eq!(store.durability_stats().fsyncs, fsyncs_before);
        // Reopen lifts the poison and recovers the durable state.
        let recovered = store.reopen_document("people").unwrap();
        assert!(recovered.tree().find_elements("email").is_empty());
        store
            .append_batch_grouped("people", &[sample_update()])
            .unwrap();
        assert_eq!(store.journal_batches("people").unwrap(), 1);
        assert_eq!(
            store
                .recover_document("people")
                .unwrap()
                .tree()
                .find_elements("email")
                .len(),
            1
        );
        fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn segment_names_parse_from_the_right() {
        let parsed = parse_segment_name("people.journal.3.12.seg").unwrap();
        assert_eq!(parsed.document, "people");
        assert_eq!((parsed.epoch, parsed.seq), (3, 12));
        let dotted = parse_segment_name("people.v2.journal.0.1.seg").unwrap();
        assert_eq!(dotted.document, "people.v2");
        assert!(parse_segment_name("people.journal.x.1.seg").is_none());
        assert!(parse_segment_name("people.pxml").is_none());
    }
}
