//! The backend conformance suite: one set of behavioural checks run against
//! every shipped [`StorageBackend`] implementation through a shared harness
//! function, so `FsBackend` and `MemBackend` cannot drift apart on the
//! semantics the warehouse engine relies on.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use pxml_core::{FuzzyTree, UpdateTransaction};
use pxml_query::Pattern;
use pxml_store::{
    is_injected, CommitPolicy, FaultBackend, FaultOp, FaultPlan, FsBackend, FsOptions, MemBackend,
    StorageBackend, StoreError,
};
use pxml_tree::parse_data_tree;

static COUNTER: AtomicU64 = AtomicU64::new(0);

fn scratch(label: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "pxml-conformance-{}-{}-{}",
        std::process::id(),
        label,
        COUNTER.fetch_add(1, Ordering::SeqCst)
    ))
}

fn sample_fuzzy() -> FuzzyTree {
    use pxml_event::{Condition, Literal};
    let mut fuzzy = FuzzyTree::new("directory");
    let w = fuzzy.add_event("w", 0.6).unwrap();
    let person = fuzzy.add_element(fuzzy.root(), "person");
    let name = fuzzy.add_element(person, "name");
    fuzzy.add_text(name, "alice");
    let phone = fuzzy.add_element(person, "phone");
    fuzzy.add_text(phone, "+33-1");
    fuzzy
        .set_condition(phone, Condition::from_literal(Literal::pos(w)))
        .unwrap();
    fuzzy
}

fn tagged_update(tag: &str) -> UpdateTransaction {
    let pattern = Pattern::parse("person { name[=\"alice\"] }").unwrap();
    let target = pattern.root();
    UpdateTransaction::new(pattern, 0.8).unwrap().with_insert(
        target,
        parse_data_tree(&format!("<email>{tag}@example.org</email>")).unwrap(),
    )
}

/// Runs every conformance check against one backend.
fn conformance_suite(backend: &dyn StorageBackend) {
    // --- empty store ------------------------------------------------------
    assert!(backend.list_documents().unwrap().is_empty());
    assert!(!backend.contains("people"));
    assert!(matches!(
        backend.load_document("people"),
        Err(StoreError::MissingDocument(_))
    ));
    assert!(matches!(
        backend.append_batch("people", &[tagged_update("a")]),
        Err(StoreError::MissingDocument(_))
    ));
    assert!(matches!(
        backend.remove_document("people"),
        Err(StoreError::MissingDocument(_))
    ));
    // An unknown document has an empty journal rather than an error: the
    // engine polls the meters without first checking existence.
    assert_eq!(backend.journal_length("people").unwrap(), 0);
    assert_eq!(backend.journal_batches("people").unwrap(), 0);
    assert_eq!(backend.journal_size_bytes("people").unwrap(), 0);
    assert!(backend.read_batches("people").unwrap().is_empty());

    // --- save / load round trip ------------------------------------------
    let fuzzy = sample_fuzzy();
    backend.save_document("people", &fuzzy).unwrap();
    assert!(backend.contains("people"));
    assert_eq!(backend.list_documents().unwrap(), vec!["people"]);
    let loaded = backend.load_document("people").unwrap();
    assert!(fuzzy.semantically_equivalent(&loaded, 1e-12).unwrap());

    // --- journal append / meters / read-back ------------------------------
    backend
        .append_batch("people", &[tagged_update("b1u1"), tagged_update("b1u2")])
        .unwrap();
    backend
        .append_batch("people", &[tagged_update("b2u1")])
        .unwrap();
    assert_eq!(backend.journal_batches("people").unwrap(), 2);
    assert_eq!(backend.journal_length("people").unwrap(), 3);
    assert!(backend.journal_size_bytes("people").unwrap() > 0);
    let batches = backend.read_batches("people").unwrap();
    assert_eq!(batches.len(), 2);
    assert_eq!(batches[0].len(), 2, "batch boundaries preserved");
    assert_eq!(batches[1].len(), 1);
    // Commit order is replay order.
    let tags: Vec<String> = backend
        .read_journal("people")
        .unwrap()
        .iter()
        .map(|u| match &u.operations()[0] {
            pxml_core::UpdateOperation::Insert { subtree, .. } => subtree
                .node_value(subtree.root())
                .unwrap_or_default()
                .to_string(),
            _ => unreachable!("conformance updates are inserts"),
        })
        .collect();
    assert_eq!(
        tags,
        vec!["b1u1@example.org", "b1u2@example.org", "b2u1@example.org",]
    );

    // --- recovery = checkpoint + in-order replay --------------------------
    let mut replayed = backend.load_document("people").unwrap();
    for update in backend.read_journal("people").unwrap() {
        update.apply_to_fuzzy(&mut replayed).unwrap();
    }
    let recovered = backend.recover_document("people").unwrap();
    assert!(recovered.semantically_equivalent(&replayed, 1e-9).unwrap());
    assert_eq!(recovered.tree().find_elements("email").len(), 3);
    // The checkpoint itself is untouched by appends.
    assert!(backend
        .load_document("people")
        .unwrap()
        .tree()
        .find_elements("email")
        .is_empty());

    // --- overwriting a checkpoint leaves the journal alone ----------------
    backend.save_document("people", &sample_fuzzy()).unwrap();
    assert_eq!(backend.journal_batches("people").unwrap(), 2);

    // --- checkpoint folds the journal atomically --------------------------
    let folded = backend.recover_document("people").unwrap();
    backend.checkpoint("people", &folded).unwrap();
    assert_eq!(backend.journal_length("people").unwrap(), 0);
    assert_eq!(backend.journal_batches("people").unwrap(), 0);
    assert_eq!(backend.journal_size_bytes("people").unwrap(), 0);
    assert!(backend.read_batches("people").unwrap().is_empty());
    assert_eq!(
        backend
            .load_document("people")
            .unwrap()
            .tree()
            .find_elements("email")
            .len(),
        3
    );
    // Appends keep working after a fold and replay on the new base.
    backend
        .append_batch("people", &[tagged_update("post")])
        .unwrap();
    assert_eq!(backend.journal_batches("people").unwrap(), 1);
    assert_eq!(
        backend
            .recover_document("people")
            .unwrap()
            .tree()
            .find_elements("email")
            .len(),
        4
    );

    // --- multiple documents stay independent ------------------------------
    backend
        .save_document("other", &FuzzyTree::new("lib"))
        .unwrap();
    backend
        .append_batch("other", &[tagged_update("o")])
        .unwrap();
    assert_eq!(backend.list_documents().unwrap(), vec!["other", "people"]);
    assert_eq!(backend.journal_batches("people").unwrap(), 1);
    assert_eq!(backend.journal_batches("other").unwrap(), 1);

    // --- removal deletes checkpoint and journal ---------------------------
    backend.remove_document("people").unwrap();
    assert!(!backend.contains("people"));
    assert_eq!(backend.list_documents().unwrap(), vec!["other"]);
    assert_eq!(backend.journal_length("people").unwrap(), 0);
    // A same-named re-created document starts clean.
    backend.save_document("people", &sample_fuzzy()).unwrap();
    assert!(backend.read_batches("people").unwrap().is_empty());
    assert_eq!(
        backend
            .recover_document("people")
            .unwrap()
            .tree()
            .find_elements("email")
            .len(),
        0
    );
}

/// Concurrent same-document appends must serialize (none lost), and
/// distinct-document appends must not interleave — exercised through the
/// `Arc<dyn StorageBackend>` the engine actually uses. Appends go through
/// `append_batch_grouped`, the engine's commit entry point: on ungrouped
/// backends that is the identical synchronous call, on a grouped backend it
/// pushes the same guarantees through shared fsync windows.
fn concurrent_conformance(backend: Arc<dyn StorageBackend>) {
    backend.save_document("shared", &sample_fuzzy()).unwrap();
    let threads = 4;
    let per_thread = 5;
    let barrier = std::sync::Arc::new(std::sync::Barrier::new(threads));
    std::thread::scope(|scope| {
        for t in 0..threads {
            let backend = backend.clone();
            let barrier = barrier.clone();
            scope.spawn(move || {
                barrier.wait();
                for k in 0..per_thread {
                    backend
                        .append_batch_grouped("shared", &[tagged_update(&format!("t{t}k{k}"))])
                        .unwrap();
                }
            });
        }
    });
    assert_eq!(
        backend.journal_batches("shared").unwrap(),
        threads * per_thread
    );
    assert_eq!(
        backend.read_batches("shared").unwrap().len(),
        threads * per_thread
    );
}

#[test]
fn fs_backend_conforms() {
    let dir = scratch("fs");
    conformance_suite(&FsBackend::open(&dir).unwrap());
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn mem_backend_conforms() {
    conformance_suite(&MemBackend::new());
}

#[test]
fn fs_backend_conforms_concurrently() {
    let dir = scratch("fs-concurrent");
    concurrent_conformance(Arc::new(FsBackend::open(&dir).unwrap()));
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn mem_backend_conforms_concurrently() {
    concurrent_conformance(Arc::new(MemBackend::new()));
}

/// The multi-segment configuration must pass the same suite: rolling the
/// active segment is invisible at the trait level.
#[test]
fn fs_backend_conforms_with_tiny_segments() {
    let dir = scratch("fs-tiny-segments");
    conformance_suite(&FsBackend::with_segment_roll_bytes(&dir, 64).unwrap());
    std::fs::remove_dir_all(dir).unwrap();
}

/// A group-commit `FsBackend` with a short fill wait: lone committers lead
/// their own windows, so the whole backend is invisible at the trait level.
fn grouped_backend(dir: &std::path::Path) -> FsBackend {
    FsBackend::with_options(
        dir,
        FsOptions {
            commit: CommitPolicy::Grouped {
                window_max_batches: 4,
                window_max_wait: std::time::Duration::from_millis(5),
            },
            ..FsOptions::default()
        },
    )
    .unwrap()
}

/// The group-commit configuration must pass the same suite — including the
/// checkpoint and removal steps, which barrier any open window before
/// touching the document.
#[test]
fn fs_backend_conforms_grouped() {
    let dir = scratch("fs-grouped");
    conformance_suite(&grouped_backend(&dir));
    std::fs::remove_dir_all(dir).unwrap();
}

/// Concurrent appends through shared fsync windows: same serialization,
/// none lost, batch boundaries intact.
#[test]
fn fs_backend_conforms_concurrently_grouped() {
    let dir = scratch("fs-grouped-concurrent");
    concurrent_conformance(Arc::new(grouped_backend(&dir)));
    std::fs::remove_dir_all(dir).unwrap();
}

/// With an empty plan the fault decorator must be a pure pass-through:
/// the full suite runs unchanged, the plan counts every operation it saw,
/// and no fault is ever injected.
#[test]
fn fault_backend_passthrough_conforms_over_fs() {
    let dir = scratch("fault-passthrough-fs");
    let plan = Arc::new(FaultPlan::new());
    let backend = FaultBackend::new(Arc::new(FsBackend::open(&dir).unwrap()), plan.clone());
    conformance_suite(&backend);
    assert_eq!(plan.injected_faults(), 0);
    assert!(plan.ops(FaultOp::Append) > 0, "appends must be counted");
    assert!(plan.ops(FaultOp::Load) > 0, "loads must be counted");
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn fault_backend_passthrough_conforms_over_mem() {
    let plan = Arc::new(FaultPlan::new());
    let backend = FaultBackend::new(Arc::new(MemBackend::new()), plan.clone());
    conformance_suite(&backend);
    assert_eq!(plan.injected_faults(), 0);
}

#[test]
fn fault_backend_passthrough_conforms_concurrently_over_fs() {
    let dir = scratch("fault-passthrough-fs-concurrent");
    concurrent_conformance(Arc::new(FaultBackend::new(
        Arc::new(FsBackend::open(&dir).unwrap()),
        Arc::new(FaultPlan::new()),
    )));
    std::fs::remove_dir_all(dir).unwrap();
}

#[test]
fn fault_backend_passthrough_conforms_concurrently_over_mem() {
    concurrent_conformance(Arc::new(FaultBackend::new(
        Arc::new(MemBackend::new()),
        Arc::new(FaultPlan::new()),
    )));
}

/// A planned fsync failure on `FsBackend` (plan installed through
/// [`FsOptions::fault`], decorator sharing the same plan): the poisoned
/// append surfaces a typed injected error, the unsynced record is rolled
/// back so the journal holds exactly the acknowledged prefix, and the
/// backend keeps working once the one-shot fault has fired.
#[test]
fn injected_fsync_failure_rolls_back_the_append_over_fs() {
    let dir = scratch("fault-fsync-fs");
    let plan = Arc::new(FaultPlan::new().fail_nth(FaultOp::Fsync, 1));
    let inner = FsBackend::with_options(
        &dir,
        FsOptions {
            fault: Some(plan.clone()),
            ..FsOptions::default()
        },
    )
    .unwrap();
    let backend = FaultBackend::new(Arc::new(inner), plan.clone());

    // `save_document` syncs outside the fsync-round path, so the first
    // append is fsync #1 — the planned failure.
    backend.save_document("people", &sample_fuzzy()).unwrap();
    let error = backend
        .append_batch("people", &[tagged_update("lost")])
        .unwrap_err();
    assert!(is_injected(&error), "unexpected error: {error}");
    assert_eq!(plan.injected_faults(), 1);

    // The non-durable record was rolled back: replay sees nothing.
    assert_eq!(backend.journal_batches("people").unwrap(), 0);
    assert!(backend.read_journal("people").unwrap().is_empty());

    // The fault was one-shot; the next append is durable and the journal
    // holds exactly the acknowledged commit.
    backend
        .append_batch("people", &[tagged_update("kept")])
        .unwrap();
    assert_eq!(backend.journal_batches("people").unwrap(), 1);
    assert_eq!(
        backend
            .recover_document("people")
            .unwrap()
            .tree()
            .find_elements("email")
            .len(),
        1
    );
    std::fs::remove_dir_all(dir).unwrap();
}

/// The same planned fsync failure over `MemBackend`: with no filesystem
/// below, the decorator fires the fault at the append boundary — before
/// the inner backend is touched — so the journal again holds exactly the
/// acknowledged prefix.
#[test]
fn injected_fsync_failure_rolls_back_the_append_over_mem() {
    let plan = Arc::new(FaultPlan::new().fail_nth(FaultOp::Fsync, 1));
    let backend = FaultBackend::new(Arc::new(MemBackend::new()), plan.clone());

    backend.save_document("people", &sample_fuzzy()).unwrap();
    let error = backend
        .append_batch("people", &[tagged_update("lost")])
        .unwrap_err();
    assert!(is_injected(&error), "unexpected error: {error}");
    assert_eq!(backend.journal_batches("people").unwrap(), 0);

    backend
        .append_batch("people", &[tagged_update("kept")])
        .unwrap();
    assert_eq!(backend.journal_batches("people").unwrap(), 1);
    assert_eq!(
        backend
            .recover_document("people")
            .unwrap()
            .tree()
            .find_elements("email")
            .len(),
        1
    );
}
