//! The segment-level crash battery: every kill-point of the append-only
//! journal and its compaction protocol, simulated by leaving the exact disk
//! state the killed process would have left, then recovering through a fresh
//! [`FsBackend`]. Also covers the auto-migration of legacy monolithic
//! journals and the open-time debris sweep.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use pxml_core::{FuzzyTree, UpdateTransaction};
use pxml_query::Pattern;
use pxml_store::{serialize_batch, serialize_batched_journal, FsBackend};
use pxml_tree::parse_data_tree;

static COUNTER: AtomicU64 = AtomicU64::new(0);

fn scratch(label: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "pxml-segment-crash-{}-{}-{}",
        std::process::id(),
        label,
        COUNTER.fetch_add(1, Ordering::SeqCst)
    ))
}

fn sample_fuzzy() -> FuzzyTree {
    let mut fuzzy = FuzzyTree::new("directory");
    let person = fuzzy.add_element(fuzzy.root(), "person");
    let name = fuzzy.add_element(person, "name");
    fuzzy.add_text(name, "alice");
    fuzzy
}

fn tagged_update(tag: &str) -> UpdateTransaction {
    let pattern = Pattern::parse("person { name[=\"alice\"] }").unwrap();
    let target = pattern.root();
    UpdateTransaction::new(pattern, 0.8).unwrap().with_insert(
        target,
        parse_data_tree(&format!("<email>{tag}</email>")).unwrap(),
    )
}

/// The e-mail tags a recovered document carries, in replay order.
fn recovered_tags(store: &FsBackend, name: &str) -> Vec<String> {
    let recovered = store.recover_document(name).unwrap();
    let mut tags: Vec<String> = recovered
        .tree()
        .find_elements("email")
        .into_iter()
        .map(|node| recovered.tree().node_value(node).unwrap_or("").to_string())
        .collect();
    tags.sort();
    tags
}

/// One whole record as `append_batch` writes it.
fn encode_record(batch: &[UpdateTransaction]) -> Vec<u8> {
    let payload = serialize_batch(batch);
    let mut record = Vec::new();
    record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    record.extend_from_slice(&(batch.len() as u32).to_le_bytes());
    record.extend_from_slice(payload.as_bytes());
    record
}

/// Kill mid-record: the tail record's payload is cut short of its length
/// prefix. Recovery keeps the whole records before it, discards the tail,
/// and truncates the file so later appends start on a record boundary.
#[test]
fn torn_tail_payload_is_discarded_and_prefix_replays() {
    let dir = scratch("torn-payload");
    {
        let store = FsBackend::open(&dir).unwrap();
        store.save_document("doc", &sample_fuzzy()).unwrap();
        store
            .append_batch("doc", &[tagged_update("whole")])
            .unwrap();
        // The crash: a second record is half-written into the same segment.
        let torn = encode_record(&[tagged_update("torn")]);
        let mut bytes = fs::read(dir.join("doc.journal.0.0.seg")).unwrap();
        let sound = bytes.len();
        bytes.extend_from_slice(&torn[..torn.len() - 7]);
        fs::write(dir.join("doc.journal.0.0.seg"), &bytes).unwrap();

        let reopened = FsBackend::open(&dir).unwrap();
        assert_eq!(recovered_tags(&reopened, "doc"), vec!["whole"]);
        assert_eq!(
            fs::metadata(dir.join("doc.journal.0.0.seg")).unwrap().len(),
            sound as u64,
            "the torn tail must be truncated away"
        );
        // The next append lands cleanly on the truncated boundary.
        reopened
            .append_batch("doc", &[tagged_update("after")])
            .unwrap();
    }
    let reopened = FsBackend::open(&dir).unwrap();
    assert_eq!(recovered_tags(&reopened, "doc"), vec!["after", "whole"]);
    fs::remove_dir_all(dir).unwrap();
}

/// Kill even earlier: not all of the 8 header bytes made it to disk.
#[test]
fn torn_tail_header_is_discarded() {
    let dir = scratch("torn-header");
    let store = FsBackend::open(&dir).unwrap();
    store.save_document("doc", &sample_fuzzy()).unwrap();
    store
        .append_batch("doc", &[tagged_update("whole")])
        .unwrap();
    let mut bytes = fs::read(dir.join("doc.journal.0.0.seg")).unwrap();
    bytes.extend_from_slice(&[42, 0, 0]); // 3 of 8 header bytes
    fs::write(dir.join("doc.journal.0.0.seg"), &bytes).unwrap();

    let reopened = FsBackend::open(&dir).unwrap();
    assert_eq!(recovered_tags(&reopened, "doc"), vec!["whole"]);
    assert_eq!(reopened.journal_batches("doc").unwrap(), 1);
    fs::remove_dir_all(dir).unwrap();
}

/// Kill between segments: the journal had rolled into several segment files
/// and the crash hit while the *newest* segment's record was in flight. The
/// whole multi-segment prefix replays; only the torn record in the newest
/// segment is discarded.
#[test]
fn kill_between_segments_replays_the_prefix() {
    let dir = scratch("between-segments");
    {
        // 1-byte roll threshold: every record gets its own segment.
        let store = FsBackend::with_segment_roll_bytes(&dir, 1).unwrap();
        store.save_document("doc", &sample_fuzzy()).unwrap();
        for tag in ["s0", "s1", "s2"] {
            store.append_batch("doc", &[tagged_update(tag)]).unwrap();
        }
        // The crash: segment 3 only received half a record.
        let torn = encode_record(&[tagged_update("s3")]);
        fs::write(dir.join("doc.journal.0.3.seg"), &torn[..torn.len() / 2]).unwrap();
    }
    let reopened = FsBackend::with_segment_roll_bytes(&dir, 1).unwrap();
    assert_eq!(recovered_tags(&reopened, "doc"), vec!["s0", "s1", "s2"]);
    assert_eq!(reopened.journal_batches("doc").unwrap(), 3);
    // The journal keeps rolling from where the sound prefix ended.
    reopened
        .append_batch("doc", &[tagged_update("s4")])
        .unwrap();
    assert_eq!(
        recovered_tags(&reopened, "doc"),
        vec!["s0", "s1", "s2", "s4"]
    );
    fs::remove_dir_all(dir).unwrap();
}

/// Kill between a compaction's checkpoint rename (its commit point) and the
/// deletion of the folded segments: the stale-epoch segments must be ignored
/// by recovery — replaying them would double-apply their batches — and swept
/// by the scan.
#[test]
fn stale_epoch_segments_after_a_compaction_crash_are_ignored() {
    let dir = scratch("stale-epoch");
    let stale_segment = dir.join("doc.journal.0.0.seg");
    {
        let store = FsBackend::open(&dir).unwrap();
        store.save_document("doc", &sample_fuzzy()).unwrap();
        store
            .append_batch("doc", &[tagged_update("folded")])
            .unwrap();
        let folded = store.recover_document("doc").unwrap();
        let stale_bytes = fs::read(&stale_segment).unwrap();
        store.checkpoint("doc", &folded).unwrap();
        // The crash: resurrect the epoch-0 segment the checkpoint deleted,
        // exactly as if the process died between the rename and the delete.
        fs::write(&stale_segment, stale_bytes).unwrap();
    }
    let reopened = FsBackend::open(&dir).unwrap();
    // Exactly one copy of the folded update: from the checkpoint, not the
    // stale segment.
    assert_eq!(recovered_tags(&reopened, "doc"), vec!["folded"]);
    assert_eq!(reopened.journal_batches("doc").unwrap(), 0);
    assert!(!stale_segment.exists(), "stale-epoch segment swept");
    fs::remove_dir_all(dir).unwrap();
}

/// Kill during a document removal (checkpoint deleted, segments not yet):
/// the orphaned segments are swept at the next open instead of leaking into
/// a same-named re-created document.
#[test]
fn orphaned_segments_without_a_checkpoint_are_swept_at_open() {
    let dir = scratch("orphan-segments");
    {
        let store = FsBackend::open(&dir).unwrap();
        store.save_document("doc", &sample_fuzzy()).unwrap();
        store
            .append_batch("doc", &[tagged_update("ghost")])
            .unwrap();
        // The crash mid-removal: the checkpoint is gone, the segment stays.
        fs::remove_file(dir.join("doc.pxml")).unwrap();
    }
    let reopened = FsBackend::open(&dir).unwrap();
    assert!(!dir.join("doc.journal.0.0.seg").exists(), "orphan swept");
    // A re-created document starts clean.
    reopened.save_document("doc", &sample_fuzzy()).unwrap();
    assert!(recovered_tags(&reopened, "doc").is_empty());
    fs::remove_dir_all(dir).unwrap();
}

/// A half-written compaction output (the `.tmp` the checkpoint writer was
/// killed over before its rename) is swept at open and the previous
/// checkpoint + journal remain authoritative.
#[test]
fn half_written_compaction_output_is_swept_at_open() {
    let dir = scratch("compaction-tmp");
    {
        let store = FsBackend::open(&dir).unwrap();
        store.save_document("doc", &sample_fuzzy()).unwrap();
        store.append_batch("doc", &[tagged_update("kept")]).unwrap();
        // The crash: a compaction died mid-write of its staged checkpoint.
        fs::write(dir.join(".doc.pxml.tmp"), "half a checkpoi").unwrap();
    }
    let reopened = FsBackend::open(&dir).unwrap();
    assert!(!dir.join(".doc.pxml.tmp").exists(), "staging debris swept");
    assert_eq!(recovered_tags(&reopened, "doc"), vec!["kept"]);
    assert_eq!(reopened.journal_batches("doc").unwrap(), 1);
    fs::remove_dir_all(dir).unwrap();
}

/// A legacy monolithic `<name>.journal` is auto-migrated at open: the same
/// batches, in the same order, now in segment form — and the round trip
/// through a full recovery matches what the legacy layout would have
/// replayed.
#[test]
fn legacy_monolithic_journal_migrates_on_open() {
    let dir = scratch("legacy-migration");
    fs::create_dir_all(&dir).unwrap();
    // Fabricate a pre-segment store state by hand: checkpoint + monolithic
    // batched journal.
    let fuzzy = sample_fuzzy();
    {
        let store = FsBackend::open(&dir).unwrap();
        store.save_document("doc", &fuzzy).unwrap();
    }
    let batches = vec![
        vec![tagged_update("m1a"), tagged_update("m1b")],
        vec![tagged_update("m2")],
    ];
    fs::write(dir.join("doc.journal"), serialize_batched_journal(&batches)).unwrap();

    // Reference: what the legacy layout replays.
    let mut reference = fuzzy.clone();
    for update in batches.iter().flatten() {
        update.apply_to_fuzzy(&mut reference).unwrap();
    }

    let migrated = FsBackend::open(&dir).unwrap();
    assert!(!dir.join("doc.journal").exists(), "legacy journal removed");
    assert!(dir.join("doc.journal.0.0.seg").exists(), "segment written");
    assert_eq!(migrated.journal_batches("doc").unwrap(), 2);
    assert_eq!(migrated.journal_length("doc").unwrap(), 3);
    let recovered = migrated.recover_document("doc").unwrap();
    assert!(recovered.semantically_equivalent(&reference, 1e-9).unwrap());
    assert_eq!(recovered_tags(&migrated, "doc"), vec!["m1a", "m1b", "m2"]);

    // Appends continue into the migrated segment and everything replays.
    migrated
        .append_batch("doc", &[tagged_update("post")])
        .unwrap();
    let reopened = FsBackend::open(&dir).unwrap();
    assert_eq!(
        recovered_tags(&reopened, "doc"),
        vec!["m1a", "m1b", "m2", "post"]
    );
    fs::remove_dir_all(dir).unwrap();
}

/// A migration killed after its rename commit point but before the legacy
/// file's removal leaves both forms on disk; the next open must keep the
/// segment (already authoritative) and drop the leftover source instead of
/// double-migrating.
#[test]
fn migration_crash_after_rename_does_not_double_migrate() {
    let dir = scratch("legacy-double");
    fs::create_dir_all(&dir).unwrap();
    {
        let store = FsBackend::open(&dir).unwrap();
        store.save_document("doc", &sample_fuzzy()).unwrap();
    }
    let batches = vec![vec![tagged_update("once")]];
    let legacy = serialize_batched_journal(&batches);
    fs::write(dir.join("doc.journal"), &legacy).unwrap();
    // First open migrates…
    let _ = FsBackend::open(&dir).unwrap();
    // …then the "crash": the legacy file reappears next to the segment,
    // exactly as if the process had died before removing it.
    fs::write(dir.join("doc.journal"), &legacy).unwrap();

    let reopened = FsBackend::open(&dir).unwrap();
    assert!(!dir.join("doc.journal").exists());
    assert_eq!(reopened.journal_batches("doc").unwrap(), 1, "no duplicate");
    assert_eq!(recovered_tags(&reopened, "doc"), vec!["once"]);
    fs::remove_dir_all(dir).unwrap();
}

/// An orphaned legacy journal (its document was removed under the old
/// layout) is swept, not migrated.
#[test]
fn orphaned_legacy_journal_is_swept_at_open() {
    let dir = scratch("legacy-orphan");
    fs::create_dir_all(&dir).unwrap();
    fs::write(
        dir.join("gone.journal"),
        serialize_batched_journal(&[vec![tagged_update("x")]]),
    )
    .unwrap();
    let store = FsBackend::open(&dir).unwrap();
    assert!(!dir.join("gone.journal").exists());
    assert!(store.list_documents().unwrap().is_empty());
    fs::remove_dir_all(dir).unwrap();
}

/// The roll kill-point: the process died immediately after an append whose
/// record opened a *fresh* segment file. The append's fsync round syncs the
/// store directory whenever the record rolled into a new segment, so the
/// acknowledged batch cannot be lost to an unflushed directory entry — the
/// new segment and every earlier one must be found and replayed at reopen.
#[test]
fn crash_right_after_a_roll_keeps_the_new_segment() {
    let dir = scratch("after-roll");
    {
        // 1-byte roll threshold: every append ends with a just-rolled
        // segment, the worst case for directory durability.
        let store = FsBackend::with_segment_roll_bytes(&dir, 1).unwrap();
        store.save_document("doc", &sample_fuzzy()).unwrap();
        for tag in ["r0", "r1", "r2"] {
            store.append_batch("doc", &[tagged_update(tag)]).unwrap();
        }
        // Dropped without checkpoint: the crash right after the last ack.
    }
    for seq in 0..3 {
        assert!(
            dir.join(format!("doc.journal.0.{seq}.seg")).exists(),
            "segment {seq} must still have its directory entry"
        );
    }
    let reopened = FsBackend::with_segment_roll_bytes(&dir, 1).unwrap();
    assert_eq!(recovered_tags(&reopened, "doc"), vec!["r0", "r1", "r2"]);
    assert_eq!(reopened.journal_batches("doc").unwrap(), 3);
    fs::remove_dir_all(dir).unwrap();
}

/// The fully-written-record kill-point: the process died immediately after
/// `append_batch` returned (fsync done). The batch is durable and must
/// replay — the counterpart of the torn-tail discard.
#[test]
fn crash_after_append_returns_replays_the_batch() {
    let dir = scratch("durable-append");
    {
        let store = FsBackend::open(&dir).unwrap();
        store.save_document("doc", &sample_fuzzy()).unwrap();
        store
            .append_batch("doc", &[tagged_update("a"), tagged_update("b")])
            .unwrap();
        // Dropped without checkpoint: the crash.
    }
    let reopened = FsBackend::open(&dir).unwrap();
    assert_eq!(recovered_tags(&reopened, "doc"), vec!["a", "b"]);
    fs::remove_dir_all(dir).unwrap();
}
