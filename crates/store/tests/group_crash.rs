//! The group-commit crash battery: kill-points of the shared fsync window,
//! simulated by leaving the exact disk state the killed process would have
//! left, then recovering through a fresh [`FsBackend`].
//!
//! The durability contract under test: a grouped commit is acknowledged
//! only after its window's fsync round, so
//!
//! * a kill *before* the round (modeled as the window's writes torn on
//!   disk, the state a device loses when nothing forced the cache out)
//!   discards every member of the window on replay;
//! * a kill *after* the round replays every member;
//! * a mixed window — one member's bytes survived whole, another's torn —
//!   replays exactly the whole one; per-document torn-tail recovery is
//!   unchanged by grouping.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

use pxml_core::{FuzzyTree, UpdateTransaction};
use pxml_query::Pattern;
use pxml_store::{serialize_batch, CommitPolicy, FsBackend, FsOptions};
use pxml_tree::parse_data_tree;

static COUNTER: AtomicU64 = AtomicU64::new(0);

fn scratch(label: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "pxml-group-crash-{}-{}-{}",
        std::process::id(),
        label,
        COUNTER.fetch_add(1, Ordering::SeqCst)
    ))
}

fn sample_fuzzy() -> FuzzyTree {
    let mut fuzzy = FuzzyTree::new("directory");
    let person = fuzzy.add_element(fuzzy.root(), "person");
    let name = fuzzy.add_element(person, "name");
    fuzzy.add_text(name, "alice");
    fuzzy
}

fn tagged_update(tag: &str) -> UpdateTransaction {
    let pattern = Pattern::parse("person { name[=\"alice\"] }").unwrap();
    let target = pattern.root();
    UpdateTransaction::new(pattern, 0.8).unwrap().with_insert(
        target,
        parse_data_tree(&format!("<email>{tag}</email>")).unwrap(),
    )
}

/// The e-mail tags a recovered document carries, sorted.
fn recovered_tags(store: &FsBackend, name: &str) -> Vec<String> {
    let recovered = store.recover_document(name).unwrap();
    let mut tags: Vec<String> = recovered
        .tree()
        .find_elements("email")
        .into_iter()
        .map(|node| recovered.tree().node_value(node).unwrap_or("").to_string())
        .collect();
    tags.sort();
    tags
}

/// One whole record as the journal writes it.
fn encode_record(batch: &[UpdateTransaction]) -> Vec<u8> {
    let payload = serialize_batch(batch);
    let mut record = Vec::new();
    record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    record.extend_from_slice(&(batch.len() as u32).to_le_bytes());
    record.extend_from_slice(payload.as_bytes());
    record
}

/// A grouped backend with a window of `window_max_batches` and a wait long
/// enough that barrier-started committers always share a window. Sequential
/// lone appends still return immediately thanks to the committer's idle
/// fast-path.
fn grouped(dir: &Path, window_max_batches: usize) -> FsBackend {
    grouped_with(dir, window_max_batches, false)
}

/// Like [`grouped`], but in deliberate-window mode
/// (`group_fill_idle_windows`): every leader waits out the fill window, so
/// barrier-started committers share one fsync round *deterministically* —
/// for tests that assert on the exact round count.
fn grouped_deliberate(dir: &Path, window_max_batches: usize) -> FsBackend {
    grouped_with(dir, window_max_batches, true)
}

fn grouped_with(dir: &Path, window_max_batches: usize, fill_idle: bool) -> FsBackend {
    FsBackend::with_options(
        dir,
        FsOptions {
            commit: CommitPolicy::Grouped {
                window_max_batches,
                window_max_wait: Duration::from_secs(5),
            },
            group_fill_idle_windows: fill_idle,
            ..FsOptions::default()
        },
    )
    .unwrap()
}

/// Appends `bytes` of a torn record to a document's epoch-0 segment 0,
/// creating it if the window's write never reached a previous segment.
fn tear_into_segment(dir: &Path, doc: &str, torn: &[u8]) {
    let path = dir.join(format!("{doc}.journal.0.0.seg"));
    let mut bytes = if path.exists() {
        fs::read(&path).unwrap()
    } else {
        Vec::new()
    };
    bytes.extend_from_slice(torn);
    fs::write(&path, bytes).unwrap();
}

/// Kill before the window's fsync round: a two-document window was written
/// (torn, as an unflushed cache leaves it) but never synced. Neither member
/// was acknowledged; neither may surface on replay — while both documents'
/// previously acknowledged batches must.
#[test]
fn kill_before_window_fsync_discards_all_members() {
    let dir = scratch("before-fsync");
    {
        // The seeding appends are sequential: the idle fast-path fsyncs
        // each immediately instead of waiting out the fill timeout.
        let store = grouped(&dir, 2);
        for doc in ["doc-a", "doc-b"] {
            store.save_document(doc, &sample_fuzzy()).unwrap();
            store
                .append_batch_grouped(doc, &[tagged_update("acked")])
                .unwrap();
        }
        // The crash: a window spanning both documents died before its
        // round; each member's record is cut short on disk.
        for doc in ["doc-a", "doc-b"] {
            let torn = encode_record(&[tagged_update("unacked")]);
            tear_into_segment(&dir, doc, &torn[..torn.len() - 5]);
        }
    }
    let reopened = FsBackend::open(&dir).unwrap();
    for doc in ["doc-a", "doc-b"] {
        assert_eq!(
            recovered_tags(&reopened, doc),
            vec!["acked"],
            "{doc}: the unacknowledged window member must not surface"
        );
        assert_eq!(reopened.journal_batches(doc).unwrap(), 1);
    }
    fs::remove_dir_all(dir).unwrap();
}

/// Kill after the window's fsync round: two barrier-started committers to
/// two documents share one window (one fsync round for both), the process
/// dies right after both acknowledgements — both batches must replay.
#[test]
fn kill_after_window_fsync_replays_all_members() {
    let dir = scratch("after-fsync");
    {
        // Deliberate windows: the test asserts exactly one shared round, so
        // the leader must not fast-path ahead of the second committer.
        let store = Arc::new(grouped_deliberate(&dir, 2));
        store.save_document("doc-a", &sample_fuzzy()).unwrap();
        store.save_document("doc-b", &sample_fuzzy()).unwrap();
        let before = store.durability_stats();
        let barrier = Barrier::new(2);
        std::thread::scope(|scope| {
            for doc in ["doc-a", "doc-b"] {
                let store = store.clone();
                let barrier = &barrier;
                scope.spawn(move || {
                    barrier.wait();
                    store
                        .append_batch_grouped(doc, &[tagged_update("shared")])
                        .unwrap();
                });
            }
        });
        let stats = store.durability_stats();
        assert_eq!(stats.grouped_commits - before.grouped_commits, 2);
        assert_eq!(
            stats.fsyncs - before.fsyncs,
            1,
            "both committers must share one fsync round"
        );
        // Dropped without checkpoint: the crash after the round.
    }
    let reopened = FsBackend::open(&dir).unwrap();
    for doc in ["doc-a", "doc-b"] {
        assert_eq!(recovered_tags(&reopened, doc), vec!["shared"]);
        assert_eq!(reopened.journal_batches(doc).unwrap(), 1);
    }
    fs::remove_dir_all(dir).unwrap();
}

/// The mixed window: of two documents in one window, one member's bytes
/// reached the platter whole, the other's were torn. Recovery is
/// per-document — the whole record replays (it was never *acknowledged*,
/// but surfacing a fully-written batch is sound), the torn one is
/// discarded, and neither document's earlier history is disturbed.
#[test]
fn mixed_window_replays_sound_member_and_discards_torn_member() {
    let dir = scratch("mixed-window");
    {
        // Sequential seeding rides the idle fast-path — see
        // `kill_before_window_fsync_discards_all_members`.
        let store = grouped(&dir, 2);
        for doc in ["doc-a", "doc-b"] {
            store.save_document(doc, &sample_fuzzy()).unwrap();
            store
                .append_batch_grouped(doc, &[tagged_update("base")])
                .unwrap();
        }
        // The crash: doc-a's window member is whole on disk, doc-b's is
        // torn mid-payload.
        tear_into_segment(&dir, "doc-a", &encode_record(&[tagged_update("sound")]));
        let torn = encode_record(&[tagged_update("torn")]);
        tear_into_segment(&dir, "doc-b", &torn[..torn.len() / 2]);
    }
    let reopened = FsBackend::open(&dir).unwrap();
    assert_eq!(recovered_tags(&reopened, "doc-a"), vec!["base", "sound"]);
    assert_eq!(recovered_tags(&reopened, "doc-b"), vec!["base"]);
    assert_eq!(reopened.journal_batches("doc-a").unwrap(), 2);
    assert_eq!(reopened.journal_batches("doc-b").unwrap(), 1);
    // Both documents keep accepting commits on the recovered boundary.
    for doc in ["doc-a", "doc-b"] {
        reopened
            .append_batch(doc, &[tagged_update("after")])
            .unwrap();
    }
    assert_eq!(
        recovered_tags(&reopened, "doc-a"),
        vec!["after", "base", "sound"]
    );
    assert_eq!(recovered_tags(&reopened, "doc-b"), vec!["after", "base"]);
    fs::remove_dir_all(dir).unwrap();
}

/// A window whose member triggers a segment roll, killed right after the
/// round: the fresh segment (and its directory entry — the round syncs the
/// directory when a segment is born) must survive the reopen with every
/// window member.
#[test]
fn window_with_segment_roll_survives_crash_after_fsync() {
    let dir = scratch("window-roll");
    {
        let store = FsBackend::with_options(
            &dir,
            FsOptions {
                segment_roll_bytes: 1, // every record rolls a new segment
                commit: CommitPolicy::Grouped {
                    window_max_batches: 2,
                    window_max_wait: Duration::from_secs(5),
                },
                // Both documents must land in one *shared* window per round
                // (the scenario under test), so disable the idle fast-path.
                group_fill_idle_windows: true,
                ..FsOptions::default()
            },
        )
        .unwrap();
        store.save_document("doc-a", &sample_fuzzy()).unwrap();
        store.save_document("doc-b", &sample_fuzzy()).unwrap();
        for tag in ["r0", "r1"] {
            let barrier = Barrier::new(2);
            std::thread::scope(|scope| {
                for doc in ["doc-a", "doc-b"] {
                    let store = &store;
                    let barrier = &barrier;
                    scope.spawn(move || {
                        barrier.wait();
                        store
                            .append_batch_grouped(doc, &[tagged_update(tag)])
                            .unwrap();
                    });
                }
            });
        }
        // Dropped without checkpoint: the crash.
    }
    let reopened = FsBackend::with_segment_roll_bytes(&dir, 1).unwrap();
    for doc in ["doc-a", "doc-b"] {
        assert_eq!(recovered_tags(&reopened, doc), vec!["r0", "r1"]);
        assert_eq!(reopened.journal_batches(doc).unwrap(), 2);
    }
    fs::remove_dir_all(dir).unwrap();
}

/// Grouped and per-batch sync commit must be observationally identical on
/// disk: the same barrier-started 8-writer hammer against both policies
/// yields byte-identical journal contents (same batches, same per-document
/// order) and equivalent recovered documents.
#[test]
fn grouped_and_sync_hammers_yield_identical_journals() {
    let writers = 8;
    let commits_per_writer = 6;
    let doc = |w: usize| format!("doc-{w}");
    let run = |store: &FsBackend| {
        for w in 0..writers {
            store.save_document(&doc(w), &sample_fuzzy()).unwrap();
        }
        let barrier = Barrier::new(writers);
        std::thread::scope(|scope| {
            for w in 0..writers {
                let store = &store;
                let barrier = &barrier;
                let name = doc(w);
                scope.spawn(move || {
                    barrier.wait();
                    for c in 0..commits_per_writer {
                        store
                            .append_batch_grouped(&name, &[tagged_update(&format!("w{w}c{c}"))])
                            .unwrap();
                    }
                });
            }
        });
    };

    let sync_dir = scratch("hammer-sync");
    let sync_store = FsBackend::open(&sync_dir).unwrap();
    run(&sync_store);

    let grouped_dir = scratch("hammer-grouped");
    // A short fill wait: late windows that never reach 8 members must not
    // stall the tail of the hammer.
    let grouped_store = FsBackend::with_options(
        &grouped_dir,
        FsOptions {
            commit: CommitPolicy::Grouped {
                window_max_batches: writers,
                window_max_wait: Duration::from_millis(10),
            },
            ..FsOptions::default()
        },
    )
    .unwrap();
    run(&grouped_store);

    let stats = grouped_store.durability_stats();
    assert_eq!(stats.grouped_commits, writers * commits_per_writer);

    for w in 0..writers {
        let name = doc(w);
        let from_sync = sync_store.read_batches(&name).unwrap();
        let from_grouped = grouped_store.read_batches(&name).unwrap();
        assert_eq!(
            from_sync.len(),
            commits_per_writer,
            "{name}: every commit journaled exactly once"
        );
        let serialize = |batches: &[Vec<UpdateTransaction>]| -> Vec<String> {
            batches.iter().map(|b| serialize_batch(b)).collect()
        };
        assert_eq!(
            serialize(&from_sync),
            serialize(&from_grouped),
            "{name}: grouped journal must match the sync journal"
        );
        let sync_doc = sync_store.recover_document(&name).unwrap();
        let grouped_doc = grouped_store.recover_document(&name).unwrap();
        assert!(sync_doc
            .semantically_equivalent(&grouped_doc, 1e-9)
            .unwrap());
    }
    fs::remove_dir_all(sync_dir).unwrap();
    fs::remove_dir_all(grouped_dir).unwrap();
}
