//! Concurrency correctness tooling for the probabilistic XML warehouse.
//!
//! Three independent prongs, one goal: make the engine's locking and
//! group-commit protocols *checkable* instead of merely documented.
//!
//! - [`lint`] — a lexical invariant linter (`cargo run -p pxml-check --bin
//!   lint`) that fails the build when code bypasses the instrumented lock
//!   shim, unwraps under a lock guard, constructs a lock without a witness
//!   class, or reads a protocol atomic with relaxed ordering.
//! - [`model`] + [`loom`] — a hand-rolled stateless model checker ("mini
//!   loom") that exhaustively explores every bounded interleaving of a
//!   faithful [`model`] of the store's group committer and asserts the
//!   durability contract at every reachable state.
//! - the **lock-order witness** lives in `shims/parking_lot` behind the
//!   `lock-witness` feature; this crate's `tests/lockdep.rs` proves the
//!   witness actually catches ABBA deadlocks and declared-order inversions.
//!
//! None of this is wired into the hot path: the witness compiles to
//! nothing without its feature, the model checker runs against a model, and
//! the linter reads source text. See README § "Concurrency correctness".

pub mod lint;
pub mod loom;
pub mod model;
