//! Mini-loom: an exhaustive, deterministic explorer of bounded
//! `GroupCommitter` model interleavings (hand-rolled — no crates.io).
//!
//! The explorer runs a depth-first search over the model's state graph:
//! from each state it tries every enabled `(thread, step)` transition, so
//! within a scenario's bounds (threads, commits per thread) **every**
//! schedule the scheduler could produce is covered. Two prunings keep the
//! search exact but small:
//!
//! - **memoization**: states are compared structurally; a state reached by
//!   two different schedules is explored once (the state graph is a DAG —
//!   every step consumes program progress — so this is a pure cache);
//! - **DPOR-lite persistent sets**: `ObserveAck` only touches its own
//!   thread's program counter and reads a monotone flag, so it commutes
//!   with every other transition and is invisible to the invariants; when
//!   one is enabled the explorer commits to it alone instead of also
//!   branching over the other threads' moves.
//!
//! Invariants ([`State::check`]) are asserted at **every** visited state,
//! which is exactly "at every crash point of every schedule" (see the model
//! docs). `schedules` reports the number of distinct schedules the reduced
//! graph represents, counted exactly by dynamic programming over the DAG.

use std::collections::HashMap;

use crate::model::{Scenario, State, Step};

/// Exploration outcome and coverage counters for one scenario.
#[derive(Clone, Debug, Default)]
pub struct ExploreStats {
    /// Distinct states visited (memoization keys).
    pub states: usize,
    /// Transitions executed (edges of the reduced state graph).
    pub transitions: usize,
    /// Re-encounters of an already-explored state (pruned subtrees).
    pub memo_hits: usize,
    /// States where the persistent-set reduction committed to a single
    /// local transition.
    pub local_fastpaths: usize,
    /// Terminal (all-threads-done) states reached.
    pub terminals: usize,
    /// Distinct complete schedules the explored graph represents.
    pub schedules: u128,
    /// Longest schedule, in steps.
    pub max_depth: usize,
    /// Invariant violations, each with the schedule that exposed it.
    pub violations: Vec<String>,
}

/// How many violations to keep verbatim before only counting.
const MAX_RECORDED_VIOLATIONS: usize = 8;

struct Explorer<'a> {
    scenario: &'a Scenario,
    /// State → number of complete schedules reachable from it.
    memo: HashMap<State, u128>,
    stats: ExploreStats,
    /// The schedule prefix that led to the current state.
    trace: Vec<(usize, Step)>,
}

/// Exhaustively explores `scenario` and returns the coverage counters. An
/// empty [`ExploreStats::violations`] means every schedule within the
/// bounds upholds the durability and ordering invariants.
pub fn explore(scenario: &Scenario) -> ExploreStats {
    let mut explorer = Explorer {
        scenario,
        memo: HashMap::new(),
        stats: ExploreStats::default(),
        trace: Vec::new(),
    };
    let schedules = explorer.dfs(&State::initial(scenario));
    explorer.stats.schedules = schedules;
    explorer.stats.states = explorer.memo.len();
    explorer.stats
}

impl Explorer<'_> {
    fn dfs(&mut self, state: &State) -> u128 {
        if let Some(&schedules) = self.memo.get(state) {
            self.stats.memo_hits += 1;
            return schedules;
        }
        self.stats.max_depth = self.stats.max_depth.max(self.trace.len());
        if let Some(violation) = state.check(self.scenario) {
            self.record_violation(&violation);
        }
        let mut moves = state.enabled(self.scenario);
        if let Some(&local) = moves.iter().find(|(_, step)| *step == Step::ObserveAck) {
            if moves.len() > 1 {
                self.stats.local_fastpaths += 1;
            }
            moves = vec![local];
        }
        let schedules = if moves.is_empty() {
            if !state.is_terminal() {
                self.record_violation("deadlock: no thread can move");
            }
            self.stats.terminals += 1;
            1
        } else {
            let mut total: u128 = 0;
            for (thread, step) in moves {
                self.stats.transitions += 1;
                let next = state.apply(self.scenario, thread, step);
                self.trace.push((thread, step));
                total = total.saturating_add(self.dfs(&next));
                self.trace.pop();
            }
            total
        };
        self.memo.insert(state.clone(), schedules);
        schedules
    }

    fn record_violation(&mut self, violation: &str) {
        if self.stats.violations.len() < MAX_RECORDED_VIOLATIONS {
            let schedule: Vec<String> = self
                .trace
                .iter()
                .map(|(thread, step)| format!("t{thread}:{step:?}"))
                .collect();
            self.stats.violations.push(format!(
                "[{}] {violation} (schedule: {})",
                self.scenario.name,
                schedule.join(" ")
            ));
        }
    }
}

/// The scenario battery the explorer suite and the `explore` binary run:
/// every bounded 2-thread schedule of the committer (same doc, distinct
/// docs, window of 1, deliberate-window mode) plus 3-thread sweeps.
pub fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "2t-1doc-w2",
            threads: vec![vec![0, 0], vec![0, 0]],
            docs: 1,
            window_max: 2,
            fill_idle: false,
            bug_ack_before_fsync: false,
            fsync_fails_at: None,
            bug_ack_after_failed_fsync: false,
        },
        Scenario {
            name: "2t-2docs-w2",
            threads: vec![vec![0, 1], vec![1, 0]],
            docs: 2,
            window_max: 2,
            fill_idle: false,
            bug_ack_before_fsync: false,
            fsync_fails_at: None,
            bug_ack_after_failed_fsync: false,
        },
        Scenario {
            name: "2t-1doc-w1",
            threads: vec![vec![0, 0], vec![0, 0]],
            docs: 1,
            window_max: 1,
            fill_idle: false,
            bug_ack_before_fsync: false,
            fsync_fails_at: None,
            bug_ack_after_failed_fsync: false,
        },
        Scenario {
            name: "2t-2docs-fill-idle",
            threads: vec![vec![0], vec![1]],
            docs: 2,
            window_max: 2,
            fill_idle: true,
            bug_ack_before_fsync: false,
            fsync_fails_at: None,
            bug_ack_after_failed_fsync: false,
        },
        Scenario {
            name: "3t-2docs-w3",
            threads: vec![vec![0], vec![1], vec![0]],
            docs: 2,
            window_max: 3,
            fill_idle: false,
            bug_ack_before_fsync: false,
            fsync_fails_at: None,
            bug_ack_after_failed_fsync: false,
        },
        Scenario {
            name: "3t-1doc-w2",
            threads: vec![vec![0, 0], vec![0], vec![0]],
            docs: 1,
            window_max: 2,
            fill_idle: false,
            bug_ack_before_fsync: false,
            fsync_fails_at: None,
            bug_ack_after_failed_fsync: false,
        },
        // Failing-fsync scenarios: the first (or a later) shared round
        // fails, and in every schedule the invariants must still hold — in
        // particular I1 proves no reachable state acknowledges a record
        // outside the fsynced prefix, across the rollback, the poisoned
        // drains and the failed enqueues.
        Scenario {
            name: "2t-1doc-fsync-fail-1",
            threads: vec![vec![0, 0], vec![0, 0]],
            docs: 1,
            window_max: 2,
            fill_idle: false,
            bug_ack_before_fsync: false,
            fsync_fails_at: Some(1),
            bug_ack_after_failed_fsync: false,
        },
        Scenario {
            name: "2t-2docs-fsync-fail-2",
            threads: vec![vec![0, 1], vec![1, 0]],
            docs: 2,
            window_max: 2,
            fill_idle: false,
            bug_ack_before_fsync: false,
            fsync_fails_at: Some(2),
            bug_ack_after_failed_fsync: false,
        },
    ]
}

/// The deliberately broken scenario the self-tests use to prove the
/// invariant machinery detects a real durability bug.
pub fn seeded_bug_scenario() -> Scenario {
    Scenario {
        name: "seeded-ack-before-fsync",
        threads: vec![vec![0], vec![0]],
        docs: 1,
        window_max: 2,
        fill_idle: false,
        bug_ack_before_fsync: true,
        fsync_fails_at: None,
        bug_ack_after_failed_fsync: false,
    }
}

/// The seeded fsyncgate bug: the leader's first fsync round fails but it
/// acknowledges the window anyway (records written, never durable). The
/// explorer's I1 must catch it — the self-tests assert it does.
pub fn seeded_fsyncgate_scenario() -> Scenario {
    Scenario {
        name: "seeded-ack-after-failed-fsync",
        threads: vec![vec![0], vec![0]],
        docs: 1,
        window_max: 2,
        fill_idle: false,
        bug_ack_before_fsync: false,
        fsync_fails_at: Some(1),
        bug_ack_after_failed_fsync: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explorer_is_deterministic() {
        let scenario = &scenarios()[0];
        let first = explore(scenario);
        let second = explore(scenario);
        assert_eq!(first.states, second.states);
        assert_eq!(first.transitions, second.transitions);
        assert_eq!(first.schedules, second.schedules);
        assert_eq!(first.violations, second.violations);
    }

    #[test]
    fn lone_thread_has_exactly_one_schedule() {
        let scenario = Scenario {
            name: "1t-1doc",
            threads: vec![vec![0]],
            docs: 1,
            window_max: 2,
            fill_idle: false,
            bug_ack_before_fsync: false,
            fsync_fails_at: None,
            bug_ack_after_failed_fsync: false,
        };
        let stats = explore(&scenario);
        assert!(stats.violations.is_empty(), "{:?}", stats.violations);
        // Enqueue → Lead(+fast-path drain) → Write → Fsync → Complete →
        // Release → ObserveAck: no choice points anywhere.
        assert_eq!(stats.schedules, 1);
        assert_eq!(stats.terminals, 1);
    }
}
