//! The repo invariant linter: lexical/structural enforcement (no `syn`, no
//! crates.io) of the concurrency rules the engine's safety rests on.
//!
//! Rules (all scoped to workspace sources outside `shims/`):
//!
//! - **`std-sync-lock`** — no `std::sync::{Mutex, RwLock, Condvar}` (or
//!   their guard types) anywhere: blocking primitives must come from the
//!   `parking_lot` shim so the lock-witness instruments them.
//! - **`guard-unwrap`** — no `.unwrap()` / `.expect(` in non-test code
//!   while a lock guard is live (either later in the same method chain as a
//!   `.lock()`/`.read()`/`.write()`, or on a line where a `let`-bound guard
//!   is still in scope): a panic under a lock poisons whole subsystems at
//!   once, so lock-adjacent fallible code must surface errors instead.
//! - **`lock-class`** — every lock construction site in non-test code must
//!   declare its `LockClass` (`Mutex::with_class` / `RwLock::with_class`,
//!   never bare `::new` / `::default`), so the witness's order graph stays
//!   meaningful.
//! - **`relaxed-protocol-atomic`** — atomics whose declaration carries a
//!   `// lint: protocol-atomic` marker (the ones acknowledgement/admission
//!   decisions read, e.g. the commit slot state) must never be used with
//!   `Ordering::Relaxed` in their file.
//! - **`doc-clone-under-guard`** — no full-document clone (`fuzzy.clone()`
//!   / `.fuzzy().clone()`) in non-test code while a `.read()`/`.write()`
//!   guard is live: the doc-entry lock is meant to be held for the O(1)
//!   snapshot pin or pointer swap only, so pin the `Arc` snapshot and clone
//!   outside the lock.
//! - **`no-net-in-engine`** — no `std::net` outside `crates/server/`: the
//!   engine crates stay embeddable (and deterministic under the schedule
//!   explorer), so sockets are confined to the wire front-end.
//! - **`io-result-drop`** — no `let _ = …;` discards and no
//!   statement-position `.ok();` in `crates/store/` / `crates/warehouse/`
//!   non-test code: on the durability path a silently dropped `Result` is
//!   how fsyncgate-class bugs hide (the fsync failed, nobody noticed, the
//!   commit was acknowledged anyway). Handle the error or mark the one
//!   deliberate discard with the allow marker.
//!
//! A finding on a deliberate exception is suppressed with
//! `// lint: allow(<rule>)` on the offending line or the line above.
//!
//! The scanner blanks comments and string/char literals (preserving line
//! structure), tracks brace depth to skip `#[cfg(test)]` / `#[test]`
//! regions where a rule is test-exempt, and otherwise works line by line —
//! deliberately simple enough to audit by eye. Known lexical limits: locks
//! created through `Default` derives or `.or_default()` are invisible (the
//! engine avoids both), and multi-line `let` statements are only matched on
//! their final line.

use std::fmt;
use std::path::{Path, PathBuf};

/// One rule violation at a source location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Path relative to the linted root.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (e.g. `guard-unwrap`).
    pub rule: &'static str,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Directory names never descended into.
const SKIPPED_DIRS: &[&str] = &["target", ".git", ".github", "benchmarks", "related"];

/// Lints every `.rs` file under `root` except the `shims/` subtree (the
/// shims implement the instrumented primitives the rules funnel everyone
/// else towards). Files are visited in sorted order, so output is stable.
pub fn lint_root(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    collect_rust_files(root, root, &mut files)?;
    files.sort();
    let mut findings = Vec::new();
    for file in files {
        let source = std::fs::read_to_string(root.join(&file))?;
        let rel = file.to_string_lossy().replace('\\', "/");
        findings.extend(lint_source(&rel, &source));
    }
    Ok(findings)
}

fn collect_rust_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIPPED_DIRS.contains(&name.as_ref()) || (dir == root && name == "shims") {
                continue;
            }
            collect_rust_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path.strip_prefix(root).unwrap_or(&path).to_path_buf());
        }
    }
    Ok(())
}

/// Lints one file's source. `rel_path` (forward slashes, relative to the
/// workspace root) decides the rule scoping: files under a `tests/`
/// directory are integration tests (test-exempt rules skip them entirely),
/// and `#[cfg(test)]` / `#[test]` regions inside any file are recognised
/// structurally.
pub fn lint_source(rel_path: &str, source: &str) -> Vec<Finding> {
    let is_test_file = rel_path
        .split('/')
        .any(|component| component == "tests" || component == "benches");
    let is_server_crate = rel_path.starts_with("crates/server/");
    let is_durability_crate =
        rel_path.starts_with("crates/store/") || rel_path.starts_with("crates/warehouse/");
    let blanked = blank_noncode(source);
    let raw_lines: Vec<&str> = source.lines().collect();
    let code_lines: Vec<&str> = blanked.lines().collect();
    let in_test = test_regions(&code_lines);
    let allows = allow_markers(&raw_lines);
    let protected = protocol_atomics(&raw_lines, &code_lines);

    let mut findings = Vec::new();
    let mut guards: Vec<(String, i32)> = Vec::new();
    let mut rw_guards: Vec<(String, i32)> = Vec::new();
    let mut depth: i32 = 0;
    let mut pending_use: Option<(usize, String)> = None;

    for (index, code) in code_lines.iter().enumerate() {
        let line = index + 1;
        let non_test = !is_test_file && !in_test[index];
        let allowed = |rule: &str| allows[index].iter().any(|a| a == rule);

        // --- std-sync-lock (applies to tests too: nothing may bypass the
        // instrumented shim) ---------------------------------------------
        if let Some((start, mut text)) = pending_use.take() {
            text.push(' ');
            text.push_str(code);
            if code.contains(';') {
                if let Some(word) = banned_sync_word(&text) {
                    if !allowed("std-sync-lock") {
                        findings.push(Finding {
                            file: rel_path.to_string(),
                            line: start,
                            rule: "std-sync-lock",
                            message: format!(
                                "`std::sync::{word}` is banned outside shims/ — use the \
                                 `parking_lot` shim so the lock-witness sees it"
                            ),
                        });
                    }
                }
            } else {
                pending_use = Some((start, text));
            }
        } else if code.trim_start().starts_with("use std::sync::") && !code.contains(';') {
            pending_use = Some((line, code.to_string()));
        } else if let Some(word) = banned_sync_word(code) {
            if !allowed("std-sync-lock") {
                findings.push(Finding {
                    file: rel_path.to_string(),
                    line,
                    rule: "std-sync-lock",
                    message: format!(
                        "`std::sync::{word}` is banned outside shims/ — use the \
                         `parking_lot` shim so the lock-witness sees it"
                    ),
                });
            }
        }

        // --- no-net-in-engine (applies to tests too: engine suites reach
        // the server through its crate, never raw sockets) ----------------
        if !is_server_crate
            && contains_ident_bounded(code, "std::net")
            && !allowed("no-net-in-engine")
        {
            findings.push(Finding {
                file: rel_path.to_string(),
                line,
                rule: "no-net-in-engine",
                message: "`std::net` outside `crates/server/` — the engine stays \
                          embeddable; sockets belong to the wire front-end (see the \
                          README's \"Serving\" section)"
                    .to_string(),
            });
        }

        // --- lock-class --------------------------------------------------
        // (std::sync constructions are already covered by std-sync-lock.)
        if non_test && !allowed("lock-class") && !code.contains("std::sync::") {
            for pattern in [
                "Mutex::new(",
                "RwLock::new(",
                "Mutex::default()",
                "RwLock::default()",
            ] {
                if contains_ident_bounded(code, pattern) {
                    findings.push(Finding {
                        file: rel_path.to_string(),
                        line,
                        rule: "lock-class",
                        message: format!(
                            "unclassified lock construction `{pattern}..` — declare its \
                             witness class with `with_class(LockClass::…, …)`"
                        ),
                    });
                }
            }
        }

        // --- relaxed-protocol-atomic -------------------------------------
        if code.contains("Ordering::Relaxed") && !allowed("relaxed-protocol-atomic") {
            for name in &protected {
                if code.contains(&format!("{name}.")) {
                    findings.push(Finding {
                        file: rel_path.to_string(),
                        line,
                        rule: "relaxed-protocol-atomic",
                        message: format!(
                            "protocol atomic `{name}` used with `Ordering::Relaxed` — \
                             acknowledgement decisions need acquire/release ordering"
                        ),
                    });
                }
            }
        }

        // --- io-result-drop ----------------------------------------------
        // (Lexical: `let _ = …;` always discards; a line-final `.ok();`
        // whose value is neither bound, assigned, nor returned does too.
        // Value-position uses like `let n = s.parse().ok();` stay legal.)
        if is_durability_crate && non_test && !allowed("io-result-drop") {
            let trimmed = code.trim();
            if trimmed.starts_with("let _ =") {
                findings.push(Finding {
                    file: rel_path.to_string(),
                    line,
                    rule: "io-result-drop",
                    message: "`let _ = …` discards a result on the durability path — a \
                              dropped I/O error here is how fsyncgate-class bugs hide; \
                              handle it or mark the deliberate discard with \
                              `// lint: allow(io-result-drop)`"
                        .to_string(),
                });
            } else if trimmed.ends_with(".ok();")
                && !trimmed.contains('=')
                && !trimmed.starts_with("return ")
            {
                findings.push(Finding {
                    file: rel_path.to_string(),
                    line,
                    rule: "io-result-drop",
                    message: "statement-position `.ok()` silently swallows a `Result` on \
                              the durability path — handle the error or mark the \
                              deliberate discard with `// lint: allow(io-result-drop)`"
                        .to_string(),
                });
            }
        }

        // --- guard-unwrap ------------------------------------------------
        if non_test && !allowed("guard-unwrap") {
            if let Some(guard_end) = last_guard_call_end(code) {
                let after = &code[guard_end..];
                if after.contains(".unwrap()") || after.contains(".expect(") {
                    findings.push(Finding {
                        file: rel_path.to_string(),
                        line,
                        rule: "guard-unwrap",
                        message: "`.unwrap()`/`.expect(` chained behind a lock guard \
                                  acquisition — a panic here poisons the lock's whole \
                                  subsystem; surface an error instead"
                            .to_string(),
                    });
                }
            } else if !guards.is_empty()
                && (code.contains(".unwrap()") || code.contains(".expect("))
            {
                let held: Vec<&str> = guards.iter().map(|(name, _)| name.as_str()).collect();
                findings.push(Finding {
                    file: rel_path.to_string(),
                    line,
                    rule: "guard-unwrap",
                    message: format!(
                        "`.unwrap()`/`.expect(` while lock guard{} `{}` {} live — a \
                         panic here poisons the lock's whole subsystem; surface an \
                         error instead",
                        if held.len() == 1 { "" } else { "s" },
                        held.join("`, `"),
                        if held.len() == 1 { "is" } else { "are" },
                    ),
                });
            }
        }

        // --- doc-clone-under-guard ---------------------------------------
        if non_test && !allowed("doc-clone-under-guard") {
            if let Some(at) = doc_clone_position(code) {
                let chained = last_rw_guard_call_end(code).is_some_and(|end| at >= end);
                if chained || !rw_guards.is_empty() {
                    findings.push(Finding {
                        file: rel_path.to_string(),
                        line,
                        rule: "doc-clone-under-guard",
                        message: "full-document clone while a doc-entry read/write guard \
                                  is live — the entry lock is for the O(1) snapshot pin or \
                                  swap only; pin the `Arc` snapshot and clone outside the \
                                  lock"
                            .to_string(),
                    });
                }
            }
        }

        // Guard bookkeeping runs for every line (a guard taken in non-test
        // code can span into regions, and depth must stay consistent).
        if let Some(name) = guard_binding(code) {
            let initialiser = code.trim_end();
            let initialiser = initialiser.strip_suffix(';').unwrap_or(initialiser);
            if initialiser.ends_with(".read()") || initialiser.ends_with(".write()") {
                rw_guards.push((name.clone(), depth));
            }
            guards.push((name, depth));
        }
        for (open, close) in [('{', 1i32), ('}', -1i32)] {
            depth += close * code.chars().filter(|&c| c == open).count() as i32;
        }
        guards.retain(|(name, creation_depth)| {
            depth >= *creation_depth && !code.contains(&format!("drop({name})"))
        });
        rw_guards.retain(|(name, creation_depth)| {
            depth >= *creation_depth && !code.contains(&format!("drop({name})"))
        });
    }
    findings
}

/// The banned `std::sync` word a line (or accumulated use statement)
/// mentions, if any.
fn banned_sync_word(text: &str) -> Option<&'static str> {
    const BANNED: &[&str] = &[
        "Mutex",
        "MutexGuard",
        "RwLock",
        "RwLockReadGuard",
        "RwLockWriteGuard",
        "Condvar",
    ];
    let direct = text.contains("std::sync::");
    let in_use_group = text.trim_start().starts_with("use std::sync::");
    if !direct && !in_use_group {
        return None;
    }
    // For a path mention the word must directly follow `std::sync::`; for a
    // use group, any bounded occurrence after the prefix counts.
    for word in BANNED {
        let qualified = format!("std::sync::{word}");
        if contains_ident_bounded(text, &qualified) {
            return Some(word);
        }
        if in_use_group && contains_ident_bounded(text, word) {
            return Some(word);
        }
    }
    None
}

/// Does `text` contain `pattern` with no identifier character immediately
/// before it (so `StdMutex::new(` does not match `Mutex::new(`, and `Mutex`
/// does not match inside `MutexGuard` when the pattern itself ends at an
/// identifier boundary)?
fn contains_ident_bounded(text: &str, pattern: &str) -> bool {
    find_ident_bounded(text, pattern).is_some()
}

/// Byte offset of the first identifier-bounded occurrence of `pattern`.
fn find_ident_bounded(text: &str, pattern: &str) -> Option<usize> {
    let mut search_from = 0;
    while let Some(found) = text[search_from..].find(pattern) {
        let at = search_from + found;
        let before_ok = at == 0
            || !text[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let end = at + pattern.len();
        let after_ok = !pattern
            .chars()
            .next_back()
            .is_some_and(|c| c.is_alphanumeric() || c == '_')
            || !text[end..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return Some(at);
        }
        search_from = at + 1;
    }
    None
}

/// Byte offset of the first full-document clone on the line, if any — the
/// expressions that deep-copy a fuzzy tree rather than bumping a snapshot
/// `Arc`.
fn doc_clone_position(code: &str) -> Option<usize> {
    ["fuzzy.clone()", "fuzzy().clone()"]
        .iter()
        .filter_map(|pattern| find_ident_bounded(code, pattern))
        .min()
}

/// Byte offset just past the last `.read()` / `.write()` call on the line —
/// the doc-entry guard acquisitions `doc-clone-under-guard` cares about
/// (`.lock()` is excluded: the commit mutex is *meant* to be held while the
/// writer takes its working copy).
fn last_rw_guard_call_end(code: &str) -> Option<usize> {
    [".read()", ".write()"]
        .iter()
        .filter_map(|call| code.rfind(call).map(|at| at + call.len()))
        .max()
}

/// Byte offset just past the last `.lock()` / `.read()` / `.write()` call
/// on the line, if any — the point after which a chained unwrap rides on a
/// live guard.
fn last_guard_call_end(code: &str) -> Option<usize> {
    ["(.lock()", ".lock()", ".read()", ".write()"]
        .iter()
        .filter_map(|call| code.rfind(call).map(|at| at + call.len()))
        .max()
}

/// The name bound by a `let` statement whose initialiser ends in a guard
/// acquisition, e.g. `let mut slots = self.shard(name).slots.write();`.
fn guard_binding(code: &str) -> Option<String> {
    let trimmed = code.trim();
    let rest = trimmed.strip_prefix("let ")?;
    let rest = rest.strip_prefix("mut ").unwrap_or(rest);
    let (name, after) = rest.split_once('=')?;
    let name = name.trim();
    if name.is_empty() || !name.chars().all(|c| c.is_alphanumeric() || c == '_') {
        return None;
    }
    let after = after.trim_end();
    let after = after.strip_suffix(';').unwrap_or(after).trim_end();
    for call in [".lock()", ".read()", ".write()"] {
        if after.ends_with(call) {
            return Some(name.to_string());
        }
    }
    None
}

/// Rules allowed per line: `// lint: allow(rule)` suppresses on its own
/// line and the next one.
fn allow_markers(raw_lines: &[&str]) -> Vec<Vec<String>> {
    let mut allows: Vec<Vec<String>> = vec![Vec::new(); raw_lines.len()];
    for (index, raw) in raw_lines.iter().enumerate() {
        let mut rest = *raw;
        while let Some(at) = rest.find("// lint: allow(") {
            let after = &rest[at + "// lint: allow(".len()..];
            if let Some(end) = after.find(')') {
                let rule = after[..end].trim().to_string();
                allows[index].push(rule.clone());
                if index + 1 < allows.len() {
                    allows[index + 1].push(rule);
                }
                rest = &after[end..];
            } else {
                break;
            }
        }
    }
    allows
}

/// Field names declared with a `// lint: protocol-atomic` marker.
fn protocol_atomics(raw_lines: &[&str], code_lines: &[&str]) -> Vec<String> {
    let mut names = Vec::new();
    for (index, raw) in raw_lines.iter().enumerate() {
        if !raw.contains("// lint: protocol-atomic") {
            continue;
        }
        let code = code_lines.get(index).copied().unwrap_or("");
        let declaration = code.trim().trim_start_matches("pub ").trim_start();
        if let Some((name, _)) = declaration.split_once(':') {
            let name = name.trim().trim_start_matches("pub(crate) ").trim();
            if !name.is_empty() && name.chars().all(|c| c.is_alphanumeric() || c == '_') {
                names.push(name.to_string());
            }
        }
    }
    names
}

/// `in_test[i]`: line `i` (0-based) lies inside a `#[cfg(test)]` module or
/// `#[test]` function, tracked by brace depth from the attribute line.
fn test_regions(code_lines: &[&str]) -> Vec<bool> {
    let mut in_test = vec![false; code_lines.len()];
    let mut depth: i32 = 0;
    // (depth at the attribute, whether its block has opened yet)
    let mut region: Option<(i32, bool)> = None;
    for (index, code) in code_lines.iter().enumerate() {
        if region.is_some() {
            in_test[index] = true;
        } else if code.contains("#[cfg(test)]") || code.contains("#[test]") {
            region = Some((depth, false));
            in_test[index] = true;
        }
        for c in code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    if let Some((attr_depth, opened)) = region.as_mut() {
                        if depth > *attr_depth {
                            *opened = true;
                        }
                    }
                }
                '}' => depth -= 1,
                _ => {}
            }
        }
        if let Some((attr_depth, opened)) = region {
            if opened && depth <= attr_depth {
                region = None;
            }
        }
    }
    in_test
}

/// Replaces comments and string/char literal contents with spaces,
/// preserving newlines (and thus line numbers). Raw strings, escapes and
/// lifetimes are handled; the goal is that rule patterns never match inside
/// text.
fn blank_noncode(source: &str) -> String {
    #[derive(PartialEq)]
    enum Mode {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(usize),
        Char,
    }
    let mut out = String::with_capacity(source.len());
    let bytes: Vec<char> = source.chars().collect();
    let mut mode = Mode::Code;
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        let next = bytes.get(i + 1).copied();
        match mode {
            Mode::Code => match c {
                '/' if next == Some('/') => {
                    mode = Mode::LineComment;
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                }
                '/' if next == Some('*') => {
                    mode = Mode::BlockComment(1);
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                }
                '"' => {
                    mode = Mode::Str;
                    out.push('"');
                    i += 1;
                }
                'r' | 'b' if is_raw_string_start(&bytes, i) => {
                    let (hashes, consumed) = raw_string_open(&bytes, i);
                    mode = Mode::RawStr(hashes);
                    for _ in 0..consumed {
                        out.push(' ');
                    }
                    i += consumed;
                }
                '\'' => {
                    // Char literal vs lifetime: a literal is 'x' or '\…'.
                    if next == Some('\\') || matches!(bytes.get(i + 2), Some('\'')) {
                        mode = Mode::Char;
                        out.push('\'');
                        i += 1;
                    } else {
                        out.push('\'');
                        i += 1;
                    }
                }
                _ => {
                    out.push(c);
                    i += 1;
                }
            },
            Mode::LineComment => {
                if c == '\n' {
                    mode = Mode::Code;
                    out.push('\n');
                } else {
                    out.push(' ');
                }
                i += 1;
            }
            Mode::BlockComment(depth) => {
                if c == '/' && next == Some('*') {
                    mode = Mode::BlockComment(depth + 1);
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    mode = if depth == 1 {
                        Mode::Code
                    } else {
                        Mode::BlockComment(depth - 1)
                    };
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
            Mode::Str => match c {
                '\\' => {
                    out.push(' ');
                    if next.is_some() {
                        out.push(' ');
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                '"' => {
                    mode = Mode::Code;
                    out.push('"');
                    i += 1;
                }
                '\n' => {
                    out.push('\n');
                    i += 1;
                }
                _ => {
                    out.push(' ');
                    i += 1;
                }
            },
            Mode::RawStr(hashes) => {
                if c == '"' && raw_string_closes(&bytes, i, hashes) {
                    mode = Mode::Code;
                    for _ in 0..=hashes {
                        out.push(' ');
                    }
                    i += 1 + hashes;
                } else {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
            Mode::Char => match c {
                '\\' => {
                    out.push(' ');
                    if next.is_some() {
                        out.push(' ');
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                '\'' => {
                    mode = Mode::Code;
                    out.push('\'');
                    i += 1;
                }
                _ => {
                    out.push(' ');
                    i += 1;
                }
            },
        }
    }
    out
}

/// Is `r"`, `r#"`, `br"` or `br#"` starting at `i`?
fn is_raw_string_start(bytes: &[char], i: usize) -> bool {
    let mut j = i;
    if bytes.get(j) == Some(&'b') {
        j += 1;
    }
    if bytes.get(j) != Some(&'r') {
        return false;
    }
    j += 1;
    while bytes.get(j) == Some(&'#') {
        j += 1;
    }
    bytes.get(j) == Some(&'"')
}

/// Hash count and consumed prefix length of a raw string opener at `i`.
fn raw_string_open(bytes: &[char], i: usize) -> (usize, usize) {
    let mut j = i;
    if bytes.get(j) == Some(&'b') {
        j += 1;
    }
    j += 1; // the `r`
    let mut hashes = 0;
    while bytes.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    j += 1; // the opening quote
    (hashes, j - i)
}

/// Does the `"` at `i` close a raw string with `hashes` hashes?
fn raw_string_closes(bytes: &[char], i: usize, hashes: usize) -> bool {
    (1..=hashes).all(|k| bytes.get(i + k) == Some(&'#'))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn std_sync_lock_is_flagged() {
        let source = "use std::sync::Mutex;\nfn f() { let m = std::sync::RwLock::new(0); }\n";
        let findings = lint_source("crates/x/src/lib.rs", source);
        assert_eq!(rules(&findings), vec!["std-sync-lock", "std-sync-lock"]);
        assert_eq!(findings[0].line, 1);
        assert_eq!(findings[1].line, 2);
    }

    #[test]
    fn std_sync_use_group_is_flagged_even_multiline() {
        let source = "use std::sync::{\n    atomic::AtomicUsize,\n    Mutex,\n};\n";
        let findings = lint_source("crates/x/src/lib.rs", source);
        assert_eq!(rules(&findings), vec!["std-sync-lock"]);
        assert_eq!(findings[0].line, 1);
    }

    #[test]
    fn std_sync_arc_and_atomics_are_fine() {
        let source =
            "use std::sync::Arc;\nuse std::sync::atomic::{AtomicUsize, Ordering};\nuse std::sync::mpsc;\n";
        assert!(lint_source("crates/x/src/lib.rs", source).is_empty());
    }

    #[test]
    fn chained_guard_unwrap_is_flagged() {
        let source =
            "fn f(m: &parking_lot::Mutex<Option<u32>>) -> u32 {\n    m.lock().unwrap()\n}\n";
        let findings = lint_source("crates/x/src/lib.rs", source);
        assert_eq!(rules(&findings), vec!["guard-unwrap"]);
        assert_eq!(findings[0].line, 2);
    }

    #[test]
    fn unwrap_under_live_let_guard_is_flagged() {
        let source =
            "fn f() {\n    let mut meta = self.meta.lock();\n    let v = thing().unwrap();\n}\n";
        let findings = lint_source("crates/x/src/lib.rs", source);
        assert_eq!(rules(&findings), vec!["guard-unwrap"]);
        assert_eq!(findings[0].line, 3);
    }

    #[test]
    fn unwrap_after_guard_scope_or_drop_is_fine() {
        let source = "fn f() {\n    {\n        let g = m.lock();\n        use_it(&g);\n    }\n    thing().unwrap();\n}\nfn g() {\n    let g = m.lock();\n    drop(g);\n    thing().unwrap();\n}\n";
        assert!(lint_source("crates/x/src/lib.rs", source).is_empty());
    }

    #[test]
    fn unwrap_or_variants_are_fine_under_guards() {
        let source =
            "fn f() {\n    let g = m.lock();\n    let v = g.value.unwrap_or_else(|| 3);\n    let w = g.other.unwrap_or(7);\n}\n";
        assert!(lint_source("crates/x/src/lib.rs", source).is_empty());
    }

    #[test]
    fn guard_unwrap_skips_tests_and_test_files() {
        let in_test_mod =
            "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        let g = m.lock();\n        thing().unwrap();\n    }\n}\n";
        assert!(lint_source("crates/x/src/lib.rs", in_test_mod).is_empty());
        let test_file = "fn helper() {\n    let g = m.lock();\n    thing().unwrap();\n}\n";
        assert!(lint_source("crates/x/tests/it.rs", test_file).is_empty());
    }

    #[test]
    fn unclassified_lock_construction_is_flagged() {
        let source = "fn f() {\n    let m = Mutex::new(0);\n    let l = RwLock::default();\n}\n";
        let findings = lint_source("crates/x/src/lib.rs", source);
        assert_eq!(rules(&findings), vec!["lock-class", "lock-class"]);
    }

    #[test]
    fn with_class_construction_is_fine() {
        let source = "fn f() {\n    let m = Mutex::with_class(LockClass::Journal, 0);\n}\n";
        assert!(lint_source("crates/x/src/lib.rs", source).is_empty());
    }

    #[test]
    fn relaxed_protocol_atomic_is_flagged() {
        let source = "struct S {\n    state: AtomicU8, // lint: protocol-atomic\n}\nfn f(s: &S) {\n    s.state.load(Ordering::Relaxed);\n}\n";
        let findings = lint_source("crates/x/src/lib.rs", source);
        assert_eq!(rules(&findings), vec!["relaxed-protocol-atomic"]);
        assert_eq!(findings[0].line, 5);
    }

    #[test]
    fn acquire_release_protocol_atomic_is_fine() {
        let source = "struct S {\n    state: AtomicU8, // lint: protocol-atomic\n    counter: AtomicUsize,\n}\nfn f(s: &S) {\n    s.state.load(Ordering::Acquire);\n    s.counter.fetch_add(1, Ordering::Relaxed);\n}\n";
        assert!(lint_source("crates/x/src/lib.rs", source).is_empty());
    }

    #[test]
    fn allow_marker_suppresses_on_line_and_next() {
        let source =
            "fn f() {\n    // lint: allow(lock-class)\n    let m = Mutex::new(0);\n    let l = Mutex::new(1); // lint: allow(lock-class)\n}\n";
        assert!(lint_source("crates/x/src/lib.rs", source).is_empty());
    }

    #[test]
    fn patterns_inside_strings_and_comments_do_not_match() {
        let source = "fn f() {\n    let s = \"std::sync::Mutex::new(.lock().unwrap())\";\n    // std::sync::Mutex in prose, Mutex::new( too\n    let r = r#\"RwLock::default() .lock().expect(\"#;\n}\n";
        assert!(lint_source("crates/x/src/lib.rs", source).is_empty());
    }

    #[test]
    fn doc_clone_under_live_rw_guard_is_flagged() {
        let source = "fn f() {\n    let state = slot.state.read();\n    let copy = state.snapshot.fuzzy().clone();\n}\n";
        let findings = lint_source("crates/x/src/lib.rs", source);
        assert_eq!(rules(&findings), vec!["doc-clone-under-guard"]);
        assert_eq!(findings[0].line, 3);
    }

    #[test]
    fn doc_clone_chained_behind_guard_acquisition_is_flagged() {
        let source = "fn f() {\n    let copy = slot.state.read().snapshot.fuzzy().clone();\n}\n";
        let findings = lint_source("crates/x/src/lib.rs", source);
        assert_eq!(rules(&findings), vec!["doc-clone-under-guard"]);
        assert_eq!(findings[0].line, 2);
    }

    #[test]
    fn doc_clone_outside_guard_or_under_commit_mutex_is_fine() {
        // Clone from a pinned snapshot: no lock is held.
        let pinned = "fn f() {\n    let snapshot = self.snapshot(name)?;\n    let copy = snapshot.fuzzy().clone();\n}\n";
        assert!(lint_source("crates/x/src/lib.rs", pinned).is_empty());
        // The writer's working copy under the commit *mutex* is the intended
        // pipeline; only read/write entry guards are restricted.
        let commit = "fn f() {\n    let _commit = slot.commit.lock();\n    let working = base.fuzzy().clone();\n}\n";
        assert!(lint_source("crates/x/src/lib.rs", commit).is_empty());
        // And other `.clone()`s under a guard stay legal.
        let other = "fn f() {\n    let state = slot.state.read();\n    let snapshot = state.snapshot.clone();\n}\n";
        assert!(lint_source("crates/x/src/lib.rs", other).is_empty());
    }

    #[test]
    fn doc_clone_allow_marker_and_tests_are_exempt() {
        let allowed = "fn f() {\n    let state = slot.state.read();\n    // lint: allow(doc-clone-under-guard)\n    let copy = state.snapshot.fuzzy().clone();\n}\n";
        assert!(lint_source("crates/x/src/lib.rs", allowed).is_empty());
        let test_file = "fn helper() {\n    let state = slot.state.read();\n    let copy = state.snapshot.fuzzy().clone();\n}\n";
        assert!(lint_source("crates/x/tests/it.rs", test_file).is_empty());
    }

    #[test]
    fn std_net_outside_the_server_crate_is_flagged() {
        let source =
            "use std::net::TcpStream;\nfn f() { let l = std::net::TcpListener::bind(\"x\"); }\n";
        let findings = lint_source("crates/store/src/fs.rs", source);
        assert_eq!(
            rules(&findings),
            vec!["no-net-in-engine", "no-net-in-engine"]
        );
        assert_eq!(findings[0].line, 1);
        assert_eq!(findings[1].line, 2);
        // Even in an engine crate's test files: suites drive the server
        // through `pxml-server`, never raw sockets.
        let test_file = "use std::net::TcpStream;\n";
        assert_eq!(
            rules(&lint_source("crates/warehouse/tests/it.rs", test_file)),
            vec!["no-net-in-engine"]
        );
    }

    #[test]
    fn std_net_inside_the_server_crate_or_allowed_is_fine() {
        let source = "use std::net::{TcpListener, TcpStream};\n";
        assert!(lint_source("crates/server/src/server.rs", source).is_empty());
        assert!(lint_source("crates/server/tests/malformed.rs", source).is_empty());
        let allowed = "// lint: allow(no-net-in-engine)\nuse std::net::TcpStream;\n";
        assert!(lint_source("crates/gen/src/lib.rs", allowed).is_empty());
        // Prose and strings never match.
        let prose = "fn f() {\n    // std::net belongs in crates/server\n    let s = \"std::net::TcpStream\";\n}\n";
        assert!(lint_source("crates/core/src/lib.rs", prose).is_empty());
    }

    #[test]
    fn io_result_drop_is_flagged_in_store_and_warehouse() {
        let source =
            "fn f(file: &File) {\n    let _ = file.sync_all();\n    file.sync_all().ok();\n}\n";
        for path in [
            "crates/store/src/fs.rs",
            "crates/warehouse/src/warehouse.rs",
        ] {
            let findings = lint_source(path, source);
            assert_eq!(rules(&findings), vec!["io-result-drop", "io-result-drop"]);
            assert_eq!(findings[0].line, 2);
            assert_eq!(findings[1].line, 3);
        }
    }

    #[test]
    fn io_result_drop_is_scoped_to_durability_crates_and_non_test_code() {
        let source =
            "fn f(file: &File) {\n    let _ = file.sync_all();\n    file.sync_all().ok();\n}\n";
        // Other crates are out of scope (their Results aren't durability).
        assert!(lint_source("crates/query/src/lib.rs", source).is_empty());
        // Test files and #[cfg(test)] regions are exempt.
        assert!(lint_source("crates/store/tests/it.rs", source).is_empty());
        let in_test_mod = format!("#[cfg(test)]\nmod tests {{\n{source}}}\n");
        assert!(lint_source("crates/store/src/fs.rs", &in_test_mod).is_empty());
    }

    #[test]
    fn io_result_drop_does_not_flag_value_position_or_named_bindings() {
        let source = "fn f() {\n    let _guard = slot.commit.lock();\n    let n = text.parse::<u32>().ok();\n    self.cache = reload().ok();\n    return fallible().ok();\n}\n";
        assert!(lint_source("crates/store/src/fs.rs", source).is_empty());
    }

    #[test]
    fn io_result_drop_allow_marker_suppresses() {
        let source = "fn f(file: &File) {\n    // lint: allow(io-result-drop)\n    let _ = file.sync_all();\n    file.sync_all().ok(); // lint: allow(io-result-drop)\n}\n";
        assert!(lint_source("crates/store/src/fs.rs", source).is_empty());
    }

    #[test]
    fn shadowed_std_mutex_prefix_is_not_a_lock_class_finding() {
        // `StdMutex::new(` must not match the `Mutex::new(` pattern.
        let source = "fn f() {\n    let m = StdMutex::new(0);\n}\n";
        assert!(lint_source("crates/x/src/lib.rs", source).is_empty());
    }
}
