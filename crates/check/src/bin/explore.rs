//! Mini-loom schedule explorer entry point.
//!
//! ```text
//! cargo run -p pxml-check --bin explore [-- --json <dir>]
//! ```
//!
//! Runs the full scenario battery, prints a coverage table, and exits
//! non-zero if any schedule violates the durability/ordering invariants.
//! With `--json <dir>` it also writes `BENCH_LOOM.json` in the same shape
//! as the bench harness artifacts (`{"experiment", "quick", "tables"}`).

use std::fmt::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;

use pxml_check::loom::{explore, scenarios, ExploreStats};

fn json_dir() -> Option<PathBuf> {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--json" {
            return Some(PathBuf::from(args.next().unwrap_or_else(|| ".".into())));
        }
    }
    None
}

fn main() -> ExitCode {
    let results: Vec<(&'static str, ExploreStats)> = scenarios()
        .iter()
        .map(|scenario| (scenario.name, explore(scenario)))
        .collect();

    println!(
        "{:<22} {:>8} {:>11} {:>10} {:>14} {:>12} {:>9}",
        "scenario",
        "states",
        "transitions",
        "memo-hits",
        "local-fastpath",
        "schedules",
        "max-depth"
    );
    let mut violations = 0usize;
    for (name, stats) in &results {
        println!(
            "{:<22} {:>8} {:>11} {:>10} {:>14} {:>12} {:>9}",
            name,
            stats.states,
            stats.transitions,
            stats.memo_hits,
            stats.local_fastpaths,
            stats.schedules,
            stats.max_depth
        );
        violations += stats.violations.len();
        for violation in &stats.violations {
            eprintln!("VIOLATION {violation}");
        }
    }

    if let Some(dir) = json_dir() {
        let mut rows = String::new();
        for (index, (name, stats)) in results.iter().enumerate() {
            if index > 0 {
                rows.push_str(",\n");
            }
            let _ = write!(
                rows,
                "      {{\"scenario\": \"{name}\", \"states\": {}, \"transitions\": {}, \
                 \"memo_hits\": {}, \"local_fastpaths\": {}, \"terminals\": {}, \
                 \"schedules\": {}, \"max_depth\": {}, \"violations\": {}}}",
                stats.states,
                stats.transitions,
                stats.memo_hits,
                stats.local_fastpaths,
                stats.terminals,
                stats.schedules,
                stats.max_depth,
                stats.violations.len()
            );
        }
        let json = format!(
            "{{\n  \"experiment\": \"loom\",\n  \"quick\": false,\n  \"tables\": {{\n    \"explorer\": [\n{rows}\n    ]\n  }}\n}}\n"
        );
        let path = dir.join("BENCH_LOOM.json");
        if let Err(error) = std::fs::write(&path, json) {
            eprintln!("explore: failed to write {}: {error}", path.display());
            return ExitCode::from(2);
        }
        println!("wrote {}", path.display());
    }

    if violations == 0 {
        println!(
            "explore: {} scenarios, all schedules uphold the durability invariants",
            results.len()
        );
        ExitCode::SUCCESS
    } else {
        println!("explore: {violations} invariant violation(s)");
        ExitCode::FAILURE
    }
}
