//! Repo invariant linter entry point.
//!
//! ```text
//! cargo run -p pxml-check --bin lint [-- --root <workspace-root>]
//! ```
//!
//! Prints one `path:line: [rule] message` per finding and exits non-zero if
//! there are any, so CI can gate on it. Without `--root` the workspace root
//! is the current directory if it holds a `Cargo.toml`, else the root this
//! binary was compiled in.

use std::path::PathBuf;
use std::process::ExitCode;

fn workspace_root() -> PathBuf {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--root" {
            if let Some(root) = args.next() {
                return PathBuf::from(root);
            }
        }
    }
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    if cwd.join("Cargo.toml").is_file() {
        return cwd;
    }
    // crates/check -> workspace root, resolved at compile time.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or(cwd)
}

fn main() -> ExitCode {
    let root = workspace_root();
    let findings = match pxml_check::lint::lint_root(&root) {
        Ok(findings) => findings,
        Err(error) => {
            eprintln!("lint: failed to scan {}: {error}", root.display());
            return ExitCode::from(2);
        }
    };
    for finding in &findings {
        println!("{finding}");
    }
    if findings.is_empty() {
        println!("lint: clean ({} ok)", root.display());
        ExitCode::SUCCESS
    } else {
        println!("lint: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}
