//! A faithful small-state model of the store's `GroupCommitter` protocol
//! (`crates/store/src/group.rs`) for the mini-loom schedule explorer.
//!
//! Each committing thread is a little program counter over the protocol's
//! observable steps — enqueue, take leadership, fill-wait, drain, write
//! records, fsync, complete slots, release, observe the ack — and the shared
//! state mirrors the real `Window`: the pending queue, the single active
//! leader, the idle-fast-path concurrency hint, plus a per-document journal
//! split into a durable prefix (fsynced) and a volatile tail (written, not
//! yet covered by an fsync round).
//!
//! # Crash semantics
//!
//! Crashes are not explicit transitions: the durability contract — *ack ⇒
//! the member's window was fsynced*, and *crash before the window fsync ⇒
//! all its members are discarded by recovery* — is equivalent to the state
//! invariant "every acknowledged commit lies inside its document's durable
//! journal prefix", checked at **every** reachable state. Recovery keeps
//! exactly the durable prefix (torn volatile tails are truncated away), so a
//! violation at any state is precisely a crash point where a client held an
//! ack for a batch recovery would drop.
//!
//! The `bug_ack_before_fsync` flag models the classic group-commit bug
//! (acknowledging members when their records are written rather than when
//! the window is fsynced); the explorer's self-tests assert the invariant
//! machinery actually catches it.
//!
//! # Fsync failure
//!
//! `fsync_fails_at = Some(n)` makes the n-th shared fsync round fail, and
//! the model then mirrors the real protocol's failure path
//! (`crates/store/src/group.rs`, "Fsync failure poisons the committer"):
//! the window's unsynced records roll back out of the journal, every member
//! slot resolves *failed* (never acknowledged), and the committer is
//! poisoned at the leader's release — subsequent enqueues fail immediately
//! and a waiter finding the poison drains and fails the queue instead of
//! leading. The durability invariant I1 is checked at every reachable state
//! as always, so the explorer proves **no schedule acknowledges a record
//! outside the fsynced prefix** even across the failure. The companion
//! seeded bug `bug_ack_after_failed_fsync` — the fsyncgate pattern of
//! shrugging the error off and acknowledging anyway — must make I1 fire.

/// Index of a modeled document.
pub type DocId = usize;

/// Identity of one commit: `(thread, k-th commit of that thread)`.
pub type CommitId = (usize, usize);

/// One bounded-interleaving scenario for the explorer.
#[derive(Clone, Debug)]
pub struct Scenario {
    pub name: &'static str,
    /// `threads[t]` = the documents thread `t` commits to, in program order.
    pub threads: Vec<Vec<DocId>>,
    /// Number of distinct documents (`DocId`s in `threads` must be < this).
    pub docs: usize,
    /// The committer's `window_max_batches`.
    pub window_max: usize,
    /// Mirrors `FsOptions::group_fill_idle_windows`: solo leaders fill-wait
    /// too instead of taking the idle fast-path.
    pub fill_idle: bool,
    /// Seeded bug: the leader acknowledges its window without an fsync
    /// round, breaking "ack ⇒ durable". For explorer self-tests only.
    pub bug_ack_before_fsync: bool,
    /// Injected fault: the n-th shared fsync round (1-based) fails. The
    /// failing window rolls back, its members fail, and the committer is
    /// poisoned from the leader's release on (no reopen inside the bounded
    /// scenarios — poison is terminal here).
    pub fsync_fails_at: Option<usize>,
    /// Seeded fsyncgate bug: the leader treats the failed round as success —
    /// records stay written but not durable, members are acknowledged
    /// anyway. For explorer self-tests only.
    pub bug_ack_after_failed_fsync: bool,
}

impl Scenario {
    pub fn total_commits(&self) -> usize {
        self.threads.iter().map(Vec::len).sum()
    }
}

/// One thread's position in the protocol.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Pc {
    /// Between commits; `next` is the next program-order commit to enqueue.
    Idle { next: usize },
    /// Enqueued commit `commit`, waiting for an ack or for leadership.
    Waiting { commit: usize },
    /// Leader holding the window open for more members (the fill-wait).
    Filling { commit: usize },
    /// Leader writing its drained window's records; `write_idx` is the next
    /// member to write.
    Writing { commit: usize, write_idx: usize },
    /// Leader whose window is fully written and (unless the seeded bug is
    /// armed) fsynced; about to complete the member slots.
    Synced { commit: usize },
    /// Leader whose fsync round failed: the window already rolled back and
    /// its slots resolved failed; about to poison the committer and give up
    /// leadership.
    FailedSync { commit: usize },
    /// Leader that completed every slot; about to give up leadership.
    Releasing { commit: usize },
    /// All program-order commits acknowledged.
    Done,
}

/// One protocol step a thread can take (the explorer's transition alphabet).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Step {
    /// Push the next commit into the pending queue.
    Enqueue,
    /// Take leadership; with the idle fast-path this may drain immediately.
    Lead,
    /// The fill-wait ends (deadline, full window, or spurious wake): drain.
    FillTimeout,
    /// Write one window member's record (volatile until the fsync round).
    WriteNext,
    /// The shared fsync round: every written record becomes durable.
    FsyncRound,
    /// Acknowledge every member slot of the flushed window.
    CompleteSlots,
    /// Give up leadership and wake the followers.
    Release,
    /// A waiter observes its completed slot and moves on.
    ObserveAck,
}

/// The full model state: thread program counters plus the shared window and
/// per-document journals. `Hash`/`Eq` drive the explorer's memoization.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct State {
    pc: Vec<Pc>,
    /// The open window's enqueued members, in enqueue order.
    pending: Vec<(CommitId, DocId)>,
    /// The drained window the leader is flushing.
    window: Vec<(CommitId, DocId)>,
    leader: Option<usize>,
    /// The committer's concurrency hint gating the idle fast-path.
    hint: bool,
    /// Per-document journal: every written record, in write order
    /// (volatile tail included).
    journal: Vec<Vec<CommitId>>,
    /// Per-document length of the durable (fsynced) journal prefix.
    durable: Vec<usize>,
    /// `acked[t][k]`: thread `t`'s `k`-th commit has been acknowledged.
    acked: Vec<Vec<bool>>,
    /// `failed[t][k]`: thread `t`'s `k`-th commit resolved with an error
    /// (failed fsync round, poisoned enqueue, or poisoned drain). Constant
    /// all-false in fault-free scenarios, so their state space — and the
    /// pinned coverage numbers — are unchanged.
    failed: Vec<Vec<bool>>,
    /// Fsync rounds attempted so far. Only counted when the scenario injects
    /// a fault (`fsync_fails_at`), so fault-free scenarios memoize exactly
    /// as before.
    fsync_rounds: usize,
    /// Mirrors `Window::poisoned`: set at the failed leader's release, after
    /// which nothing flushes.
    poisoned: bool,
    /// Ground truth for the order invariant: per-document enqueue order.
    enqueue_order: Vec<Vec<CommitId>>,
}

impl State {
    pub fn initial(scenario: &Scenario) -> State {
        State {
            pc: scenario
                .threads
                .iter()
                .map(|commits| {
                    if commits.is_empty() {
                        Pc::Done
                    } else {
                        Pc::Idle { next: 0 }
                    }
                })
                .collect(),
            pending: Vec::new(),
            window: Vec::new(),
            leader: None,
            hint: false,
            journal: vec![Vec::new(); scenario.docs],
            durable: vec![0; scenario.docs],
            acked: scenario
                .threads
                .iter()
                .map(|commits| vec![false; commits.len()])
                .collect(),
            failed: scenario
                .threads
                .iter()
                .map(|commits| vec![false; commits.len()])
                .collect(),
            fsync_rounds: 0,
            poisoned: false,
            enqueue_order: vec![Vec::new(); scenario.docs],
        }
    }

    pub fn is_terminal(&self) -> bool {
        self.pc.iter().all(|pc| *pc == Pc::Done)
    }

    /// Every step every thread could take from this state. Thread order is
    /// deterministic, so explorer runs are reproducible.
    pub fn enabled(&self, scenario: &Scenario) -> Vec<(usize, Step)> {
        let mut moves = Vec::new();
        for (t, pc) in self.pc.iter().enumerate() {
            match *pc {
                Pc::Idle { next } => {
                    debug_assert!(next < scenario.threads[t].len());
                    moves.push((t, Step::Enqueue));
                }
                Pc::Waiting { commit } => {
                    if self.acked[t][commit] || self.failed[t][commit] {
                        moves.push((t, Step::ObserveAck));
                    } else if self.leader.is_none() {
                        // A follower with an active leader is blocked: it
                        // sleeps until the leader's release notification.
                        // (On a poisoned committer `Lead` drains and fails
                        // the queue instead of taking leadership.)
                        moves.push((t, Step::Lead));
                    }
                }
                Pc::Filling { .. } => moves.push((t, Step::FillTimeout)),
                Pc::Writing { write_idx, .. } => {
                    if write_idx < self.window.len() {
                        moves.push((t, Step::WriteNext));
                    } else {
                        moves.push((t, Step::FsyncRound));
                    }
                }
                Pc::Synced { .. } => moves.push((t, Step::CompleteSlots)),
                Pc::FailedSync { .. } | Pc::Releasing { .. } => moves.push((t, Step::Release)),
                Pc::Done => {}
            }
        }
        moves
    }

    /// Drains the pending queue into the leader's window, maintaining the
    /// concurrency hint exactly like `GroupCommitter::wait` does.
    fn drain(&mut self, scenario: &Scenario, after_fill: bool) {
        if after_fill && self.pending.len() == 1 && !scenario.fill_idle {
            self.hint = false;
        }
        self.window = std::mem::take(&mut self.pending);
    }

    /// The successor state after thread `t` takes `step`. Steps mirror the
    /// real protocol's critical sections: everything inside one step happens
    /// under the window mutex (or is thread-local), everything across steps
    /// can interleave.
    pub fn apply(&self, scenario: &Scenario, t: usize, step: Step) -> State {
        let mut next = self.clone();
        match (step, self.pc[t].clone()) {
            (Step::Enqueue, Pc::Idle { next: k }) => {
                if next.poisoned {
                    // Poisoned committer: the enqueue returns a pre-failed
                    // slot and nothing enters the pipeline.
                    next.failed[t][k] = true;
                    next.pc[t] = Pc::Waiting { commit: k };
                } else {
                    let doc = scenario.threads[t][k];
                    if next.leader.is_some() || !next.pending.is_empty() {
                        next.hint = true;
                    }
                    next.pending.push(((t, k), doc));
                    next.enqueue_order[doc].push((t, k));
                    next.pc[t] = Pc::Waiting { commit: k };
                }
            }
            (Step::Lead, Pc::Waiting { commit }) => {
                if next.poisoned {
                    // The poisoned branch of `wait`: nothing may flush — the
                    // waiter drains and fails the whole queue (its own slot
                    // included) without taking leadership, then loops to
                    // observe the failure.
                    let drained = std::mem::take(&mut next.pending);
                    for ((thread, k), _) in drained {
                        next.failed[thread][k] = true;
                    }
                    next.pc[t] = Pc::Waiting { commit };
                    return next;
                }
                next.leader = Some(t);
                let fill = scenario.fill_idle || next.hint || next.pending.len() > 1;
                if fill {
                    next.pc[t] = Pc::Filling { commit };
                } else {
                    // Idle fast-path: leadership take and drain are one
                    // critical section, like the real committer.
                    next.drain(scenario, false);
                    next.pc[t] = Pc::Writing {
                        commit,
                        write_idx: 0,
                    };
                }
            }
            (Step::FillTimeout, Pc::Filling { commit }) => {
                next.drain(scenario, true);
                next.pc[t] = Pc::Writing {
                    commit,
                    write_idx: 0,
                };
            }
            (Step::WriteNext, Pc::Writing { commit, write_idx }) => {
                let (id, doc) = self.window[write_idx];
                next.journal[doc].push(id);
                next.pc[t] = Pc::Writing {
                    commit,
                    write_idx: write_idx + 1,
                };
            }
            (Step::FsyncRound, Pc::Writing { commit, .. }) => {
                let failing = scenario
                    .fsync_fails_at
                    .is_some_and(|n| self.fsync_rounds + 1 == n);
                if scenario.fsync_fails_at.is_some() {
                    // Counted only under injection so fault-free scenarios
                    // memoize (and pin their coverage numbers) unchanged.
                    next.fsync_rounds += 1;
                }
                if failing && !scenario.bug_ack_after_failed_fsync {
                    // The real failure path, as one observable step (in the
                    // store it all happens inside `flush_window` while the
                    // followers sleep): the round fails, the unsynced
                    // records — everything past the durable prefix belongs
                    // to this window, windows being serialized — roll back,
                    // and every member slot resolves failed.
                    for &((thread, k), doc) in &self.window {
                        next.journal[doc].truncate(next.durable[doc]);
                        next.failed[thread][k] = true;
                    }
                    next.window.clear();
                    next.pc[t] = Pc::FailedSync { commit };
                } else {
                    if !scenario.bug_ack_before_fsync && !failing {
                        // One shared round covers every file the window
                        // touched.
                        for &(_, doc) in &self.window {
                            next.durable[doc] = next.journal[doc].len();
                        }
                    }
                    // A failing round with `bug_ack_after_failed_fsync`
                    // falls through here *without* advancing the durable
                    // prefix: the fsyncgate bug — proceed to ack anyway.
                    next.pc[t] = Pc::Synced { commit };
                }
            }
            (Step::CompleteSlots, Pc::Synced { commit }) => {
                for &((thread, k), _) in &self.window {
                    next.acked[thread][k] = true;
                }
                next.window.clear();
                next.pc[t] = Pc::Releasing { commit };
            }
            (Step::Release, Pc::Releasing { commit }) => {
                next.leader = None;
                next.pc[t] = Pc::Waiting { commit };
            }
            (Step::Release, Pc::FailedSync { commit }) => {
                // Poison and release are one critical section in the real
                // `wait` (the window mutex is held across both).
                next.poisoned = true;
                next.leader = None;
                next.pc[t] = Pc::Waiting { commit };
            }
            (Step::ObserveAck, Pc::Waiting { commit }) => {
                let following = commit + 1;
                next.pc[t] = if following < scenario.threads[t].len() {
                    Pc::Idle { next: following }
                } else {
                    Pc::Done
                };
            }
            (step, pc) => unreachable!("step {step:?} not enabled at pc {pc:?}"),
        }
        next
    }

    /// Checks the safety invariants; `Some(description)` on the first
    /// violation. Called at every reachable state (see the module docs for
    /// why that subsumes crash-point enumeration).
    pub fn check(&self, scenario: &Scenario) -> Option<String> {
        // I1 — durability: ack ⇒ the commit's record lies in its document's
        // durable (fsynced) journal prefix.
        for (t, acks) in self.acked.iter().enumerate() {
            for (k, &acked) in acks.iter().enumerate() {
                if !acked {
                    continue;
                }
                let doc = scenario.threads[t][k];
                let position = self.journal[doc].iter().position(|&id| id == (t, k));
                match position {
                    Some(index) if index < self.durable[doc] => {}
                    Some(_) => {
                        return Some(format!(
                            "commit {t}:{k} acknowledged but its record in doc {doc} \
                             is not durable (crash here loses an acked commit)"
                        ));
                    }
                    None => {
                        return Some(format!(
                            "commit {t}:{k} acknowledged but never written to doc {doc}"
                        ));
                    }
                }
            }
        }
        // I2 — per-document order: the journal (volatile tail included) is
        // exactly a prefix of the document's enqueue order.
        for doc in 0..scenario.docs {
            let written = &self.journal[doc];
            if written.as_slice() != &self.enqueue_order[doc][..written.len()] {
                return Some(format!(
                    "doc {doc} journal order {written:?} diverges from enqueue order \
                     {:?}",
                    self.enqueue_order[doc]
                ));
            }
            if self.durable[doc] > written.len() {
                return Some(format!(
                    "doc {doc} durable prefix {} exceeds journal length {}",
                    self.durable[doc],
                    written.len()
                ));
            }
        }
        // I3 — leadership: a drained-but-unflushed window implies an active
        // leader, and the leader's pc is a leader phase.
        if !self.window.is_empty() && self.leader.is_none() {
            return Some("drained window with no active leader".to_string());
        }
        if let Some(leader) = self.leader {
            if !matches!(
                self.pc[leader],
                Pc::Filling { .. }
                    | Pc::Writing { .. }
                    | Pc::Synced { .. }
                    | Pc::FailedSync { .. }
                    | Pc::Releasing { .. }
            ) {
                return Some(format!(
                    "leader thread {leader} is not in a leader phase ({:?})",
                    self.pc[leader]
                ));
            }
        }
        // I5 — resolution exclusivity: no commit both acknowledged and
        // failed (an acked-then-errored slot would let a client both trust
        // and distrust the same batch).
        for (t, acks) in self.acked.iter().enumerate() {
            for (k, &acked) in acks.iter().enumerate() {
                if acked && self.failed[t][k] {
                    return Some(format!("commit {t}:{k} both acknowledged and failed"));
                }
            }
        }
        // I4 — terminal completeness: everyone done ⇒ every commit resolved
        // (acked or, under injection, failed); fault-free scenarios must
        // additionally end with complete, fully durable journals.
        if self.is_terminal() {
            for (t, acks) in self.acked.iter().enumerate() {
                for (k, &acked) in acks.iter().enumerate() {
                    if !acked && !self.failed[t][k] {
                        return Some("terminal state with an unacknowledged commit".to_string());
                    }
                }
            }
            if scenario.fsync_fails_at.is_none() {
                for doc in 0..scenario.docs {
                    if self.journal[doc] != self.enqueue_order[doc]
                        || self.durable[doc] != self.journal[doc].len()
                    {
                        return Some(format!(
                            "terminal state but doc {doc} journal is incomplete or not \
                             fully durable"
                        ));
                    }
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario() -> Scenario {
        Scenario {
            name: "unit",
            threads: vec![vec![0], vec![0]],
            docs: 1,
            window_max: 2,
            fill_idle: false,
            bug_ack_before_fsync: false,
            fsync_fails_at: None,
            bug_ack_after_failed_fsync: false,
        }
    }

    #[test]
    fn lone_commit_fast_paths_to_done() {
        let sc = Scenario {
            threads: vec![vec![0]],
            ..scenario()
        };
        let mut state = State::initial(&sc);
        for step in [
            Step::Enqueue,
            Step::Lead,
            Step::WriteNext,
            Step::FsyncRound,
            Step::CompleteSlots,
            Step::Release,
            Step::ObserveAck,
        ] {
            assert!(state.enabled(&sc).contains(&(0, step)), "expected {step:?}");
            state = state.apply(&sc, 0, step);
            assert_eq!(state.check(&sc), None);
        }
        assert!(state.is_terminal());
    }

    #[test]
    fn second_enqueue_sets_the_concurrency_hint() {
        let sc = scenario();
        let state = State::initial(&sc);
        let state = state.apply(&sc, 0, Step::Enqueue);
        assert!(!state.hint);
        let state = state.apply(&sc, 1, Step::Enqueue);
        assert!(
            state.hint,
            "enqueue into an occupied window must set the hint"
        );
        // With two pending members the leader fill-waits instead of
        // fast-pathing.
        let state = state.apply(&sc, 0, Step::Lead);
        assert!(matches!(state.pc[0], Pc::Filling { .. }));
    }

    #[test]
    fn followers_are_blocked_while_a_leader_is_active() {
        let sc = scenario();
        let state = State::initial(&sc)
            .apply(&sc, 0, Step::Enqueue)
            .apply(&sc, 0, Step::Lead)
            .apply(&sc, 1, Step::Enqueue);
        // Thread 1 enqueued while thread 0 leads: it has no enabled step.
        assert_eq!(
            state.enabled(&sc),
            vec![(0, Step::WriteNext)],
            "only the leader may move"
        );
    }
}
