//! Lockdep witness self-tests: prove the `shims/parking_lot` lock-order
//! witness actually catches the bug classes it exists for.
//!
//! The witness is feature-gated (`--features lock-witness`), so these tests
//! detect instrumentation at runtime via [`parking_lot::witness::enabled`]:
//! under a plain build they skip-pass (the deliberate inversions below would
//! otherwise be real hangs waiting to happen), and under a witness build —
//! which the workspace-root `lock-witness` feature reaches through feature
//! unification — they demand a panic naming both involved lock classes.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

use parking_lot::{witness, LockClass, Mutex, RwLock};

/// The panic payload's message, whatever form the panic took.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    match payload.downcast::<String>() {
        Ok(message) => *message,
        Err(payload) => match payload.downcast::<&str>() {
            Ok(message) => (*message).to_string(),
            Err(_) => String::from("<non-string panic payload>"),
        },
    }
}

/// True (and logs) when the witness is compiled out and the test should
/// skip-pass.
fn uninstrumented(test: &str) -> bool {
    if witness::enabled() {
        return false;
    }
    eprintln!("{test}: skipped (build without --features lock-witness)");
    true
}

#[test]
fn abba_inversion_panics_with_both_class_labels() {
    if uninstrumented("abba_inversion_panics_with_both_class_labels") {
        return;
    }
    let a = Mutex::with_class(LockClass::TestA, 0u32);
    let b = Mutex::with_class(LockClass::TestB, 0u32);
    {
        // Record the test-a -> test-b acquisition order.
        let _held_a = a.lock();
        let _held_b = b.lock();
    }
    // The reverse order must now panic *before blocking* — on a real pair of
    // threads this is the classic ABBA deadlock.
    let result = catch_unwind(AssertUnwindSafe(|| {
        let _held_b = b.lock();
        let _held_a = a.lock();
    }));
    let message = panic_message(result.expect_err("ABBA inversion must panic"));
    assert!(
        message.contains("test-a") && message.contains("test-b"),
        "panic must name both lock classes: {message}"
    );
    assert!(
        message.contains("cycle"),
        "panic must explain the cycle: {message}"
    );
}

#[test]
fn declared_order_inversion_panics_with_both_class_labels() {
    if uninstrumented("declared_order_inversion_panics_with_both_class_labels") {
        return;
    }
    // The declared engine order is shard -> doc-entry -> …; acquiring a
    // shard map while holding a document entry inverts it.
    let entry = RwLock::with_class(LockClass::DocEntry, ());
    let shard = RwLock::with_class(LockClass::Shard, ());
    let result = catch_unwind(AssertUnwindSafe(|| {
        let _held_entry = entry.write();
        let _held_shard = shard.read();
    }));
    let message = panic_message(result.expect_err("order inversion must panic"));
    assert!(
        message.contains("acquiring `shard` while holding `doc-entry`"),
        "panic must name the inverted pair: {message}"
    );
    assert!(
        message.contains("declared order"),
        "panic must cite the declared order: {message}"
    );
}

#[test]
fn same_class_nesting_panics() {
    if uninstrumented("same_class_nesting_panics") {
        return;
    }
    // Two distinct locks of one unranked class: nesting them admits an ABBA
    // between two threads taking them in opposite orders, so the witness
    // treats it as a self-cycle.
    let first = Mutex::with_class(LockClass::TestC, ());
    let second = Mutex::with_class(LockClass::TestC, ());
    let result = catch_unwind(AssertUnwindSafe(|| {
        let _held_first = first.lock();
        let _held_second = second.lock();
    }));
    let message = panic_message(result.expect_err("same-class nesting must panic"));
    assert!(
        message.contains("test-c"),
        "panic must name the class: {message}"
    );
}

#[test]
fn real_grouped_commit_path_is_clean_under_the_witness() {
    // Runs in both modes; under `--features lock-witness` it asserts the
    // real engine's journal/device/committer lock order matches the
    // declaration (any inversion panics and fails the test).
    use pxml_core::{FuzzyTree, UpdateTransaction};
    use pxml_query::Pattern;
    use pxml_store::{CommitPolicy, FsBackend, FsOptions};
    use pxml_tree::parse_data_tree;

    let dir = std::env::temp_dir().join(format!("pxml-lockdep-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let backend = FsBackend::with_options(
        &dir,
        FsOptions {
            commit: CommitPolicy::Grouped {
                window_max_batches: 4,
                window_max_wait: Duration::from_millis(5),
            },
            ..FsOptions::default()
        },
    )
    .expect("open scratch store");

    let mut fuzzy = FuzzyTree::new("directory");
    let person = fuzzy.add_element(fuzzy.root(), "person");
    let name = fuzzy.add_element(person, "name");
    fuzzy.add_text(name, "alice");
    for doc in ["left", "right"] {
        backend.save_document(doc, &fuzzy).expect("seed document");
    }

    std::thread::scope(|scope| {
        for doc in ["left", "right"] {
            scope.spawn(|| {
                for round in 0..4 {
                    let pattern = Pattern::parse("person { name[=\"alice\"] }").unwrap();
                    let target = pattern.root();
                    let update = UpdateTransaction::new(pattern, 0.8).unwrap().with_insert(
                        target,
                        parse_data_tree(&format!("<email>r{round}@example.org</email>")).unwrap(),
                    );
                    backend.append_batch(doc, &[update]).expect("append");
                }
            });
        }
    });

    for doc in ["left", "right"] {
        backend.load_document(doc).expect("reload");
    }
    drop(backend);
    let _ = std::fs::remove_dir_all(&dir);
    if witness::enabled() {
        eprintln!("real commit path exercised under the lock-order witness: clean");
    }
}
