//! Mini-loom explorer suite: every scenario in the battery must uphold the
//! durability/ordering invariants in **every** bounded schedule, and the
//! invariant machinery must actually catch a seeded durability bug.

use pxml_check::loom::{explore, scenarios, seeded_bug_scenario, seeded_fsyncgate_scenario};

#[test]
fn every_scenario_upholds_the_invariants_in_every_schedule() {
    for scenario in scenarios() {
        let stats = explore(&scenario);
        assert!(
            stats.violations.is_empty(),
            "[{}] {} violation(s), first: {}",
            scenario.name,
            stats.violations.len(),
            stats.violations[0]
        );
        // Exhaustiveness sanity: something was actually explored, and every
        // explored schedule ran to completion (terminals reached).
        assert!(stats.states > 1, "[{}] trivial exploration", scenario.name);
        assert!(stats.schedules >= 1, "[{}] no schedules", scenario.name);
        assert!(
            stats.terminals >= 1,
            "[{}] no terminal states",
            scenario.name
        );
    }
}

#[test]
fn two_thread_same_doc_coverage_is_exhaustive() {
    // 2 threads x 2 commits on one doc: the canonical contention scenario.
    // The numbers themselves are regression-pinned so a model or explorer
    // change that silently shrinks coverage fails loudly.
    let stats = explore(&scenarios()[0]);
    assert_eq!(stats.states, 393);
    assert_eq!(stats.schedules, 610);
    assert!(stats.memo_hits > 0, "memoization never fired");
    assert!(
        stats.local_fastpaths > 0,
        "persistent-set reduction never fired"
    );
}

#[test]
fn window_bound_does_not_change_the_reachable_schedule_set() {
    // `window_max_batches` only bounds how long a leader *waits*; since the
    // explorer treats the fill timeout as always able to fire, the reachable
    // schedules for window 1 and window 2 must be identical.
    let battery = scenarios();
    let w2 = battery.iter().find(|s| s.name == "2t-1doc-w2").unwrap();
    let w1 = battery.iter().find(|s| s.name == "2t-1doc-w1").unwrap();
    let (a, b) = (explore(w2), explore(w1));
    assert_eq!(a.states, b.states);
    assert_eq!(a.transitions, b.transitions);
    assert_eq!(a.schedules, b.schedules);
}

#[test]
fn seeded_ack_before_fsync_bug_is_detected() {
    let stats = explore(&seeded_bug_scenario());
    assert!(
        !stats.violations.is_empty(),
        "the explorer failed to catch the seeded ack-before-fsync bug"
    );
    assert!(
        stats
            .violations
            .iter()
            .any(|violation| violation.contains("not durable")),
        "violations never mention durability: {:?}",
        stats.violations
    );
    // Each recorded violation carries the schedule that exposed it.
    assert!(
        stats.violations[0].contains("t0:") || stats.violations[0].contains("t1:"),
        "violation lacks a schedule trace: {}",
        stats.violations[0]
    );
}

#[test]
fn failing_fsync_scenarios_are_explored_and_uphold_durability() {
    // The failure scenarios are part of the battery (so the first test has
    // already proven no schedule acks a non-durable record across the
    // failure); here we additionally pin that the fault actually fires —
    // a battery where the injected round is never reached would prove
    // nothing.
    let battery = scenarios();
    let failing = battery
        .iter()
        .filter(|s| s.fsync_fails_at.is_some())
        .collect::<Vec<_>>();
    assert!(failing.len() >= 2, "failure scenarios missing from battery");
    for scenario in failing {
        let stats = explore(scenario);
        assert!(
            stats.violations.is_empty(),
            "[{}] {:?}",
            scenario.name,
            stats.violations
        );
        assert!(stats.terminals >= 1, "[{}] never terminates", scenario.name);
        // More states than the fault-free twin would add nothing by itself;
        // the meaningful signal is that exploration is non-trivial.
        assert!(stats.states > 1 && stats.schedules > 1);
    }
}

#[test]
fn seeded_ack_after_failed_fsync_bug_is_detected() {
    // The fsyncgate pattern: fsync fails, the leader shrugs and acks. The
    // records sit in the page cache (journal tail), not in the durable
    // prefix — I1 must fire in some schedule, with the trace attached.
    let stats = explore(&seeded_fsyncgate_scenario());
    assert!(
        !stats.violations.is_empty(),
        "the explorer failed to catch the seeded ack-after-failed-fsync bug"
    );
    assert!(
        stats
            .violations
            .iter()
            .any(|violation| violation.contains("not durable")),
        "violations never mention durability: {:?}",
        stats.violations
    );
    assert!(
        stats.violations[0].contains("t0:") || stats.violations[0].contains("t1:"),
        "violation lacks a schedule trace: {}",
        stats.violations[0]
    );
}

#[test]
fn repo_sources_lint_clean() {
    // The linter gates CI; this test keeps `cargo test` and the lint binary
    // in agreement about the state of the tree.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let findings = pxml_check::lint::lint_root(&root).expect("workspace sources readable");
    assert!(
        findings.is_empty(),
        "repo invariant lint findings:\n{}",
        findings
            .iter()
            .map(|finding| finding.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn lint_catches_a_seeded_violation() {
    // End-to-end: a source tree that silently bypasses the shim must fail.
    let findings = pxml_check::lint::lint_source(
        "crates/seeded/src/lib.rs",
        "use std::sync::Mutex;\nfn f() {\n    let g = m.lock();\n    thing().unwrap();\n}\n",
    );
    let rules: Vec<&str> = findings.iter().map(|finding| finding.rule).collect();
    assert_eq!(rules, vec!["std-sync-lock", "guard-unwrap"]);
}
