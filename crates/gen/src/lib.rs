//! # pxml-gen
//!
//! Seeded workload generators for probabilistic XML.
//!
//! The paper's warehouse is fed by imprecise modules — information
//! extraction, natural-language processing, data cleaning, schema matching —
//! for which no public corpus exists. This crate provides the synthetic
//! equivalents used by the benchmarks, examples and property-based tests:
//!
//! * [`trees`] — random data trees with a configurable shape (fanout, depth,
//!   label/value alphabets);
//! * [`fuzzy`] — random fuzzy trees: a random tree plus random event
//!   conditions of configurable density;
//! * [`queries`] — random TPWJ queries, either fully random or *derived from
//!   a document* so that they are guaranteed to match;
//! * [`updates`] — random probabilistic update transactions (insertions and
//!   deletions anchored at randomly chosen pattern targets);
//! * [`scenarios`] — the "people directory" scenario used by the warehouse
//!   examples: documents that look like the output of an information
//!   extraction pipeline, and streams of extraction-style updates with
//!   confidences;
//! * [`concurrent`] — seeded concurrent mixed workloads (experiment E11):
//!   per-document streams of interleaved queries and committed update
//!   batches for multi-threaded warehouse drivers;
//! * [`storage`] — deterministic committed-batch streams for journal seeding
//!   (experiment E12 and the storage-backend tests).
//!
//! Every generator takes an explicit [`rand::Rng`] (or derives one from a
//! seed), so workloads are reproducible.

pub mod concurrent;
pub mod fuzzy;
pub mod queries;
pub mod scenarios;
pub mod storage;
pub mod trees;
pub mod updates;

pub use concurrent::{
    concurrent_workload, initial_document, ConcurrentWorkloadConfig, DocumentWorkload, WorkloadOp,
};
pub use fuzzy::{random_fuzzy_tree, FuzzyGenConfig};
pub use queries::{derived_query, random_query, QueryGenConfig};
pub use scenarios::{extraction_update, people_directory, PeopleScenarioConfig};
pub use storage::journal_batches;
pub use trees::{random_tree, TreeGenConfig};
pub use updates::{random_update, UpdateGenConfig};
