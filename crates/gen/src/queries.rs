//! Random TPWJ query generation.

use pxml_query::{Axis, Pattern};
use pxml_tree::{NodeId, Tree};
use rand::Rng;

/// Parameters for random queries.
#[derive(Debug, Clone)]
pub struct QueryGenConfig {
    /// Number of pattern nodes (including the root).
    pub pattern_nodes: usize,
    /// Probability that an edge is a descendant edge rather than a child edge.
    pub descendant_probability: f64,
    /// Probability that a leaf pattern node carries a value test (only for
    /// document-derived queries, where the value is read off the document).
    pub value_probability: f64,
    /// Probability that the query carries one value join between two leaves.
    pub join_probability: f64,
    /// Probability that a pattern node is a wildcard instead of a label test.
    pub wildcard_probability: f64,
}

impl Default for QueryGenConfig {
    fn default() -> Self {
        QueryGenConfig {
            pattern_nodes: 3,
            descendant_probability: 0.3,
            value_probability: 0.2,
            join_probability: 0.0,
            wildcard_probability: 0.1,
        }
    }
}

/// Generates a query *derived from the document*: pattern nodes are sampled
/// from actual document paths, so the query is guaranteed to have at least
/// one match on `tree`.
pub fn derived_query(rng: &mut impl Rng, tree: &Tree, config: &QueryGenConfig) -> Pattern {
    let elements: Vec<NodeId> = tree
        .nodes()
        .into_iter()
        .filter(|&n| tree.is_element(n))
        .collect();
    // Seed the pattern at a random element that has element children if
    // possible (so that it can grow).
    let internal: Vec<NodeId> = elements
        .iter()
        .copied()
        .filter(|&n| tree.children(n).iter().any(|&c| tree.is_element(c)))
        .collect();
    let seed = if internal.is_empty() {
        elements[rng.gen_range(0..elements.len())]
    } else {
        internal[rng.gen_range(0..internal.len())]
    };
    let seed_label = tree
        .label(seed)
        .element_name()
        .unwrap_or("root")
        .to_string();
    let mut pattern = Pattern::element(&seed_label);
    // Track which document node each pattern node was sampled from.
    let mut images = vec![seed];
    let mut pattern_ids = vec![pattern.root()];

    while pattern.len() < config.pattern_nodes {
        // Pick an already-sampled pattern node whose image has element
        // children and extend below it.
        let candidates: Vec<usize> = (0..images.len())
            .filter(|&i| tree.children(images[i]).iter().any(|&c| tree.is_element(c)))
            .collect();
        if candidates.is_empty() {
            break;
        }
        let parent_index = candidates[rng.gen_range(0..candidates.len())];
        let parent_image = images[parent_index];
        let element_children: Vec<NodeId> = tree
            .children(parent_image)
            .iter()
            .copied()
            .filter(|&c| tree.is_element(c))
            .collect();
        let child_image = element_children[rng.gen_range(0..element_children.len())];
        let axis = if rng.gen_bool(config.descendant_probability) {
            Axis::Descendant
        } else {
            Axis::Child
        };
        let label = if rng.gen_bool(config.wildcard_probability) {
            None
        } else {
            tree.label(child_image).element_name()
        };
        let new_node = pattern.add_child(pattern_ids[parent_index], axis, label);
        // Optionally pin the node to its document value.
        if rng.gen_bool(config.value_probability) {
            if let Some(value) = tree.node_value(child_image) {
                pattern.set_value(new_node, value);
            }
        }
        images.push(child_image);
        pattern_ids.push(new_node);
    }

    // Optionally join two leaves that happen to share a value.
    if rng.gen_bool(config.join_probability) && pattern.len() >= 3 {
        let values: Vec<(usize, String)> = (1..images.len())
            .filter_map(|i| {
                tree.node_value(images[i])
                    .map(|value| (i, value.to_string()))
            })
            .collect();
        'outer: for i in 0..values.len() {
            for j in (i + 1)..values.len() {
                if values[i].1 == values[j].1 {
                    let join = pattern.new_join("v");
                    pattern.join(pattern_ids[values[i].0], join);
                    pattern.join(pattern_ids[values[j].0], join);
                    break 'outer;
                }
            }
        }
    }
    pattern
}

/// Generates a fully random query over the given label alphabet (it may very
/// well have no match on any particular document).
pub fn random_query(rng: &mut impl Rng, labels: &[String], config: &QueryGenConfig) -> Pattern {
    let label = &labels[rng.gen_range(0..labels.len())];
    let mut pattern = Pattern::element(label);
    let mut nodes = vec![pattern.root()];
    while pattern.len() < config.pattern_nodes {
        let parent = nodes[rng.gen_range(0..nodes.len())];
        let axis = if rng.gen_bool(config.descendant_probability) {
            Axis::Descendant
        } else {
            Axis::Child
        };
        let label = if rng.gen_bool(config.wildcard_probability) {
            None
        } else {
            Some(labels[rng.gen_range(0..labels.len())].as_str())
        };
        let node = pattern.add_child(parent, axis, label);
        nodes.push(node);
    }
    pattern
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trees::{random_tree, TreeGenConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn derived_queries_always_match() {
        let tree_config = TreeGenConfig::sized(120);
        let query_config = QueryGenConfig {
            pattern_nodes: 4,
            value_probability: 0.4,
            ..QueryGenConfig::default()
        };
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(seed);
            let tree = random_tree(&mut rng, &tree_config);
            let query = derived_query(&mut rng, &tree, &query_config);
            assert!(query.validate().is_ok());
            assert!(
                !query.find_matches(&tree).is_empty(),
                "derived query {query} must match its source document (seed {seed})"
            );
        }
    }

    #[test]
    fn derived_queries_respect_size_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        let tree = random_tree(&mut rng, &TreeGenConfig::sized(100));
        let config = QueryGenConfig {
            pattern_nodes: 5,
            ..QueryGenConfig::default()
        };
        let query = derived_query(&mut rng, &tree, &config);
        assert!(query.len() <= 5);
        assert!(!query.is_empty());
    }

    #[test]
    fn joins_are_only_added_when_values_coincide() {
        let mut rng = StdRng::seed_from_u64(8);
        let tree = random_tree(&mut rng, &TreeGenConfig::sized(150));
        let config = QueryGenConfig {
            pattern_nodes: 6,
            join_probability: 1.0,
            value_probability: 0.0,
            ..QueryGenConfig::default()
        };
        for _ in 0..10 {
            let query = derived_query(&mut rng, &tree, &config);
            // Whether or not a join got added, the query must stay valid and
            // matching.
            assert!(query.validate().is_ok());
            assert!(!query.find_matches(&tree).is_empty());
        }
    }

    #[test]
    fn random_queries_are_well_formed() {
        let labels: Vec<String> = ["a", "b", "c"].iter().map(|s| s.to_string()).collect();
        let config = QueryGenConfig {
            pattern_nodes: 4,
            ..QueryGenConfig::default()
        };
        for seed in 0..5 {
            let mut rng = StdRng::seed_from_u64(seed);
            let query = random_query(&mut rng, &labels, &config);
            assert_eq!(query.len(), 4);
            assert!(query.validate().is_ok());
            // Round-trips through the textual syntax.
            let reparsed = Pattern::parse(&query.to_string()).unwrap();
            assert_eq!(reparsed.to_string(), query.to_string());
        }
    }
}
