//! Random data-tree generation.

use pxml_tree::{NodeId, Tree};
use rand::Rng;

/// Shape parameters for random data trees.
#[derive(Debug, Clone)]
pub struct TreeGenConfig {
    /// Target number of element nodes (the generator stops adding elements
    /// once reached, so the final count is close to but never above it,
    /// excluding text nodes).
    pub target_elements: usize,
    /// Maximum depth of element nodes.
    pub max_depth: usize,
    /// Maximum number of element children per node.
    pub max_fanout: usize,
    /// Element names to draw from.
    pub labels: Vec<String>,
    /// Text values to draw from.
    pub values: Vec<String>,
    /// Probability that a leaf element receives a text child.
    pub text_probability: f64,
}

impl Default for TreeGenConfig {
    fn default() -> Self {
        TreeGenConfig {
            target_elements: 100,
            max_depth: 6,
            max_fanout: 5,
            labels: ["a", "b", "c", "d", "item", "name", "value", "entry"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            values: ["1", "2", "3", "x", "y", "z", "foo", "bar"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            text_probability: 0.5,
        }
    }
}

impl TreeGenConfig {
    /// A configuration producing roughly `target_elements` element nodes.
    ///
    /// Depth and fanout scale with the target so that large documents are
    /// actually reachable (a depth-6 / fanout-5 tree caps out below 20 000
    /// nodes).
    pub fn sized(target_elements: usize) -> Self {
        let (max_depth, max_fanout) = if target_elements <= 2_000 {
            (6, 5)
        } else if target_elements <= 20_000 {
            (8, 6)
        } else {
            (10, 8)
        };
        TreeGenConfig {
            target_elements,
            max_depth,
            max_fanout,
            ..TreeGenConfig::default()
        }
    }
}

/// Generates a random data tree.
pub fn random_tree(rng: &mut impl Rng, config: &TreeGenConfig) -> Tree {
    let mut tree = Tree::new("root");
    let mut elements = 1usize;
    // Frontier of nodes that may still receive children, with their depth.
    let mut frontier: Vec<(NodeId, usize)> = vec![(tree.root(), 0)];
    while elements < config.target_elements && !frontier.is_empty() {
        let slot = rng.gen_range(0..frontier.len());
        let (parent, depth) = frontier[slot];
        let fanout = rng.gen_range(1..=config.max_fanout.max(1));
        for _ in 0..fanout {
            if elements >= config.target_elements {
                break;
            }
            let label = &config.labels[rng.gen_range(0..config.labels.len())];
            let child = tree.add_element(parent, label.clone());
            elements += 1;
            if depth + 1 < config.max_depth {
                frontier.push((child, depth + 1));
            }
        }
        frontier.swap_remove(slot);
    }
    // Give leaf elements a text value with the configured probability, so
    // that value tests and joins have something to bite on.
    for node in tree.nodes() {
        if tree.is_element(node) && tree.is_leaf(node) && rng.gen_bool(config.text_probability) {
            let value = &config.values[rng.gen_range(0..config.values.len())];
            tree.add_text(node, value.clone());
        }
    }
    tree
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generated_trees_are_valid_and_bounded() {
        let config = TreeGenConfig::sized(200);
        for seed in 0..5 {
            let mut rng = StdRng::seed_from_u64(seed);
            let tree = random_tree(&mut rng, &config);
            assert!(tree.validate().is_ok());
            assert!(tree.check_data_model().is_ok());
            let elements = tree
                .nodes()
                .into_iter()
                .filter(|&n| tree.is_element(n))
                .count();
            assert!(elements <= 200, "element count {elements} exceeds target");
            assert!(elements > 10, "tree is unexpectedly small: {elements}");
            assert!(tree.height() <= config.max_depth + 1);
        }
    }

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let config = TreeGenConfig::default();
        let a = random_tree(&mut StdRng::seed_from_u64(42), &config);
        let b = random_tree(&mut StdRng::seed_from_u64(42), &config);
        assert!(a.isomorphic(&b));
        let c = random_tree(&mut StdRng::seed_from_u64(43), &config);
        // Different seeds almost surely differ.
        assert!(!a.isomorphic(&c));
    }

    #[test]
    fn labels_come_from_the_alphabet() {
        let config = TreeGenConfig {
            labels: vec!["only".to_string()],
            ..TreeGenConfig::sized(30)
        };
        let tree = random_tree(&mut StdRng::seed_from_u64(1), &config);
        for node in tree.nodes() {
            if let Some(name) = tree.label(node).element_name() {
                assert!(name == "only" || name == "root");
            }
        }
    }

    #[test]
    fn tiny_target_produces_tiny_tree() {
        let config = TreeGenConfig::sized(1);
        let tree = random_tree(&mut StdRng::seed_from_u64(7), &config);
        assert_eq!(
            tree.nodes()
                .into_iter()
                .filter(|&n| tree.is_element(n))
                .count(),
            1
        );
    }
}
