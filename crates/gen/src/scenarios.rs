//! The "people directory" scenario: a synthetic stand-in for the imprecise
//! sources of the paper's introduction.
//!
//! The paper motivates the warehouse with modules performing information
//! extraction, natural-language processing, data cleaning and schema
//! matching, all of which emit data *with a confidence value*. We do not have
//! those pipelines, so this module fabricates their output: a directory of
//! people extracted from the web, where names are reliable but phone numbers,
//! e-mail addresses and affiliations come from extractors of varying quality.
//! The warehouse only ever sees `(update transaction, confidence)` pairs, so
//! these synthetic updates exercise exactly the same code paths as real
//! extraction output would.

use pxml_core::{Update, UpdateTransaction};
use pxml_query::Pattern;
use pxml_tree::Tree;
use rand::Rng;

/// Parameters of the people-directory scenario.
#[derive(Debug, Clone)]
pub struct PeopleScenarioConfig {
    /// Number of people initially present (with certain names).
    pub people: usize,
    /// Confidence range of the extraction modules feeding the directory.
    pub min_confidence: f64,
    /// Upper bound of the confidence range.
    pub max_confidence: f64,
}

impl Default for PeopleScenarioConfig {
    fn default() -> Self {
        PeopleScenarioConfig {
            people: 20,
            min_confidence: 0.55,
            max_confidence: 0.95,
        }
    }
}

const FIRST_NAMES: &[&str] = &[
    "alice", "bob", "carol", "dan", "erin", "frank", "grace", "heidi", "ivan", "judy", "mallory",
    "oscar", "peggy", "trent", "victor", "wendy",
];
const DOMAINS: &[&str] = &["example.org", "inria.fr", "acm.org", "museum.net"];
const CITIES: &[&str] = &["paris", "orsay", "saclay", "cachan", "lyon"];

fn person_name(index: usize) -> String {
    format!(
        "{}-{}",
        FIRST_NAMES[index % FIRST_NAMES.len()],
        index / FIRST_NAMES.len()
    )
}

/// Builds the initial (certain) directory document:
/// `directory / person* / name`.
pub fn people_directory(config: &PeopleScenarioConfig) -> Tree {
    let mut tree = Tree::new("directory");
    for index in 0..config.people {
        let person = tree.add_element(tree.root(), "person");
        let name = tree.add_element(person, "name");
        tree.add_text(name, person_name(index));
    }
    tree
}

/// The kinds of imprecise facts the synthetic extractors produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExtractionKind {
    /// A phone number extracted from a web page.
    Phone,
    /// An e-mail address guessed by an NLP module.
    Email,
    /// A city guessed by an entity-resolution module.
    City,
    /// A data-cleaning module retracting previously inserted phone numbers.
    RetractPhones,
}

/// Generates one extraction-style probabilistic update against the directory:
/// an insertion of a phone/e-mail/city under a random person, or a
/// data-cleaning deletion, with a random confidence. Returns the transaction
/// and the kind of module that produced it.
pub fn extraction_update(
    rng: &mut impl Rng,
    config: &PeopleScenarioConfig,
) -> (UpdateTransaction, ExtractionKind) {
    let person = rng.gen_range(0..config.people.max(1));
    let name = person_name(person);
    let confidence = rng.gen_range(config.min_confidence..=config.max_confidence);
    let kind = match rng.gen_range(0..4u32) {
        0 => ExtractionKind::Phone,
        1 => ExtractionKind::Email,
        2 => ExtractionKind::City,
        _ => ExtractionKind::RetractPhones,
    };

    let update = match kind {
        ExtractionKind::Phone => {
            let pattern =
                Pattern::parse(&format!("person {{ name[=\"{name}\"] }}")).expect("static query");
            let target = pattern.root();
            let mut subtree = Tree::new("phone");
            let number = format!(
                "+33-1-{:04}-{:04}",
                rng.gen_range(0..10_000),
                rng.gen_range(0..10_000)
            );
            subtree.add_text(subtree.root(), number);
            Update::matching(pattern).insert_at(target, subtree)
        }
        ExtractionKind::Email => {
            let pattern =
                Pattern::parse(&format!("person {{ name[=\"{name}\"] }}")).expect("static query");
            let target = pattern.root();
            let mut subtree = Tree::new("email");
            let domain = DOMAINS[rng.gen_range(0..DOMAINS.len())];
            subtree.add_text(subtree.root(), format!("{name}@{domain}"));
            Update::matching(pattern).insert_at(target, subtree)
        }
        ExtractionKind::City => {
            let pattern =
                Pattern::parse(&format!("person {{ name[=\"{name}\"] }}")).expect("static query");
            let target = pattern.root();
            let mut subtree = Tree::new("city");
            subtree.add_text(subtree.root(), CITIES[rng.gen_range(0..CITIES.len())]);
            Update::matching(pattern).insert_at(target, subtree)
        }
        ExtractionKind::RetractPhones => {
            let pattern = Pattern::parse(&format!("person {{ name[=\"{name}\"], phone }}"))
                .expect("static query");
            let phone_node = pattern.node_ids().nth(2).expect("phone is the third node");
            Update::matching(pattern).delete_at(phone_node)
        }
    };
    let transaction = update
        .with_confidence(confidence)
        .build()
        .expect("confidence in range");
    (transaction, kind)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pxml_core::FuzzyTree;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn directory_has_expected_shape() {
        let config = PeopleScenarioConfig {
            people: 7,
            ..PeopleScenarioConfig::default()
        };
        let tree = people_directory(&config);
        assert_eq!(tree.find_elements("person").len(), 7);
        assert_eq!(tree.find_elements("name").len(), 7);
        assert!(tree.check_data_model().is_ok());
        // Names are unique.
        let mut names: Vec<String> = tree
            .find_elements("name")
            .into_iter()
            .map(|n| tree.node_value(n).unwrap().to_string())
            .collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 7);
    }

    #[test]
    fn extraction_updates_target_existing_people() {
        let config = PeopleScenarioConfig::default();
        let tree = people_directory(&config);
        let mut rng = StdRng::seed_from_u64(17);
        let mut applied_insert = false;
        for _ in 0..30 {
            let (update, kind) = extraction_update(&mut rng, &config);
            assert!(update.confidence() >= config.min_confidence);
            assert!(update.confidence() <= config.max_confidence);
            if kind != ExtractionKind::RetractPhones {
                // Insertions always select the document (the person exists).
                assert!(
                    !update.pattern().find_matches(&tree).is_empty(),
                    "insertion query must match the directory"
                );
                applied_insert = true;
            }
        }
        assert!(applied_insert);
    }

    #[test]
    fn a_stream_of_updates_keeps_the_document_valid() {
        let config = PeopleScenarioConfig {
            people: 6,
            ..PeopleScenarioConfig::default()
        };
        let mut fuzzy = FuzzyTree::from_tree(people_directory(&config));
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..40 {
            let (update, _) = extraction_update(&mut rng, &config);
            update.apply_to_fuzzy(&mut fuzzy).unwrap();
        }
        assert!(fuzzy.validate().is_ok());
        assert!(fuzzy.event_count() > 0);
        assert!(fuzzy.node_count() > 13);
    }

    #[test]
    fn retraction_updates_only_match_after_phone_insertions() {
        let config = PeopleScenarioConfig {
            people: 1,
            ..PeopleScenarioConfig::default()
        };
        let tree = people_directory(&config);
        let retract = Pattern::parse(&format!(
            "person {{ name[=\"{}\"], phone }}",
            person_name(0)
        ))
        .unwrap();
        assert!(retract.find_matches(&tree).is_empty());
        let mut with_phone = tree.clone();
        let person = with_phone.find_elements("person")[0];
        let phone = with_phone.add_element(person, "phone");
        with_phone.add_text(phone, "+33-1-0000-0000");
        assert!(!retract.find_matches(&with_phone).is_empty());
    }
}
