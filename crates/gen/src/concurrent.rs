//! Seeded concurrent mixed workloads (experiment E11).
//!
//! The paper's warehouse is *multi-module*: several imprecise pipelines
//! query and update shared probabilistic documents at the same time. This
//! module fabricates that traffic shape deterministically: for each of `M`
//! documents it derives an independent, seeded stream of mixed operations —
//! TPWJ queries and committed update batches in a configurable ratio — that
//! a driver can hand to any number of worker threads. Because every
//! document's stream is generated from its own RNG, the workload is
//! identical whether it is replayed by one thread or by eight, which is
//! exactly what a throughput-scaling experiment needs.

use pxml_core::UpdateTransaction;
use pxml_query::Pattern;
use pxml_tree::Tree;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::scenarios::{extraction_update, people_directory, PeopleScenarioConfig};

/// Parameters of a concurrent mixed workload.
#[derive(Debug, Clone)]
pub struct ConcurrentWorkloadConfig {
    /// Number of independent documents receiving traffic.
    pub documents: usize,
    /// People in each document's initial directory.
    pub people_per_document: usize,
    /// Operations (queries + commits) per document.
    pub ops_per_document: usize,
    /// Share of operations that are queries (the rest are commits).
    pub query_fraction: f64,
    /// Updates staged into each committed batch.
    pub updates_per_commit: usize,
}

impl Default for ConcurrentWorkloadConfig {
    fn default() -> Self {
        ConcurrentWorkloadConfig {
            documents: 8,
            people_per_document: 16,
            ops_per_document: 40,
            query_fraction: 0.5,
            updates_per_commit: 2,
        }
    }
}

impl ConcurrentWorkloadConfig {
    fn scenario(&self) -> PeopleScenarioConfig {
        PeopleScenarioConfig {
            people: self.people_per_document.max(1),
            ..PeopleScenarioConfig::default()
        }
    }
}

/// One operation of the mixed stream.
#[derive(Debug, Clone)]
pub enum WorkloadOp {
    /// Evaluate a TPWJ query against the document.
    Query(Pattern),
    /// Commit this batch of probabilistic updates atomically.
    Commit(Vec<UpdateTransaction>),
}

impl WorkloadOp {
    /// `true` for the query variant.
    pub fn is_query(&self) -> bool {
        matches!(self, WorkloadOp::Query(_))
    }
}

/// The traffic destined for one named document.
#[derive(Debug, Clone)]
pub struct DocumentWorkload {
    /// The document's name in the warehouse (`doc-<i>`).
    pub document: String,
    /// The operations, in stream order.
    pub ops: Vec<WorkloadOp>,
}

impl DocumentWorkload {
    /// Number of update transactions across all commit operations.
    pub fn update_count(&self) -> usize {
        self.ops
            .iter()
            .map(|op| match op {
                WorkloadOp::Query(_) => 0,
                WorkloadOp::Commit(batch) => batch.len(),
            })
            .sum()
    }
}

/// The initial (certain) state every workload document starts from.
pub fn initial_document(config: &ConcurrentWorkloadConfig) -> Tree {
    people_directory(&config.scenario())
}

/// The query mix of the workload: the extraction-style patterns users run
/// against a people directory.
fn query_pool() -> Vec<Pattern> {
    [
        "person { phone }",
        "person { email }",
        "person { name, city }",
        "person { name }",
    ]
    .iter()
    .map(|text| Pattern::parse(text).expect("static query"))
    .collect()
}

/// Generates the full workload: one independently seeded operation stream
/// per document. The same `(seed, config)` pair always yields the same
/// streams, regardless of how many threads later replay them.
pub fn concurrent_workload(seed: u64, config: &ConcurrentWorkloadConfig) -> Vec<DocumentWorkload> {
    let scenario = config.scenario();
    let queries = query_pool();
    (0..config.documents)
        .map(|index| {
            // Distinct, well-separated stream per document.
            let mut rng =
                StdRng::seed_from_u64(seed ^ (index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
            let ops = (0..config.ops_per_document)
                .map(|_| {
                    if rng.gen_bool(config.query_fraction.clamp(0.0, 1.0)) {
                        WorkloadOp::Query(queries[rng.gen_range(0..queries.len())].clone())
                    } else {
                        WorkloadOp::Commit(
                            (0..config.updates_per_commit.max(1))
                                .map(|_| extraction_update(&mut rng, &scenario).0)
                                .collect(),
                        )
                    }
                })
                .collect();
            DocumentWorkload {
                document: format!("doc-{index}"),
                ops,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pxml_core::FuzzyTree;

    #[test]
    fn workload_is_reproducible() {
        let config = ConcurrentWorkloadConfig::default();
        let a = concurrent_workload(7, &config);
        let b = concurrent_workload(7, &config);
        assert_eq!(a.len(), b.len());
        for (wa, wb) in a.iter().zip(&b) {
            assert_eq!(wa.document, wb.document);
            assert_eq!(wa.ops.len(), wb.ops.len());
            for (oa, ob) in wa.ops.iter().zip(&wb.ops) {
                match (oa, ob) {
                    (WorkloadOp::Query(qa), WorkloadOp::Query(qb)) => {
                        assert_eq!(qa.to_string(), qb.to_string());
                    }
                    (WorkloadOp::Commit(ba), WorkloadOp::Commit(bb)) => {
                        assert_eq!(ba.len(), bb.len());
                        for (ua, ub) in ba.iter().zip(bb) {
                            assert_eq!(ua.pattern().to_string(), ub.pattern().to_string());
                            assert!((ua.confidence() - ub.confidence()).abs() < 1e-12);
                        }
                    }
                    _ => panic!("op kinds diverged between identically seeded workloads"),
                }
            }
        }
    }

    #[test]
    fn streams_differ_across_documents() {
        let config = ConcurrentWorkloadConfig {
            documents: 2,
            ops_per_document: 20,
            ..ConcurrentWorkloadConfig::default()
        };
        let workloads = concurrent_workload(3, &config);
        let signature = |w: &DocumentWorkload| {
            w.ops
                .iter()
                .map(|op| match op {
                    WorkloadOp::Query(q) => format!("q:{q}"),
                    WorkloadOp::Commit(batch) => format!("c:{}", batch.len()),
                })
                .collect::<Vec<_>>()
        };
        assert_ne!(
            signature(&workloads[0]),
            signature(&workloads[1]),
            "two documents drew identical 20-op streams"
        );
    }

    #[test]
    fn query_fraction_edges_are_respected() {
        let all_queries = concurrent_workload(
            1,
            &ConcurrentWorkloadConfig {
                query_fraction: 1.0,
                ..ConcurrentWorkloadConfig::default()
            },
        );
        assert!(all_queries
            .iter()
            .all(|w| w.ops.iter().all(WorkloadOp::is_query)));
        let all_commits = concurrent_workload(
            1,
            &ConcurrentWorkloadConfig {
                query_fraction: 0.0,
                ..ConcurrentWorkloadConfig::default()
            },
        );
        assert!(all_commits
            .iter()
            .all(|w| w.ops.iter().all(|op| !op.is_query())));
        for w in &all_commits {
            assert_eq!(w.update_count(), w.ops.len() * 2);
        }
    }

    /// Replaying one document's stream sequentially produces a valid fuzzy
    /// tree, and its updates all target the initial directory's people.
    #[test]
    fn streams_replay_cleanly_on_the_initial_document() {
        let config = ConcurrentWorkloadConfig {
            documents: 2,
            ops_per_document: 16,
            ..ConcurrentWorkloadConfig::default()
        };
        let initial = initial_document(&config);
        for workload in concurrent_workload(11, &config) {
            let mut fuzzy = FuzzyTree::from_tree(initial.clone());
            for op in &workload.ops {
                match op {
                    WorkloadOp::Query(pattern) => {
                        let _ = fuzzy.query(pattern);
                    }
                    WorkloadOp::Commit(batch) => {
                        for update in batch {
                            update.apply_to_fuzzy(&mut fuzzy).unwrap();
                        }
                    }
                }
            }
            assert!(fuzzy.validate().is_ok());
        }
    }
}
