//! Random probabilistic update transactions.

use pxml_core::{Update, UpdateTransaction};
use pxml_query::Pattern;
use pxml_tree::Tree;
use rand::Rng;

use crate::queries::{derived_query, QueryGenConfig};
use crate::trees::{random_tree, TreeGenConfig};

/// Parameters for random update transactions.
#[derive(Debug, Clone)]
pub struct UpdateGenConfig {
    /// Shape of the query anchoring the update.
    pub query: QueryGenConfig,
    /// Shape of inserted subtrees.
    pub insert_subtree: TreeGenConfig,
    /// Probability that the transaction contains an insertion.
    pub insert_probability: f64,
    /// Probability that the transaction contains a deletion.
    pub delete_probability: f64,
    /// Lower bound of the confidence range.
    pub min_confidence: f64,
    /// Upper bound of the confidence range.
    pub max_confidence: f64,
}

impl Default for UpdateGenConfig {
    fn default() -> Self {
        UpdateGenConfig {
            query: QueryGenConfig {
                pattern_nodes: 3,
                value_probability: 0.0,
                ..QueryGenConfig::default()
            },
            insert_subtree: TreeGenConfig {
                target_elements: 4,
                max_depth: 2,
                ..TreeGenConfig::default()
            },
            insert_probability: 0.8,
            delete_probability: 0.4,
            min_confidence: 0.5,
            max_confidence: 1.0,
        }
    }
}

/// Generates a random update transaction anchored at a query derived from
/// `tree` (so that it is guaranteed to select the document). The transaction
/// always contains at least one operation.
pub fn random_update(
    rng: &mut impl Rng,
    tree: &Tree,
    config: &UpdateGenConfig,
) -> UpdateTransaction {
    let pattern: Pattern = derived_query(rng, tree, &config.query);
    let confidence = if config.max_confidence > config.min_confidence {
        rng.gen_range(config.min_confidence..=config.max_confidence)
    } else {
        config.max_confidence
    };
    let targets: Vec<_> = pattern.node_ids().collect();
    let mut update = Update::matching(pattern).with_confidence(confidence);
    let mut has_operation = false;
    if rng.gen_bool(config.insert_probability) {
        let target = targets[rng.gen_range(0..targets.len())];
        let subtree = random_tree(rng, &config.insert_subtree);
        update = update.insert_at(target, subtree);
        has_operation = true;
    }
    if rng.gen_bool(config.delete_probability) || !has_operation {
        // Prefer deleting a non-root pattern node so that something happens.
        let target = if targets.len() > 1 {
            targets[rng.gen_range(1..targets.len())]
        } else {
            targets[0]
        };
        update = update.delete_at(target);
    }
    update.build().expect("confidence is within [0, 1]")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pxml_core::FuzzyTree;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_updates_apply_cleanly_to_fuzzy_documents() {
        let tree_config = TreeGenConfig::sized(80);
        let update_config = UpdateGenConfig::default();
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(seed);
            let tree = random_tree(&mut rng, &tree_config);
            let mut fuzzy = FuzzyTree::from_tree(tree.clone());
            let update = random_update(&mut rng, &tree, &update_config);
            assert!(!update.operations().is_empty());
            assert!(update.confidence() >= 0.5 && update.confidence() <= 1.0);
            let stats = update.apply_to_fuzzy(&mut fuzzy).unwrap();
            assert!(stats.match_count >= 1, "derived query must select the doc");
            assert!(fuzzy.validate().is_ok());
        }
    }

    #[test]
    fn random_updates_apply_to_plain_trees() {
        let mut rng = StdRng::seed_from_u64(21);
        let tree = random_tree(&mut rng, &TreeGenConfig::sized(60));
        let update = random_update(&mut rng, &tree, &UpdateGenConfig::default());
        let updated = update.apply_to_tree(&tree);
        assert!(updated.validate().is_ok());
    }

    #[test]
    fn generation_is_deterministic() {
        let tree = random_tree(&mut StdRng::seed_from_u64(2), &TreeGenConfig::sized(50));
        let a = random_update(
            &mut StdRng::seed_from_u64(3),
            &tree,
            &UpdateGenConfig::default(),
        );
        let b = random_update(
            &mut StdRng::seed_from_u64(3),
            &tree,
            &UpdateGenConfig::default(),
        );
        assert_eq!(a.pattern().to_string(), b.pattern().to_string());
        assert_eq!(a.operations().len(), b.operations().len());
        assert!((a.confidence() - b.confidence()).abs() < 1e-15);
    }
}
