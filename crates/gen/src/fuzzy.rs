//! Random fuzzy-tree generation.

use pxml_core::FuzzyTree;
use pxml_event::{Condition, Literal};
use rand::Rng;

use crate::trees::{random_tree, TreeGenConfig};

/// Parameters for random fuzzy trees.
#[derive(Debug, Clone)]
pub struct FuzzyGenConfig {
    /// Shape of the underlying data tree.
    pub tree: TreeGenConfig,
    /// Number of probabilistic events to create.
    pub events: usize,
    /// Probability that a (non-root) node receives a condition at all.
    pub condition_probability: f64,
    /// Maximum number of literals per condition.
    pub max_literals: usize,
    /// Probability that a literal is negative.
    pub negation_probability: f64,
}

impl Default for FuzzyGenConfig {
    fn default() -> Self {
        FuzzyGenConfig {
            tree: TreeGenConfig::default(),
            events: 4,
            condition_probability: 0.3,
            max_literals: 2,
            negation_probability: 0.3,
        }
    }
}

impl FuzzyGenConfig {
    /// A configuration with the given document size and event count.
    pub fn sized(target_elements: usize, events: usize) -> Self {
        FuzzyGenConfig {
            tree: TreeGenConfig::sized(target_elements),
            events,
            ..FuzzyGenConfig::default()
        }
    }
}

/// Generates a random fuzzy tree: a random document whose nodes carry random
/// conditions over `config.events` independent events.
pub fn random_fuzzy_tree(rng: &mut impl Rng, config: &FuzzyGenConfig) -> FuzzyTree {
    let tree = random_tree(rng, &config.tree);
    let mut fuzzy = FuzzyTree::from_tree(tree);
    let mut events = Vec::with_capacity(config.events);
    for index in 0..config.events {
        // Probabilities away from 0/1 so nothing is trivially certain.
        let probability = 0.05 + 0.9 * rng.gen::<f64>();
        events.push(
            fuzzy
                .add_event(format!("w{index}"), probability)
                .expect("fresh event names are unique"),
        );
    }
    if events.is_empty() {
        return fuzzy;
    }
    let nodes: Vec<_> = fuzzy.tree().nodes();
    for node in nodes {
        if node == fuzzy.root() || !rng.gen_bool(config.condition_probability) {
            continue;
        }
        let literal_count = rng.gen_range(1..=config.max_literals.max(1));
        let literals: Vec<Literal> = (0..literal_count)
            .map(|_| {
                let event = events[rng.gen_range(0..events.len())];
                if rng.gen_bool(config.negation_probability) {
                    Literal::neg(event)
                } else {
                    Literal::pos(event)
                }
            })
            .collect();
        let condition = Condition::from_literals(literals);
        if condition.is_consistent() {
            fuzzy
                .set_condition(node, condition)
                .expect("node is live and not the root");
        }
    }
    fuzzy
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generated_fuzzy_trees_are_valid() {
        for seed in 0..5 {
            let mut rng = StdRng::seed_from_u64(seed);
            let config = FuzzyGenConfig::sized(80, 5);
            let fuzzy = random_fuzzy_tree(&mut rng, &config);
            assert!(fuzzy.validate().is_ok());
            assert_eq!(fuzzy.event_count(), 5);
            assert!(fuzzy.condition(fuzzy.root()).is_empty());
        }
    }

    #[test]
    fn expansion_of_small_instances_is_a_distribution() {
        let mut rng = StdRng::seed_from_u64(9);
        let config = FuzzyGenConfig::sized(25, 4);
        let fuzzy = random_fuzzy_tree(&mut rng, &config);
        let worlds = fuzzy.to_possible_worlds().unwrap();
        assert!((worlds.total_probability() - 1.0).abs() < 1e-9);
        assert!(!worlds.is_empty());
    }

    #[test]
    fn zero_events_gives_a_certain_document() {
        let mut rng = StdRng::seed_from_u64(3);
        let config = FuzzyGenConfig::sized(30, 0);
        let fuzzy = random_fuzzy_tree(&mut rng, &config);
        assert_eq!(fuzzy.event_count(), 0);
        assert_eq!(fuzzy.condition_literal_count(), 0);
        assert_eq!(fuzzy.to_possible_worlds().unwrap().len(), 1);
    }

    #[test]
    fn condition_density_is_controlled() {
        let mut rng = StdRng::seed_from_u64(11);
        let dense = FuzzyGenConfig {
            condition_probability: 1.0,
            ..FuzzyGenConfig::sized(60, 6)
        };
        let fuzzy = random_fuzzy_tree(&mut rng, &dense);
        // Nearly every non-root node should carry a condition (a few may be
        // skipped when the random condition is inconsistent).
        assert!(fuzzy.condition_literal_count() >= fuzzy.node_count() / 2);
    }

    #[test]
    fn deterministic_for_a_seed() {
        let config = FuzzyGenConfig::sized(40, 3);
        let a = random_fuzzy_tree(&mut StdRng::seed_from_u64(5), &config);
        let b = random_fuzzy_tree(&mut StdRng::seed_from_u64(5), &config);
        assert!(a.semantically_equivalent(&b, 1e-12).unwrap());
    }
}
