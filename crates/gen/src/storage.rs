//! Seeded storage workloads: deterministic streams of committed batches for
//! journal seeding (experiment E12 and the storage-backend tests).
//!
//! A store's commit cost is a property of its *journal shape* — how many
//! batches it has accumulated — not of the batches' content, so E12 seeds
//! journals of controlled lengths from this stream and then measures the
//! latency of one more append at each length.

use pxml_core::UpdateTransaction;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::scenarios::{extraction_update, PeopleScenarioConfig};

/// A deterministic stream of committed transaction batches against the
/// people-directory scenario: `count` batches of `updates_per_batch`
/// extraction-style updates each.
pub fn journal_batches(
    seed: u64,
    count: usize,
    updates_per_batch: usize,
    config: &PeopleScenarioConfig,
) -> Vec<Vec<UpdateTransaction>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            (0..updates_per_batch)
                .map(|_| extraction_update(&mut rng, config).0)
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_sized() {
        let config = PeopleScenarioConfig::default();
        let a = journal_batches(7, 5, 2, &config);
        let b = journal_batches(7, 5, 2, &config);
        assert_eq!(a.len(), 5);
        assert!(a.iter().all(|batch| batch.len() == 2));
        for (x, y) in a.iter().flatten().zip(b.iter().flatten()) {
            assert_eq!(x.pattern().to_string(), y.pattern().to_string());
            assert_eq!(x.confidence(), y.confidence());
        }
        // A different seed diverges somewhere in the stream.
        let c = journal_batches(8, 5, 2, &config);
        assert!(
            a.iter()
                .flatten()
                .zip(c.iter().flatten())
                .any(|(x, y)| x.pattern().to_string() != y.pattern().to_string()
                    || x.confidence() != y.confidence()),
            "distinct seeds must produce distinct streams"
        );
    }
}
