//! The multi-tenant warehouse server: accept loop, per-connection handler
//! threads, tenant registry and admission control.
//!
//! # Tenant model
//!
//! Every request frame names a tenant; each tenant is one
//! [`Warehouse`] over its own storage subdirectory (`<root>/<tenant>`),
//! opened lazily on first use and held in an LRU registry of at most
//! [`ServerConfig::max_tenants`] resident warehouses. Eviction picks the
//! least-recently-used tenant that no request currently holds — the
//! registry's `Arc` is the sole reference (`Arc::strong_count == 1`),
//! checked while the registry lock is held, so no new holder can appear
//! mid-decision — drains its group-commit pipeline
//! ([`Warehouse::group_barrier`]) and drops it; a later request re-opens
//! it from storage via normal crash recovery. If every tenant is held the
//! registry temporarily overshoots rather than evicting a warehouse a
//! request still references, which would let a re-opened backend race the
//! old one on the same journal files.
//!
//! # Admission control
//!
//! Two admission gates bound the work in flight: a global one and one per
//! tenant.
//! A request that cannot enter both gates within
//! [`ServerConfig::admission_timeout`] is shed with a typed `Busy` frame —
//! the server never queues unboundedly, so an overloaded tenant degrades
//! into fast rejections instead of unbounded latency for everyone.
//! `stats` and `close` frames bypass admission: observability and draining
//! must keep working exactly when the server is saturated. To keep that
//! admission-free path harmless, `stats` answers only for tenants already
//! resident in the registry (typed `not-resident` error otherwise) — it
//! never lazily opens a warehouse, so it cannot create storage directories
//! or force evictions of live tenants.
//!
//! # Locks
//!
//! Three lock classes, all ranked ahead of every engine class (see README
//! "Concurrency correctness"): `server-conns` (the connection registry),
//! `server-admission` (a gate's in-flight counter, held only inside
//! `try_enter`/`leave`), and `server-tenants` (the LRU registry, held while
//! lazily opening a warehouse — which takes engine shard locks, hence the
//! rank ordering). No server lock is ever held across an engine call that
//! blocks on another server lock.

use std::collections::HashMap;
use std::io::{self, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, LockClass, Mutex};
use pxml_query::Pattern;
use pxml_store::{parse_batch, serialize_fuzzy_document, FsBackend, FsOptions};
use pxml_tree::{data_tree_to_xml, parse_data_tree, XmlElement};
use pxml_warehouse::{AsyncCommit, SessionConfig, Warehouse, WarehouseError};

use crate::frame::{
    read_request, write_response, FrameError, RawRequest, RawResponse, DEFAULT_MAX_FRAME_BYTES,
};
use crate::frame::{split_doc_payload, tag};

/// Most async commits a single connection may leave un-drained; beyond
/// this the oldest pending commit is waited out before accepting the next,
/// bounding the per-connection ticket memory.
const MAX_PENDING_ASYNC: usize = 256;

/// Everything the server needs to know at start-up.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address; use port 0 for an ephemeral port (tests, benches).
    pub addr: String,
    /// Storage root; each tenant gets the subdirectory `<root>/<tenant>`.
    pub root: PathBuf,
    /// Session configuration every tenant warehouse is opened under (the
    /// `commit` field also drives the per-tenant backend's commit policy).
    pub session: SessionConfig,
    /// Backend tuning for each tenant's [`FsBackend`] (`commit` is
    /// overridden by `session.commit` so there is one knob, not two).
    pub fs: FsOptions,
    /// Resident-warehouse cap of the tenant LRU registry.
    pub max_tenants: usize,
    /// Per-tenant in-flight request budget.
    pub tenant_inflight: usize,
    /// Global in-flight request budget.
    pub global_inflight: usize,
    /// How long a request may wait for gate capacity before it is shed
    /// with `Busy`.
    pub admission_timeout: Duration,
    /// Cap on a frame's declared length.
    pub max_frame_bytes: u32,
    /// Per-connection idle read deadline: a peer that sends no complete
    /// frame for this long is reaped (its handler exits and drains any
    /// pending async commits). Keeps silent or wedged clients from pinning
    /// handler threads and socket buffers forever.
    pub idle_timeout: Duration,
}

impl ServerConfig {
    /// Defaults for a root directory: loopback ephemeral port, 8 resident
    /// tenants, 64 in-flight per tenant, 256 global, 100 ms admission
    /// timeout, 30 s idle read deadline.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            root: root.into(),
            session: SessionConfig::default(),
            fs: FsOptions::default(),
            max_tenants: 8,
            tenant_inflight: 64,
            global_inflight: 256,
            admission_timeout: Duration::from_millis(100),
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            idle_timeout: Duration::from_secs(30),
        }
    }
}

/// A counting admission gate: at most `limit` holders at once, bounded
/// waiting. (Tenant-LRU busyness is judged by `Arc` holders of the tenant,
/// not by gate occupancy — a request holds the `Arc` strictly longer than
/// its gate slot, so the reference count covers the windows the gate
/// cannot see.)
struct Gate {
    limit: usize,
    count: Mutex<usize>,
    freed: Condvar,
}

impl Gate {
    fn new(limit: usize) -> Gate {
        Gate {
            limit: limit.max(1),
            count: Mutex::with_class(LockClass::ServerAdmission, 0),
            freed: Condvar::new(),
        }
    }

    /// Takes a slot, waiting at most `timeout`; `false` means the budget
    /// stayed exhausted the whole time and the request must be shed.
    fn try_enter(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut count = self.count.lock();
        while *count >= self.limit {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            self.freed.wait_for(&mut count, deadline - now);
        }
        *count += 1;
        true
    }

    fn leave(&self) {
        let mut count = self.count.lock();
        *count = count.saturating_sub(1);
        drop(count);
        self.freed.notify_one();
    }
}

/// Floor and ceiling of the per-tenant quarantine re-open backoff.
const REOPEN_BACKOFF_MIN_MS: u64 = 50;
const REOPEN_BACKOFF_MAX_MS: u64 = 5_000;

/// One resident tenant: its warehouse, its admission gate, and its LRU
/// recency stamp, plus the backoff state of quarantine auto-reopen (plain
/// atomics — no lock class, no lock ordering to get wrong).
struct Tenant {
    name: String,
    warehouse: Warehouse,
    gate: Gate,
    last_used: AtomicU64,
    /// Server-clock millisecond before which no re-open attempt runs; the
    /// winning CAS on this value claims the attempt, so concurrent requests
    /// against a quarantined document never pile re-opens on top of each
    /// other.
    reopen_at_ms: AtomicU64,
    /// Current backoff step, doubled on every failed re-open up to the cap
    /// and reset on success.
    reopen_backoff_ms: AtomicU64,
}

/// Streams and join handles of live connections, under one
/// `server-conns` mutex. Handles of finished handlers are reaped by the
/// accept loop as new connections arrive, so a long-running server does
/// not accumulate one `JoinHandle` per connection ever accepted.
#[derive(Default)]
struct ConnTable {
    streams: HashMap<u64, TcpStream>,
    handles: Vec<JoinHandle<()>>,
}

struct ServerInner {
    config: ServerConfig,
    /// Monotonic base of the millisecond clock the re-open backoff runs on.
    started: Instant,
    stopping: AtomicBool,
    /// Logical LRU clock: bumped on every tenant touch.
    clock: AtomicU64,
    global: Gate,
    tenants: Mutex<HashMap<String, Arc<Tenant>>>,
    conns: Mutex<ConnTable>,
    next_conn: AtomicU64,
}

/// A running server. Dropping it (or calling [`Server::shutdown`]) stops
/// the accept loop, closes every connection, and drains each resident
/// tenant's group-commit pipeline before returning — pipelined commits are
/// never abandoned mid-window.
pub struct Server {
    inner: Arc<ServerInner>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `config.addr` and starts serving.
    pub fn start(config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let inner = Arc::new(ServerInner {
            global: Gate::new(config.global_inflight),
            config,
            started: Instant::now(),
            stopping: AtomicBool::new(false),
            clock: AtomicU64::new(0),
            tenants: Mutex::with_class(LockClass::ServerTenants, HashMap::new()),
            conns: Mutex::with_class(LockClass::ServerConns, ConnTable::default()),
            next_conn: AtomicU64::new(0),
        });
        let accept_inner = Arc::clone(&inner);
        let accept = std::thread::Builder::new()
            .name("pxml-accept".to_string())
            .spawn(move || accept_loop(accept_inner, listener))?;
        Ok(Server {
            inner,
            addr,
            accept: Some(accept),
        })
    }

    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Names of the tenants currently resident in the LRU registry
    /// (observability / test hook).
    pub fn resident_tenants(&self) -> Vec<String> {
        let mut names: Vec<String> = self.inner.tenants.lock().keys().cloned().collect();
        names.sort();
        names
    }

    /// Graceful shutdown: stop accepting, close every connection (their
    /// handlers drain any per-connection pending async commits on exit),
    /// then run each resident tenant's group-commit barrier so everything
    /// acknowledged is durable when this returns.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        let Some(accept) = self.accept.take() else {
            return;
        };
        self.inner.stopping.store(true, Ordering::Release);
        // Unblock the accept loop with one last connection to ourselves.
        let _ = TcpStream::connect(self.addr);
        let _ = accept.join();
        let (streams, handles) = {
            let mut conns = self.inner.conns.lock();
            let streams: Vec<TcpStream> = conns.streams.drain().map(|(_, s)| s).collect();
            let handles = std::mem::take(&mut conns.handles);
            (streams, handles)
        };
        for stream in streams {
            let _ = stream.shutdown(Shutdown::Both);
        }
        for handle in handles {
            let _ = handle.join();
        }
        let tenants: Vec<Arc<Tenant>> = self.inner.tenants.lock().drain().map(|(_, t)| t).collect();
        for tenant in tenants {
            tenant.warehouse.group_barrier();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(inner: Arc<ServerInner>, listener: TcpListener) {
    for incoming in listener.incoming() {
        if inner.stopping.load(Ordering::Acquire) {
            break;
        }
        let stream = match incoming {
            Ok(stream) => stream,
            Err(_) => continue,
        };
        let conn_id = inner.next_conn.fetch_add(1, Ordering::AcqRel);
        // Register the shutdown clone BEFORE spawning the handler: the
        // handler removes its entry on exit, and inserting afterwards
        // would race a short-lived connection, leaking a clone that holds
        // the peer's socket open until server shutdown.
        if let Ok(registered) = stream.try_clone() {
            inner.conns.lock().streams.insert(conn_id, registered);
        }
        let handler_inner = Arc::clone(&inner);
        let spawned = std::thread::Builder::new()
            .name(format!("pxml-conn-{conn_id}"))
            .spawn(move || handle_connection(handler_inner, stream, conn_id));
        let mut conns = inner.conns.lock();
        conns.handles.retain(|handle| !handle.is_finished());
        match spawned {
            Ok(handle) => conns.handles.push(handle),
            Err(_) => {
                conns.streams.remove(&conn_id);
            }
        }
    }
}

/// An async commit a connection has accepted but not yet reported durable.
struct PendingCommit {
    commit: AsyncCommit,
}

/// Waits out every pending async commit and summarizes the outcome — the
/// payload of the `close` acknowledgement.
fn drain_pending(pending: &mut Vec<PendingCommit>) -> String {
    let total = pending.len();
    let mut failed = 0usize;
    for entry in pending.drain(..) {
        if entry.commit.wait().is_err() {
            failed += 1;
        }
    }
    format!("closed pending={total} failed={failed}")
}

fn handle_connection(inner: Arc<ServerInner>, stream: TcpStream, conn_id: u64) {
    let _ = stream.set_nodelay(true);
    // The idle read deadline reaps silent peers: a timed-out read surfaces
    // as `FrameError::Io(WouldBlock | TimedOut)` and drops the connection
    // below. The write deadline keeps a peer that stopped draining its
    // responses from wedging this handler forever.
    let _ = stream.set_read_timeout(Some(inner.config.idle_timeout));
    let _ = stream.set_write_timeout(Some(inner.config.idle_timeout));
    let mut writer = match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    };
    let mut reader = stream;
    let mut pending: Vec<PendingCommit> = Vec::new();
    loop {
        let request = match read_request(&mut reader, inner.config.max_frame_bytes) {
            Ok(request) => request,
            // Clean close, mid-frame disconnect, transport error, idle
            // deadline: nothing sensible to answer on; drop the connection
            // (the drain below still waits out pending async commits).
            Err(FrameError::Closed) | Err(FrameError::Truncated) | Err(FrameError::Io(_)) => break,
            // Framing is provably broken (hostile length prefix, garbled
            // header): answer with a typed error, then refuse to keep
            // parsing the stream.
            Err(err @ FrameError::Oversized { .. }) | Err(err @ FrameError::BadHeader(_)) => {
                let _ = respond(
                    &mut writer,
                    error_response("malformed", false, &err.to_string()),
                );
                break;
            }
        };
        if inner.stopping.load(Ordering::Acquire) {
            let _ = respond(
                &mut writer,
                error_response("shutdown", true, "server is shutting down"),
            );
            break;
        }
        if request.tag == tag::CLOSE {
            let summary = drain_pending(&mut pending);
            let _ = respond(
                &mut writer,
                RawResponse {
                    tag: tag::OK,
                    payload: summary.into_bytes(),
                },
            );
            break;
        }
        let response = inner.execute(&request, &mut pending);
        if respond(&mut writer, response).is_err() {
            break;
        }
    }
    // An abrupt disconnect still drains: waiting the tickets out keeps the
    // documented contract that nothing this handler enqueued is abandoned
    // in an open window.
    drain_pending(&mut pending);
    inner.conns.lock().streams.remove(&conn_id);
}

fn respond(writer: &mut impl Write, response: RawResponse) -> io::Result<()> {
    write_response(writer, response.tag, &response.payload)
}

/// A typed error frame: `code\nretryable\nmessage`. `retryable` tells the
/// client whether re-sending the same request later can succeed (`retry` —
/// transient conditions like a quarantined document under auto-reopen)
/// or cannot (`final` — bad names, malformed payloads, missing documents).
fn error_response(code: &str, retryable: bool, message: &str) -> RawResponse {
    let retryable = if retryable { "retry" } else { "final" };
    RawResponse {
        tag: tag::ERROR,
        payload: format!("{code}\n{retryable}\n{message}").into_bytes(),
    }
}

fn busy_response(scope: &str, message: &str) -> RawResponse {
    RawResponse {
        tag: tag::BUSY,
        payload: format!("{scope}\n{message}").into_bytes(),
    }
}

fn ok_response(message: String) -> RawResponse {
    RawResponse {
        tag: tag::OK,
        payload: message.into_bytes(),
    }
}

fn engine_error(err: WarehouseError) -> RawResponse {
    match err {
        WarehouseError::UnknownDocument(name) => error_response(
            "unknown-doc",
            false,
            &format!("document `{name}` does not exist"),
        ),
        WarehouseError::DuplicateDocument(name) => error_response(
            "duplicate-doc",
            false,
            &format!("document `{name}` already exists"),
        ),
        // Quarantine is transient by design: the tenant auto-reopen path
        // (backoff-gated, see `maybe_reopen_quarantined`) restores the
        // document from its journal, so the same request can succeed on a
        // later attempt.
        err @ WarehouseError::Quarantined { .. } => {
            error_response("quarantined", true, &err.to_string())
        }
        // Raw storage failures (a failed fsync, an injected fault, a full
        // disk that later clears) are the transient class the retry
        // guidance in README "Failure model & recovery" is about.
        err @ WarehouseError::Store(_) => error_response("engine", true, &err.to_string()),
        other => error_response("engine", false, &other.to_string()),
    }
}

/// Tenant ids and document names share one safety rule: short, ASCII, no
/// path separators, no leading dot — a tenant id becomes a directory name
/// under the storage root.
fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && !name.starts_with('.')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
}

impl ServerInner {
    fn execute(&self, request: &RawRequest, pending: &mut Vec<PendingCommit>) -> RawResponse {
        if !valid_name(&request.tenant) {
            return error_response(
                "bad-tenant",
                false,
                "tenant id must be 1-64 chars of [A-Za-z0-9._-], not starting with `.`",
            );
        }
        match request.tag {
            // Observability bypasses admission: stats must answer exactly
            // when the gates are full. Being admission-free it must also
            // stay harmless, so it only looks at already-resident tenants —
            // a lazy open here would let an unthrottled probe create
            // storage directories and evict live tenants.
            tag::STATS => match self.resident_tenant(&request.tenant) {
                Some(tenant) => stats_response(&tenant.warehouse),
                None => error_response(
                    "not-resident",
                    false,
                    &format!(
                        "tenant `{}` is not resident; touch it with a gated request first",
                        request.tenant
                    ),
                ),
            },
            tag::OPEN
            | tag::QUERY
            | tag::COMMIT
            | tag::COMMIT_ASYNC
            | tag::SNAPSHOT
            | tag::SIMPLIFY => self.admitted(request, pending),
            other => error_response(
                "unknown-tag",
                false,
                &format!("unknown request tag 0x{other:02x}"),
            ),
        }
    }

    /// The gated path: global budget, tenant resolution, tenant budget,
    /// then the actual operation. Shedding releases every slot it took.
    fn admitted(&self, request: &RawRequest, pending: &mut Vec<PendingCommit>) -> RawResponse {
        let timeout = self.config.admission_timeout;
        if !self.global.try_enter(timeout) {
            let response = busy_response(
                "global",
                &format!(
                    "global in-flight budget of {} exhausted for {:?}",
                    self.config.global_inflight, timeout
                ),
            );
            return response;
        }
        let response = match self.resolve_tenant(&request.tenant) {
            Err(response) => response,
            Ok(tenant) => {
                if !tenant.gate.try_enter(timeout) {
                    busy_response(
                        "tenant",
                        &format!(
                            "tenant `{}` in-flight budget of {} exhausted for {:?}",
                            tenant.name, self.config.tenant_inflight, timeout
                        ),
                    )
                } else {
                    let response = self.dispatch(&tenant, request, pending);
                    tenant.gate.leave();
                    response
                }
            }
        };
        self.global.leave();
        response
    }

    /// Stats-path lookup: already-resident tenants only, never a lazy
    /// open. Does not bump the LRU stamp — observability must not perturb
    /// eviction order. The returned `Arc` keeps the tenant safe from
    /// eviction while the stats frame is built (`strong_count > 1`).
    fn resident_tenant(&self, name: &str) -> Option<Arc<Tenant>> {
        self.tenants.lock().get(name).map(Arc::clone)
    }

    /// Looks a tenant up, lazily opening its warehouse and LRU-evicting an
    /// unheld one when over capacity. The registry lock is held across the
    /// lazy open (so two connections cannot open the same tenant twice);
    /// the evicted warehouse's barrier runs *after* the lock is released.
    fn resolve_tenant(&self, name: &str) -> Result<Arc<Tenant>, RawResponse> {
        let stamp = self.clock.fetch_add(1, Ordering::AcqRel);
        let mut evicted: Option<Arc<Tenant>> = None;
        let resolved = {
            let mut tenants = self.tenants.lock();
            if let Some(tenant) = tenants.get(name) {
                tenant.last_used.store(stamp, Ordering::Release);
                Arc::clone(tenant)
            } else {
                let opened = self.open_tenant(name)?;
                let tenant = Arc::new(Tenant {
                    name: name.to_string(),
                    warehouse: opened,
                    gate: Gate::new(self.config.tenant_inflight),
                    last_used: AtomicU64::new(stamp),
                    reopen_at_ms: AtomicU64::new(0),
                    reopen_backoff_ms: AtomicU64::new(REOPEN_BACKOFF_MIN_MS),
                });
                tenants.insert(name.to_string(), Arc::clone(&tenant));
                if tenants.len() > self.config.max_tenants {
                    // Evict the least-recently-used tenant that no request
                    // holds. "Holds" means `Arc` holders, not gate
                    // occupancy: a request clones the `Arc` (under this
                    // lock) before it enters the tenant gate, and the
                    // stats path never enters the gate at all — judging
                    // busyness by the gate would evict a tenant a request
                    // is about to use. With the registry lock held,
                    // `strong_count == 1` means the map entry is the sole
                    // reference and no new holder can appear until the
                    // lock is released. If every other tenant is held,
                    // overshoot instead: dropping a warehouse a request
                    // still references would let a re-opened backend race
                    // it on the same journal files.
                    let victim = tenants
                        .values()
                        .filter(|t| t.name != name && Arc::strong_count(t) == 1)
                        .min_by_key(|t| t.last_used.load(Ordering::Acquire))
                        .map(|t| t.name.clone());
                    if let Some(victim) = victim {
                        evicted = tenants.remove(&victim);
                    }
                }
                tenant
            }
        };
        if let Some(evicted) = evicted {
            evicted.warehouse.group_barrier();
        }
        Ok(resolved)
    }

    fn open_tenant(&self, name: &str) -> Result<Warehouse, RawResponse> {
        let options = FsOptions {
            commit: self.config.session.commit,
            ..self.config.fs.clone()
        };
        let backend =
            FsBackend::with_options(self.config.root.join(name), options).map_err(|err| {
                error_response("engine", true, &format!("opening tenant `{name}`: {err}"))
            })?;
        Warehouse::with_backend(Arc::new(backend), self.config.session).map_err(|err| {
            error_response(
                "engine",
                true,
                &format!("recovering tenant `{name}`: {err}"),
            )
        })
    }

    fn now_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    /// Backoff-gated quarantine auto-reopen. If `doc` is quarantined and
    /// the tenant's backoff window has elapsed, one request (the winner of
    /// the CAS on `reopen_at_ms`) replays the document's journal via
    /// [`Warehouse::reopen_document`]; everyone else proceeds and gets the
    /// typed `quarantined` (retryable) error until the re-open lands. A
    /// failed re-open doubles the backoff up to the cap so a persistently
    /// broken disk is probed, not hammered.
    fn maybe_reopen_quarantined(&self, tenant: &Tenant, doc: &str) {
        if !tenant.warehouse.is_quarantined(doc) {
            return;
        }
        let now = self.now_ms();
        let at = tenant.reopen_at_ms.load(Ordering::Acquire);
        if now < at {
            return;
        }
        let backoff = tenant.reopen_backoff_ms.load(Ordering::Acquire);
        if tenant
            .reopen_at_ms
            .compare_exchange(at, now + backoff, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            // Another request claimed this attempt.
            return;
        }
        match tenant.warehouse.reopen_document(doc) {
            Ok(()) => {
                tenant
                    .reopen_backoff_ms
                    .store(REOPEN_BACKOFF_MIN_MS, Ordering::Release);
                tenant.reopen_at_ms.store(now, Ordering::Release);
            }
            // The quarantine stays; the client keeps getting the typed
            // retryable error while the backoff runs.
            Err(_) => {
                tenant
                    .reopen_backoff_ms
                    .store((backoff * 2).min(REOPEN_BACKOFF_MAX_MS), Ordering::Release);
            }
        }
    }

    fn dispatch(
        &self,
        tenant: &Tenant,
        request: &RawRequest,
        pending: &mut Vec<PendingCommit>,
    ) -> RawResponse {
        let (doc, rest) = match split_doc_payload(&request.payload) {
            Ok(parts) => parts,
            Err(message) => return error_response("bad-payload", false, &message),
        };
        if !valid_name(&doc) {
            return error_response(
                "bad-name",
                false,
                "document name must be 1-64 chars of [A-Za-z0-9._-], not starting with `.`",
            );
        }
        self.maybe_reopen_quarantined(tenant, &doc);
        let warehouse = &tenant.warehouse;
        match request.tag {
            tag::OPEN => match warehouse.snapshot(&doc) {
                Ok(snapshot) => ok_response(format!("opened {doc} seq={}", snapshot.seq())),
                Err(WarehouseError::UnknownDocument(_)) if !rest.trim().is_empty() => {
                    let tree = match parse_data_tree(rest.trim()) {
                        Ok(tree) => tree,
                        Err(err) => return error_response("bad-payload", false, &err.to_string()),
                    };
                    match warehouse.create_document(&doc, tree) {
                        Ok(()) => ok_response(format!("created {doc}")),
                        // Lost a creation race: the document exists now,
                        // which is what `open` asked for.
                        Err(WarehouseError::DuplicateDocument(_)) => {
                            ok_response(format!("opened {doc}"))
                        }
                        Err(err) => engine_error(err),
                    }
                }
                Err(err) => engine_error(err),
            },
            tag::QUERY => {
                let pattern = match Pattern::parse(rest.trim()) {
                    Ok(pattern) => pattern,
                    Err(err) => return error_response("bad-pattern", false, &err.to_string()),
                };
                match warehouse.query_merged(&doc, &pattern) {
                    Ok(merged) => {
                        let (seq, selection) = (merged.seq, merged.selection);
                        let mut answers = XmlElement::new("pxml:answers")
                            .with_attribute("seq", seq.to_string())
                            .with_attribute("selection", selection.to_string());
                        for (tree, probability) in &merged.answers {
                            let mut answer = XmlElement::new("pxml:answer")
                                .with_attribute("probability", probability.to_string());
                            answer = answer.with_child(data_tree_to_xml(tree).root);
                            answers = answers.with_child(answer);
                        }
                        let mut xml = String::new();
                        answers.write_xml(&mut xml, false, 0);
                        RawResponse {
                            tag: tag::ANSWERS,
                            payload: format!("{seq}\n{selection}\n{xml}").into_bytes(),
                        }
                    }
                    Err(err) => engine_error(err),
                }
            }
            tag::COMMIT => {
                let batch = match parse_batch(&rest) {
                    Ok(batch) => batch,
                    Err(err) => return error_response("bad-payload", false, &err.to_string()),
                };
                match warehouse.commit_batch(&doc, &batch, None) {
                    Ok(stats) => ok_response(format!("applied={}", stats.len())),
                    Err(err) => engine_error(err),
                }
            }
            tag::COMMIT_ASYNC => {
                let batch = match parse_batch(&rest) {
                    Ok(batch) => batch,
                    Err(err) => return error_response("bad-payload", false, &err.to_string()),
                };
                // Bound the un-drained ticket backlog: wait out the oldest
                // before accepting more.
                if pending.len() >= MAX_PENDING_ASYNC {
                    let oldest = pending.remove(0);
                    let _ = oldest.commit.wait();
                }
                match warehouse.commit_batch_async(&doc, &batch, None) {
                    Ok(commit) => {
                        let applied = commit.stats().len();
                        pending.push(PendingCommit { commit });
                        RawResponse {
                            tag: tag::ACCEPTED,
                            payload: format!("applied={applied} pending={}", pending.len())
                                .into_bytes(),
                        }
                    }
                    Err(err) => engine_error(err),
                }
            }
            tag::SNAPSHOT => match warehouse.snapshot(&doc) {
                Ok(snapshot) => {
                    let prxml = serialize_fuzzy_document(snapshot.fuzzy(), false);
                    RawResponse {
                        tag: tag::SNAPSHOT_DATA,
                        payload: format!("{}\n{prxml}", snapshot.seq()).into_bytes(),
                    }
                }
                Err(err) => engine_error(err),
            },
            tag::SIMPLIFY => match warehouse.simplify(&doc) {
                Ok(report) => ok_response(format!(
                    "removed_impossible={} stripped_literals={} merged={} removed_events={} passes={}",
                    report.removed_impossible_nodes,
                    report.stripped_literals,
                    report.merged_nodes,
                    report.removed_events,
                    report.passes
                )),
                Err(err) => engine_error(err),
            },
            other => error_response("unknown-tag", false, &format!("unknown request tag 0x{other:02x}")),
        }
    }
}

/// The `stats` frame payload: one `<pxml:stats …/>` element. The occupancy
/// attribute comes from [`pxml_warehouse::WarehouseStats::mean_window_occupancy`],
/// which reports `0.0` (not NaN) for tenants that never flushed a grouped
/// window — fresh sync-policy tenants included.
fn stats_response(warehouse: &Warehouse) -> RawResponse {
    let stats = warehouse.stats();
    let quarantined = warehouse.quarantined_documents();
    let quarantined_names = quarantined
        .iter()
        .map(|(name, _)| name.as_str())
        .collect::<Vec<_>>()
        .join(" ");
    let element = XmlElement::new("pxml:stats")
        .with_attribute("quarantined_docs", quarantined.len().to_string())
        .with_attribute("quarantined", quarantined_names)
        .with_attribute("updates_applied", stats.updates_applied.to_string())
        .with_attribute("queries_evaluated", stats.queries_evaluated.to_string())
        .with_attribute("simplifications", stats.simplifications.to_string())
        .with_attribute("checkpoints", stats.checkpoints.to_string())
        .with_attribute("fsyncs", stats.fsyncs.to_string())
        .with_attribute("grouped_commits", stats.grouped_commits.to_string())
        .with_attribute("grouped_windows", stats.grouped_windows.to_string())
        .with_attribute(
            "mean_window_occupancy",
            format!("{:.4}", stats.mean_window_occupancy()),
        );
    let mut xml = String::new();
    element.write_xml(&mut xml, false, 0);
    RawResponse {
        tag: tag::STATS_DATA,
        payload: xml.into_bytes(),
    }
}
