//! `pxml-server`: a long-running multi-tenant warehouse server over
//! hand-rolled length-prefixed TCP framing, plus the matching
//! `pxml-client` module.
//!
//! The paper's warehouse scenario is a *service*: many clients issue
//! probabilistic queries and confidence-weighted updates against shared
//! XML documents, and the engine reconciles them transactionally. This
//! crate is that wire front-end over the engine built in
//! [`pxml_warehouse`]:
//!
//! - **Framing** ([`frame`]): `[len u32][tag u8][tlen u8][tenant][payload]`
//!   request frames, `[len u32][tag u8][payload]` responses; verbs `open`,
//!   `query`, `commit` (sync + async over the group-commit pipeline),
//!   `snapshot` (MVCC pin — reads never block writers), `simplify`,
//!   `stats`, `close`.
//! - **Server** ([`server`]): thread-per-connection over `std::net`,
//!   per-tenant [`pxml_warehouse::Warehouse`] isolation with lazy open and
//!   LRU eviction, admission control with typed `Busy` shedding, and
//!   graceful shutdown that drains every tenant's group-commit windows.
//! - **Client** ([`client`]): the blocking [`Client`] the test suites and
//!   the harness's E17 request-rate sweep drive the server with.
//!
//! See README "Serving" for the frame/tag tables, the tenant model and the
//! runbook of the `pxml-server` binary. The engine itself never touches
//! `std::net` — the repo linter's `no-net-in-engine` rule keeps it
//! embeddable by confining sockets to this crate.

pub mod client;
pub mod frame;
pub mod server;

pub use client::{
    Client, ClientConfig, ClientError, RemoteAnswer, RemoteAnswers, RemoteStats, RetryPolicy,
};
pub use frame::{FrameError, DEFAULT_MAX_FRAME_BYTES};
pub use server::{Server, ServerConfig};
