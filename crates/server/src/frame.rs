//! The wire framing layer: length-prefixed frames and their tags.
//!
//! Every message is one frame. A **request** frame carries the tenant id in
//! its header — the server routes each frame to that tenant's warehouse:
//!
//! ```text
//! [len: u32 BE] [tag: u8] [tlen: u8] [tenant: tlen bytes, UTF-8] [payload]
//! ```
//!
//! A **response** frame is the same minus the tenant header:
//!
//! ```text
//! [len: u32 BE] [tag: u8] [payload]
//! ```
//!
//! `len` counts everything after itself (so `tag` and the tenant header are
//! included); payloads are UTF-8 text, XML for anything tree-shaped (update
//! batches travel as the journal's `<pxml:batch>` form, snapshots as the
//! store's PrXML document form). A declared length of zero or above the
//! configured cap is a framing error — the peer is answered with a typed
//! [`tag::ERROR`] frame where possible and the connection is dropped, never
//! trusted further. See README "Serving" for the full frame/tag table.

use std::fmt;
use std::io::{self, Read, Write};

/// Default cap on a frame's declared length (16 MiB). Guards the server
/// against a hostile or corrupted length prefix allocating unbounded memory.
pub const DEFAULT_MAX_FRAME_BYTES: u32 = 16 * 1024 * 1024;

/// Frame tags. Requests use the low range, responses the high range; the
/// numbering leaves gaps for future verbs without renumbering.
pub mod tag {
    /// Open (or create, when the payload carries initial XML) a document.
    pub const OPEN: u8 = 0x01;
    /// Evaluate a tree pattern; answers come back merged with exact
    /// probabilities.
    pub const QUERY: u8 = 0x02;
    /// Synchronous commit: acknowledged once durable.
    pub const COMMIT: u8 = 0x03;
    /// Asynchronous commit: acknowledged at enqueue (the logical commit),
    /// durability arrives with the group-commit window and is reported at
    /// `CLOSE`.
    pub const COMMIT_ASYNC: u8 = 0x04;
    /// Pin and serialize the document's current snapshot — never blocks on
    /// (or is blocked by) writers.
    pub const SNAPSHOT: u8 = 0x05;
    /// Run the paper's simplification pass over a document.
    pub const SIMPLIFY: u8 = 0x06;
    /// Tenant-level warehouse counters.
    pub const STATS: u8 = 0x07;
    /// Drain this connection's pending async commits and say goodbye.
    pub const CLOSE: u8 = 0x08;

    /// Generic success, human-readable payload.
    pub const OK: u8 = 0x80;
    /// Query answers: `seq\nselection\n` + `<pxml:answers>` XML.
    pub const ANSWERS: u8 = 0x81;
    /// Snapshot: `seq\n` + PrXML document.
    pub const SNAPSHOT_DATA: u8 = 0x82;
    /// Stats: one `<pxml:stats …/>` element.
    pub const STATS_DATA: u8 = 0x83;
    /// Async commit accepted (applied + enqueued, not yet durable).
    pub const ACCEPTED: u8 = 0x84;
    /// Typed failure: `code\nretryable\nmessage`, where `retryable` is
    /// `retry` (transient — the same request may succeed later, e.g. a
    /// quarantined document the server is re-opening) or `final` (retrying
    /// verbatim cannot help: bad names, malformed payloads, missing
    /// documents).
    pub const ERROR: u8 = 0xC0;
    /// Admission control shed this request: `scope\nmessage` where scope is
    /// `global` or `tenant`. Retry later; nothing was executed.
    pub const BUSY: u8 = 0xC1;
}

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// Clean end-of-stream at a frame boundary — the peer closed normally.
    Closed,
    /// The stream ended (or errored) mid-frame: a truncated length prefix
    /// or a disconnect between header and payload.
    Truncated,
    /// The declared length is zero or exceeds the configured cap.
    Oversized { declared: u32, max: u32 },
    /// The frame decoded but its header is nonsense (tenant length past the
    /// frame end, non-UTF-8 tenant bytes, …).
    BadHeader(String),
    /// Transport error other than a mid-frame EOF.
    Io(io::Error),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Truncated => write!(f, "stream ended mid-frame"),
            FrameError::Oversized { declared, max } => {
                write!(
                    f,
                    "declared frame length {declared} exceeds the cap of {max} bytes"
                )
            }
            FrameError::BadHeader(msg) => write!(f, "malformed frame header: {msg}"),
            FrameError::Io(err) => write!(f, "frame transport error: {err}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(err: io::Error) -> Self {
        FrameError::Io(err)
    }
}

/// A decoded request frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawRequest {
    pub tag: u8,
    pub tenant: String,
    pub payload: Vec<u8>,
}

/// A decoded response frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawResponse {
    pub tag: u8,
    pub payload: Vec<u8>,
}

impl RawResponse {
    /// The payload as text (responses are always UTF-8).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.payload).into_owned()
    }
}

/// Writes one request frame as a single `write_all` (one syscall on an
/// unbuffered socket — latency matters more than throughput per frame).
pub fn write_request(w: &mut impl Write, tag: u8, tenant: &str, payload: &[u8]) -> io::Result<()> {
    assert!(
        tenant.len() <= u8::MAX as usize,
        "tenant id longer than 255 bytes"
    );
    let len = 1 + 1 + tenant.len() + payload.len();
    let mut frame = Vec::with_capacity(4 + len);
    frame.extend_from_slice(&(len as u32).to_be_bytes());
    frame.push(tag);
    frame.push(tenant.len() as u8);
    frame.extend_from_slice(tenant.as_bytes());
    frame.extend_from_slice(payload);
    w.write_all(&frame)
}

/// Writes one response frame as a single `write_all`.
pub fn write_response(w: &mut impl Write, tag: u8, payload: &[u8]) -> io::Result<()> {
    let len = 1 + payload.len();
    let mut frame = Vec::with_capacity(4 + len);
    frame.extend_from_slice(&(len as u32).to_be_bytes());
    frame.push(tag);
    frame.extend_from_slice(payload);
    w.write_all(&frame)
}

/// Reads `[len][body…]`, enforcing the length cap *before* allocating.
/// Distinguishes a clean close (EOF before any length byte) from a
/// mid-frame truncation.
fn read_body(r: &mut impl Read, max_len: u32) -> Result<Vec<u8>, FrameError> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < len_buf.len() {
        match r.read(&mut len_buf[filled..]) {
            Ok(0) if filled == 0 => return Err(FrameError::Closed),
            Ok(0) => return Err(FrameError::Truncated),
            Ok(n) => filled += n,
            Err(err) if err.kind() == io::ErrorKind::Interrupted => continue,
            Err(err) => return Err(FrameError::Io(err)),
        }
    }
    let declared = u32::from_be_bytes(len_buf);
    if declared == 0 || declared > max_len {
        return Err(FrameError::Oversized {
            declared,
            max: max_len,
        });
    }
    let mut body = vec![0u8; declared as usize];
    r.read_exact(&mut body).map_err(|err| {
        if err.kind() == io::ErrorKind::UnexpectedEof {
            FrameError::Truncated
        } else {
            FrameError::Io(err)
        }
    })?;
    Ok(body)
}

/// Reads and decodes one request frame.
pub fn read_request(r: &mut impl Read, max_len: u32) -> Result<RawRequest, FrameError> {
    let body = read_body(r, max_len)?;
    if body.len() < 2 {
        return Err(FrameError::BadHeader(
            "frame shorter than tag + tenant length".into(),
        ));
    }
    let tag = body[0];
    let tlen = body[1] as usize;
    if body.len() < 2 + tlen {
        return Err(FrameError::BadHeader(format!(
            "tenant length {tlen} runs past the {}-byte frame",
            body.len()
        )));
    }
    let tenant = std::str::from_utf8(&body[2..2 + tlen])
        .map_err(|_| FrameError::BadHeader("tenant id is not UTF-8".into()))?
        .to_string();
    Ok(RawRequest {
        tag,
        tenant,
        payload: body[2 + tlen..].to_vec(),
    })
}

/// Reads and decodes one response frame.
pub fn read_response(r: &mut impl Read, max_len: u32) -> Result<RawResponse, FrameError> {
    let body = read_body(r, max_len)?;
    if body.is_empty() {
        return Err(FrameError::BadHeader("frame missing its tag byte".into()));
    }
    Ok(RawResponse {
        tag: body[0],
        payload: body[1..].to_vec(),
    })
}

/// Splits a `doc\n…rest` payload into the document name and the rest;
/// payloads with no newline are all name, no rest.
pub fn split_doc_payload(payload: &[u8]) -> Result<(String, String), String> {
    let text = std::str::from_utf8(payload).map_err(|_| "payload is not UTF-8".to_string())?;
    match text.split_once('\n') {
        Some((doc, rest)) => Ok((doc.to_string(), rest.to_string())),
        None => Ok((text.to_string(), String::new())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn request_round_trip() {
        let mut buf = Vec::new();
        write_request(&mut buf, tag::QUERY, "acme", b"people\nperson { name }").unwrap();
        let req = read_request(&mut Cursor::new(&buf), DEFAULT_MAX_FRAME_BYTES).unwrap();
        assert_eq!(req.tag, tag::QUERY);
        assert_eq!(req.tenant, "acme");
        assert_eq!(req.payload, b"people\nperson { name }");
    }

    #[test]
    fn response_round_trip() {
        let mut buf = Vec::new();
        write_response(&mut buf, tag::OK, b"opened people").unwrap();
        let resp = read_response(&mut Cursor::new(&buf), DEFAULT_MAX_FRAME_BYTES).unwrap();
        assert_eq!(resp.tag, tag::OK);
        assert_eq!(resp.text(), "opened people");
    }

    #[test]
    fn clean_eof_is_closed_mid_prefix_is_truncated() {
        let empty: &[u8] = &[];
        assert!(matches!(
            read_request(&mut Cursor::new(empty), 64),
            Err(FrameError::Closed)
        ));
        // Two of the four length bytes, then EOF: a truncated prefix.
        let partial: &[u8] = &[0x00, 0x00];
        assert!(matches!(
            read_request(&mut Cursor::new(partial), 64),
            Err(FrameError::Truncated)
        ));
    }

    #[test]
    fn oversized_declared_length_is_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        buf.push(tag::OPEN);
        assert!(matches!(
            read_request(&mut Cursor::new(&buf), 1024),
            Err(FrameError::Oversized {
                declared: u32::MAX,
                max: 1024
            })
        ));
    }

    #[test]
    fn tenant_length_past_frame_end_is_a_bad_header() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&3u32.to_be_bytes());
        buf.push(tag::OPEN);
        buf.push(200); // declares a 200-byte tenant in a 3-byte frame
        buf.push(b'x');
        assert!(matches!(
            read_request(&mut Cursor::new(&buf), 1024),
            Err(FrameError::BadHeader(_))
        ));
    }
}
