//! The `pxml-server` binary: parse flags, serve until stdin closes (or a
//! `quit` line arrives), then shut down gracefully — draining every
//! tenant's group-commit windows before exiting. See README "Serving" for
//! the runbook.

use std::io::BufRead;
use std::process::ExitCode;
use std::time::Duration;

use pxml_server::{Server, ServerConfig};
use pxml_store::CommitPolicy;

const USAGE: &str = "usage: pxml-server --root <dir> [--addr <host:port>] [--max-tenants <n>]\n\
    [--tenant-inflight <n>] [--global-inflight <n>] [--admission-timeout-ms <ms>] [--grouped]\n\
\n\
Serves the probabilistic XML warehouse over the length-prefixed wire\n\
protocol (README \"Serving\"). Runs until stdin reaches EOF or reads a\n\
`quit` line, then drains group-commit windows and exits.";

fn main() -> ExitCode {
    let mut config = ServerConfig::new("pxml-data");
    config.addr = "127.0.0.1:7878".to_string();
    let mut root_set = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} needs a value\n\n{USAGE}"))
        };
        let result: Result<(), String> = match arg.as_str() {
            "--root" => value("--root").map(|v| {
                config.root = v.into();
                root_set = true;
            }),
            "--addr" => value("--addr").map(|v| config.addr = v),
            "--max-tenants" => parse_usize(&mut value, "--max-tenants", &mut config.max_tenants),
            "--tenant-inflight" => {
                parse_usize(&mut value, "--tenant-inflight", &mut config.tenant_inflight)
            }
            "--global-inflight" => {
                parse_usize(&mut value, "--global-inflight", &mut config.global_inflight)
            }
            "--admission-timeout-ms" => value("--admission-timeout-ms").and_then(|v| {
                v.parse::<u64>()
                    .map(|ms| config.admission_timeout = Duration::from_millis(ms))
                    .map_err(|_| format!("bad --admission-timeout-ms value `{v}`"))
            }),
            "--grouped" => {
                config.session.commit = CommitPolicy::Grouped {
                    window_max_batches: 8,
                    window_max_wait: Duration::from_millis(2),
                };
                Ok(())
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => Err(format!("unknown flag `{other}`\n\n{USAGE}")),
        };
        if let Err(message) = result {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    }
    if !root_set {
        eprintln!("--root is required\n\n{USAGE}");
        return ExitCode::FAILURE;
    }

    let server = match Server::start(config) {
        Ok(server) => server,
        Err(err) => {
            eprintln!("pxml-server: failed to start: {err}");
            return ExitCode::FAILURE;
        }
    };
    // Scripts scrape this line for the resolved (possibly ephemeral) port.
    println!("pxml-server listening on {}", server.local_addr());

    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        match line {
            Ok(line) if line.trim() == "quit" => break,
            Ok(_) => continue,
            Err(_) => break,
        }
    }
    println!("pxml-server draining and shutting down");
    server.shutdown();
    ExitCode::SUCCESS
}

fn parse_usize(
    value: &mut impl FnMut(&str) -> Result<String, String>,
    flag: &str,
    slot: &mut usize,
) -> Result<(), String> {
    let v = value(flag)?;
    v.parse::<usize>()
        .map(|parsed| *slot = parsed)
        .map_err(|_| format!("bad {flag} value `{v}`"))
}
