//! `pxml-client`: the blocking client for the server's wire protocol.
//!
//! One [`Client`] wraps one TCP connection bound to one tenant; its methods
//! map 1:1 onto the request tags of [`crate::frame::tag`]. The harness's
//! E17 request-rate sweep and the server test suites drive the server
//! exclusively through this type, so it doubles as the protocol's
//! conformance reference.

use std::fmt;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};

use pxml_core::{FuzzyTree, UpdateTransaction};
use pxml_store::{parse_fuzzy_document, serialize_batch};
use pxml_tree::XmlDocument;

use crate::frame::tag;
use crate::frame::{
    read_response, write_request, FrameError, RawResponse, DEFAULT_MAX_FRAME_BYTES,
};

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport problem (connect, send, or a broken stream).
    Io(io::Error),
    /// The response frame could not be read or decoded.
    Frame(FrameError),
    /// Admission control shed the request (`scope` is `global` or
    /// `tenant`); nothing was executed, retry later.
    Busy { scope: String, message: String },
    /// The server answered with a typed error frame.
    Server { code: String, message: String },
    /// The server answered with a frame the client cannot make sense of
    /// (unexpected tag, unparseable payload).
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(err) => write!(f, "transport error: {err}"),
            ClientError::Frame(err) => write!(f, "response framing error: {err}"),
            ClientError::Busy { scope, message } => write!(f, "busy ({scope}): {message}"),
            ClientError::Server { code, message } => write!(f, "server error [{code}]: {message}"),
            ClientError::Protocol(message) => write!(f, "protocol error: {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(err: io::Error) -> Self {
        ClientError::Io(err)
    }
}

impl From<FrameError> for ClientError {
    fn from(err: FrameError) -> Self {
        ClientError::Frame(err)
    }
}

impl ClientError {
    /// `true` when the failure is an admission-control shed — the caller
    /// may retry after backing off; nothing happened server-side.
    pub fn is_busy(&self) -> bool {
        matches!(self, ClientError::Busy { .. })
    }
}

/// One merged query answer: a distinct answer tree and its exact
/// probability.
#[derive(Debug, Clone)]
pub struct RemoteAnswer {
    /// Probability that this answer tree appears in a random world.
    pub probability: f64,
    /// The answer tree, serialized as plain XML.
    pub xml: String,
}

/// The decoded payload of an `answers` frame.
#[derive(Debug, Clone)]
pub struct RemoteAnswers {
    /// Commit sequence number of the snapshot the query ran against.
    pub seq: u64,
    /// Probability that the pattern matches at all.
    pub selection: f64,
    /// Merged answers, most probable first.
    pub answers: Vec<RemoteAnswer>,
}

/// The decoded payload of a `stats` frame — a wire-side mirror of
/// [`pxml_warehouse::WarehouseStats`] plus the derived occupancy.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RemoteStats {
    pub updates_applied: usize,
    pub queries_evaluated: usize,
    pub simplifications: usize,
    pub checkpoints: usize,
    pub fsyncs: usize,
    pub grouped_commits: usize,
    pub grouped_windows: usize,
    /// Mean commits per flushed group-commit window; `0.0` on tenants that
    /// never flushed one (the server guarantees this is never NaN).
    pub mean_window_occupancy: f64,
}

/// A blocking protocol client: one TCP connection, one tenant.
pub struct Client {
    stream: TcpStream,
    tenant: String,
    max_frame_bytes: u32,
}

impl Client {
    /// Connects and binds every subsequent request to `tenant`.
    pub fn connect(addr: impl ToSocketAddrs, tenant: impl Into<String>) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            tenant: tenant.into(),
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
        })
    }

    /// The tenant this connection is bound to.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    fn call(&mut self, tag: u8, payload: &[u8]) -> Result<RawResponse, ClientError> {
        write_request(&mut self.stream, tag, &self.tenant, payload)?;
        let response = read_response(&mut self.stream, self.max_frame_bytes)?;
        match response.tag {
            tag::ERROR => {
                let text = response.text();
                let (code, message) = text.split_once('\n').unwrap_or((text.as_str(), ""));
                Err(ClientError::Server {
                    code: code.to_string(),
                    message: message.to_string(),
                })
            }
            tag::BUSY => {
                let text = response.text();
                let (scope, message) = text.split_once('\n').unwrap_or((text.as_str(), ""));
                Err(ClientError::Busy {
                    scope: scope.to_string(),
                    message: message.to_string(),
                })
            }
            _ => Ok(response),
        }
    }

    fn expect(&mut self, tag: u8, payload: &[u8], want: u8) -> Result<RawResponse, ClientError> {
        let response = self.call(tag, payload)?;
        if response.tag != want {
            return Err(ClientError::Protocol(format!(
                "expected response tag 0x{want:02x}, got 0x{:02x}",
                response.tag
            )));
        }
        Ok(response)
    }

    /// Opens a document; when `content` is given and the document does not
    /// exist yet, creates it from that XML.
    pub fn open(&mut self, doc: &str, content: Option<&str>) -> Result<String, ClientError> {
        let payload = format!("{doc}\n{}", content.unwrap_or(""));
        Ok(self.expect(tag::OPEN, payload.as_bytes(), tag::OK)?.text())
    }

    /// Evaluates a tree-pattern query; answers come back merged with exact
    /// probabilities, all computed against one immutable snapshot.
    pub fn query(&mut self, doc: &str, pattern: &str) -> Result<RemoteAnswers, ClientError> {
        let payload = format!("{doc}\n{pattern}");
        let response = self.expect(tag::QUERY, payload.as_bytes(), tag::ANSWERS)?;
        parse_answers(&response.text())
    }

    /// Synchronous commit: returns once the batch is durable.
    pub fn commit(
        &mut self,
        doc: &str,
        batch: &[UpdateTransaction],
    ) -> Result<String, ClientError> {
        let payload = format!("{doc}\n{}", serialize_batch(batch));
        Ok(self
            .expect(tag::COMMIT, payload.as_bytes(), tag::OK)?
            .text())
    }

    /// Asynchronous commit: returns at enqueue (the logical commit — later
    /// reads see the batch), durability arrives with the group-commit
    /// window and is reported in the [`Client::close`] summary.
    pub fn commit_async(
        &mut self,
        doc: &str,
        batch: &[UpdateTransaction],
    ) -> Result<String, ClientError> {
        let payload = format!("{doc}\n{}", serialize_batch(batch));
        Ok(self
            .expect(tag::COMMIT_ASYNC, payload.as_bytes(), tag::ACCEPTED)?
            .text())
    }

    /// Pins and fetches the document's current snapshot — never blocked by
    /// writers — as `(commit sequence number, fuzzy tree)`.
    pub fn snapshot(&mut self, doc: &str) -> Result<(u64, FuzzyTree), ClientError> {
        let response = self.expect(tag::SNAPSHOT, doc.as_bytes(), tag::SNAPSHOT_DATA)?;
        let text = response.text();
        let (seq, prxml) = text
            .split_once('\n')
            .ok_or_else(|| ClientError::Protocol("snapshot frame missing seq line".into()))?;
        let seq: u64 = seq
            .trim()
            .parse()
            .map_err(|_| ClientError::Protocol(format!("bad snapshot seq `{seq}`")))?;
        let fuzzy = parse_fuzzy_document(prxml)
            .map_err(|err| ClientError::Protocol(format!("bad snapshot payload: {err}")))?;
        Ok((seq, fuzzy))
    }

    /// Runs the simplification pass over a document.
    pub fn simplify(&mut self, doc: &str) -> Result<String, ClientError> {
        Ok(self.expect(tag::SIMPLIFY, doc.as_bytes(), tag::OK)?.text())
    }

    /// Tenant-level warehouse counters. Never shed by admission control,
    /// but answers only for tenants already resident server-side — a
    /// never-touched (or evicted) tenant gets a typed `not-resident`
    /// error instead of being lazily opened.
    pub fn stats(&mut self) -> Result<RemoteStats, ClientError> {
        let response = self.expect(tag::STATS, b"", tag::STATS_DATA)?;
        parse_stats(&response.text())
    }

    /// Drains this connection's pending async commits server-side and
    /// returns the drain summary. The connection is unusable afterwards.
    pub fn close(&mut self) -> Result<String, ClientError> {
        Ok(self.expect(tag::CLOSE, b"", tag::OK)?.text())
    }
}

fn parse_answers(text: &str) -> Result<RemoteAnswers, ClientError> {
    let mut lines = text.splitn(3, '\n');
    let seq = lines
        .next()
        .and_then(|s| s.trim().parse::<u64>().ok())
        .ok_or_else(|| ClientError::Protocol("answers frame missing seq line".into()))?;
    let selection = lines
        .next()
        .and_then(|s| s.trim().parse::<f64>().ok())
        .ok_or_else(|| ClientError::Protocol("answers frame missing selection line".into()))?;
    let xml = lines
        .next()
        .ok_or_else(|| ClientError::Protocol("answers frame missing XML body".into()))?;
    let document = XmlDocument::parse(xml)
        .map_err(|err| ClientError::Protocol(format!("bad answers XML: {err}")))?;
    let mut answers = Vec::new();
    for child in document.root.child_elements() {
        let probability = child
            .attribute("probability")
            .and_then(|p| p.parse::<f64>().ok())
            .ok_or_else(|| ClientError::Protocol("answer missing probability".into()))?;
        let tree = child
            .child_elements()
            .next()
            .ok_or_else(|| ClientError::Protocol("answer missing its tree".into()))?;
        let mut xml = String::new();
        tree.write_xml(&mut xml, false, 0);
        answers.push(RemoteAnswer { probability, xml });
    }
    Ok(RemoteAnswers {
        seq,
        selection,
        answers,
    })
}

fn parse_stats(text: &str) -> Result<RemoteStats, ClientError> {
    let document = XmlDocument::parse(text)
        .map_err(|err| ClientError::Protocol(format!("bad stats XML: {err}")))?;
    let attr_usize = |name: &str| -> Result<usize, ClientError> {
        document
            .root
            .attribute(name)
            .and_then(|v| v.parse::<usize>().ok())
            .ok_or_else(|| ClientError::Protocol(format!("stats frame missing `{name}`")))
    };
    let occupancy = document
        .root
        .attribute("mean_window_occupancy")
        .and_then(|v| v.parse::<f64>().ok())
        .ok_or_else(|| {
            ClientError::Protocol("stats frame missing `mean_window_occupancy`".into())
        })?;
    Ok(RemoteStats {
        updates_applied: attr_usize("updates_applied")?,
        queries_evaluated: attr_usize("queries_evaluated")?,
        simplifications: attr_usize("simplifications")?,
        checkpoints: attr_usize("checkpoints")?,
        fsyncs: attr_usize("fsyncs")?,
        grouped_commits: attr_usize("grouped_commits")?,
        grouped_windows: attr_usize("grouped_windows")?,
        mean_window_occupancy: occupancy,
    })
}
